#!/usr/bin/env python3
"""Compare SC, TSO, PSO and RMO on the same workload, with and without
DVMC — a miniature of the paper's Figures 3 and 4.

Run:  python examples/consistency_model_comparison.py
"""

from repro import ConsistencyModel, ProtocolKind, SystemConfig
from repro.system.experiments import measure


def main() -> None:
    workload = "oltp"
    print(f"Workload: {workload}, 8-node directory system, 2 seeds/point\n")
    header = f"{'model':<6}{'base cycles':>14}{'DVMC cycles':>14}{'overhead':>10}"
    print(header)
    print("-" * len(header))

    sc_base = None
    for model in ConsistencyModel:
        base = measure(
            SystemConfig.unprotected(model=model, protocol=ProtocolKind.DIRECTORY),
            workload,
            ops=150,
            seeds=2,
        )
        dvmc = measure(
            SystemConfig.protected(model=model, protocol=ProtocolKind.DIRECTORY),
            workload,
            ops=150,
            seeds=2,
        )
        if sc_base is None:
            sc_base = base.runtime_mean
        overhead = dvmc.runtime_mean / base.runtime_mean - 1
        print(
            f"{model.value:<6}{base.runtime_mean:>14.0f}"
            f"{dvmc.runtime_mean:>14.0f}{overhead:>+9.1%}"
        )

    print(
        "\nPaper shape: the TSO write buffer helps relative to SC; PSO and"
        "\nRMO add little on top; DVMC's overhead is worst under SC"
        "\n(verification serialises store retirement) and modest elsewhere."
    )


if __name__ == "__main__":
    main()
