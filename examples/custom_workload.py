#!/usr/bin/env python3
"""Writing your own workload: programs are Python generators yielding
memory operations; synchronisation primitives compose with `yield from`.

This example builds a small work-queue application (one producer, N
consumers, lock-protected queue), runs it under PSO with full DVMC, and
cross-checks the execution with the offline trace oracle.

Run:  python examples/custom_workload.py
"""

from repro import ConsistencyModel, SystemConfig, build_system
from repro.processor.operations import Compute, Load, Store
from repro.verify import Trace, TraceChecker, record_program
from repro.workloads import lock_addr, shared_addr
from repro.workloads.primitives import lock_acquire, lock_release

MODEL = ConsistencyModel.PSO
QUEUE_LOCK = lock_addr(0)
HEAD = shared_addr(0)      # next index to consume
TAIL = shared_addr(1)      # next index to fill
SLOT_BASE = 16             # queue slots live at shared words 16..
RESULTS = shared_addr(256)  # per-consumer result words
ITEMS = 12


def producer():
    """Push ITEMS work items into the queue."""
    for item in range(1, ITEMS + 1):
        yield from lock_acquire(QUEUE_LOCK, MODEL)
        tail = yield Load(TAIL)
        yield Store(shared_addr(SLOT_BASE + tail), item * 11)
        yield Store(TAIL, tail + 1)
        yield from lock_release(QUEUE_LOCK, MODEL)
        yield Compute(20)


def consumer(consumer_id: int):
    """Pop items until ITEMS have been consumed in total."""
    consumed = 0
    while True:
        yield from lock_acquire(QUEUE_LOCK, MODEL)
        head = yield Load(HEAD)
        tail = yield Load(TAIL)
        if head < tail:
            item = yield Load(shared_addr(SLOT_BASE + head))
            yield Store(HEAD, head + 1)
            yield from lock_release(QUEUE_LOCK, MODEL)
            total = yield Load(RESULTS + 4 * consumer_id)
            yield Store(RESULTS + 4 * consumer_id, total + item)
            consumed += 1
            yield Compute(15)
        else:
            yield from lock_release(QUEUE_LOCK, MODEL)
            if head >= ITEMS:
                return
            yield Compute(10)  # queue empty; back off


def main() -> None:
    trace = Trace()
    programs = [
        record_program(0, producer(), trace),
        record_program(1, consumer(0), trace),
        record_program(2, consumer(1), trace),
        record_program(3, consumer(2), trace),
    ]
    config = SystemConfig.protected(model=MODEL, num_nodes=4)
    system = build_system(config, programs=programs)
    result = system.run(max_cycles=5_000_000)

    print(f"completed: {result.completed}, cycles: {result.cycles}")
    print(f"DVMC violations: {len(result.violations)}")

    # Sum of per-consumer totals must equal the sum of produced items.
    image = system.memory_image()
    from repro.common.types import block_of, word_index

    totals = []
    for consumer_id in range(3):
        addr = RESULTS + 4 * consumer_id
        block = image.get(block_of(addr), [0] * 16)
        totals.append(block[word_index(addr)])
    expected = sum(item * 11 for item in range(1, ITEMS + 1))
    print(f"consumer totals: {totals} (sum {sum(totals)}, expected {expected})")
    assert sum(totals) == expected, "work items lost or duplicated!"

    offline = TraceChecker(trace).check()
    print(f"offline trace-oracle violations: {len(offline)}")
    assert not offline


if __name__ == "__main__":
    main()
