#!/usr/bin/env python3
"""Litmus-test playground: run classic consistency litmus tests (store
buffering, message passing) under each model and see which outcomes the
machine produces — with DVMC confirming every execution is legal.

Run:  python examples/litmus_playground.py
"""

from collections import Counter

from repro import ConsistencyModel, SystemConfig, build_system
from repro.common.types import MembarMask
from repro.processor.operations import Compute, Load, Membar, Store

X, Y = 0x2_0000, 0x2_0040  # two words in different cache blocks


def store_buffering(model: ConsistencyModel, seed: int, fenced: bool):
    """Dekker's-style SB: both-zero means stores were buffered."""
    out = {}

    def p0():
        yield Store(X, 1)
        if fenced:
            yield Membar(MembarMask.STORELOAD)
        out["r0"] = yield Load(Y)

    def p1():
        yield Store(Y, 1)
        if fenced:
            yield Membar(MembarMask.STORELOAD)
        out["r1"] = yield Load(X)

    config = SystemConfig.protected(model=model).with_nodes(2).with_seed(seed)
    system = build_system(config, programs=[p0(), p1()])
    result = system.run(max_cycles=1_000_000)
    assert not result.violations, result.violations[:1]
    return (out["r0"], out["r1"])


def message_passing(model: ConsistencyModel, seed: int, delay: int):
    out = {}

    def producer():
        yield Store(X, 42)   # payload
        yield Store(Y, 1)    # flag

    def consumer():
        yield Compute(delay)
        out["flag"] = yield Load(Y)
        out["data"] = yield Load(X)

    config = SystemConfig.protected(model=model).with_nodes(2).with_seed(seed)
    system = build_system(config, programs=[producer(), consumer()])
    result = system.run(max_cycles=1_000_000)
    assert not result.violations
    return (out["flag"], out["data"])


def main() -> None:
    print("Store buffering (SB):  P0: X=1; r0=Y   P1: Y=1; r1=X")
    print("  (r0,r1)=(0,0) is forbidden under SC, allowed elsewhere\n")
    for model in ConsistencyModel:
        outcomes = Counter(
            store_buffering(model, seed, fenced=False) for seed in range(1, 7)
        )
        print(f"  {model.value:<4} -> {dict(outcomes)}")
    print("\n  with Membar #StoreLoad under TSO (restores SC behaviour):")
    outcomes = Counter(
        store_buffering(ConsistencyModel.TSO, seed, fenced=True)
        for seed in range(1, 7)
    )
    print(f"  TSO+mb -> {dict(outcomes)}")

    print("\nMessage passing (MP): P0: X=42; Y=1   P1: r0=Y; r1=X")
    print("  flag=1 with data=0 is forbidden under SC/TSO\n")
    for model in (ConsistencyModel.SC, ConsistencyModel.TSO, ConsistencyModel.PSO):
        outcomes = Counter(
            message_passing(model, seed, delay)
            for seed in range(1, 4)
            for delay in (1, 60, 200)
        )
        stale = outcomes.get((1, 0), 0)
        print(f"  {model.value:<4} -> {dict(outcomes)}   stale-payload runs: {stale}")

    print("\nEvery run above passed with zero DVMC violations: the")
    print("observed relaxations are exactly the legal ones.")


if __name__ == "__main__":
    main()
