#!/usr/bin/env python3
"""Error-injection demo: corrupt a store in the write buffer mid-run
and watch DVMC catch it end-to-end — then verify a SafetyNet recovery
point was still available (the paper's Section 6.1 experiment, one
trial at a time).

Run:  python examples/error_injection_demo.py
"""

from repro import ConsistencyModel, SystemConfig, build_system
from repro.faults import FaultInjector, FaultKind, FaultPlan


def run_one(kind: FaultKind, inject_cycle: int = 4000) -> None:
    config = SystemConfig.protected(model=ConsistencyModel.TSO, num_nodes=4)
    system = build_system(config, workload="oltp", ops=200)
    injector = FaultInjector(system, seed=2026)
    injector.arm(FaultPlan(kind, inject_cycle))

    detection = {}

    def on_violation(report):
        if detection:
            return
        detection.update(
            cycle=report.cycle,
            checker=report.checker,
            kind=report.kind,
            detail=report.detail,
            recoverable=system.safetynet.can_recover(inject_cycle),
        )

    system.dvmc.violations._callback = on_violation
    system.run(max_cycles=500_000, allow_incomplete=True)
    system.drain_epochs()

    record = injector.records[0]
    print(f"=== {kind.value} ===")
    print(f"  injected @ cycle {inject_cycle}: {record.description}")
    if detection:
        latency = detection["cycle"] - inject_cycle
        print(f"  DETECTED by the {detection['checker']} checker "
              f"after {latency} cycles: {detection['kind']}")
        print(f"    {detection['detail']}")
        print(f"  recovery point still live: {detection['recoverable']}")
    else:
        print("  not detected (fault was masked — no architectural effect)")
    print()


def main() -> None:
    print("DVMC end-to-end error detection (paper Section 6.1)\n")
    for kind in (
        FaultKind.WB_VALUE_FLIP,     # caught by Uniprocessor Ordering (VC)
        FaultKind.WB_REORDER,        # caught by Allowable Reordering
        FaultKind.MSG_DATA_FLIP,     # caught by Cache Coherence (hashes)
        FaultKind.LSQ_WRONG_VALUE,   # caught by UO load replay
        FaultKind.MSG_DROP,          # caught by lost-operation detection
    ):
        run_one(kind)


if __name__ == "__main__":
    main()
