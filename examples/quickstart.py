#!/usr/bin/env python3
"""Quickstart: build a protected 8-node TSO machine, run a commercial
workload, and inspect what DVMC saw.

Run:  python examples/quickstart.py
"""

from repro import ConsistencyModel, ProtocolKind, SystemConfig, build_system


def main() -> None:
    # An 8-node MOSI-directory system running TSO, with full DVMC
    # (all three checkers) and SafetyNet backward error recovery —
    # the paper's DVTSO configuration.
    config = SystemConfig.protected(
        model=ConsistencyModel.TSO,
        protocol=ProtocolKind.DIRECTORY,
    )
    system = build_system(config, workload="oltp", ops=300)
    result = system.run()

    print(f"completed:        {result.completed}")
    print(f"cycles:           {result.cycles}")
    print(f"DVMC violations:  {len(result.violations)}  (0 = error-free)")

    stats = system.stats
    retired = sum(stats.counter(f"core.{n}.retired") for n in range(8))
    replays = sum(stats.counter(f"uo.{n}.replay_vc_hits") for n in range(8))
    replays += sum(stats.counter(f"uo.{n}.replay_cache_reads") for n in range(8))
    informs = sum(stats.counter(f"dvcc.{n}.informs_sent") for n in range(8))
    epochs = sum(stats.counter(f"dvcc.{n}.epochs_begun") for n in range(8))

    print()
    print("What the checkers did while the workload ran:")
    print(f"  instructions retired:         {retired}")
    print(f"  loads replayed (UO checker):  {replays}")
    print(f"  epochs tracked (CC checker):  {epochs}")
    print(f"  Inform-Epoch messages:        {informs}")
    print(f"  injected membars (AR checker):"
          f" {sum(stats.counter(f'ar.{n}.injected_membars') for n in range(8))}")
    print(f"  SafetyNet checkpoints:        {stats.counter('sn.checkpoints')}")

    busiest_link, link_bytes = stats.max_over("net.")
    print(f"  busiest link:                 {busiest_link} "
          f"({link_bytes / max(1, result.cycles):.3f} bytes/cycle)")


if __name__ == "__main__":
    main()
