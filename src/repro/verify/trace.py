"""Offline trace recording and golden-reference checking.

DVMC checks consistency *online* with bounded hardware.  For testing we
also provide an offline reference: wrap a workload program with
:func:`record_program`, run the simulation, and hand the collected
per-core traces to :class:`TraceChecker`, which validates value-level
properties that any coherent, consistent execution must satisfy:

* every load returns a value some store actually wrote to that word
  (or the word's initial value);
* a core's loads respect its own program order (Uniprocessor Ordering:
  a load sees its core's most recent prior store to the word, unless a
  store from another core could have intervened);
* per-word write serialisation: atomics to a word never observe a
  value that was never current for that word.

Full offline consistency verification is NP-hard (paper Section 3);
this checker is deliberately a conservative subset used to
cross-validate the online checkers in tests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.common.types import word_of
from repro.consistency.models import ConsistencyModel
from repro.processor.operations import (
    Atomic,
    Batch,
    Load,
    Membar,
    SetModel,
    Stbar,
    Store,
)

#: Event kinds that read or write memory (value-carrying accesses).
ACCESS_KINDS = ("load", "store", "atomic")

#: Event kinds that shape ordering but carry no data: SPARC fences and
#: the PSTATE.MM consistency-model switch (which drains the pipeline
#: and write buffer, i.e. acts as a full fence).
ORDERING_KINDS = ("membar", "stbar", "setmodel")

#: Stable integer codes for ``setmodel`` events (``value`` field).
MODEL_CODES: Dict[str, int] = {
    model.name: code for code, model in enumerate(ConsistencyModel)
}
MODEL_FROM_CODE: Dict[int, ConsistencyModel] = {
    code: ConsistencyModel[name] for name, code in MODEL_CODES.items()
}


@dataclass(slots=True)
class TraceEvent:
    """One recorded operation.

    Access events (``load``/``store``/``atomic``) carry an address and
    value; an atomic additionally carries ``old_value`` (its swapped-out
    result), which keeps the RMW read/write halves paired in a single
    event — offline replay must never split them.  Ordering events
    carry their fence metadata instead: a ``membar`` stores its
    instruction mask in ``mask``, a ``stbar`` stores the #SS mask it is
    equivalent to, and a ``setmodel`` stores the target model's
    :data:`MODEL_CODES` entry in ``value``.
    """

    core: int
    index: int  # program-order index within the core
    kind: str  # see ACCESS_KINDS / ORDERING_KINDS
    addr: int
    value: int  # load result / stored value / atomic's new value
    old_value: Optional[int] = None  # atomic's returned (swapped-out) value
    mask: int = 0  # membar/stbar instruction mask bits

    def is_access(self) -> bool:
        return self.kind in ACCESS_KINDS


# -- JSONL codec -----------------------------------------------------------
# Shared by the offline oracle and the observability plane's sampled
# event trace (repro.obs.otrace): one JSON object per line, stable key
# order, round-trip exact (the obs tests assert load(dump(t)) == t).

_EVENT_FIELDS = ("core", "index", "kind", "addr", "value", "old_value", "mask")


def event_to_dict(event: "TraceEvent") -> Dict:
    """Plain JSON-safe dict for one :class:`TraceEvent`."""
    return {name: getattr(event, name) for name in _EVENT_FIELDS}


def event_from_dict(data: Dict) -> "TraceEvent":
    """Inverse of :func:`event_to_dict`.

    ``mask`` is optional so traces written before fence metadata was
    recorded still load (their fence events simply were not captured).
    """
    return TraceEvent(
        **{name: data[name] for name in _EVENT_FIELDS[:-2]},
        old_value=data.get("old_value"),
        mask=data.get("mask", 0),
    )


def dump_jsonl(events: Iterable["TraceEvent"], path: str) -> int:
    """Write events as JSON Lines; returns the number written."""
    count = 0
    with open(path, "w") as fh:
        for event in events:
            fh.write(json.dumps(event_to_dict(event), sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def load_jsonl(path: str) -> "Trace":
    """Read a JSONL event file back into a :class:`Trace`."""
    trace = Trace()
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                trace.events.append(event_from_dict(json.loads(line)))
    return trace


@dataclass
class Trace:
    """Per-core event streams collected from one run."""

    events: List[TraceEvent] = field(default_factory=list)

    def per_core(self) -> Dict[int, List[TraceEvent]]:
        out: Dict[int, List[TraceEvent]] = {}
        for event in self.events:
            out.setdefault(event.core, []).append(event)
        for stream in out.values():
            stream.sort(key=lambda e: e.index)
        return out

    def words_touched(self) -> Set[int]:
        return {word_of(e.addr) for e in self.events if e.is_access()}

    def accesses(self) -> List[TraceEvent]:
        """Only the value-carrying memory accesses, in recorded order."""
        return [e for e in self.events if e.is_access()]


def record_program(core_id: int, program, trace: Trace):
    """Wrap a workload generator, recording every memory operation.

    The wrapper is transparent: it forwards each yielded operation to
    the core and passes results back, logging (op, result) pairs.
    """
    index = 0
    result = None
    while True:
        try:
            op = program.send(result)
        except StopIteration:
            return
        result = yield op
        ops = op.ops if isinstance(op, Batch) else [op]
        results = result if isinstance(op, Batch) else [result]
        for sub_op, sub_result in zip(ops, results):
            if isinstance(sub_op, Load):
                trace.events.append(
                    TraceEvent(core_id, index, "load", sub_op.addr, sub_result)
                )
            elif isinstance(sub_op, Store):
                trace.events.append(
                    TraceEvent(core_id, index, "store", sub_op.addr, sub_op.value)
                )
            elif isinstance(sub_op, Atomic):
                trace.events.append(
                    TraceEvent(
                        core_id,
                        index,
                        "atomic",
                        sub_op.addr,
                        sub_op.value,
                        old_value=sub_result,
                    )
                )
            elif isinstance(sub_op, Membar):
                trace.events.append(
                    TraceEvent(
                        core_id, index, "membar", 0, 0, mask=int(sub_op.mask)
                    )
                )
            elif isinstance(sub_op, Stbar):
                # Stbar == Membar #SS (paper Table 3 note); record the
                # equivalent mask so offline replay needs no PSO special
                # case when the active table has no STBAR rows.
                trace.events.append(
                    TraceEvent(core_id, index, "stbar", 0, 0, mask=0x8)
                )
            elif isinstance(sub_op, SetModel):
                trace.events.append(
                    TraceEvent(
                        core_id,
                        index,
                        "setmodel",
                        0,
                        MODEL_CODES[sub_op.model.name],
                    )
                )
            index += 1


@dataclass
class TraceViolation:
    """One offline-checker finding."""

    rule: str
    core: int
    index: int
    detail: str


class TraceChecker:
    """Golden-reference value checks over a recorded :class:`Trace`."""

    def __init__(self, trace: Trace, initial_value: int = 0):
        self.trace = trace
        self.initial = initial_value

    def check(self) -> List[TraceViolation]:
        """Run all offline checks; returns violations (empty = clean)."""
        return self.check_load_values() + self.check_uniprocessor_ordering()

    # ------------------------------------------------------------------
    def _written_values(self) -> Dict[int, Set[int]]:
        written: Dict[int, Set[int]] = {}
        for event in self.trace.events:
            if event.kind in ("store", "atomic"):
                written.setdefault(word_of(event.addr), set()).add(event.value)
        return written

    def check_load_values(self) -> List[TraceViolation]:
        """Every load (and atomic's old value) was actually written."""
        written = self._written_values()
        violations = []
        for event in self.trace.events:
            if not event.is_access():
                continue
            word = word_of(event.addr)
            observed = (
                event.value if event.kind == "load" else event.old_value
            )
            if event.kind == "store" or observed is None:
                continue
            legal = written.get(word, set()) | {self.initial}
            if observed not in legal:
                violations.append(
                    TraceViolation(
                        "out-of-thin-air",
                        event.core,
                        event.index,
                        f"{event.kind} of 0x{event.addr:x} observed "
                        f"0x{observed:x}, never written",
                    )
                )
        return violations

    def check_uniprocessor_ordering(self) -> List[TraceViolation]:
        """A core's load sees its own latest prior store to the word,
        unless another core also wrote that word (remote stores may
        legally intervene; such words are skipped conservatively)."""
        writers: Dict[int, Set[int]] = {}
        for event in self.trace.events:
            if event.kind in ("store", "atomic"):
                writers.setdefault(word_of(event.addr), set()).add(event.core)
        violations = []
        for core, stream in self.trace.per_core().items():
            last_local: Dict[int, int] = {}
            for event in stream:
                if not event.is_access():
                    continue
                word = word_of(event.addr)
                if event.kind in ("store", "atomic"):
                    last_local[word] = event.value
                    continue
                if writers.get(word, set()) - {core}:
                    continue  # shared word: remote values are legal
                expected = last_local.get(word, self.initial)
                if event.value != expected:
                    violations.append(
                        TraceViolation(
                            "uniprocessor-ordering",
                            core,
                            event.index,
                            f"load 0x{event.addr:x} got 0x{event.value:x}, "
                            f"expected 0x{expected:x}",
                        )
                    )
        return violations
