"""Offline golden-reference trace verification (test oracle)."""

from .trace import Trace, TraceChecker, TraceEvent, TraceViolation, record_program

__all__ = [
    "Trace",
    "TraceChecker",
    "TraceEvent",
    "TraceViolation",
    "record_program",
]
