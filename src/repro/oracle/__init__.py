"""Offline memory-consistency oracle (differential-testing backstop).

DVMC verifies consistency *online* with bounded hardware; its verdicts
have no independent ground truth inside the simulator.  This package is
that ground truth: a standalone polynomial-time trace verifier in the
style of Roy et al.'s TSO checker, generalised over the paper's
ordering tables so one engine decides SC/TSO/PSO/RMO admissibility.

It consumes the traces captured by :mod:`repro.verify.trace` (the same
JSONL codecs the observability plane uses) and builds a constraint
graph over the recorded accesses: preserved program order comes from
the active ordering table (fences and ``SetModel`` drains included),
reads-from / from-reads / coherence edges are inferred iteratively, and
transitive closure is maintained incrementally with per-node bitsets —
no interleaving enumeration anywhere.  Value-ambiguous reads (two
stores wrote the same value to the same word) fall back to a bounded
branching search; an exhausted budget yields an explicitly *undecided*
verdict rather than a wrong one.

The fuzz rig (:mod:`repro.fuzz`) cross-checks every captured trace
against this oracle and treats oracle-inadmissible + DVMC-clean as a
fatal mismatch.
"""

from .verifier import (
    OfflineVerifier,
    OracleVerdict,
    OracleViolation,
    check_trace,
    verify_file,
)

__all__ = [
    "OfflineVerifier",
    "OracleVerdict",
    "OracleViolation",
    "check_trace",
    "verify_file",
]
