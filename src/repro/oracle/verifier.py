"""Polynomial-time offline admissibility verifier.

Decides whether a captured trace is admissible under a consistency
model without enumerating interleavings, following the constraint-graph
formulation of Roy et al.'s TSO verifier generalised to the paper's
ordering tables.  Nodes are the trace's memory accesses; the verifier
maintains the transitive closure of a "performs before" partial order
(global memory order; the SPARC models are store-atomic) with per-node
bitsets, and grows it to a fixpoint from:

* **ppo** — preserved program order from the active ordering table,
  with fences and SetModel drains (:mod:`repro.oracle.ppo`);
* **per-location order** — same-thread same-word write->write and
  read->write pairs perform in program order (cache coherence);
* **rf** — a read's writer, inferred from values: an external writer
  performs before the read; a local write is forwarded, so it earns no
  such edge, but any local same-word write preceding an externally
  satisfied read must perform before that external writer;
* **fr** — a read performs before every same-word write that follows
  its writer (reads of the initial value precede every write);
* **ws** — competing writes already known to precede the read must
  precede its writer; same-thread reads of one word observe writers in
  coherence order (CoRR).

A contradiction (edge cycle, or a read value no writer can explain)
proves the trace inadmissible.  Reads whose value two writers could
supply are resolved by candidate pruning; if ambiguity survives the
fixpoint, a bounded branching search tries the assignments and the
verdict is *undecided* only when that budget is exhausted.  Atomics are
single nodes carrying both their read and write halves (the codec keeps
them paired), so RMW atomicity violations surface as cycles through the
fr rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.types import word_of
from repro.consistency.models import ConsistencyModel
from repro.verify.trace import Trace, load_jsonl

from .ppo import thread_order_bits

#: Pseudo writer id for "the word's initial value".
INIT = -1

_NEW, _OLD, _CYCLE = 0, 1, 2


@dataclass(frozen=True)
class OracleViolation:
    """One inadmissibility proof step."""

    rule: str  # "cycle" | "no-writer" | "coherence-read"
    detail: str


@dataclass
class OracleVerdict:
    """Outcome of one offline verification."""

    admissible: bool
    decided: bool  # False: ambiguity budget exhausted, no proof either way
    violations: List[OracleViolation] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)

    def __bool__(self) -> bool:  # truthy == admissible
        return self.admissible


class _Graph:
    """Digraph under incremental transitive closure (bitset rows)."""

    __slots__ = ("n", "succ", "pred")

    def __init__(self, n: int):
        self.n = n
        self.succ = [0] * n
        self.pred = [0] * n

    def clone(self) -> "_Graph":
        g = _Graph.__new__(_Graph)
        g.n = self.n
        g.succ = list(self.succ)
        g.pred = list(self.pred)
        return g

    def has(self, u: int, v: int) -> bool:
        return (self.succ[u] >> v) & 1 == 1

    def add(self, u: int, v: int) -> int:
        """Add u -> v; returns _NEW, _OLD, or _CYCLE (v already reaches u)."""
        succ = self.succ
        if u == v or (self.succ[v] >> u) & 1:
            return _CYCLE
        if (succ[u] >> v) & 1:
            return _OLD
        pred = self.pred
        down = succ[v] | (1 << v)
        up = pred[u] | (1 << u)
        rem = up
        while rem:
            low = rem & -rem
            succ[low.bit_length() - 1] |= down
            rem ^= low
        rem = down
        while rem:
            low = rem & -rem
            pred[low.bit_length() - 1] |= up
            rem ^= low
        return _NEW


class _Node:
    """One access event in the constraint graph."""

    __slots__ = (
        "gid",
        "thread",
        "word",
        "kind",
        "value",
        "rval",
        "is_read",
        "is_write",
        "prior_local",
        "label",
    )

    def __init__(self, gid, thread, word, kind, value, rval, label):
        self.gid = gid
        self.thread = thread
        self.word = word
        self.kind = kind
        self.value = value  # written value (stores/atomics)
        self.rval = rval  # observed value (loads/atomics)
        self.is_read = kind != "store"
        self.is_write = kind != "load"
        self.prior_local: Optional[int] = None  # latest local same-word write
        self.label = label


class _State:
    """One branch of the search: closure graph + rf assignment."""

    __slots__ = ("graph", "rf", "candidates")

    def __init__(self, graph: _Graph, rf: list, candidates: dict):
        self.graph = graph
        self.rf = rf
        self.candidates = candidates

    def clone(self) -> "_State":
        return _State(
            self.graph.clone(),
            list(self.rf),
            {r: set(c) for r, c in self.candidates.items()},
        )


class OfflineVerifier:
    """Verify one :class:`~repro.verify.trace.Trace` against a model."""

    def __init__(
        self,
        trace: Trace,
        model: ConsistencyModel,
        initial: int = 0,
        branch_budget: int = 256,
    ):
        self.model = model
        self.initial = initial
        self.branch_budget = branch_budget
        self._branches = 0
        self._violation: Optional[OracleViolation] = None
        self._build(trace)

    # -- construction -------------------------------------------------------
    def _build(self, trace: Trace) -> None:
        streams = trace.per_core()
        self.nodes: List[_Node] = []
        self.reads: List[int] = []
        self.writers_by_word: Dict[int, List[int]] = {}
        self.writer_bits: Dict[int, int] = {}
        seeds: List[Tuple[int, int]] = []  # ppo/per-location edges
        for thread in sorted(streams):
            stream = streams[thread]
            order = thread_order_bits(stream, self.model)
            access_pos: Dict[int, int] = {}  # stream pos -> gid
            last_write: Dict[int, int] = {}  # word -> gid
            last_read: Dict[int, int] = {}  # word -> gid
            for pos, event in enumerate(stream):
                if not event.is_access():
                    continue
                word = word_of(event.addr)
                gid = len(self.nodes)
                node = _Node(
                    gid,
                    thread,
                    word,
                    event.kind,
                    event.value,
                    event.value if event.kind == "load" else event.old_value,
                    f"T{thread}#{event.index}:{event.kind}@0x{event.addr:x}",
                )
                access_pos[pos] = gid
                node.prior_local = last_write.get(word)
                if node.is_read:
                    self.reads.append(gid)
                if node.is_write:
                    # Per-location program order: same-word writes drain
                    # in order; a read performs before its word's next
                    # local write (it must not observe it).
                    prev = last_write.get(word)
                    if prev is not None:
                        seeds.append((prev, gid))
                    prev_read = last_read.get(word)
                    if prev_read is not None:
                        seeds.append((prev_read, gid))
                    last_write[word] = gid
                    self.writers_by_word.setdefault(word, []).append(gid)
                if node.is_read:
                    last_read[word] = gid
                self.nodes.append(node)
            # Project the stream-position ppo closure onto access nodes.
            for pos, gid in access_pos.items():
                bits = order[pos]
                while bits:
                    low = bits & -bits
                    jpos = low.bit_length() - 1
                    bits ^= low
                    target = access_pos.get(jpos)
                    if target is not None:
                        seeds.append((gid, target))
        n = len(self.nodes)
        self.graph_seed = _Graph(n)
        for word, writers in self.writers_by_word.items():
            mask = 0
            for w in writers:
                mask |= 1 << w
            self.writer_bits[word] = mask
        for u, v in seeds:
            # Same-thread seeds always point forward in program order,
            # so they can never introduce a cycle.
            self.graph_seed.add(u, v)

    def _initial_state(self) -> Optional[_State]:
        rf: List[Optional[int]] = [None] * len(self.nodes)
        candidates: Dict[int, set] = {}
        by_value: Dict[Tuple[int, int], List[int]] = {}
        for word, writers in self.writers_by_word.items():
            for w in writers:
                by_value.setdefault((word, self.nodes[w].value), []).append(w)
        for r in self.reads:
            node = self.nodes[r]
            cands = set()
            for w in by_value.get((node.word, node.rval), ()):
                if w == r:
                    continue  # an atomic never observes its own write
                wn = self.nodes[w]
                if wn.thread == node.thread:
                    # Forwarding reads the *latest* local same-word
                    # write; earlier ones are shadowed, later ones are
                    # not yet issued.
                    if w != node.prior_local:
                        continue
                cands.add(w)
            if node.rval == self.initial and node.prior_local is None:
                cands.add(INIT)
            if not cands:
                self._violation = OracleViolation(
                    "no-writer",
                    f"{node.label} observed 0x{node.rval:x}, which no "
                    f"store to word 0x{node.word:x} can supply",
                )
                return None
            candidates[r] = cands
        return _State(self.graph_seed.clone(), rf, candidates)

    # -- inference ----------------------------------------------------------
    def _edge(self, state: _State, u: int, v: int, rule: str) -> bool:
        """Add a derived edge; False (and a violation) on cycle."""
        result = state.graph.add(u, v)
        if result == _CYCLE:
            self._violation = OracleViolation(
                "cycle",
                f"{rule}: {self.nodes[u].label} -> {self.nodes[v].label} "
                f"closes a performs-before cycle under {self.model.name}",
            )
            return False
        if result == _NEW:
            self._progress = True
        return True

    def _bind(self, state: _State, r: int, w: int) -> bool:
        """Fix rf(w, r) and fire the immediate edges."""
        state.rf[r] = w
        state.candidates.pop(r, None)
        self._progress = True
        node = self.nodes[r]
        if w == INIT:
            # fr from the initial value: the read performs before every
            # write to the word.
            for s in self.writers_by_word.get(node.word, ()):
                if s != r and not self._edge(state, r, s, "fr-init"):
                    return False
            return True
        wn = self.nodes[w]
        if wn.thread != node.thread:
            if not self._edge(state, w, r, "rf-external"):
                return False
            if node.prior_local is not None and not self._edge(
                state, node.prior_local, w, "local-before-external-rf"
            ):
                return False
        return True

    def _apply_bound(self, state: _State, r: int) -> bool:
        """fr / ws inference for an already-bound read."""
        w = state.rf[r]
        if w == INIT:
            return True
        node = self.nodes[r]
        graph = state.graph
        w_external = self.nodes[w].thread != node.thread
        w_before_r = w_external or graph.has(w, r)
        succ_w = graph.succ[w]
        pred_r = graph.pred[r]
        others = self.writer_bits.get(node.word, 0) & ~(1 << w) & ~(1 << r)
        rem = others
        while rem:
            low = rem & -rem
            s = low.bit_length() - 1
            rem ^= low
            if (succ_w >> s) & 1:
                # fr: the read precedes writes that overwrite its writer.
                if not self._edge(state, r, s, "fr"):
                    return False
            if w_before_r and (pred_r >> s) & 1:
                # ws: a competing write already before the read must
                # precede the observed writer (else it would be the
                # value seen).
                if not self._edge(state, s, w, "ws-competitor"):
                    return False
        return True

    def _prune(self, state: _State, r: int) -> bool:
        """Drop impossible candidates; bind when one remains."""
        node = self.nodes[r]
        graph = state.graph
        cands = state.candidates[r]
        dead = []
        for w in cands:
            if w == INIT:
                # Impossible once any write is known to precede the read.
                if graph.pred[r] & self.writer_bits.get(node.word, 0):
                    dead.append(w)
                continue
            wn = self.nodes[w]
            external = wn.thread != node.thread
            if external and graph.has(r, w):
                dead.append(w)
                continue
            if (
                external
                and node.prior_local is not None
                and graph.has(w, node.prior_local)
            ):
                # The local prior write would shadow this older value.
                dead.append(w)
                continue
            # Hidden writer: some same-word write is between w and r.
            hidden = (
                graph.succ[w]
                & graph.pred[r]
                & self.writer_bits.get(node.word, 0)
                & ~(1 << r)
            )
            if hidden:
                dead.append(w)
        for w in dead:
            cands.discard(w)
            self._progress = True
        if not cands:
            self._violation = OracleViolation(
                "no-writer",
                f"{node.label} observed 0x{node.rval:x}, but every "
                f"candidate writer is contradicted by the derived order",
            )
            return False
        if len(cands) == 1:
            return self._bind(state, r, next(iter(cands)))
        return True

    def _corr(self, state: _State) -> bool:
        """Same-thread reads of one word observe writers in coherence
        order (no value oscillation)."""
        last: Dict[Tuple[int, int], int] = {}
        for r in self.reads:
            if state.rf[r] is None:
                continue
            node = self.nodes[r]
            key = (node.thread, node.word)
            prev = last.get(key)
            last[key] = r
            if prev is None:
                continue
            w1, w2 = state.rf[prev], state.rf[r]
            if w1 == w2 or w1 == INIT:
                continue
            if w2 == INIT:
                self._violation = OracleViolation(
                    "coherence-read",
                    f"{node.label} observed the initial value after "
                    f"{self.nodes[prev].label} observed a store",
                )
                return False
            if not self._edge(state, w1, w2, "coherence-read"):
                return False
        return True

    def _propagate(self, state: _State) -> bool:
        """Run all rules to a fixpoint; False on contradiction."""
        self._progress = True
        while self._progress:
            self._progress = False
            for r in self.reads:
                if state.rf[r] is None:
                    if not self._prune(state, r):
                        return False
                if state.rf[r] is not None and not self._apply_bound(
                    state, r
                ):
                    return False
            if not self._corr(state):
                return False
        return True

    # -- search -------------------------------------------------------------
    def _solve(self, state: _State) -> Optional[bool]:
        """True admissible, False contradiction, None budget exhausted."""
        if not self._propagate(state):
            return False
        unbound = [r for r in self.reads if state.rf[r] is None]
        if not unbound:
            return True
        r = min(unbound, key=lambda x: (len(state.candidates[x]), x))
        saw_budget_end = False
        for w in sorted(state.candidates[r]):
            self._branches += 1
            if self._branches > self.branch_budget:
                return None
            branch = state.clone()
            violation = self._violation
            if not self._bind(branch, r, w):
                self._violation = violation  # branch-local contradiction
                continue
            result = self._solve(branch)
            if result:
                return True
            if result is None:
                saw_budget_end = True
            self._violation = violation
        return None if saw_budget_end else False

    def verdict(self) -> OracleVerdict:
        stats = {
            "events": len(self.nodes),
            "reads": len(self.reads),
            "writes": sum(1 for n in self.nodes if n.is_write),
        }
        state = self._initial_state()
        if state is None:
            stats["branches"] = 0
            return OracleVerdict(False, True, [self._violation], stats)
        self._branches = 0
        self._violation = None
        result = self._solve(state)
        stats["branches"] = self._branches
        if result is None:
            return OracleVerdict(True, False, [], stats)
        if result:
            return OracleVerdict(True, True, [], stats)
        violations = [self._violation] if self._violation else []
        return OracleVerdict(False, True, violations, stats)


def check_trace(
    trace: Trace,
    model: ConsistencyModel,
    initial: int = 0,
    branch_budget: int = 256,
) -> OracleVerdict:
    """Verify ``trace`` against ``model``; see :class:`OfflineVerifier`."""
    return OfflineVerifier(trace, model, initial, branch_budget).verdict()


def verify_file(
    path: str, model: ConsistencyModel, initial: int = 0
) -> OracleVerdict:
    """Verify a JSONL trace file written by the shared codecs."""
    return check_trace(load_jsonl(path), model, initial=initial)
