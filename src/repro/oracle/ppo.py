"""Preserved program order from ordering tables, fences and switches.

One core's recorded event stream (accesses, Membars/Stbars, SetModel
drains, in program order) plus the run's base consistency model
determine which pairs of events must *perform* in program order.  This
module computes the per-thread transitive closure of that relation as
bitsets over stream positions, evaluating each direct pair through the
model's :class:`~repro.consistency.ordering_table.OrderingTable` —
exactly the specification the online Allowable Reordering checker
enforces, so online and offline verdicts share one definition of the
models.

``SetModel`` events both switch the active table for the operations
that follow *and* act as a full fence: the core drains its pipeline and
write buffer before switching (paper Section 5), so every earlier
operation performs before every later one.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.common.types import MembarMask, OpType
from repro.consistency.models import ConsistencyModel
from repro.consistency.tables import table_for
from repro.verify.trace import MODEL_FROM_CODE, TraceEvent

#: TraceEvent.kind -> the OpType the ordering tables reason about.
KIND_TO_OPTYPE = {
    "load": OpType.LOAD,
    "store": OpType.STORE,
    "atomic": OpType.ATOMIC,
    "membar": OpType.MEMBAR,
    "stbar": OpType.STBAR,
}


def _roles(
    events: Sequence[TraceEvent], base_model: ConsistencyModel
) -> List[Tuple[object, OpType, MembarMask, bool]]:
    """Per event: (active table, op type, instruction mask, is_switch).

    The table attached to an event is the one active *at that point* in
    the stream; a ``stbar`` is rewritten to ``Membar #SS`` when the
    active table carries no STBAR rows (Stbar is valid under every
    model; only PSO's table spells it out).
    """
    table = table_for(base_model)
    out = []
    for event in events:
        if event.kind == "setmodel":
            table = table_for(MODEL_FROM_CODE[event.value])
            out.append((table, OpType.MEMBAR, MembarMask.ALL, True))
            continue
        op_type = KIND_TO_OPTYPE[event.kind]
        mask = MembarMask.ALL
        if op_type is OpType.MEMBAR:
            mask = MembarMask(event.mask)
        elif op_type is OpType.STBAR and OpType.STBAR not in table.op_types:
            op_type = OpType.MEMBAR
            mask = MembarMask(event.mask or MembarMask.STORESTORE)
        out.append((table, op_type, mask, False))
    return out


def thread_order_bits(
    events: Sequence[TraceEvent], base_model: ConsistencyModel
) -> List[int]:
    """Closure of "must perform before" over one thread's stream.

    Returns ``succ`` where bit ``j`` of ``succ[i]`` is set iff the
    event at stream position ``i`` must perform before the event at
    position ``j > i`` — directly by a table cell, or through any chain
    of fences / model switches.  O(n^2) direct-pair evaluations with a
    closure-subsumption prune; direct pairs straddling a ``SetModel``
    are ordered unconditionally (the drain).
    """
    n = len(events)
    roles = _roles(events, base_model)
    succ = [0] * n
    for i in range(n - 1, -1, -1):
        table_i, type_i, mask_i, switch_i = roles[i]
        bits = 0
        for j in range(i + 1, n):
            bit = 1 << j
            if bits & bit:
                continue  # already reachable: succ[j] is a subset too
            table_j, type_j, mask_j, switch_j = roles[j]
            if switch_i or switch_j or table_i is not table_j:
                # A SetModel at i, at j, or strictly between them (the
                # active table changed): the drain orders the pair.
                ordered = True
            else:
                ordered = table_i.ordered(type_i, type_j, mask_i, mask_j)
            if ordered:
                bits |= bit | succ[j]
        succ[i] = bits
    return succ
