"""Parallel run orchestrator: fan independent simulations across cores.

The paper's methodology is embarrassingly parallel — every figure
aggregates N perturbed-seed replicas per (config, workload) point, and
the Section 6.1 campaign runs hundreds of independent fault-injection
trials.  :func:`run_points` executes such independent points on a
:class:`~concurrent.futures.ProcessPoolExecutor`:

* A point is described by a picklable, plain-data spec
  (:class:`RunSpec` by default).  The worker builds the ``System`` in
  the child process and returns plain-data :class:`RunMetrics` — a
  live ``System`` never crosses the process boundary.
* Results are keyed by spec index and re-ordered, so parallel output
  is bit-identical to the serial path for any deterministic worker.
* ``jobs=1`` runs in-process (no pool, no pickling); ``jobs=0`` means
  "auto" (``cpu_count() - 1``, at least 1).  ``jobs=None`` defers to
  the ``REPRO_JOBS`` environment variable, then to ``default_jobs``.
* A crashed worker process surfaces as :class:`ParallelRunError`
  naming the failed spec, rather than a hang or a bare pool error.

Used by :func:`repro.system.experiments.measure` (seed replicas),
``benchmarks/bench_common.measure_grid`` (config × workload grids) and
:func:`repro.faults.campaign.run_campaign` (injection trials).
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro.common.errors import ConfigError
from repro.config import SystemConfig

#: Environment variable consulted when ``jobs`` is not given.
JOBS_ENV = "REPRO_JOBS"

SpecT = TypeVar("SpecT")
ResultT = TypeVar("ResultT")


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation run (picklable plain data)."""

    config: SystemConfig
    workload: str
    ops: int
    max_cycles: int = 50_000_000


@dataclass(frozen=True)
class RunMetrics:
    """Plain-data outcome of one run (everything the harnesses read).

    Carries the scheduler/stat counters rather than the live ``System``
    so it can return from a worker process.
    """

    cycles: int
    completed: bool
    violations: int
    events_processed: int
    counters: Dict[str, int] = field(default_factory=dict)

    def counter_sum(self, prefix: str) -> int:
        """Sum of counters under ``prefix`` (StatsRegistry.sum analogue)."""
        return sum(v for k, v in self.counters.items() if k.startswith(prefix))

    def counter_max(self, prefix: str) -> int:
        """Largest counter under ``prefix`` (StatsRegistry.max_over analogue)."""
        return max(
            (v for k, v in self.counters.items() if k.startswith(prefix)),
            default=0,
        )


class ParallelRunError(RuntimeError):
    """A worker failed (exception or process death) on one spec."""

    def __init__(self, index: int, spec, reason: str):
        super().__init__(
            f"parallel run failed on spec #{index} ({spec!r}): {reason}"
        )
        self.index = index
        self.spec = spec
        self.reason = reason


def execute_run_spec(spec: RunSpec) -> RunMetrics:
    """Default worker: build the system in this process, run, summarise.

    Top-level (hence picklable by reference) so it can be shipped to
    pool workers.
    """
    from repro.system.builder import build_system

    system = build_system(spec.config, workload=spec.workload, ops=spec.ops)
    result = system.run(max_cycles=spec.max_cycles)
    return RunMetrics(
        cycles=result.cycles,
        completed=result.completed,
        violations=len(result.violations),
        events_processed=system.scheduler.events_processed,
        counters=system.stats.counters(),
    )


def resolve_jobs(jobs: Optional[int] = None, default: int = 1) -> int:
    """Normalise a ``jobs`` request to a concrete worker count.

    ``None`` reads ``REPRO_JOBS`` (falling back to ``default``); ``0``
    means auto (``cpu_count() - 1``, at least 1).
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV)
        if env is not None and env.strip():
            try:
                jobs = int(env)
            except ValueError:
                raise ConfigError(
                    f"{JOBS_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            jobs = default
    if jobs == 0:
        jobs = max(1, (os.cpu_count() or 1) - 1)
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0, got {jobs}")
    return jobs


def run_points(
    specs: Sequence[SpecT],
    jobs: Optional[int] = None,
    worker: Callable[[SpecT], ResultT] = execute_run_spec,
) -> List[ResultT]:
    """Run ``worker`` over every spec, preserving spec order.

    With ``jobs <= 1`` (or a single spec) the specs run serially in
    this process — the exact code path the pool workers execute — so
    parallel and serial results are identical for deterministic
    workers.  Worker exceptions and worker-process deaths both raise
    :class:`ParallelRunError` identifying the offending spec.
    """
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(specs) <= 1:
        return [worker(spec) for spec in specs]

    results: List[Optional[ResultT]] = [None] * len(specs)
    with ProcessPoolExecutor(max_workers=min(jobs, len(specs))) as pool:
        futures = {pool.submit(worker, spec): i for i, spec in enumerate(specs)}
        # FIRST_EXCEPTION: a dead worker aborts the batch promptly
        # instead of waiting out every sibling run.
        done, pending = wait(futures, return_when=FIRST_EXCEPTION)
        failed = next((f for f in done if f.exception() is not None), None)
        if failed is not None:
            for future in pending:
                future.cancel()
            index = futures[failed]
            exc = failed.exception()
            reason = (
                "worker process died"
                if isinstance(exc, BrokenProcessPool)
                else str(exc)
            )
            raise ParallelRunError(index, specs[index], reason) from exc
        for future, index in futures.items():
            results[index] = future.result()
    return results  # type: ignore[return-value]
