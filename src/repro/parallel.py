"""Parallel run orchestrator: fan independent simulations across cores.

The paper's methodology is embarrassingly parallel — every figure
aggregates N perturbed-seed replicas per (config, workload) point, and
the Section 6.1 campaign runs hundreds of independent fault-injection
trials.  :func:`run_points` executes such independent points on a
*persistent* pool of warm worker processes:

* A point is described by a picklable, plain-data spec
  (:class:`RunSpec` by default).  The worker builds the ``System`` in
  the child process and returns plain-data :class:`RunMetrics` — a
  live ``System`` never crosses the process boundary.
* The pool is created once and reused across ``run_points`` calls
  (workers stay warm; an initializer pre-imports the simulation stack
  so no spec pays import cost), and specs are *streamed* to it in
  order, so parallel output is bit-identical to the serial path for
  any deterministic worker.
* ``jobs=1`` runs in-process (no pool, no pickling); ``jobs=0`` means
  "auto" (``cpu_count() - 1``, at least 1).  ``jobs=None`` defers to
  the ``REPRO_JOBS`` environment variable, then to ``default_jobs``.
* A crashed worker process surfaces as :class:`ParallelRunError`
  naming the failed spec, rather than a hang or a bare pool error.

On top of the pool sits a content-addressed **result cache**
(:class:`ResultCache`): a run's outcome is keyed by a fingerprint of
its spec *and* of the simulator's source code, so repeated sweep
points — re-running a benchmark, widening a campaign, regenerating a
figure — are near-free, while any code or configuration change
invalidates every stale entry automatically.  Enable it with
``cache=True`` (or ``--cache`` on the CLI / ``REPRO_CACHE=1`` in the
environment); entries live under ``.repro_cache/``.

Used by :func:`repro.system.experiments.measure` (seed replicas),
``benchmarks/bench_common.measure_grid`` (config × workload grids) and
:func:`repro.faults.campaign.run_campaign` (injection trials).
"""

from __future__ import annotations

import atexit
import dataclasses
import enum
import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.common.errors import ConfigError
from repro.config import SystemConfig

#: Environment variable consulted when ``jobs`` is not given.
JOBS_ENV = "REPRO_JOBS"
#: Environment variable consulted when ``cache`` is not given: "1" (or
#: a directory path) enables the result cache, "0"/"" disables it.
CACHE_ENV = "REPRO_CACHE"
#: Default on-disk location of the result cache (repo-relative).
CACHE_DIR = ".repro_cache"
#: Environment variable bounding the cache directory size (megabytes).
#: Unset/0 means unbounded; above the budget the least-recently-used
#: entries are evicted (reads refresh recency via mtime).
CACHE_MAX_MB_ENV = "REPRO_CACHE_MAX_MB"

SpecT = TypeVar("SpecT")
ResultT = TypeVar("ResultT")


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation run (picklable plain data)."""

    config: SystemConfig
    workload: str
    ops: int
    max_cycles: int = 50_000_000


@dataclass(frozen=True)
class RunMetrics:
    """Plain-data outcome of one run (everything the harnesses read).

    Carries the scheduler/stat counters rather than the live ``System``
    so it can return from a worker process.
    """

    cycles: int
    completed: bool
    violations: int
    events_processed: int
    counters: Dict[str, int] = field(default_factory=dict)
    #: Observability snapshot (``REPRO_OBS=1``), or None.  Excluded
    #: from equality and repr: the deterministic payload above must
    #: compare bit-identical whether or not a run was observed, and
    #: the snapshot carries wall-clock phase timings that never repeat.
    obs: Optional[Dict] = field(default=None, compare=False, repr=False)

    def counter_sum(self, prefix: str) -> int:
        """Sum of counters under ``prefix`` (StatsRegistry.sum analogue)."""
        return sum(v for k, v in self.counters.items() if k.startswith(prefix))

    def counter_max(self, prefix: str) -> int:
        """Largest counter under ``prefix`` (StatsRegistry.max_over analogue)."""
        return max(
            (v for k, v in self.counters.items() if k.startswith(prefix)),
            default=0,
        )


class ParallelRunError(RuntimeError):
    """A worker failed (exception or process death) on one spec."""

    def __init__(self, index: int, spec, reason: str):
        super().__init__(
            f"parallel run failed on spec #{index} ({spec!r}): {reason}"
        )
        self.index = index
        self.spec = spec
        self.reason = reason


def execute_run_spec(spec: RunSpec) -> RunMetrics:
    """Default worker: build the system in this process, run, summarise.

    Top-level (hence picklable by reference) so it can be shipped to
    pool workers.
    """
    from repro.system.builder import build_system

    system = build_system(spec.config, workload=spec.workload, ops=spec.ops)
    result = system.run(max_cycles=spec.max_cycles)
    obs_snap = None
    if system.obs.enabled or system.obs_trace is not None:
        from repro.obs.export import snapshot_system

        obs_snap = snapshot_system(system)
    return RunMetrics(
        cycles=result.cycles,
        completed=result.completed,
        violations=len(result.violations),
        events_processed=system.scheduler.events_processed,
        counters=system.stats.counters(),
        obs=obs_snap,
    )


def resolve_jobs(jobs: Optional[int] = None, default: int = 1) -> int:
    """Normalise a ``jobs`` request to a concrete worker count.

    ``None`` reads ``REPRO_JOBS`` (falling back to ``default``); ``0``
    means auto (``cpu_count() - 1``, at least 1).
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV)
        if env is not None and env.strip():
            try:
                jobs = int(env)
            except ValueError:
                raise ConfigError(
                    f"{JOBS_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            jobs = default
    if jobs == 0:
        jobs = max(1, (os.cpu_count() or 1) - 1)
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0, got {jobs}")
    return jobs


# ---------------------------------------------------------------------------
# Persistent worker pool
# ---------------------------------------------------------------------------

_pool: Optional[ProcessPoolExecutor] = None
_pool_jobs = 0


def _warm_worker() -> None:
    """Pool initializer: pre-import the simulation stack.

    Runs once per worker process at pool creation, so every streamed
    spec finds the builder (and everything it pulls in) already
    imported instead of paying the import on its first task.
    """
    import repro.system.builder  # noqa: F401


def _get_pool(jobs: int) -> ProcessPoolExecutor:
    """The shared worker pool, (re)created only when ``jobs`` changes."""
    global _pool, _pool_jobs
    if _pool is not None and _pool_jobs != jobs:
        _pool.shutdown(wait=False, cancel_futures=True)
        _pool = None
    if _pool is None:
        _pool = ProcessPoolExecutor(max_workers=jobs, initializer=_warm_worker)
        _pool_jobs = jobs
    return _pool


def discard_pool() -> None:
    """Tear down the persistent pool (crashed worker, interpreter exit)."""
    global _pool
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
        _pool = None


atexit.register(discard_pool)


def _indexed_call(item: Tuple[int, Callable, object]):
    """Shippable wrapper: run one spec, return (index, error, result,
    elapsed_seconds).

    Worker exceptions come back as values instead of poisoning the
    pool, so one bad spec aborts the batch without costing the warm
    workers.  The elapsed time feeds the pool utilization metric in
    the parent and never touches the deterministic result payload.
    """
    index, worker, spec = item
    start = time.perf_counter()
    try:
        return index, None, worker(spec), time.perf_counter() - start
    except BaseException as exc:  # noqa: BLE001 - reported to the caller
        return index, str(exc) or type(exc).__name__, None, (
            time.perf_counter() - start
        )


# ---------------------------------------------------------------------------
# Pool observability
# ---------------------------------------------------------------------------

_last_obs: Optional[Dict] = None
_pool_hub = None


def pool_hub():
    """The orchestrator-side :class:`~repro.obs.hub.MetricsHub`.

    Re-evaluates ``REPRO_OBS`` on every call (the benchmark toggles it
    between passes): disabled callers always get the shared null hub,
    and a stale null hub is replaced the moment observability turns on.
    """
    global _pool_hub
    from repro import obs

    if not obs.enabled():
        return obs.NULL_HUB
    if _pool_hub is None or not _pool_hub.enabled:
        _pool_hub = obs.new_hub()
    return _pool_hub


def last_run_obs() -> Optional[Dict]:
    """Pool/cache view of the most recent :func:`run_points` batch.

    Plain data (jobs, wall seconds, per-task seconds, utilization,
    cache hits/misses) — independent of the per-run ``RunMetrics.obs``
    snapshots, which describe the simulated systems themselves.
    """
    return dict(_last_obs) if _last_obs is not None else None


def _note_execution(
    jobs: int, wall_s: float, latencies: List[float]
) -> None:
    """Record one batch's pool metrics (obs plane; results untouched)."""
    global _last_obs
    task_s = sum(latencies)
    busy = wall_s * jobs
    _last_obs = {
        "jobs": jobs,
        "specs": len(latencies),
        "wall_s": wall_s,
        "task_s_total": task_s,
        "task_s_max": max(latencies, default=0.0),
        "utilization": (task_s / busy) if busy > 0 else 0.0,
    }
    hub = pool_hub()
    if hub.enabled:
        hub.counter("pool.batches").add(1)
        hub.counter("pool.specs").add(len(latencies))
        hub.gauge("pool.jobs").set(jobs)
        hub.gauge("pool.utilization").set(_last_obs["utilization"])
        task_hist = hub.histogram("pool.task_s")
        for elapsed in latencies:
            task_hist.record(elapsed)


# ---------------------------------------------------------------------------
# Content-addressed result cache
# ---------------------------------------------------------------------------

_code_fp: Optional[str] = None


def code_fingerprint() -> str:
    """Hash of every source file in the ``repro`` package (memoised).

    Folded into each spec fingerprint so that *any* code change —
    model fix, protocol tweak, kernel rewrite — invalidates every
    cached result without bookkeeping.
    """
    global _code_fp
    if _code_fp is None:
        digest = hashlib.sha256()
        root = os.path.dirname(os.path.abspath(__file__))
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                digest.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as fh:
                    digest.update(fh.read())
        _code_fp = digest.hexdigest()
    return _code_fp


def _json_default(obj):
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    raise TypeError(f"unfingerprintable value in spec: {obj!r}")


def spec_fingerprint(spec) -> str:
    """Stable content hash of a (dataclass) spec plus the code version."""
    payload = {
        "type": type(spec).__name__,
        "code": code_fingerprint(),
        "spec": dataclasses.asdict(spec),
    }
    blob = json.dumps(payload, sort_keys=True, default=_json_default)
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """On-disk ``spec fingerprint -> result`` store.

    One JSON file per entry under ``root``; entries self-describe their
    result type, and only types with a registered codec are stored or
    served (unknown payloads read as misses).  Writes go through a
    temp-file rename so concurrent workers never see a torn entry.
    """

    #: result type name -> (encode to JSON-safe dict, decode back).
    _codecs: Dict[str, Tuple[Callable, Callable]] = {}

    @classmethod
    def register(
        cls, result_type: type, encode: Callable, decode: Callable
    ) -> None:
        cls._codecs[result_type.__name__] = (encode, decode)

    def __init__(self, root: str = CACHE_DIR, max_bytes: Optional[int] = None):
        self.root = root
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if max_bytes is None:
            env = os.environ.get(CACHE_MAX_MB_ENV, "").strip()
            try:
                max_bytes = int(float(env) * 1024 * 1024) if env else 0
            except ValueError:
                max_bytes = 0
        #: Byte budget for the directory; 0 disables eviction.
        self.max_bytes = max_bytes

    def _path(self, spec) -> str:
        return os.path.join(self.root, spec_fingerprint(spec) + ".json")

    def get(self, spec):
        """The cached result for ``spec``, or None on any kind of miss."""
        if not dataclasses.is_dataclass(spec):
            self.misses += 1
            return None
        try:
            with open(self._path(spec)) as fh:
                payload = json.load(fh)
            codec = self._codecs.get(payload["type"])
            if codec is None:
                self.misses += 1
                return None
            value = codec[1](payload["data"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        try:
            os.utime(self._path(spec))  # refresh LRU recency
        except OSError:
            pass
        return value

    def put(self, spec, result) -> None:
        """Store ``result`` for ``spec`` (no-op for unregistered types)."""
        if not dataclasses.is_dataclass(spec):
            return
        codec = self._codecs.get(type(result).__name__)
        if codec is None:
            return
        os.makedirs(self.root, exist_ok=True)
        path = self._path(spec)
        payload = {"type": type(result).__name__, "data": codec[0](result)}
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
        self._evict_over_budget(keep=path)

    def _evict_over_budget(self, keep: Optional[str] = None) -> None:
        """Delete least-recently-used entries until under ``max_bytes``.

        ``keep`` (the entry just written) is never evicted, so a budget
        smaller than one entry still leaves the latest result usable.
        Concurrent workers may race on the same victims; a loser's
        missing file is simply skipped.
        """
        if not self.max_bytes:
            return
        try:
            entries = []
            total = 0
            with os.scandir(self.root) as it:
                for ent in it:
                    if not ent.name.endswith(".json"):
                        continue
                    try:
                        st = ent.stat()
                    except OSError:
                        continue
                    entries.append((st.st_mtime, ent.path, st.st_size))
                    total += st.st_size
        except OSError:
            return
        if total <= self.max_bytes:
            return
        entries.sort()  # oldest mtime first
        for _mtime, path, size in entries:
            if total <= self.max_bytes:
                break
            if path == keep:  # both built via os.path.join(root, name)
                continue
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size
            self.evictions += 1


ResultCache.register(
    RunMetrics,
    encode=dataclasses.asdict,
    decode=lambda data: RunMetrics(**data),
)


def resolve_cache(cache=None) -> Optional[ResultCache]:
    """Normalise a ``cache`` request to a :class:`ResultCache` or None.

    ``None`` defers to ``REPRO_CACHE`` ("1"/"true" → default directory,
    a path → that directory, "0"/"" → off); ``True``/``False`` force it
    on (default directory) or off; a string selects the directory; an
    existing :class:`ResultCache` passes through.
    """
    if isinstance(cache, ResultCache):
        return cache
    if cache is None:
        env = os.environ.get(CACHE_ENV, "").strip()
        if env.lower() in ("", "0", "false", "no", "off"):
            return None
        if env.lower() in ("1", "true", "yes", "on"):
            return ResultCache()
        return ResultCache(env)
    if cache is False:
        return None
    if cache is True:
        return ResultCache()
    return ResultCache(str(cache))


# ---------------------------------------------------------------------------
# Orchestration
# ---------------------------------------------------------------------------


def run_points(
    specs: Sequence[SpecT],
    jobs: Optional[int] = None,
    worker: Callable[[SpecT], ResultT] = execute_run_spec,
    cache=None,
) -> List[ResultT]:
    """Run ``worker`` over every spec, preserving spec order.

    With ``jobs <= 1`` (or a single spec) the specs run serially in
    this process — the exact code path the pool workers execute — so
    parallel and serial results are identical for deterministic
    workers.  Worker exceptions and worker-process deaths both raise
    :class:`ParallelRunError` identifying the offending spec.

    ``cache`` (see :func:`resolve_cache`) consults the result cache
    first and only executes the missing specs; fresh results are
    written back, so a repeated sweep costs one file read per point.
    """
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    store = resolve_cache(cache)
    if store is None:
        return _execute(specs, jobs, worker)

    results: List[Optional[ResultT]] = [store.get(spec) for spec in specs]
    missing = [i for i, r in enumerate(results) if r is None]
    if missing:
        try:
            fresh = _execute([specs[i] for i in missing], jobs, worker)
        except ParallelRunError as exc:
            # Re-key the failure to the caller's spec numbering.
            index = missing[exc.index]
            raise ParallelRunError(index, specs[index], exc.reason) from exc
        for i, value in zip(missing, fresh):
            store.put(specs[i], value)
            results[i] = value
    else:
        _note_execution(jobs, 0.0, [])
    global _last_obs
    if _last_obs is not None:
        _last_obs["cache_hits"] = store.hits
        _last_obs["cache_misses"] = store.misses
        _last_obs["cache_evictions"] = store.evictions
    hub = pool_hub()
    if hub.enabled:
        hub.counter("cache.hits").add(store.hits)
        hub.counter("cache.misses").add(store.misses)
        hub.counter("cache.evictions").add(store.evictions)
    return results  # type: ignore[return-value]


def _execute(
    specs: List[SpecT], jobs: int, worker: Callable[[SpecT], ResultT]
) -> List[ResultT]:
    start = time.perf_counter()
    latencies: List[float] = []
    if jobs <= 1 or len(specs) <= 1:
        results_serial: List[ResultT] = []
        for spec in specs:
            t0 = time.perf_counter()
            results_serial.append(worker(spec))
            latencies.append(time.perf_counter() - t0)
        _note_execution(1, time.perf_counter() - start, latencies)
        return results_serial

    results: List[Optional[ResultT]] = [None] * len(specs)
    pool = _get_pool(jobs)
    items = [(i, worker, spec) for i, spec in enumerate(specs)]
    done = 0
    try:
        # Streamed in order: workers pull specs as they free up, the
        # parent consumes (index, error, result, elapsed) records as
        # they complete, and a failure aborts the batch promptly
        # without tearing down the warm pool.
        for index, error, value, elapsed in pool.map(_indexed_call, items):
            if error is not None:
                raise ParallelRunError(index, specs[index], error)
            results[index] = value
            latencies.append(elapsed)
            done += 1
    except BrokenProcessPool as exc:
        discard_pool()
        index = min(done, len(specs) - 1)
        raise ParallelRunError(
            index, specs[index], "worker process died"
        ) from exc
    _note_execution(jobs, time.perf_counter() - start, latencies)
    return results  # type: ignore[return-value]
