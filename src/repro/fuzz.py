"""Differential fuzzing: DVMC online verdicts vs. the offline oracle.

DVMC's checkers decide consistency *online*; the offline oracle
(:mod:`repro.oracle`) decides the same question from the captured trace
with an independent formulation.  This driver runs generated litmus
tests (:mod:`repro.workloads.litmus_gen`) and fault-injected random
workloads through the full simulated machine, records every memory
operation with the shared trace codecs, and requires the two verdicts
to agree:

==================  =================  =====================================
online (DVMC)       offline (oracle)   classification
==================  =================  =====================================
clean               admissible         ``agree_clean``
violation           inadmissible       ``agree_violation``
violation           admissible         ``online_only`` — legal only on fault
                                       runs (sub-architectural errors are
                                       invisible at the value level); a
                                       fault-free run must not produce it
clean               inadmissible       ``missed_violation`` — always fatal
(any)               undecided          ``undecided`` — oracle branch budget
                                       exhausted; counted, never gated
==================  =================  =====================================

A fatal mismatch is shrunk to a minimal :class:`FuzzCase` (threads and
ops greedily removed while the mismatch reproduces) and emitted as a
committable JSON reproducer; ``tests/corpus/`` replays those files as
regressions, and the CI fuzz lane fails when a mismatch shrinks to a
case not already in the corpus.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.types import MembarMask
from repro.config import SystemConfig
from repro.consistency.models import ConsistencyModel
from repro.faults.injector import ALL_FAULT_KINDS, FaultInjector, FaultKind, FaultPlan
from repro.obs.fuzz_counters import OUTCOMES, FuzzCounters
from repro.oracle import check_trace
from repro.parallel import run_points
from repro.processor.operations import Atomic, Compute, Load, Membar, Stbar, Store
from repro.system.builder import build_system
from repro.verify.trace import Trace, record_program
from repro.workloads.litmus_gen import LitmusSpec, classics, generate, slot_addr

#: Fatal differential outcomes (see module docstring).
FATAL_ALWAYS = "missed_violation"
FATAL_UNLESS_FAULT = "online_only"

#: Cap on recorded reruns of non-fatal ``undecided`` cases per campaign.
MAX_UNDECIDED_FORENSICS = 5


@dataclass(frozen=True)
class FuzzCase:
    """Picklable, committable description of one differential run.

    Litmus cases carry the encoded spec; random cases carry the
    (seed, nodes, ops) triple their program stream is derived from, so
    a committed reproducer replays bit-identically.
    """

    model: str  # ConsistencyModel name
    seed: int
    litmus: Optional[str] = None  # encoded LitmusSpec; None -> random case
    name: str = ""
    nodes: int = 0  # random cases only
    ops: int = 0  # random cases only
    fault: Optional[str] = None  # FaultKind value
    fault_cycle: int = 0
    branch_budget: int = 256

    def to_json(self) -> Dict:
        data = {
            k: v
            for k, v in dataclasses.asdict(self).items()
            if v not in (None, "", 0)
        }
        data["model"] = self.model
        data["seed"] = self.seed
        return data

    @classmethod
    def from_json(cls, data: Dict) -> "FuzzCase":
        allowed = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in allowed})

    def describe(self) -> str:
        what = self.name or self.litmus or f"random(nodes={self.nodes}, ops={self.ops})"
        fault = f" fault={self.fault}@{self.fault_cycle}" if self.fault else ""
        return f"{what} model={self.model} seed={self.seed}{fault}"


@dataclass
class CaseResult:
    """One differential run's verdict pair and classification."""

    case: FuzzCase
    outcome: str
    online_clean: bool
    oracle_admissible: bool
    oracle_decided: bool
    completed: bool
    oracle_stats: Dict[str, int] = field(default_factory=dict)
    detail: str = ""

    @property
    def fatal(self) -> bool:
        if self.outcome == FATAL_ALWAYS:
            return True
        return self.outcome == FATAL_UNLESS_FAULT and self.case.fault is None


def classify(online_clean: bool, admissible: bool, decided: bool) -> str:
    if not decided:
        return "undecided"
    if admissible:
        return "agree_clean" if online_clean else "online_only"
    return "missed_violation" if online_clean else "agree_violation"


# -- random workloads --------------------------------------------------------

#: Shared words the random workloads race over (distinct blocks).
RANDOM_SLOTS = 6

_FENCE_MENU = (
    MembarMask.ALL,
    MembarMask.STORELOAD,
    MembarMask.STORESTORE,
    MembarMask.LOADLOAD | MembarMask.LOADSTORE,
)


def random_ops(seed: int, core: int, ops: int) -> List:
    """One core's deterministic random op list.

    Every store/atomic writes ``core << 16 | sequence`` — unique across
    the whole run — so offline reads-from inference never needs the
    oracle's branching fallback.
    """
    rng = random.Random(seed * 1_000_003 + core)
    out: List = []
    seq = 1
    for _ in range(ops):
        roll = rng.random()
        addr = slot_addr(rng.randrange(RANDOM_SLOTS))
        if roll < 0.32:
            out.append(Load(addr))
        elif roll < 0.64:
            out.append(Store(addr, (core << 16) | seq))
            seq += 1
        elif roll < 0.76:
            out.append(Atomic(addr, (core << 16) | seq))
            seq += 1
        elif roll < 0.84:
            out.append(Membar(rng.choice(_FENCE_MENU)))
        elif roll < 0.88:
            out.append(Stbar())
        else:
            out.append(Compute(rng.randrange(1, 120)))
    return out


def _replay(ops: Sequence) -> "generator":
    for op in ops:
        yield op


def case_programs(case: FuzzCase) -> List:
    """Per-core program generators for a case (litmus or random)."""
    if case.litmus is not None:
        return LitmusSpec.decode(case.litmus, name=case.name or None).programs()
    return [
        _replay(random_ops(case.seed, core, case.ops))
        for core in range(case.nodes)
    ]


# -- execution ---------------------------------------------------------------


def _execute_case(case: FuzzCase, max_cycles: int):
    """Run one case through the full machine; (system, trace, result)."""
    if case.fault is not None:
        # An injected fault may legitimately hang the machine; bound
        # the wasted simulated time (the partial trace is still
        # checkable — admissibility is prefix-closed).
        max_cycles = min(max_cycles, case.fault_cycle + 250_000)
    model = ConsistencyModel[case.model]
    trace = Trace()
    programs = [
        record_program(core, program, trace)
        for core, program in enumerate(case_programs(case))
    ]
    config = (
        SystemConfig.protected(model=model)
        .with_nodes(len(programs))
        .with_seed(case.seed)
    )
    system = build_system(config, programs=programs)
    if case.fault is not None:
        injector = FaultInjector(system, seed=case.seed * 7919 + case.fault_cycle)
        injector.arm(FaultPlan(FaultKind(case.fault), case.fault_cycle))
    result = system.run(
        max_cycles=max_cycles, allow_incomplete=case.fault is not None
    )
    return system, trace, result


def _differential(case: FuzzCase, trace: Trace, result) -> CaseResult:
    """Classify one finished run against the offline oracle."""
    online_clean = not result.violations
    model = ConsistencyModel[case.model]
    verdict = check_trace(trace, model, branch_budget=case.branch_budget)
    outcome = classify(online_clean, verdict.admissible, verdict.decided)
    detail = ""
    if verdict.violations:
        detail = verdict.violations[0].detail
    elif not online_clean:
        report = result.violations[0]
        detail = f"online: {report}"
    return CaseResult(
        case=case,
        outcome=outcome,
        online_clean=online_clean,
        oracle_admissible=verdict.admissible,
        oracle_decided=verdict.decided,
        completed=result.completed,
        oracle_stats=dict(verdict.stats),
        detail=detail,
    )


def run_case(case: FuzzCase, max_cycles: int = 2_000_000) -> CaseResult:
    """Run one case through the full machine and both verifiers."""
    _, trace, result = _execute_case(case, max_cycles)
    return _differential(case, trace, result)


def run_case_recorded(case: FuzzCase, max_cycles: int = 2_000_000):
    """Re-run a case with the flight recorder on; (result, recorder).

    Forces ``REPRO_OBS_SPANS=1`` at stride-1 sampling for the duration
    of the run (the ambient environment is saved and restored), so the
    recorder captures *every* operation of the shrunk reproducer.  The
    recorder never feeds back into the simulation, hence the rerun's
    verdict is bit-identical to the plain run the campaign classified.
    """
    from repro.obs import SPANS_CAP_ENV, SPANS_ENV, SPANS_OUT_ENV, SPANS_SAMPLE_ENV

    keys = (SPANS_ENV, SPANS_SAMPLE_ENV, SPANS_CAP_ENV, SPANS_OUT_ENV)
    saved = {key: os.environ.get(key) for key in keys}
    os.environ[SPANS_ENV] = "1"
    os.environ[SPANS_SAMPLE_ENV] = "1"
    os.environ.pop(SPANS_CAP_ENV, None)
    os.environ.pop(SPANS_OUT_ENV, None)  # callers export explicitly
    try:
        system, trace, result = _execute_case(case, max_cycles)
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    return _differential(case, trace, result), system.spans


def write_forensics(
    case: FuzzCase, detail: str, out_dir: str, stem: str
) -> List[str]:
    """Recorded rerun -> post-mortem + Chrome trace next to a reproducer.

    Returns the artifact paths (``<stem>.postmortem.txt`` and
    ``<stem>.trace.json`` under ``out_dir``).
    """
    from repro.obs.chrome_trace import write_chrome_trace
    from repro.obs.forensics import post_mortem

    result, recorder = run_case_recorded(case)
    if recorder is None:  # pragma: no cover - recorder forced on above
        return []
    os.makedirs(out_dir, exist_ok=True)
    pm_path = os.path.join(out_dir, f"{stem}.postmortem.txt")
    with open(pm_path, "w") as fh:
        fh.write(post_mortem(recorder, detail or result.detail))
    trace_path = os.path.join(out_dir, f"{stem}.trace.json")
    write_chrome_trace(trace_path, recorder)
    return [pm_path, trace_path]


# -- shrinking ---------------------------------------------------------------


def _litmus_variants(spec: LitmusSpec) -> List[LitmusSpec]:
    """All single-removal reductions: drop one thread, or one op."""
    out = []
    threads = spec.threads
    if len(threads) > 1:
        for i in range(len(threads)):
            reduced = threads[:i] + threads[i + 1 :]
            out.append(LitmusSpec("", reduced))
    for i, thread in enumerate(threads):
        if len(thread) <= 1 and len(threads) > 1:
            continue
        for j in range(len(thread)):
            reduced_thread = thread[:j] + thread[j + 1 :]
            if not reduced_thread and len(threads) == 1:
                continue
            kept = (reduced_thread,) if reduced_thread else ()
            reduced = threads[:i] + kept + threads[i + 1 :]
            out.append(LitmusSpec("", reduced))
    return out


def _as_litmus_case(case: FuzzCase) -> Optional[FuzzCase]:
    """Rewrite a random case as an explicit litmus case (same ops,
    timing jitter dropped), so its reproducer is self-describing."""
    threads = []
    for core in range(case.nodes):
        ops = []
        for op in random_ops(case.seed, core, case.ops):
            if isinstance(op, Store):
                ops.append(("st", (op.addr - slot_addr(0)) // 0x40, op.value))
            elif isinstance(op, Load):
                ops.append(("ld", (op.addr - slot_addr(0)) // 0x40))
            elif isinstance(op, Atomic):
                ops.append(("rmw", (op.addr - slot_addr(0)) // 0x40, op.value))
            elif isinstance(op, Membar):
                ops.append(("mb", int(op.mask)))
            elif isinstance(op, Stbar):
                ops.append(("sb",))
        if ops:
            threads.append(tuple(ops))
    if not threads:
        return None
    spec = LitmusSpec("", tuple(threads))
    return dataclasses.replace(
        case,
        litmus=spec.encode(),
        name=f"shrunk-{case.model}-{case.seed}",
        nodes=0,
        ops=0,
    )


def shrink_case(
    case: FuzzCase, max_rounds: int = 200
) -> Tuple[FuzzCase, int]:
    """Greedy 1-removal shrink; returns (minimal case, steps tried).

    Every candidate is re-run through the full machine; a candidate is
    kept only if the differential mismatch still reproduces.  Random
    cases are first rewritten as explicit litmus cases so the final
    reproducer is readable and timing-independent; if the rewrite does
    not reproduce, the original random case is returned unshrunk.
    """

    def mismatches(candidate: FuzzCase) -> bool:
        try:
            return run_case(candidate).fatal
        except Exception:
            return False  # a candidate that breaks the run is not kept

    steps = 0
    if case.litmus is None:
        rewritten = _as_litmus_case(case)
        steps += 1
        if rewritten is None or not mismatches(rewritten):
            return case, steps
        case = rewritten

    spec = LitmusSpec.decode(case.litmus, name=case.name or None)
    improved = True
    while improved and steps < max_rounds:
        improved = False
        for variant in _litmus_variants(spec):
            candidate = dataclasses.replace(case, litmus=variant.encode())
            steps += 1
            if steps >= max_rounds:
                break
            if mismatches(candidate):
                spec, case, improved = variant, candidate, True
                break
    return case, steps


# -- corpus ------------------------------------------------------------------


def corpus_files(corpus_dir: str) -> List[str]:
    if not os.path.isdir(corpus_dir):
        return []
    return sorted(
        os.path.join(corpus_dir, name)
        for name in os.listdir(corpus_dir)
        if name.endswith(".json")
    )


def load_corpus(corpus_dir: str) -> List[FuzzCase]:
    cases = []
    for path in corpus_files(corpus_dir):
        with open(path) as fh:
            data = json.load(fh)
        cases.append(FuzzCase.from_json(data.get("case", data)))
    return cases


def corpus_keys(corpus_dir: str) -> set:
    """Identity keys of committed reproducers (for known-mismatch
    matching: same program shape + model, any seed)."""
    return {
        (case.model, case.litmus, case.nodes, case.ops, case.fault)
        for case in load_corpus(corpus_dir)
    }


def case_key(case: FuzzCase) -> tuple:
    return (case.model, case.litmus, case.nodes, case.ops, case.fault)


def write_reproducer(case: FuzzCase, result_detail: str, out_dir: str) -> str:
    """Emit one committable regression file; returns its path."""
    os.makedirs(out_dir, exist_ok=True)
    key = hashlib.sha1(repr(case_key(case)).encode()).hexdigest()[:8]
    name = f"repro-{case.model.lower()}-{case.seed}-{key}.json"
    path = os.path.join(out_dir, name)
    payload = {
        "case": case.to_json(),
        "detail": result_detail,
        "note": (
            "Shrunk differential-fuzz reproducer: DVMC online and the "
            "offline oracle disagreed on this run.  Replayed by "
            "tests/integration/test_corpus.py; keep until root-caused."
        ),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def replay_corpus(corpus_dir: str) -> List[Tuple[str, CaseResult]]:
    """Re-run every committed reproducer; pairs (path, result)."""
    out = []
    for path in corpus_files(corpus_dir):
        with open(path) as fh:
            data = json.load(fh)
        case = FuzzCase.from_json(data.get("case", data))
        out.append((path, run_case(case)))
    return out


# -- campaign ----------------------------------------------------------------


@dataclass
class FuzzReport:
    """Everything a campaign learned, JSON-ready."""

    summary: Dict[str, int]
    outcomes: Dict[str, int]
    mismatches: List[Dict]
    reproducers: List[str]
    corpus_size: int
    elapsed_seconds: float
    hub_snapshot: Dict[str, Dict] = field(default_factory=dict)
    #: Flight-recorder artifacts (post-mortems + Chrome traces) written
    #: next to the reproducers.
    forensics: List[str] = field(default_factory=list)

    @property
    def new_mismatches(self) -> List[Dict]:
        return [m for m in self.mismatches if not m.get("known")]

    def to_json(self) -> Dict:
        return dataclasses.asdict(self)


def plan_campaign(
    litmus_count: int = 500,
    fault_runs: int = 50,
    random_runs: int = 25,
    seed: int = 2006,
    models: Sequence[ConsistencyModel] = tuple(ConsistencyModel),
) -> List[FuzzCase]:
    """Deterministic case list for one campaign.

    Every generated litmus spec runs once per model; fault-injected and
    fault-free random workloads are sampled on top.
    """
    rng = random.Random(seed)
    cases: List[FuzzCase] = []
    specs = classics()
    if litmus_count > len(specs):
        specs += generate(litmus_count - len(specs), seed=seed)
    specs = specs[:litmus_count]
    for spec in specs:
        for model in models:
            cases.append(
                FuzzCase(
                    model=model.name,
                    seed=rng.randrange(1, 1 << 20),
                    litmus=spec.encode(),
                    name=spec.name,
                )
            )
    for _ in range(random_runs):
        cases.append(
            FuzzCase(
                model=rng.choice(list(models)).name,
                seed=rng.randrange(1, 1 << 20),
                nodes=rng.choice((2, 3, 4)),
                ops=rng.randrange(20, 45),
            )
        )
    for _ in range(fault_runs):
        # A random run of this size finishes within a few thousand
        # cycles, so the injection point must sit early for the fault
        # to land while traffic is still in flight.
        ops = rng.randrange(30, 60)
        cases.append(
            FuzzCase(
                model=rng.choice(list(models)).name,
                seed=rng.randrange(1, 1 << 20),
                nodes=rng.choice((2, 3, 4)),
                ops=ops,
                fault=rng.choice(ALL_FAULT_KINDS).value,
                fault_cycle=rng.randrange(300, 20 * ops),
            )
        )
    return cases


def run_fuzz_campaign(
    cases: Sequence[FuzzCase],
    jobs: Optional[int] = None,
    corpus_dir: Optional[str] = None,
    reproducer_dir: Optional[str] = None,
    counters: Optional[FuzzCounters] = None,
    shrink: bool = True,
) -> FuzzReport:
    """Execute a case list and differential-check every run.

    Fatal mismatches are shrunk (serially, after the parallel sweep)
    and written to ``reproducer_dir``; mismatches whose shrunk shape is
    already committed under ``corpus_dir`` are flagged ``known``.
    """
    counters = counters or FuzzCounters()
    start = time.perf_counter()
    results = run_points(list(cases), jobs=jobs, worker=run_case)
    known = corpus_keys(corpus_dir) if corpus_dir else set()
    mismatches: List[Dict] = []
    reproducers: List[str] = []
    forensics: List[str] = []
    undecided_explained = 0
    for result in results:
        counters.record_case(result.outcome, result.oracle_stats)
        if (
            result.outcome == "undecided"
            and reproducer_dir
            and undecided_explained < MAX_UNDECIDED_FORENSICS
        ):
            # An exhausted oracle budget is not fatal, but the recorded
            # rerun is cheap context for whoever raises the budget.
            undecided_explained += 1
            stem = f"undecided-{result.case.model.lower()}-{result.case.seed}"
            try:
                forensics.extend(
                    write_forensics(
                        result.case, result.detail, reproducer_dir, stem
                    )
                )
            except Exception:  # pragma: no cover - diagnostics only
                pass
        if not result.fatal:
            continue
        case, detail = result.case, result.detail
        if shrink:
            case, steps = shrink_case(result.case)
            counters.record_shrink_steps(steps)
        is_known = case_key(case) in known
        counters.record_mismatch(known=is_known)
        entry = {
            "case": case.to_json(),
            "original": result.case.to_json(),
            "outcome": result.outcome,
            "detail": detail,
            "known": is_known,
        }
        mismatches.append(entry)
        if reproducer_dir:
            path = write_reproducer(case, detail, reproducer_dir)
            reproducers.append(path)
            # Flight-recorder rerun: drop the automated post-mortem and
            # the Chrome trace next to the committable reproducer so a
            # fatal mismatch arrives pre-investigated.
            stem = os.path.splitext(os.path.basename(path))[0]
            try:
                artifacts = write_forensics(case, detail, reproducer_dir, stem)
            except Exception:  # pragma: no cover - diagnostics only
                artifacts = []
            forensics.extend(artifacts)
            entry["forensics"] = artifacts
    outcomes = {
        name: value
        for name, value in counters.summary().items()
        if name in OUTCOMES
    }
    return FuzzReport(
        summary=counters.summary(),
        outcomes=outcomes,
        mismatches=mismatches,
        reproducers=reproducers,
        corpus_size=len(corpus_files(corpus_dir)) if corpus_dir else 0,
        elapsed_seconds=round(time.perf_counter() - start, 3),
        hub_snapshot=counters.snapshot(),
        forensics=forensics,
    )
