"""Backward error recovery (SafetyNet-style checkpointing)."""

from .safetynet import Checkpoint, SafetyNet

__all__ = ["Checkpoint", "SafetyNet"]
