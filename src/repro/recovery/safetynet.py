"""SafetyNet-style backward error recovery (checkpoint/log).

DVMC detects errors; a BER mechanism recovers from them.  The paper
uses SafetyNet [26]: the system keeps several in-flight checkpoints and
can roll back to any live one, giving a recovery window of roughly
100k cycles.  This model implements the contract DVMC relies on:

* periodic checkpoints with bounded lifetime (old ones are *validated*
  and retired once all checkers have had time to flag errors);
* copy-on-write undo logging of architectural block writes, so the
  memory image at any live checkpoint can be reconstructed;
* a small amount of checkpoint-coordination traffic on the interconnect.

A full pipeline/register rollback is out of scope (the workload
generators cannot be rewound); the error-injection campaign instead
validates the paper's criteria: detection latency inside the recovery
window and a live checkpoint at detection time, and unit tests verify
the reconstructed memory image matches a snapshot.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional

from repro.common.errors import RecoveryError
from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.config import SystemConfig
from repro.interconnect.message import acquire
from repro.obs.spans import K_CKPT

from repro.coherence.messages import Sn


class Checkpoint:
    """One checkpoint interval's undo log."""

    __slots__ = ("index", "start_cycle", "undo", "validated")

    def __init__(self, index: int, start_cycle: int):
        self.index = index
        self.start_cycle = start_cycle
        #: block -> architectural data at checkpoint time (first touch).
        self.undo: "OrderedDict[int, List[int]]" = OrderedDict()
        self.validated = False


class SafetyNet:
    """System-wide checkpointing service."""

    def __init__(
        self,
        scheduler: Scheduler,
        stats: StatsRegistry,
        config: SystemConfig,
        send=None,
    ):
        self.scheduler = scheduler
        self.stats = stats
        self.config = config.safetynet
        self.num_nodes = config.num_nodes
        self.network_config = config.network
        self._h_log_entries = stats.handle("sn.log_entries")
        self._values = stats.values
        self._send = send  # optional: callable(Message) for ckpt traffic
        self._checkpoints: Deque[Checkpoint] = deque()
        self._next_index = 0
        #: Flight recorder (None unless REPRO_OBS_SPANS; see obs.spans).
        self.spans = None
        self._span_track = 0
        self._open_checkpoint()
        scheduler.after(self.config.checkpoint_interval, self._advance)

    def attach_spans(self, spans) -> None:
        """Attach the flight recorder; checkpoints share one track."""
        self.spans = spans
        self._span_track = spans.track("safetynet")

    # -- hook subscriptions -------------------------------------------------
    def attach(self, hooks) -> None:
        hooks.on_block_write(self._on_block_write)

    def _on_block_write(self, node: int, block: int, old_data: list) -> None:
        ckpt = self._checkpoints[-1]
        if block not in ckpt.undo:
            ckpt.undo[block] = list(old_data)
            self._values[self._h_log_entries] += 1

    # -- checkpoint lifecycle -------------------------------------------------
    def _open_checkpoint(self) -> None:
        index = self._next_index
        self._checkpoints.append(Checkpoint(index, self.scheduler.now))
        self._next_index = index + 1
        self.stats.incr("sn.checkpoints")
        s = self.spans
        if s is not None and s.trace_infra:
            # K_CKPT instant: a=checkpoint index, b=live count.
            s.instant(
                0, self._span_track, K_CKPT, self.scheduler.now,
                index, len(self._checkpoints), 0,
            )

    def _advance(self) -> None:
        self._open_checkpoint()
        # Retire the oldest checkpoint once the window is exceeded.
        while len(self._checkpoints) > self.config.max_checkpoints:
            retired = self._checkpoints.popleft()
            retired.validated = True
            self.stats.incr("sn.checkpoints_retired")
        # Checkpoint-coordination traffic (validation round).
        if self._send is not None:
            for node in range(1, self.num_nodes):
                self._send(
                    acquire(
                        node,
                        0,
                        Sn.CKPT_VALIDATE,
                        size_bytes=self.network_config.control_message_bytes,
                    )
                )
        self.scheduler.after(self.config.checkpoint_interval, self._advance)

    # -- recovery interface -------------------------------------------------
    @property
    def oldest_live_cycle(self) -> int:
        """Start cycle of the oldest checkpoint we can still roll back to."""
        return self._checkpoints[0].start_cycle

    def can_recover(self, error_cycle: int) -> bool:
        """Is a checkpoint taken at or before ``error_cycle`` still live?

        This is the paper's validity criterion: the error must be
        detected before the last pre-error checkpoint expires.
        """
        return self.oldest_live_cycle <= error_cycle

    def recovery_point_for(self, error_cycle: int) -> Optional[Checkpoint]:
        """Latest live checkpoint taken at or before ``error_cycle``."""
        candidate = None
        for ckpt in self._checkpoints:
            if ckpt.start_cycle <= error_cycle:
                candidate = ckpt
            else:
                break
        return candidate

    def reconstruct_memory_image(
        self, current_image: Dict[int, List[int]], error_cycle: int
    ) -> Dict[int, List[int]]:
        """Roll ``current_image`` back to the recovery point's state.

        Applies undo logs newest-to-oldest down to (and including) the
        checkpoint covering ``error_cycle``.  Raises
        :class:`RecoveryError` if that checkpoint already expired.
        """
        point = self.recovery_point_for(error_cycle)
        if point is None:
            raise RecoveryError(
                f"no live checkpoint at or before cycle {error_cycle}"
            )
        image = {block: list(data) for block, data in current_image.items()}
        for ckpt in reversed(self._checkpoints):
            if ckpt.index < point.index:
                break
            for block, old in ckpt.undo.items():
                image[block] = list(old)
        self.stats.incr("sn.recoveries")
        return image

    @property
    def live_checkpoints(self) -> int:
        return len(self._checkpoints)
