"""System configuration.

One dataclass per subsystem, mirroring the paper's Tables 6 (memory
system) and 7 (processor).  Sizes are scaled down relative to the
paper's Simics/GEMS testbed so that full experiments run in seconds of
wall-clock time under the pure-Python simulator, but every *structural*
parameter of the paper (write-buffer depth, CET/MET entry widths,
priority-queue size, timestamp width, link bandwidths) is represented.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigError
from repro.consistency.models import ConsistencyModel


class ProtocolKind(enum.Enum):
    """Coherence protocol families evaluated in the paper."""

    DIRECTORY = "directory"  # MOSI directory, 2D-torus interconnect
    SNOOPING = "snooping"  # MOSI snooping, ordered bcast tree + torus data


@dataclass(frozen=True)
class CacheConfig:
    """A single cache level.

    Paper (Table 6): L1 128 KB 4-way 64 B lines; we default to a scaled
    L1 that keeps the same associativity and line size.
    """

    size_bytes: int = 16 * 1024
    associativity: int = 4
    hit_latency: int = 3
    ports: int = 2  # accesses accepted per cycle (shared with replay)

    def validate(self, block_size: int) -> None:
        if self.size_bytes % (block_size * self.associativity) != 0:
            raise ConfigError(
                "cache size must be a multiple of block_size * associativity"
            )
        if self.hit_latency < 1 or self.ports < 1:
            raise ConfigError("cache latency and ports must be >= 1")

    def num_sets(self, block_size: int) -> int:
        return self.size_bytes // (block_size * self.associativity)


@dataclass(frozen=True)
class MemoryConfig:
    """Main memory timing and protection."""

    latency: int = 80  # cycles from controller to DRAM and back
    ecc_enabled: bool = True  # paper requires ECC on caches and DRAM


@dataclass(frozen=True)
class NetworkConfig:
    """Interconnect parameters (paper Table 6).

    ``link_bandwidth_gbps`` of 2.5 with a 2 GHz clock gives 1.25
    bytes/cycle of link throughput; Figure 8 sweeps 1-3 GB/s.
    """

    link_bandwidth_gbps: float = 2.5
    cpu_freq_ghz: float = 2.0
    link_latency: int = 4  # per-hop propagation latency, cycles
    switch_latency: int = 1
    data_message_bytes: int = 72  # 64 B block + 8 B header
    control_message_bytes: int = 8
    inform_epoch_bytes: int = 16  # addr + type + 2 timestamps + 2 hashes

    @property
    def bytes_per_cycle(self) -> float:
        """Per-link throughput in bytes per processor cycle."""
        return self.link_bandwidth_gbps / self.cpu_freq_ghz

    def serialization_cycles(self, size_bytes: int) -> int:
        """Cycles a message of ``size_bytes`` occupies one link."""
        return max(1, round(size_bytes / self.bytes_per_cycle))


@dataclass(frozen=True)
class ProcessorConfig:
    """Core parameters (paper Table 7, scaled widths kept)."""

    fetch_width: int = 4
    commit_width: int = 4
    rob_size: int = 64
    lsq_size: int = 32
    write_buffer_size: int = 8  # paper: 8-entry write buffer
    execute_latency: int = 1  # non-memory op latency


@dataclass(frozen=True)
class DVMCConfig:
    """Checker configuration (paper Sections 4.1-4.3).

    The three enables correspond to the paper's SN / SN+DVCC / SN+DVUO /
    DVMC configurations in Figure 5.
    """

    enable_uniprocessor: bool = True
    enable_reordering: bool = True
    enable_coherence: bool = True

    verification_stage_latency: int = 1
    verification_width: int = 4  # ops replayed per cycle
    verification_cache_entries: int = 64  # VC: small (32-256 B in paper)
    load_value_queue_entries: int = 64

    priority_queue_entries: int = 256  # Inform-Epoch sorting queue
    #: Paper: ~1 injected membar per 100k cycles on full-length runs;
    #: scaled to our shorter simulations so detection latency stays
    #: well inside the SafetyNet recovery window.
    membar_injection_interval: int = 5_000
    scrub_fifo_entries: int = 128
    timestamp_bits: int = 16

    @property
    def any_enabled(self) -> bool:
        return (
            self.enable_uniprocessor
            or self.enable_reordering
            or self.enable_coherence
        )

    @classmethod
    def disabled(cls) -> "DVMCConfig":
        """No checkers (the paper's unprotected/SN-only configurations)."""
        return cls(
            enable_uniprocessor=False,
            enable_reordering=False,
            enable_coherence=False,
        )

    @classmethod
    def coherence_only(cls) -> "DVMCConfig":
        """SN+DVCC configuration of Figure 5."""
        return cls(enable_uniprocessor=False, enable_reordering=False)

    @classmethod
    def uniprocessor_only(cls) -> "DVMCConfig":
        """SN+DVUO configuration of Figure 5."""
        return cls(enable_coherence=False, enable_reordering=False)


@dataclass(frozen=True)
class SafetyNetConfig:
    """Backward-error-recovery parameters.

    A checkpoint is taken every ``checkpoint_interval`` cycles and up to
    ``max_checkpoints`` are kept live, giving a recovery window of about
    ``checkpoint_interval * max_checkpoints`` cycles (paper: ~100k).
    """

    enabled: bool = True
    checkpoint_interval: int = 12_500
    max_checkpoints: int = 8
    validation_latency: int = 2_000  # cycles before a checkpoint retires

    @property
    def recovery_window(self) -> int:
        return self.checkpoint_interval * self.max_checkpoints

    @classmethod
    def disabled(cls) -> "SafetyNetConfig":
        return cls(enabled=False)


@dataclass(frozen=True)
class SystemConfig:
    """Full machine description consumed by the SystemBuilder."""

    num_nodes: int = 8
    protocol: ProtocolKind = ProtocolKind.DIRECTORY
    model: ConsistencyModel = ConsistencyModel.TSO
    block_size: int = 64

    l1: CacheConfig = field(default_factory=CacheConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    processor: ProcessorConfig = field(default_factory=ProcessorConfig)
    dvmc: DVMCConfig = field(default_factory=DVMCConfig)
    safetynet: SafetyNetConfig = field(default_factory=SafetyNetConfig)

    seed: int = 1

    def validate(self) -> None:
        """Raise :class:`ConfigError` on inconsistent parameters."""
        if self.num_nodes < 1:
            raise ConfigError("need at least one node")
        if self.block_size & (self.block_size - 1):
            raise ConfigError("block_size must be a power of two")
        self.l1.validate(self.block_size)
        if self.dvmc.enable_uniprocessor and self.dvmc.verification_cache_entries < 1:
            raise ConfigError("verification cache must have entries")
        if self.dvmc.any_enabled and not self.safetynet.enabled:
            # DVMC detects; SafetyNet recovers.  Detection without
            # recovery is allowed but unusual, so it is not an error.
            pass

    # Convenience constructors used throughout benchmarks ---------------
    def with_model(self, model: ConsistencyModel) -> "SystemConfig":
        return replace(self, model=model)

    def with_protocol(self, protocol: ProtocolKind) -> "SystemConfig":
        return replace(self, protocol=protocol)

    def with_dvmc(self, dvmc: DVMCConfig) -> "SystemConfig":
        return replace(self, dvmc=dvmc)

    def with_safetynet(self, safetynet: SafetyNetConfig) -> "SystemConfig":
        return replace(self, safetynet=safetynet)

    def with_nodes(self, num_nodes: int) -> "SystemConfig":
        return replace(self, num_nodes=num_nodes)

    def with_seed(self, seed: int) -> "SystemConfig":
        return replace(self, seed=seed)

    def with_link_bandwidth(self, gbps: float) -> "SystemConfig":
        return replace(self, network=replace(self.network, link_bandwidth_gbps=gbps))

    @classmethod
    def unprotected(
        cls,
        model: ConsistencyModel = ConsistencyModel.TSO,
        protocol: ProtocolKind = ProtocolKind.DIRECTORY,
        **kwargs,
    ) -> "SystemConfig":
        """Baseline with no DVMC and no BER (the paper's "Base")."""
        return cls(
            model=model,
            protocol=protocol,
            dvmc=DVMCConfig.disabled(),
            safetynet=SafetyNetConfig.disabled(),
            **kwargs,
        )

    @classmethod
    def protected(
        cls,
        model: ConsistencyModel = ConsistencyModel.TSO,
        protocol: ProtocolKind = ProtocolKind.DIRECTORY,
        **kwargs,
    ) -> "SystemConfig":
        """Full DVMC + SafetyNet (the paper's "DVMC" bars)."""
        return cls(model=model, protocol=protocol, **kwargs)
