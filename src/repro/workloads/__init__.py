"""Synthetic commercial workloads and synchronisation primitives."""

from .primitives import UNLOCKED, LOCKED, barrier_wait, lock_acquire, lock_release
from .suite import (
    PROGRAMS,
    THIRTY_TWO_BIT_FRACTION,
    WORKLOAD_NAMES,
    lock_addr,
    make_program,
    private_addr,
    shared_addr,
)

__all__ = [
    "LOCKED",
    "PROGRAMS",
    "THIRTY_TWO_BIT_FRACTION",
    "UNLOCKED",
    "WORKLOAD_NAMES",
    "barrier_wait",
    "lock_acquire",
    "lock_addr",
    "lock_release",
    "make_program",
    "private_addr",
    "shared_addr",
]
