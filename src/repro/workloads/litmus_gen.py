"""Systematic litmus-test generation for differential fuzzing.

A litmus test is a tiny multi-threaded program skeleton — a few stores,
loads, fences and RMWs over two or three shared words — whose final
load values discriminate between consistency models.  This module
enumerates such skeletons exhaustively within a small shape budget,
canonicalises away thread/address symmetry so each behaviour is tested
once, and lowers specs to runnable per-core generator programs for
:func:`repro.system.builder.build_system`.

Ops are plain tuples so specs are hashable, comparable and
JSON-round-trippable (the fuzz corpus commits them as files):

* ``("st", a, v)``  — store ``v`` to address slot ``a``
* ``("ld", a)``     — load from slot ``a``
* ``("mb", mask)``  — ``Membar`` with the given instruction mask
* ``("sb",)``       — ``Stbar``
* ``("rmw", a, v)`` — atomic swap of ``v`` into slot ``a``

Every generated store/RMW writes a value unique within its spec
(``thread*8 + position + 1``), which keeps reads-from inference in the
offline oracle exact — no two writers of one word ever write the same
value, so a captured trace never needs the oracle's branching fallback.
"""

from __future__ import annotations

import itertools
import json
import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.common.types import MembarMask
from repro.processor.operations import (
    Atomic,
    Compute,
    Load,
    Membar,
    Stbar,
    Store,
)

#: Address slots map to distinct cache blocks in the shared region used
#: by the hand-written litmus tests (tests/integration/test_litmus.py).
LITMUS_BASE = 0x2_0000
BLOCK_STRIDE = 0x40

Op = Tuple
Thread = Tuple[Op, ...]


def slot_addr(slot: int) -> int:
    """Physical address of litmus address slot ``slot``."""
    return LITMUS_BASE + slot * BLOCK_STRIDE


@dataclass(frozen=True)
class LitmusSpec:
    """One canonical litmus skeleton."""

    name: str
    threads: Tuple[Thread, ...]

    # -- structure ----------------------------------------------------------
    def slots(self) -> List[int]:
        """Address slots the spec touches, ascending."""
        used = set()
        for thread in self.threads:
            for op in thread:
                if op[0] in ("st", "ld", "rmw"):
                    used.add(op[1])
        return sorted(used)

    def is_interesting(self) -> bool:
        """Worth running: some word is shared, something is written,
        and something is observed."""
        writers: Dict[int, set] = {}
        readers: Dict[int, set] = {}
        touched: Dict[int, set] = {}
        loads = 0
        for tid, thread in enumerate(self.threads):
            for op in thread:
                if op[0] in ("st", "rmw"):
                    writers.setdefault(op[1], set()).add(tid)
                if op[0] in ("ld", "rmw"):
                    readers.setdefault(op[1], set()).add(tid)
                    loads += 1
                if op[0] in ("st", "ld", "rmw"):
                    touched.setdefault(op[1], set()).add(tid)
        if not writers or not loads:
            return False
        shared = any(len(tids) > 1 for tids in touched.values())
        observed = any(slot in readers for slot in writers)
        return shared and observed

    # -- codec --------------------------------------------------------------
    _OPCODES = {"st": "st", "ld": "ld", "mb": "mb", "sb": "sb", "rmw": "rmw"}

    def encode(self) -> str:
        """Compact one-line form, e.g. ``st0.1,ld1;st1.9,ld0``."""
        parts = []
        for thread in self.threads:
            ops = []
            for op in thread:
                if op[0] == "st" or op[0] == "rmw":
                    ops.append(f"{op[0]}{op[1]}.{op[2]}")
                elif op[0] == "ld":
                    ops.append(f"ld{op[1]}")
                elif op[0] == "mb":
                    ops.append(f"mb{op[1]:x}")
                else:
                    ops.append("sb")
            parts.append(",".join(ops))
        return ";".join(parts)

    @classmethod
    def decode(cls, text: str, name: Optional[str] = None) -> "LitmusSpec":
        """Inverse of :meth:`encode`."""
        threads = []
        for part in text.strip().split(";"):
            ops: List[Op] = []
            for token in part.split(","):
                token = token.strip()
                if token.startswith("st") or token.startswith("rmw"):
                    kind = "st" if token.startswith("st") else "rmw"
                    slot, value = token[len(kind) :].split(".")
                    ops.append((kind, int(slot), int(value)))
                elif token.startswith("ld"):
                    ops.append(("ld", int(token[2:])))
                elif token.startswith("mb"):
                    ops.append(("mb", int(token[2:], 16)))
                elif token == "sb":
                    ops.append(("sb",))
                else:
                    raise ValueError(f"bad litmus op token: {token!r}")
            threads.append(tuple(ops))
        spec = cls(name or "", tuple(threads))
        return spec if name else cls(spec.encode(), spec.threads)

    def to_json(self) -> Dict:
        return {"name": self.name, "litmus": self.encode()}

    @classmethod
    def from_json(cls, data: Dict) -> "LitmusSpec":
        return cls.decode(data["litmus"], name=data.get("name") or None)

    # -- lowering -----------------------------------------------------------
    def programs(
        self,
        out: Optional[Dict[Tuple[int, int], int]] = None,
        delays: Optional[Sequence[int]] = None,
        warm_delay: int = 300,
    ) -> List:
        """Per-core generators (length = thread count) for build_system.

        Each thread warms every slot it touches into the caches (the
        idiom the hand-written litmus tests use: racing accesses then
        hit locally, opening the reordering windows), optionally idles
        ``delays[tid]`` cycles to skew the race, then runs its ops.
        Load results land in ``out[(thread, op_index)]``.
        """

        def make(tid: int, thread: Thread):
            def program():
                mine = [
                    op[1] for op in thread if op[0] in ("st", "ld", "rmw")
                ]
                # Warm own slots first (ownership), then the rest.
                for slot in dict.fromkeys(mine):
                    yield Load(slot_addr(slot))
                yield Compute(warm_delay)
                if delays and delays[tid]:
                    yield Compute(delays[tid])
                for pos, op in enumerate(thread):
                    if op[0] == "st":
                        yield Store(slot_addr(op[1]), op[2])
                    elif op[0] == "ld":
                        value = yield Load(slot_addr(op[1]))
                        if out is not None:
                            out[(tid, pos)] = value
                    elif op[0] == "mb":
                        yield Membar(MembarMask(op[1]))
                    elif op[0] == "sb":
                        yield Stbar()
                    else:
                        value = yield Atomic(slot_addr(op[1]), op[2])
                        if out is not None:
                            out[(tid, pos)] = value

            return program()

        return [make(tid, thread) for tid, thread in enumerate(self.threads)]


# -- canonicalisation -------------------------------------------------------


def _relabel(thread: Thread, addr_map: Dict[int, int]) -> Thread:
    out = []
    for op in thread:
        if op[0] in ("st", "ld", "rmw"):
            out.append((op[0], addr_map[op[1]], *op[2:]))
        else:
            out.append(op)
    return tuple(out)


def canonical_threads(threads: Sequence[Thread]) -> Tuple[Thread, ...]:
    """Least representative under thread order and address relabeling.

    Store values are part of the shape deliberately: generated values
    are positional (``thread*8 + pos + 1``), so after permuting threads
    the values are re-derived positionally, making two symmetric
    variants encode identically.
    """
    slots = sorted(
        {op[1] for t in threads for op in t if op[0] in ("st", "ld", "rmw")}
    )
    best = None
    for order in itertools.permutations(range(len(threads))):
        permuted = [threads[i] for i in order]
        renumbered = [
            tuple(
                (op[0], op[1], tid * 8 + pos + 1)
                if op[0] in ("st", "rmw")
                else op
                for pos, op in enumerate(thread)
            )
            for tid, thread in enumerate(permuted)
        ]
        for mapping in itertools.permutations(range(len(slots))):
            addr_map = dict(zip(slots, mapping))
            candidate = tuple(_relabel(t, addr_map) for t in renumbered)
            if best is None or candidate < best:
                best = candidate
    return best


# -- enumeration ------------------------------------------------------------

#: Fence alphabet for systematic enumeration: the full barrier and the
#: single-ordering barriers the models disagree about.
FENCES = (
    ("mb", int(MembarMask.ALL)),
    ("mb", int(MembarMask.STORELOAD)),
    ("sb",),
)


def _op_alphabet(slots: int, fences: bool, rmw: bool = False) -> List[Op]:
    ops: List[Op] = []
    for slot in range(slots):
        ops.append(("st", slot, 0))  # value assigned positionally later
        ops.append(("ld", slot))
        if rmw:
            ops.append(("rmw", slot, 0))
    if fences:
        ops.extend(FENCES)
    return ops


def enumerate_specs(
    threads: int = 2,
    ops_per_thread: int = 2,
    slots: int = 2,
    fences: bool = True,
) -> Iterator[LitmusSpec]:
    """All canonical, interesting skeletons of the given shape.

    The raw space is ``|alphabet| ** (threads * ops_per_thread)``;
    canonicalisation and the interestingness filter cut it to the
    behaviourally distinct racy cores (e.g. 2x2 over 2 slots with
    fences: 1296 raw shapes -> a few hundred canonical specs, SB, MP
    and LB among them).
    """
    alphabet = _op_alphabet(slots, fences)
    seen = set()
    for shape in itertools.product(
        itertools.product(alphabet, repeat=ops_per_thread), repeat=threads
    ):
        canon = canonical_threads(shape)
        if canon in seen:
            continue
        seen.add(canon)
        spec = LitmusSpec("", canon)
        if not spec.is_interesting():
            continue
        yield LitmusSpec(spec.encode(), canon)


def generate(
    count: int,
    seed: int = 0,
    max_threads: int = 4,
) -> List[LitmusSpec]:
    """Deterministic corpus of ``count`` distinct canonical specs.

    Fills from the exhaustive two-thread families first (every classic
    two-thread idiom appears there), then samples wider/deeper shapes
    (3-4 threads, 3 ops, 3 slots) with a seeded generator until the
    quota is met.
    """
    corpus: List[LitmusSpec] = []
    seen = set()

    def take(spec: LitmusSpec, limit: int) -> bool:
        if spec.threads in seen:
            return False
        seen.add(spec.threads)
        corpus.append(spec)
        return len(corpus) >= limit

    # A slice of the quota goes to sampled wide/deep shapes so the
    # corpus always exercises 3-4 thread interactions (IRIW-like).
    wide_quota = min(count, max(count // 4, min(count, 8)))
    rng = random.Random(seed)
    shapes = [(3, 2, 2), (3, 3, 3), (2, 3, 3)]
    if max_threads >= 4:
        shapes.append((4, 2, 2))
    while len(corpus) < wide_quota:
        n_threads, n_ops, n_slots = rng.choice(shapes)
        alphabet = _op_alphabet(n_slots, fences=True, rmw=True)
        shape = tuple(
            tuple(rng.choice(alphabet) for _ in range(n_ops))
            for _ in range(n_threads)
        )
        canon = canonical_threads(shape)
        spec = LitmusSpec("", canon)
        if spec.is_interesting():
            take(LitmusSpec(spec.encode(), canon), wide_quota)

    for spec in enumerate_specs(threads=2, ops_per_thread=2, slots=2):
        if take(spec, count):
            return corpus
    for spec in enumerate_specs(
        threads=2, ops_per_thread=3, slots=2, fences=True
    ):
        if take(spec, count):
            return corpus
    while len(corpus) < count:
        n_threads, n_ops, n_slots = rng.choice(shapes)
        alphabet = _op_alphabet(n_slots, fences=True, rmw=True)
        shape = tuple(
            tuple(rng.choice(alphabet) for _ in range(n_ops))
            for _ in range(n_threads)
        )
        canon = canonical_threads(shape)
        spec = LitmusSpec("", canon)
        if spec.is_interesting():
            take(LitmusSpec(spec.encode(), canon), count)
    return corpus


# -- curated classics -------------------------------------------------------

_MB_ALL = int(MembarMask.ALL)
_MB_SL = int(MembarMask.STORELOAD)
_MB_LL = int(MembarMask.LOADLOAD)


def _classic(name: str, text: str) -> LitmusSpec:
    return LitmusSpec.decode(text, name=name)


#: Named skeletons every fuzz run exercises regardless of sampling.
CLASSICS: Tuple[LitmusSpec, ...] = (
    _classic("SB", "st0.1,ld1;st1.9,ld0"),
    _classic("SB+mbSL", f"st0.1,mb{_MB_SL:x},ld1;st1.9,mb{_MB_SL:x},ld0"),
    _classic("MP", "st0.1,st1.2;ld1,ld0"),
    _classic("MP+sb+mbLL", f"st0.1,sb,st1.2;ld1,mb{_MB_LL:x},ld0"),
    _classic("LB", "ld0,st1.2;ld1,st0.10"),
    _classic("CoRR", "st0.1;ld0,ld0"),
    _classic("2+2W", "st0.1,st1.2;st1.9,st0.10,ld0,ld1"),
    _classic("RMW-pair", "rmw0.1;rmw0.9,ld0"),
    _classic(
        "IRIW+mb",
        f"st0.1;st1.9;ld0,mb{_MB_ALL:x},ld1;ld1,mb{_MB_ALL:x},ld0",
    ),
    _classic("S+fence", f"st0.1,mb{_MB_ALL:x},st1.2;ld1,ld0"),
)


def classics() -> List[LitmusSpec]:
    """Fresh copies of the curated named specs."""
    return list(CLASSICS)


def dump_specs(specs: Iterable[LitmusSpec], path: str) -> int:
    """Write specs as JSON Lines; returns the number written."""
    count = 0
    with open(path, "w") as fh:
        for spec in specs:
            fh.write(json.dumps(spec.to_json(), sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def load_specs(path: str) -> List[LitmusSpec]:
    """Read a JSONL spec file written by :func:`dump_specs`."""
    out = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(LitmusSpec.from_json(json.loads(line)))
    return out
