"""Synthetic analogues of the Wisconsin Commercial Workload Suite.

The paper evaluates DVMC on apache, oltp (DB2/TPC-C-like), jbb
(SPECjbb), slashcode, and barnes (paper Table 8).  Real binaries and
Simics disk images are unavailable, so each generator reproduces the
*sharing and synchronisation profile* that drives the paper's results:

=========  ==========================================================
apache     read-mostly shared document cache, per-request private
           work, shared hit-counter updates under a lock
oltp       per-transaction row locking over a moderately contended
           lock table, read-modify-write bursts on row data
jbb        object churn in per-thread heaps (low sharing, store
           heavy), occasional global statistics updates
slash      few hot locks with short critical sections — the lock
           handoff pattern behind slashcode's high variance
barnes     barrier-separated phases: read neighbours' bodies,
           write own region (scientific sharing)
=========  ==========================================================

A fraction of each workload's dynamic operations runs in 32-bit TSO
mode (paper Table 8's "32-bit Ops" column): under PSO/RMO those
sections issue the extra Stbars/Membars that TSO-coded SPARC v8 code
relies on, modelled here with explicit barrier insertion.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator

from repro.common.rng import SplitRng
from repro.common.types import BLOCK_SIZE
from repro.consistency.models import ConsistencyModel
from repro.processor.operations import (
    Atomic,
    Batch,
    Compute,
    Load,
    SetModel,
    Store,
)

from .primitives import barrier_wait, lock_acquire, lock_release

#: Address-space layout (word addresses; regions block-disjoint).
LOCK_BASE = 0x1_0000
SHARED_BASE = 0x2_0000
PRIVATE_BASE = 0x10_0000
PRIVATE_STRIDE = 0x1_0000

#: Fraction of operations executed as 32-bit TSO code (paper Table 8).
THIRTY_TWO_BIT_FRACTION = {
    "apache": 0.33,
    "oltp": 0.29,
    "jbb": 0.02,
    "slash": 0.27,
    "barnes": 0.00,
}


def lock_addr(i: int) -> int:
    """Address of lock ``i`` (one lock per cache block)."""
    return LOCK_BASE + i * BLOCK_SIZE


def shared_addr(i: int) -> int:
    """Address of shared word ``i``."""
    return SHARED_BASE + i * 4


def private_addr(node: int, i: int) -> int:
    """Address of word ``i`` in ``node``'s private region."""
    return PRIVATE_BASE + node * PRIVATE_STRIDE + i * 4


def _enter_32bit(model: ConsistencyModel) -> Iterator:
    """Enter a 32-bit (SPARC v8, TSO-coded) code section.

    The paper's benchmarks contain 32-bit code written for TSO; a
    system configured for PSO or RMO must switch to TSO while executing
    it (paper Section 5, Table 8).  The switch drains the pipeline.
    """
    if model in (ConsistencyModel.PSO, ConsistencyModel.RMO):
        yield SetModel(ConsistencyModel.TSO)


def _exit_32bit(model: ConsistencyModel) -> Iterator:
    """Return to the configured model after a 32-bit section."""
    if model in (ConsistencyModel.PSO, ConsistencyModel.RMO):
        yield SetModel(model)


def apache(node: int, num_nodes: int, model: ConsistencyModel, rng: SplitRng, ops: int):
    """Web serving: read-mostly document cache + shared hit counters."""
    docs = 256  # shared read-mostly words
    stats_lock = lock_addr(0)
    served = 0
    while served < ops:
        # Parse request: private scratch writes.
        for i in range(3):
            yield Store(private_addr(node, i), served + i)
        # Look up the document: a burst of shared reads.
        doc = rng.randrange(docs)
        yield Batch([Load(shared_addr(doc * 4 + k)) for k in range(4)])
        yield Compute(rng.randint(4, 12))
        served += 9
        # Occasionally bump the shared hit counter under a lock.
        if rng.random() < 0.08:
            yield from _enter_32bit(model)
            yield from lock_acquire(stats_lock, ConsistencyModel.TSO)
            hits = yield Load(shared_addr(1024))
            yield Store(shared_addr(1024), (hits + 1) & 0xFFFFFFFF)
            yield from lock_release(stats_lock, ConsistencyModel.TSO)
            yield from _exit_32bit(model)
            served += 4


def oltp(node: int, num_nodes: int, model: ConsistencyModel, rng: SplitRng, ops: int):
    """OLTP: row locks, read-modify-write transactions."""
    rows = 48
    fields = 6
    done = 0
    while done < ops:
        row = rng.randrange(rows)
        row_lock = lock_addr(8 + row)
        thirty_two_bit = rng.random() < THIRTY_TWO_BIT_FRACTION["oltp"]
        section_model = ConsistencyModel.TSO if thirty_two_bit else model
        if thirty_two_bit:
            yield from _enter_32bit(model)
        yield from lock_acquire(row_lock, section_model)
        base = 2048 + row * fields
        balance = yield Load(shared_addr(base))
        yield Compute(rng.randint(2, 8))
        for f in range(1, fields):
            yield Store(shared_addr(base + f), (balance + f) & 0xFFFFFFFF)
        yield Store(shared_addr(base), (balance + 1) & 0xFFFFFFFF)
        yield from lock_release(row_lock, section_model)
        if thirty_two_bit:
            yield from _exit_32bit(model)
        # Private log append.
        for i in range(2):
            yield Store(private_addr(node, 64 + (done + i) % 256), done)
        done += fields + 5


def jbb(node: int, num_nodes: int, model: ConsistencyModel, rng: SplitRng, ops: int):
    """SPECjbb-like: per-warehouse object churn, store heavy."""
    heap_words = 512
    done = 0
    cursor = 0
    while done < ops:
        # Allocate-and-initialise an "object": a run of private stores.
        size = rng.randint(4, 10)
        for i in range(size):
            yield Store(private_addr(node, (cursor + i) % heap_words), done + i)
        cursor = (cursor + size) % heap_words
        # Touch a few fields of older objects.
        reads = [
            Load(private_addr(node, rng.randrange(heap_words))) for _ in range(3)
        ]
        yield Batch(reads)
        yield Compute(rng.randint(2, 6))
        done += size + 3
        # Rare shared statistics update.
        if rng.random() < 0.02:
            old = yield Atomic(shared_addr(4096), done & 0xFFFFFFFF)
            done += 1


def slash(node: int, num_nodes: int, model: ConsistencyModel, rng: SplitRng, ops: int):
    """Slashcode: few hot locks, short critical sections, handoffs."""
    hot_locks = 2
    done = 0
    while done < ops:
        lock = lock_addr(64 + rng.randrange(hot_locks))
        thirty_two_bit = rng.random() < THIRTY_TWO_BIT_FRACTION["slash"]
        section_model = ConsistencyModel.TSO if thirty_two_bit else model
        if thirty_two_bit:
            yield from _enter_32bit(model)
        yield from lock_acquire(lock, section_model)
        # Short critical section on data guarded by the hot lock.
        counter = yield Load(shared_addr(5120))
        yield Store(shared_addr(5120), (counter + 1) & 0xFFFFFFFF)
        yield Store(shared_addr(5124), node)
        yield from lock_release(lock, section_model)
        if thirty_two_bit:
            yield from _exit_32bit(model)
        yield Compute(rng.randint(1, 6))
        done += 5


def barnes(node: int, num_nodes: int, model: ConsistencyModel, rng: SplitRng, ops: int):
    """Barnes-Hut-like: barrier-separated compute/communicate phases."""
    bodies_per_node = 16
    counter = shared_addr(6144)
    sense = shared_addr(6160)
    bar_lock = lock_addr(96)
    local_sense = 1
    done = 0
    phase = 0
    while done < ops:
        # Read neighbour bodies (shared read sharing).
        neighbour = (node + 1 + phase % max(1, num_nodes - 1)) % num_nodes
        reads = [
            Load(shared_addr(7000 + neighbour * bodies_per_node + i))
            for i in range(4)
        ]
        yield Batch(reads)
        yield Compute(rng.randint(8, 20))
        # Update own bodies.
        for i in range(4):
            yield Store(shared_addr(7000 + node * bodies_per_node + i), done + i)
        done += 8
        phase += 1
        # Barrier between phases.
        local_sense = yield from barrier_wait(
            counter, sense, bar_lock, num_nodes, local_sense, model
        )
        done += 4


PROGRAMS: Dict[str, Callable] = {
    "apache": apache,
    "oltp": oltp,
    "jbb": jbb,
    "slash": slash,
    "barnes": barnes,
}

WORKLOAD_NAMES = tuple(PROGRAMS)


def make_program(
    name: str,
    node: int,
    num_nodes: int,
    model: ConsistencyModel,
    seed: int,
    ops: int,
):
    """Instantiate workload ``name`` for one core.

    ``seed`` perturbs compute delays and access patterns — the paper
    runs each configuration ten times with small pseudo-random
    perturbations and reports mean and standard deviation.
    """
    if name not in PROGRAMS:
        raise KeyError(f"unknown workload {name!r}; have {sorted(PROGRAMS)}")
    rng = SplitRng(seed).child(f"{name}.{node}")
    return PROGRAMS[name](node, num_nodes, model, rng, ops)
