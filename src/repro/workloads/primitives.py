"""Synchronisation primitives built from the core's operation set.

Locks are test-and-test-and-set spin locks over atomic swap (SPARC
``swap``), barriers are sense-reversing counters — the idioms of the
Wisconsin commercial workloads.  All primitives are *sub-generators*:
workload programs invoke them with ``yield from``.

Under PSO/RMO the primitives issue the barriers that real SPARC v9
synchronisation code requires (Membar #StoreStore before the releasing
store, #LoadLoad|#LoadStore after acquiring), so workloads are correct
under every model — and the Allowable Reordering checker sees real
Membar traffic.

Wakeup-plane boundary: the spin loops below are *architectural* — every
retry is a memory operation the simulated program really issues, so
they are identical in wakeup and poll kernel modes and must never park
on a :class:`~repro.common.waitsets.WaitSet` (parking them would change
the machine being simulated, not just the simulator's event count).
What the wake-on-change kernel does eliminate is the *simulator-level*
retry polls underneath them: a spinning load that blocks in the core
(cache miss, ordering gate) parks and is re-woken by the owning cache
controller's transition notifies, so a lock release or sense flip
reaches spinning cores through the coherence protocol's
invalidate/install path with no 2-cycle re-post traffic.
"""

from __future__ import annotations

from repro.common.types import MembarMask
from repro.consistency.models import ConsistencyModel
from repro.processor.operations import Atomic, Load, Membar, Store

#: Lock word values.
UNLOCKED = 0
LOCKED = 1


def lock_acquire(addr: int, model: ConsistencyModel):
    """Test-and-test-and-set acquire.  Yields until the lock is held."""
    while True:
        old = yield Atomic(addr, LOCKED)
        if old == UNLOCKED:
            break
        # Spin on plain loads to avoid hammering the lock with GetMs.
        # (No spin bound: under injected faults a lock can legitimately
        # hang forever; the simulation's cycle bound ends the run.)
        while (yield Load(addr)) != UNLOCKED:
            pass
    if model in (ConsistencyModel.PSO, ConsistencyModel.RMO):
        # Keep critical-section accesses after the acquire.
        yield Membar(MembarMask.LOADLOAD | MembarMask.LOADSTORE)


def lock_release(addr: int, model: ConsistencyModel):
    """Release by storing UNLOCKED, fenced as the model requires."""
    if model in (ConsistencyModel.PSO, ConsistencyModel.RMO):
        # Critical-section stores must drain before the releasing store.
        yield Membar(MembarMask.STORESTORE | MembarMask.LOADSTORE)
    yield Store(addr, UNLOCKED)


def barrier_wait(
    counter_addr: int,
    sense_addr: int,
    lock_addr: int,
    num_threads: int,
    local_sense: int,
    model: ConsistencyModel,
):
    """Sense-reversing centralised barrier.

    Returns the new local sense to use for the next episode.  The last
    arriving thread resets the counter and flips the shared sense.
    """
    yield from lock_acquire(lock_addr, model)
    count = yield Load(counter_addr)
    count += 1
    if count == num_threads:
        yield Store(counter_addr, 0)
        if model in (ConsistencyModel.PSO, ConsistencyModel.RMO):
            yield Membar(MembarMask.STORESTORE)
        yield Store(sense_addr, local_sense)
        yield from lock_release(lock_addr, model)
    else:
        yield Store(counter_addr, count)
        yield from lock_release(lock_addr, model)
        while (yield Load(sense_addr)) != local_sense:
            pass
    return 1 - local_sense
