"""Ordering tables: the paper's specification of consistency models.

A consistency model is specified as a table indexed by (first operation
type, second operation type).  ``True`` in cell (OPx, OPy) means: every
operation of type OPx that precedes an operation Y of type OPy in
program order must also perform before Y (paper Section 2.2).

SPARC v9 Membars carry a 4-bit mask (#LL, #LS, #SL, #SS); table entries
in Membar rows/columns hold masks rather than booleans, and a boolean
is obtained by ANDing the instruction's mask with the table's mask
(paper Section 4).  We represent every cell as a
:class:`~repro.common.types.MembarMask`; plain ``True`` cells use
``MembarMask.ALL`` and ``False`` cells use ``MembarMask.NONE``, which
makes the AND rule uniform.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from repro.common.types import MembarMask, OpType

Cell = MembarMask
_TableKey = Tuple[OpType, OpType]
_RoleKey = Tuple[OpType, MembarMask]


class OrderingTable:
    """Immutable ordering table with membar-mask cells.

    Args:
        name: display name of the consistency model.
        entries: mapping ``(first, second) -> bool | MembarMask``.
            Missing cells default to unordered (``MembarMask.NONE``).
        op_types: operation types labelling rows/columns.  Atomics are
            implicit (they take both LOAD and STORE constraints).
    """

    def __init__(
        self,
        name: str,
        entries: Mapping[_TableKey, object],
        op_types: Iterable[OpType] = (OpType.LOAD, OpType.STORE),
    ):
        self.name = name
        self.op_types: Tuple[OpType, ...] = tuple(op_types)
        table: Dict[_TableKey, Cell] = {}
        for (first, second), value in entries.items():
            if isinstance(value, bool):
                cell = MembarMask.ALL if value else MembarMask.NONE
            elif isinstance(value, MembarMask):
                cell = value
            else:
                raise TypeError(f"cell ({first}, {second}) must be bool or MembarMask")
            table[(first, second)] = cell
        self._table = table
        #: (first, second, first_mask, second_mask) -> bool.  The table
        #: is immutable and the argument space is tiny (op types ×
        #: membar masks), but ``ordered`` runs for every in-flight
        #: operation pair on the core's issue/perform path, so the
        #: mask-AND loop is worth memoising.
        self._ordered_memo: Dict[Tuple, bool] = {}
        #: Precompiled role matrix (see :meth:`op_role`).  Keys are
        #: registered lazily; rows are mutable lists that grow in place
        #: when a new role appears, so row references handed out earlier
        #: stay valid.
        self._roles: Dict[_RoleKey, Tuple[List[bool], int]] = {}
        self._role_keys: List[_RoleKey] = []

    def cell(self, first: OpType, second: OpType) -> Cell:
        """Raw mask stored for (first, second); NONE if absent."""
        return self._table.get((first, second), MembarMask.NONE)

    def ordered(
        self,
        first: OpType,
        second: OpType,
        first_mask: MembarMask = MembarMask.ALL,
        second_mask: MembarMask = MembarMask.ALL,
    ) -> bool:
        """Is there an ordering constraint between the operation types?

        ``first_mask``/``second_mask`` are the instruction masks when the
        corresponding operation is a Membar (otherwise leave ALL).  The
        constraint exists when ``table_mask & first_mask & second_mask``
        is non-zero, generalising the paper's AND rule.  Atomics are
        expanded to their constituent LOAD and STORE types: an ordering
        exists if any constituent pair is ordered.
        """
        key = (first, second, first_mask, second_mask)
        cached = self._ordered_memo.get(key)
        if cached is not None:
            return cached
        result = False
        for f in first.access_types() if first is OpType.ATOMIC else (first,):
            for s in second.access_types() if second is OpType.ATOMIC else (second,):
                mask = self._table.get((f, s), MembarMask.NONE)
                if mask & first_mask & second_mask:
                    result = True
                    break
            if result:
                break
        self._ordered_memo[key] = result
        return result

    def op_role(self, op_type: OpType, mask: MembarMask) -> Tuple[List[bool], int]:
        """Precompiled fast-path view of one operation's ordering rules.

        Returns ``(row, index)`` for an operation of ``op_type`` whose
        instruction mask is ``mask`` (``ALL`` for everything but
        Membars).  ``row[other_index]`` is :meth:`ordered` of this
        operation *before* the other — a plain list lookup, so the
        core's per-poll ordering gate does no enum hashing or mask
        arithmetic.  Atomics are already expanded inside the cells.
        Roles register lazily; registering one extends every existing
        row in place, keeping previously returned rows valid.
        """
        role = self._roles.get((op_type, mask))
        if role is None:
            role = self._register_role(op_type, mask)
        return role

    def _register_role(self, op_type: OpType, mask: MembarMask) -> Tuple[List[bool], int]:
        key = (op_type, mask)
        index = len(self._role_keys)
        self._role_keys.append(key)
        # New column on every existing row (including rows already held
        # by in-flight operations).
        for (other_type, other_mask), (row, _i) in self._roles.items():
            row.append(
                self.ordered(
                    other_type, op_type, first_mask=other_mask, second_mask=mask
                )
            )
        new_row = [
            self.ordered(op_type, second_type, first_mask=mask, second_mask=second_mask)
            for second_type, second_mask in self._role_keys
        ]
        role = (new_row, index)
        self._roles[key] = role
        return role

    def constrains_any(self, first: OpType) -> bool:
        """True if type ``first`` is ordered before *some* type."""
        return any(self.ordered(first, second) for second in self.op_types)

    def predecessors_of(self, second: OpType) -> Tuple[OpType, ...]:
        """All op types OPx with a constraint OPx < ``second``.

        Used by the Allowable Reordering checker's lost-operation scan:
        when an operation of type OPy performs, outstanding older
        operations of any predecessor type indicate a lost operation.
        """
        return tuple(
            first for first in self.op_types if self.ordered(first, second)
        )

    def as_bool_grid(self) -> Dict[_TableKey, bool]:
        """Boolean view over access types only (for table printing)."""
        return {
            (f, s): self.ordered(f, s)
            for f in self.op_types
            for s in self.op_types
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OrderingTable({self.name!r})"
