"""Memory consistency models as ordering tables (paper Section 2.2)."""

from .models import ConsistencyModel
from .ordering_table import OrderingTable
from .tables import (
    PC_TABLE,
    PSO_TABLE,
    RMO_TABLE,
    SC_TABLE,
    TABLES,
    TSO_TABLE,
    format_table,
    table_for,
)

__all__ = [
    "ConsistencyModel",
    "OrderingTable",
    "PC_TABLE",
    "PSO_TABLE",
    "RMO_TABLE",
    "SC_TABLE",
    "TSO_TABLE",
    "TABLES",
    "format_table",
    "table_for",
]
