"""Memory consistency model identifiers.

SPARC v9 supports runtime switching between TSO, PSO and RMO; the
paper's baseline also implements SC.  DVMC handles all four via
ordering tables (paper Tables 2-4; SC's table is all-``true``).
"""

from __future__ import annotations

import enum


class ConsistencyModel(enum.Enum):
    """The four consistency models evaluated in the paper."""

    SC = "SC"  # Sequential Consistency
    TSO = "TSO"  # Total Store Order (variant of Processor Consistency)
    PSO = "PSO"  # Partial Store Order
    RMO = "RMO"  # Relaxed Memory Order (Weak Consistency variant)

    # Singleton members: identity hash (C dispatch) replaces the
    # Python-level Enum.__hash__ on plan/ordering-table lookups.
    __hash__ = object.__hash__

    @property
    def allows_store_load_reordering(self) -> bool:
        """True if a store may perform after a later load (write buffer)."""
        return self is not ConsistencyModel.SC

    @property
    def allows_store_store_reordering(self) -> bool:
        """True if stores may perform out of program order."""
        return self in (ConsistencyModel.PSO, ConsistencyModel.RMO)

    @property
    def allows_load_reordering(self) -> bool:
        """True if loads may perform out of program order non-speculatively."""
        return self is ConsistencyModel.RMO

    @property
    def requires_load_order(self) -> bool:
        """True if loads must appear to perform in program order.

        In these models the implementation speculatively reorders loads
        and squashes on mis-speculation; loads are considered to perform
        only at the verification stage (paper Section 4.1).
        """
        return not self.allows_load_reordering
