"""Concrete ordering tables for SC, TSO, PSO and RMO.

These transcribe the paper's Tables 2-4 (plus the all-ordered SC
table).  All four tables also carry Membar rows/columns: SPARC v9's
masked Membar instruction is valid under every model, and the
Allowable Reordering checker evaluates Membar cells by ANDing the
instruction mask with the table mask (paper Section 4).

PSO's ``Stbar`` provides Store-Store ordering and is equivalent to
``Membar #SS`` (paper Table 3 note); it appears as its own operation
type exactly as in the paper.
"""

from __future__ import annotations

from typing import Dict

from repro.common.types import MembarMask, OpType

from .models import ConsistencyModel
from .ordering_table import OrderingTable

_LL = MembarMask.LOADLOAD
_LS = MembarMask.LOADSTORE
_SL = MembarMask.STORELOAD
_SS = MembarMask.STORESTORE
_ALL = MembarMask.ALL

# Membar cells shared by every table: a preceding load must perform
# before a membar whose mask orders loads against anything (#LL or
# #LS); symmetrically for the other three cells.
_MEMBAR_CELLS = {
    (OpType.LOAD, OpType.MEMBAR): _LL | _LS,
    (OpType.STORE, OpType.MEMBAR): _SL | _SS,
    (OpType.MEMBAR, OpType.LOAD): _LL | _SL,
    (OpType.MEMBAR, OpType.STORE): _LS | _SS,
    (OpType.MEMBAR, OpType.MEMBAR): _ALL,
}

#: Sequential Consistency: every pair of memory operations is ordered.
SC_TABLE = OrderingTable(
    "SC",
    {
        (OpType.LOAD, OpType.LOAD): True,
        (OpType.LOAD, OpType.STORE): True,
        (OpType.STORE, OpType.LOAD): True,
        (OpType.STORE, OpType.STORE): True,
        **_MEMBAR_CELLS,
    },
    op_types=(OpType.LOAD, OpType.STORE, OpType.MEMBAR),
)

#: Total Store Order (paper Table 2): only Store->Load is relaxed.
TSO_TABLE = OrderingTable(
    "TSO",
    {
        (OpType.LOAD, OpType.LOAD): True,
        (OpType.LOAD, OpType.STORE): True,
        (OpType.STORE, OpType.LOAD): False,
        (OpType.STORE, OpType.STORE): True,
        **_MEMBAR_CELLS,
    },
    op_types=(OpType.LOAD, OpType.STORE, OpType.MEMBAR),
)

#: Partial Store Order (paper Table 3): Store->Store also relaxed;
#: Stbar restores Store-Store ordering.
PSO_TABLE = OrderingTable(
    "PSO",
    {
        (OpType.LOAD, OpType.LOAD): True,
        (OpType.LOAD, OpType.STORE): True,
        (OpType.LOAD, OpType.STBAR): False,
        (OpType.STORE, OpType.LOAD): False,
        (OpType.STORE, OpType.STORE): False,
        (OpType.STORE, OpType.STBAR): True,
        (OpType.STBAR, OpType.LOAD): False,
        (OpType.STBAR, OpType.STORE): True,
        (OpType.STBAR, OpType.STBAR): False,
        **_MEMBAR_CELLS,
    },
    op_types=(OpType.LOAD, OpType.STORE, OpType.STBAR, OpType.MEMBAR),
)

#: Relaxed Memory Order (paper Table 4): nothing ordered except via
#: Membar masks.
RMO_TABLE = OrderingTable(
    "RMO",
    {
        (OpType.LOAD, OpType.LOAD): False,
        (OpType.LOAD, OpType.STORE): False,
        (OpType.STORE, OpType.LOAD): False,
        (OpType.STORE, OpType.STORE): False,
        **_MEMBAR_CELLS,
    },
    op_types=(OpType.LOAD, OpType.STORE, OpType.MEMBAR),
)

#: Processor Consistency (paper Table 1) — shown for completeness; TSO
#: is the PC variant the implementation runs.
PC_TABLE = OrderingTable(
    "PC",
    {
        (OpType.LOAD, OpType.LOAD): True,
        (OpType.LOAD, OpType.STORE): True,
        (OpType.STORE, OpType.LOAD): False,
        (OpType.STORE, OpType.STORE): True,
    },
)

TABLES: Dict[ConsistencyModel, OrderingTable] = {
    ConsistencyModel.SC: SC_TABLE,
    ConsistencyModel.TSO: TSO_TABLE,
    ConsistencyModel.PSO: PSO_TABLE,
    ConsistencyModel.RMO: RMO_TABLE,
}


def table_for(model: ConsistencyModel) -> OrderingTable:
    """Ordering table implementing ``model``."""
    return TABLES[model]


def format_table(table: OrderingTable) -> str:
    """Render an ordering table the way the paper prints them."""
    ops = table.op_types
    header = "1st\\2nd".ljust(9) + "".join(op.name.ljust(8) for op in ops)
    lines = [header]
    for first in ops:
        cells = []
        for second in ops:
            mask = table.cell(first, second)
            if mask == MembarMask.ALL:
                cells.append("true".ljust(8))
            elif mask == MembarMask.NONE:
                cells.append("false".ljust(8))
            else:
                cells.append(f"0x{int(mask):x}".ljust(8))
        lines.append(first.name.ljust(9) + "".join(cells))
    return "\n".join(lines)
