"""Operations that workload programs yield to the core.

Workloads are Python generators: each ``yield`` hands the core one
operation (or a :class:`Batch` of independent operations) and receives
the result (load value, atomic's old value, or None) once the value is
architecturally bound.  See :mod:`repro.workloads` for the programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Union

from repro.common.types import MembarMask, OpType
from repro.consistency.models import ConsistencyModel


@dataclass(frozen=True, slots=True)
class Load:
    """Read a word.  Yield result: the loaded value."""

    addr: int

    op_type = OpType.LOAD


@dataclass(frozen=True, slots=True)
class Store:
    """Write a word.  Yield result: None (stores do not block)."""

    addr: int
    value: int

    op_type = OpType.STORE


@dataclass(frozen=True, slots=True)
class Atomic:
    """Atomic swap (SPARC ``swap``).  Yield result: the old value."""

    addr: int
    value: int

    op_type = OpType.ATOMIC


@dataclass(frozen=True, slots=True)
class Membar:
    """SPARC v9 masked memory barrier.  Yield result: None."""

    mask: MembarMask = MembarMask.ALL

    op_type = OpType.MEMBAR


@dataclass(frozen=True, slots=True)
class Stbar:
    """PSO store barrier (equivalent to Membar #SS).  Yield result: None."""

    op_type = OpType.STBAR


@dataclass(frozen=True, slots=True)
class Compute:
    """Non-memory work occupying the core for ``cycles`` cycles."""

    cycles: int


@dataclass(frozen=True, slots=True)
class SetModel:
    """Switch the core's consistency model (SPARC v9 PSTATE.MM).

    The paper's benchmarks contain 32-bit TSO code sections that force
    PSO/RMO systems to switch to TSO at runtime (Table 8); DVMC's
    checkers follow the switch via their ordering-table indirection.
    The core drains its pipeline and write buffer before switching.
    Yield result: None.
    """

    model: ConsistencyModel


@dataclass(frozen=True, slots=True)
class Batch:
    """Independent operations the core may execute out of order.

    The yield result is the list of per-operation results, in the order
    given.  Used by workloads to expose memory-level parallelism (and
    by tests to exercise out-of-order load execution under RMO).
    """

    ops: List[Union[Load, Store, Atomic]] = field(default_factory=list)


MemoryOp = Union[Load, Store, Atomic, Membar, Stbar]
Yieldable = Union[Load, Store, Atomic, Membar, Stbar, Compute, Batch, SetModel]
