"""Simplified out-of-order core with a DVMC verification stage.

The core executes a workload *program* (a Python generator yielding
:mod:`~repro.processor.operations`), modelling the pipeline stages that
matter to memory consistency (paper Figure 2):

``decode`` (sequence numbers, ROB allocation) ->
``execute`` (loads bind values, speculatively under SC/TSO/PSO;
non-speculatively under RMO) ->
``commit`` (in order; stores enter the write buffer) ->
``verify`` (DVMC only: in-order replay against the Verification Cache
and L1) -> ``retire``.

Perform points follow the paper (Section 4.1): stores perform when they
write the cache (write-buffer drain, or post-verification for SC, which
has no write buffer); loads perform at the verification stage in
load-ordered models (SC/TSO/PSO) and at execute under RMO.  Ordering
enforcement is driven *generically* from the active ordering table, so
the same machinery implements all four models; the Allowable Reordering
checker then independently verifies the result.
"""

from __future__ import annotations

import os
from collections import deque
from itertools import islice
from typing import Callable, Deque, Dict, List, Optional

from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.common.waitsets import WaitSet, WakeHub
from repro.common.types import MembarMask, OpType, block_of, word_of
from repro.config import SystemConfig
from repro.consistency.models import ConsistencyModel
from repro.consistency.ordering_table import OrderingTable
from repro.consistency.tables import table_for
from repro.obs.spans import K_WB

from .operations import Batch, Compute, SetModel
from .write_buffer import WBEntry, WriteBuffer

#: Extra stall cycles charged for a load-order mis-speculation squash.
SQUASH_PENALTY = 12

#: Flight-recorder op-class codes (``a`` column of K_OP span records).
_SPAN_OP_CLASS = {
    OpType.LOAD: 0,
    OpType.STORE: 1,
    OpType.ATOMIC: 2,
    OpType.MEMBAR: 3,
    OpType.STBAR: 4,
}


class OpRec:
    """Pipeline bookkeeping for one in-flight operation."""

    __slots__ = (
        "seq",
        "tid",
        "op_type",
        "addr",
        "value",
        "mask",
        "executed",
        "bound_value",
        "committed",
        "in_verify",
        "verified",
        "performed",
        "squashed",
        "release",
        "ord_row",
        "ord_si",
        "wb_veto",
        "blocker",
        "poll_args",
    )

    def __init__(self, seq: int, op) -> None:
        self.seq = seq
        #: Flight-recorder trace id (0 = not traced / sampled out).
        self.tid = 0
        kind: OpType = op.op_type
        self.op_type = kind
        # Per-kind field pick-up: the old getattr(op, ..., default)
        # triple costs three C calls per decoded op; every kind's field
        # set is statically known.
        if kind is OpType.LOAD:
            self.addr = op.addr
            self.value = None
            self.mask = MembarMask.ALL
        elif kind is OpType.STORE or kind is OpType.ATOMIC:
            self.addr = op.addr
            self.value = op.value
            self.mask = MembarMask.ALL
        elif kind is OpType.MEMBAR:
            self.addr = 0
            self.value = None
            self.mask = op.mask
        else:  # STBAR
            self.addr = 0
            self.value = None
            self.mask = MembarMask.ALL
        self.executed = False
        self.bound_value: Optional[int] = None
        self.committed = False
        self.in_verify = False
        self.verified = False
        self.performed = False
        self.squashed = False
        self.release: Optional[Callable[[Optional[int]], None]] = None
        #: Precompiled ordering-table role (set at decode): row of
        #: ordered-before booleans, this op's column index, and the
        #: write-buffer drain veto (LOAD/MEMBAR/STBAR ordered before
        #: STORE).  See :meth:`OrderingTable.op_role`.
        self.ord_row: List[bool] = []
        self.ord_si = 0
        self.wb_veto = False
        #: Poll-loop memo: the ordering-table scan's last hit.  While
        #: the cached record is still unperformed the scan's verdict
        #: cannot have changed (seq and ord_row are immutable), so the
        #: next poll skips the walk.  Never holds a STORE — under a
        #: write-buffer model stores can retire unperformed and their
        #: ``performed`` flag then never flips.
        self.blocker: Optional["OpRec"] = None
        #: Shared ``(self,)`` args tuple for every post that targets
        #: this record — poll loops re-post dozens of times per op and
        #: each fresh tuple is allocator traffic.  (The self-reference
        #: makes the record a GC cycle; records are few and short-lived.)
        self.poll_args = (self,)


class Core:
    """One processor (thread context) driving a workload program."""

    def __init__(
        self,
        node: int,
        scheduler: Scheduler,
        stats: StatsRegistry,
        config: SystemConfig,
        controller,
        program,
        uo_checker=None,
        ar_checker=None,
        model: Optional[ConsistencyModel] = None,
        wake_hub: Optional[WakeHub] = None,
    ):
        self.node = node
        self.scheduler = scheduler
        self.stats = stats
        self.config = config
        self.controller = controller
        self.program = program
        self.uo = uo_checker
        self.ar = ar_checker
        self.model = model or config.model
        #: ``model.requires_load_order`` cached as a plain attribute —
        #: the property is consulted on every load's execute/bind/verify
        #: path and the descriptor dispatch is measurable there.
        self._load_ordered = self.model.requires_load_order
        self.table: OrderingTable = table_for(self.model)
        self._store_row, self._store_si = self.table.op_role(
            OpType.STORE, MembarMask.ALL
        )
        #: Decode-time role memo: every kind except MEMBAR carries the
        #: ALL mask, so its (row, index) is a pure function of the kind
        #: — one identity-hash dict hit replaces ``op_role``'s tuple
        #: build + hash per decoded op.  Rebuilt on model switch.
        self._role_of = {
            t: self.table.op_role(t, MembarMask.ALL)
            for t in (OpType.LOAD, OpType.STORE, OpType.ATOMIC, OpType.STBAR)
        }
        #: Store->Load ordered (SC): a value forwarded from a not-yet-
        #: performed store is speculative until the load performs — a
        #: remote store may legally slot in between, and the load must
        #: then observe it.  Under TSO/PSO the early forwarded value is
        #: the architecturally final one (store-buffer bypass).
        self._fwd_speculative = self._store_row[self._role_of[OpType.LOAD][1]]

        self._inflight: Deque[OpRec] = deque()
        # Committed entries form a strict prefix of ``_inflight`` (commit
        # is in order and stops at the first stall); this cursor lets
        # ``_try_commit`` resume at the first uncommitted record instead
        # of rescanning the prefix every pump.
        self._ncommitted = 0
        self._verify_q: Deque[OpRec] = deque()
        self._next_seq = 0
        self._spec_loads: Dict[int, List[OpRec]] = {}
        self._sc_store_outstanding = False
        self.finished = False
        self._started = False
        self._pump_scheduled = False
        self._stall_until = 0
        self._stat = f"core.{node}"
        # Per-event stat keys, precomputed: f-string assembly (and enum
        # ``.value`` descriptor access) is measurable at this call rate.
        self._ops_h = {t: stats.handle(f"core.{node}.ops.{t.value}") for t in OpType}
        self._h_retired = stats.handle(f"core.{node}.retired")
        self._h_compute = stats.handle(f"core.{node}.compute_cycles")
        self._values = stats.values
        self.last_progress_cycle = 0
        # Hoisted config scalars for the decode/poll hot paths.
        self._rob_size = config.processor.rob_size
        self._fetch_width = max(1, config.processor.fetch_width)
        self._decode_delay_single = 1 + 1 // self._fetch_width
        # Interned bound methods for hot post sites: the poll loops
        # (atomics, SC stores, barrier/load perform gates) and the
        # advance/execute/pump chain re-post these thousands of times
        # per run, and a fresh bound-method object per post is pure
        # allocator churn.
        # Interned unbound targets: ``self.scheduler.post`` /
        # ``self.stats.incr`` cost two attribute hops per call; one
        # interned lookup serves the ~14 calls made per simulated event.
        self._post = scheduler.post
        self._incr = stats.incr
        self._cb_advance = self._advance
        self._cb_execute = self._execute
        self._cb_execute_load = self._execute_load
        self._cb_execute_atomic = self._execute_atomic
        self._cb_perform_load = self._perform_load_when_final
        self._cb_perform_forwarded = self._perform_forwarded_when_ready
        self._cb_sc_issue_store = self._sc_issue_store
        self._cb_barrier = self._perform_barrier_when_ready
        self._cb_replay_load = self._replay_load
        self._cb_verify_trivial = self._verify_trivial
        self._cb_pump = self._pump
        self._cb_may_drain = self._may_drain
        self._cb_decode_one = self._decode_one
        self._cb_decode_group = self._decode_group
        self._cb_pump_verify = self._pump_verify

        # Wakeup plane: blocked ops park on a WaitSet instead of
        # re-posting fixed-period retries; every transition that can
        # unblock them notifies.  The hub is shared system-wide
        # (builder passes it) so same-cycle checks across cores run in
        # one deterministic agenda; a standalone core gets a private
        # hub with the same semantics.
        if wake_hub is None:
            wake_hub = WakeHub(
                scheduler, poll_mode=os.environ.get("REPRO_POLL", "0") == "1"
            )
        self._hub = wake_hub
        #: Ordering/resource conditions: something *performed*, the
        #: write buffer drained, the SC store slot freed, a VC entry
        #: freed, a cache line changed state.
        self._ws_order = WaitSet(wake_hub)
        #: ROB-space condition: retirement freed entries.
        self._ws_rob = WaitSet(wake_hub)
        #: Quiescence hook (set by the System): called once when the
        #: program has finished and every side effect is visible.
        self.on_quiescent: Optional[Callable[[], None]] = None
        self._q_reported = False
        #: Per-episode VC-backpressure latch: ``vc_full_stalls`` counts
        #: blocked *episodes*, not retry attempts — attempts are a
        #: property of the retry regime (poll vs wakeup), episodes are
        #: architectural and mode-identical.
        self._vc_stall_flag = False

        uses_wb = self.model is not ConsistencyModel.SC
        self.wb: Optional[WriteBuffer] = (
            WriteBuffer(
                node,
                config.processor.write_buffer_size,
                in_order=not self.model.allows_store_store_reordering,
                stats=stats,
                issue=self._issue_store,
                on_perform=self._store_performed,
                require_verified=self.uo is not None,
            )
            if uses_wb
            else None
        )
        if self.wb is not None:
            self.wb.wakes = self._ws_order
        # Verify-stage slot accounting (verification_width per cycle).
        self._verify_cycle = -1
        self._verify_used = 0
        #: Fault injection: XOR applied to the next load's bound value
        #: (models LSQ mis-forwarding / load reordering errors).
        self.fault_load_value_xor: Optional[int] = None
        #: Transaction flight recorder (``REPRO_OBS_SPANS=1``), wired by
        #: the builder; None costs one attribute load per guarded site.
        self.spans = None
        self._span_track = 0
        self._span_wb_track = 0

    def attach_spans(self, spans) -> None:
        """Wire the flight recorder (never changes simulation results)."""
        self.spans = spans
        self._span_track = spans.track(f"core.{self.node}")
        self._span_wb_track = spans.track(f"wb.{self.node}")

    # ------------------------------------------------------------------
    # Program driving
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._post(0, self._cb_advance, (None,))

    def _advance(self, result) -> None:
        """Feed the previous result to the program; decode what it yields."""
        try:
            yielded = self.program.send(result)
        except StopIteration:
            self.finished = True
            self._kick()
            return
        self.last_progress_cycle = self.scheduler.now
        # One isinstance against the control-op tuple keeps the common
        # shape — a bare memory op — at a single type check and no
        # wrapper list.
        if isinstance(yielded, (Compute, SetModel, Batch)):
            if isinstance(yielded, Compute):
                self._values[self._h_compute] += yielded.cycles
                self._post(
                    max(1, yielded.cycles), self._cb_advance, (None,)
                )
            elif isinstance(yielded, SetModel):
                self._switch_model(yielded.model)
            else:
                ops = yielded.ops
                if ops:
                    self._decode_group(ops, is_batch=True)
                else:
                    self._post(1, self._cb_advance, (None,))
            return
        self._decode_one(yielded)

    def _switch_model(self, model: ConsistencyModel) -> None:
        """Drain the pipeline, then adopt ``model``'s ordering rules.

        SPARC v9 serialises on a PSTATE.MM write; we model that as
        waiting until every in-flight operation performed and the write
        buffer drained, then swapping the ordering table (the AR checker
        reads it through the core, so it follows automatically) and the
        write-buffer drain policy.
        """
        drained = (
            not self._inflight
            and not self._verify_q
            and (self.wb is None or self.wb.empty)
            and not self._sc_store_outstanding
        )
        if not drained:
            self._kick()
            self._post(4, self._switch_model, (model,))
            return
        self.model = model
        self._load_ordered = model.requires_load_order
        self.table = table_for(model)
        self._store_row, self._store_si = self.table.op_role(
            OpType.STORE, MembarMask.ALL
        )
        self._role_of = {
            t: self.table.op_role(t, MembarMask.ALL)
            for t in (OpType.LOAD, OpType.STORE, OpType.ATOMIC, OpType.STBAR)
        }
        self._fwd_speculative = self._store_row[self._role_of[OpType.LOAD][1]]
        if model is ConsistencyModel.SC:
            self.wb = None
        else:
            if self.wb is None:
                self.wb = WriteBuffer(
                    self.node,
                    self.config.processor.write_buffer_size,
                    in_order=not model.allows_store_store_reordering,
                    stats=self.stats,
                    issue=self._issue_store,
                    on_perform=self._store_performed,
                    require_verified=self.uo is not None,
                )
                self.wb.wakes = self._ws_order
            else:
                self.wb.in_order = not model.allows_store_store_reordering
                self.wb.max_outstanding = 1 if self.wb.in_order else 4
        if self.uo is not None:
            self.uo.rmo_mode = not model.requires_load_order
            self.uo.flush_clean_entries()
        self._incr(f"{self._stat}.model_switches")
        self._post(2, self._cb_advance, (None,))

    def _decode_one(self, op) -> None:
        """Decode a bare (non-batch) operation — the common shape."""
        if len(self._inflight) >= self._rob_size:
            # ROB full: park until retirement frees entries.
            self._ws_rob.park(self._cb_decode_one, (op,))
            return
        rec = OpRec(self._next_seq, op)
        self._next_seq += 1
        kind = rec.op_type
        if kind is OpType.MEMBAR:
            rec.ord_row, rec.ord_si = self.table.op_role(kind, rec.mask)
        else:
            rec.ord_row, rec.ord_si = self._role_of[kind]
        rec.wb_veto = (
            kind is OpType.LOAD
            or kind is OpType.MEMBAR
            or kind is OpType.STBAR
        ) and rec.ord_row[self._store_si]
        s = self.spans
        if s is not None:
            rec.tid = s.new_op(
                self._span_track, self.node, _SPAN_OP_CLASS[kind],
                rec.addr, rec.seq, self.scheduler.now,
            )
        self._inflight.append(rec)
        self._values[self._ops_h[kind]] += 1
        rec.release = self._release_single
        self._post(self._decode_delay_single, self._cb_execute, rec.poll_args)

    def _decode_group(self, ops: List, is_batch: bool) -> None:
        if len(self._inflight) + len(ops) > self._rob_size:
            # ROB full: park until retirement frees entries.
            self._ws_rob.park(self._cb_decode_group, (ops, is_batch))
            return
        recs = []
        table = self.table
        role_of = self._role_of
        ops_h = self._ops_h
        values = self._values
        spans = self.spans
        for op in ops:
            rec = OpRec(self._next_seq, op)
            self._next_seq += 1
            kind = rec.op_type
            if kind is OpType.MEMBAR:
                rec.ord_row, rec.ord_si = table.op_role(kind, rec.mask)
            else:
                rec.ord_row, rec.ord_si = role_of[kind]
            rec.wb_veto = (
                kind is OpType.LOAD
                or kind is OpType.MEMBAR
                or kind is OpType.STBAR
            ) and rec.ord_row[self._store_si]
            if spans is not None:
                rec.tid = spans.new_op(
                    self._span_track, self.node, _SPAN_OP_CLASS[kind],
                    rec.addr, rec.seq, self.scheduler.now,
                )
            self._inflight.append(rec)
            recs.append(rec)
            values[ops_h[kind]] += 1

        if not is_batch and len(recs) == 1:
            # Singleton group (the overwhelmingly common shape): the
            # release path is a shared bound method — no results list,
            # no countdown cell, no per-rec closure.
            rec = recs[0]
            rec.release = self._release_single
            self._post(self._decode_delay_single, self._cb_execute, rec.poll_args)
            return

        results: List[Optional[int]] = [None] * len(recs)
        remaining = [len(recs)]

        def release_one(index: int, value: Optional[int]) -> None:
            results[index] = value
            remaining[0] -= 1
            if remaining[0] == 0:
                out = results if is_batch else results[0]
                self._post(1, self._cb_advance, (out,))

        for index, rec in enumerate(recs):
            rec.release = lambda v, i=index: release_one(i, v)
        decode_delay = 1 + len(ops) // self._fetch_width
        for rec in recs:
            self._post(decode_delay, self._cb_execute, rec.poll_args)

    def _release_single(self, value: Optional[int]) -> None:
        """Release path for singleton decode groups."""
        self._post(1, self._cb_advance, (value,))

    # ------------------------------------------------------------------
    # Execute stage
    # ------------------------------------------------------------------
    def _execute(self, rec: OpRec) -> None:
        kind = rec.op_type
        if kind is OpType.LOAD:
            self._execute_load(rec)
        elif kind is OpType.STORE:
            rec.executed = True
            if self.model is ConsistencyModel.SC:
                # SC baseline optimisation: exclusive prefetch so the
                # commit-time store usually hits in M (paper Section 4).
                s = self.spans
                if s is not None:
                    s.cur = rec.tid
                self.controller.prefetch_m(rec.addr)
                if s is not None:
                    s.cur = 0
            self._release(rec, None)
            self._kick()
        elif kind is OpType.ATOMIC:
            self._execute_atomic(rec)
        else:  # MEMBAR / STBAR
            rec.executed = True
            self._release(rec, None)
            self._kick()

    def _lsq_forward(self, rec: OpRec) -> Optional[int]:
        """Forward from an older in-flight (not yet buffered) store."""
        word = word_of(rec.addr)
        seq = rec.seq
        value = None
        for other in self._inflight:
            if other.seq >= seq:
                break
            kind = other.op_type
            if (
                not other.performed  # performed stores live in the cache
                and (kind is OpType.STORE or kind is OpType.ATOMIC)
                and word_of(other.addr) == word
            ):
                value = other.value
        return value

    def _execute_load(self, rec: OpRec) -> None:
        forwarded = self._lsq_forward(rec)
        if forwarded is None and self.wb is not None:
            forwarded = self.wb.forward(rec.addr)
        if forwarded is not None:
            rec.executed = True
            rec.bound_value = forwarded
            if self.uo is not None:
                self.uo.note_load_executed(rec.addr, forwarded, rec.seq)
            if self._load_ordered:
                # The forwarded value is still speculative until the
                # load verifies; remote writes in between mean squash.
                self._spec_loads.setdefault(block_of(rec.addr), []).append(rec)
                if self._fwd_speculative:
                    # Store->Load ordered (SC): the forwarded value must
                    # not reach the program yet — a remote store may
                    # perform before this load does, in which case the
                    # perform point re-reads (squash) and delivers the
                    # fresh value instead.  Same delivery discipline as
                    # the non-forwarded speculative load below.
                    self._kick()
                    return
            elif self._can_perform(rec):
                self._mark_performed(rec)
            else:
                # The forwarded value is final (a local store's value
                # cannot change), but the load must not *perform* past
                # an older barrier still draining the write buffer —
                # the AR checker would rightly flag it.  Effectively
                # the load performs with its source store, which is
                # after the barrier; park the perform point until the
                # ordering table agrees.
                self._ws_order.park(self._cb_perform_forwarded, rec.poll_args)
            self._release(rec, forwarded)
            self._kick()
            return
        if self._load_ordered:
            # Speculative issue; squash tracking via invalidations.
            self._spec_loads.setdefault(block_of(rec.addr), []).append(rec)
            self._traced_load(rec)
        else:
            # RMO: loads perform at execute, non-speculatively.
            if self._can_perform(rec):
                self._traced_load(rec)
            else:
                self._ws_order.park(self._cb_execute_load, rec.poll_args)

    def _traced_load(self, rec: OpRec) -> None:
        """Issue a load to the cache with the recorder's current-tid
        side channel set (the controller stamps requests from it)."""
        s = self.spans
        if s is not None:
            s.cur = rec.tid
        self.controller.load(rec.addr, lambda v: self._load_bound(rec, v))
        if s is not None:
            s.cur = 0

    def _load_bound(self, rec: OpRec, value: int) -> None:
        if self.uo is not None:
            # Recorded from the cache response, before the (faultable)
            # LSQ path delivers the value to the register file.
            self.uo.note_load_executed(rec.addr, value, rec.seq)
        if self.fault_load_value_xor is not None:
            value ^= self.fault_load_value_xor
            self.fault_load_value_xor = None
            self._incr(f"{self._stat}.injected_load_faults")
        rec.executed = True
        rec.bound_value = value
        if not self._load_ordered:
            self._mark_performed(rec)
            self._release(rec, value)
        # Load-ordered models: the bound value is speculative until the
        # load performs; a squash may rebind it.  The program receives
        # the value at the perform point so it only ever observes
        # architecturally final values (a real core would replay the
        # load's dependents on mis-speculation; a generator cannot be
        # rolled back, so it must not consume speculative values).
        self._kick()

    def _execute_atomic(self, rec: OpRec) -> None:
        # Atomics satisfy both load and store ordering constraints and
        # access the cache directly (never buffered).  All gates are
        # pure predicates; the cheap write-buffer check goes first so a
        # backed-up buffer short-circuits the ordering-table scan.
        # (``wb.empty`` and ``_can_perform`` are inlined — this is the
        # hottest poll loop in the core, and a property or method call
        # per poll is measurable.  With the write buffer known empty,
        # ``_can_perform``'s has_store_older_than branch is trivially
        # false; only the SC-store flag and the inflight scan remain.)
        wb = self.wb
        si = rec.ord_si
        if (wb is not None and (wb._entries or wb._outstanding)) or (
            self._sc_store_outstanding and self._store_row[si]
        ):
            self._ws_order.park(self._cb_execute_atomic, rec.poll_args)
            return
        blocker = rec.blocker
        if blocker is not None:
            if not blocker.performed:
                self._ws_order.park(self._cb_execute_atomic, rec.poll_args)
                return
            rec.blocker = None
        seq = rec.seq
        for other in self._inflight:
            if other.seq >= seq:
                break
            if not other.performed and other.ord_row[si]:
                if other.op_type is not OpType.STORE:
                    rec.blocker = other
                self._ws_order.park(self._cb_execute_atomic, rec.poll_args)
                return
        s = self.spans
        if s is not None:
            s.cur = rec.tid
        self.controller.atomic(
            rec.addr, rec.value, lambda old: self._atomic_done(rec, old)
        )
        if s is not None:
            s.cur = 0

    def _atomic_done(self, rec: OpRec, old_value: int) -> None:
        rec.executed = True
        rec.bound_value = old_value
        self._mark_performed(rec)
        self._release(rec, old_value)
        self._kick()

    @staticmethod
    def _release(rec: OpRec, value: Optional[int]) -> None:
        if rec.release is not None:
            rec.release(value)
            rec.release = None

    # ------------------------------------------------------------------
    # Commit stage (in order)
    # ------------------------------------------------------------------
    def _try_commit(self) -> None:
        inflight = self._inflight
        n = self._ncommitted
        if n >= len(inflight):
            return
        for rec in islice(inflight, n, None):
            if not rec.executed or not self._commit_one(rec):
                return
            self._ncommitted += 1

    def _commit_one(self, rec: OpRec) -> bool:
        kind = rec.op_type
        if kind is OpType.STORE:
            if self.wb is None:
                rec.committed = True  # SC: performs after verification
                if self.uo is None:
                    self._sc_issue_store(rec)
            else:
                if self.wb.full:
                    self._incr(f"{self._stat}.wb_full_stalls")
                    return False
                entry = self.wb.insert(rec.seq, rec.addr, rec.value)
                if self.uo is None:
                    entry.verified = True
                s = self.spans
                if s is not None and rec.tid:
                    entry.tid = rec.tid
                    entry.token = s.open(
                        rec.tid, self._span_wb_track, K_WB,
                        self.scheduler.now, rec.addr, rec.value, rec.seq,
                    )
                rec.committed = True
        else:
            rec.committed = True
            if kind in (OpType.STBAR, OpType.MEMBAR) and self.wb is not None:
                if kind is OpType.STBAR or rec.mask & MembarMask.STORESTORE:
                    self.wb.fence()
        if self.ar is not None and not rec.performed:
            # Ops that performed before commit (atomics, RMO loads,
            # forwarded loads) are already globally visible.
            self.ar.committed(rec.op_type, rec.seq, self.scheduler.now)
        if self.uo is not None:
            rec.in_verify = True
            self._verify_q.append(rec)
        else:
            self._post_commit_perform(rec)
        return True

    def _post_commit_perform(self, rec: OpRec) -> None:
        """Baseline (no verify stage): commit is the perform point for
        loads and barriers in load-ordered models."""
        rec.verified = True
        kind = rec.op_type
        if kind is OpType.LOAD and self._load_ordered:
            self._perform_load_when_final(rec)
        elif kind in (OpType.MEMBAR, OpType.STBAR):
            self._perform_barrier_when_ready(rec)

    def _perform_load_when_final(self, rec: OpRec) -> None:
        """Baseline perform point for load-ordered loads: wait out the
        ordering table (e.g. SC's Store->Load edge), re-read the cache
        if the speculative bind was squashed by a remote write, then
        deliver the final value to the program."""
        if rec.performed:
            return
        if not self._can_perform(rec):
            self._ws_order.park(self._cb_perform_load, rec.poll_args)
            return
        if rec.squashed:
            rec.squashed = False
            self._incr(f"{self._stat}.load_squashes")
            self._stall_until = self.scheduler.now + SQUASH_PENALTY

            def rebound(value: int) -> None:
                rec.bound_value = value
                self._perform_load_when_final(rec)

            s = self.spans
            if s is not None:
                s.cur = rec.tid
            self.controller.load(rec.addr, rebound)
            if s is not None:
                s.cur = 0
            return
        self._resolve_speculation(rec)
        self._mark_performed(rec)
        self._release(rec, rec.bound_value)
        self._kick()

    def _sc_issue_store(self, rec: OpRec) -> None:
        if self._sc_store_outstanding or not self._can_perform(rec):
            self._ws_order.park(self._cb_sc_issue_store, rec.poll_args)
            return
        self._sc_store_outstanding = True

        def done(old_value: int) -> None:
            self._sc_store_outstanding = False
            if self.uo is not None:
                self.uo.store_performed(rec.seq, rec.addr, rec.value)
            self._mark_performed(rec)

        s = self.spans
        if s is not None:
            s.cur = rec.tid
        self.controller.store(rec.addr, rec.value, done)
        if s is not None:
            s.cur = 0

    # ------------------------------------------------------------------
    # Verification stage (DVMC Uniprocessor Ordering, paper 4.1)
    # ------------------------------------------------------------------
    def _verify_slot_delay(self) -> int:
        now = self.scheduler.now
        if now > self._verify_cycle:
            self._verify_cycle = now
            self._verify_used = 1
            return 0
        if self._verify_used < self.config.dvmc.verification_width:
            self._verify_used += 1
            return 0
        extra = self._verify_used // self.config.dvmc.verification_width
        self._verify_used += 1
        return extra

    def _pump_verify(self) -> None:
        q = self._verify_q
        while q:
            rec = q[0]
            if (
                rec.op_type is OpType.STORE
                and len(q) > 1
                and q[1].op_type is OpType.STORE
            ):
                if not self._verify_store_run():
                    return
                continue
            if not self._verify_one(rec):
                return

    def _verify_store_run(self) -> bool:
        """Drain the head run of stores through the UO checker's batch
        entry point (one call per run instead of one per store).  The
        per-store semantics — VC allocation order, backpressure stall,
        write-buffer release, pump kick — are unchanged; ``_kick`` is
        idempotent per pending pump, so one kick after the run schedules
        the same event a kick per store would have."""
        q = self._verify_q
        run = []
        for r in q:
            if r.op_type is not OpType.STORE:
                break
            run.append((r.seq, r.addr, r.value))
        done = self.uo.commit_stores(run)
        wb = self.wb
        for _ in range(done):
            r = q.popleft()
            r.verified = True
            if wb is None:
                self._sc_issue_store(r)
            else:
                wb.mark_verified(r.seq)
        if done:
            self._vc_stall_flag = False
            self._kick()
        if done < len(run):
            if not self._vc_stall_flag:
                self._vc_stall_flag = True
                self._incr(f"{self._stat}.vc_full_stalls")
            self._schedule_verify_retry()
            return False
        return True

    def _verify_one(self, rec: OpRec) -> bool:
        kind = rec.op_type
        if kind is OpType.LOAD and self._load_ordered:
            # The load performs here; its ordering constraints must hold.
            if not self._can_perform(rec):
                self._schedule_verify_retry()
                return False
        if kind is OpType.STORE:
            if not self.uo.commit_store(rec.seq, rec.addr, rec.value):
                if not self._vc_stall_flag:
                    self._vc_stall_flag = True
                    self._incr(f"{self._stat}.vc_full_stalls")
                self._schedule_verify_retry()
                return False
            self._verify_q.popleft()
            self._vc_stall_flag = False
            rec.verified = True
            if self.wb is None:
                self._sc_issue_store(rec)
            else:
                self.wb.mark_verified(rec.seq)
            self._kick()
            return True
        self._verify_q.popleft()
        delay = (
            self._verify_slot_delay() + self.config.dvmc.verification_stage_latency
        )
        if kind is OpType.LOAD:
            self._post(delay, self._cb_replay_load, rec.poll_args)
        else:
            # MEMBAR / STBAR / ATOMIC: no replay action.
            self._post(delay, self._cb_verify_trivial, rec.poll_args)
        return True

    def _schedule_verify_retry(self) -> None:
        """Park the verify pump until something performs or a VC entry
        frees.  The hub's park is the at-most-one-pending-retry guard
        (it returns the live waiter instead of stacking another), which
        replaces the old ``_verify_retry_scheduled`` flag and covers
        every parking site the same way."""
        self._ws_order.park(self._cb_pump_verify, ())

    def _verify_trivial(self, rec: OpRec) -> None:
        rec.verified = True
        if rec.op_type is OpType.ATOMIC:
            # The atomic takes its program-order slot in the VC here,
            # not at execute (replays of older loads come first).
            self.uo.note_atomic(rec.addr, rec.value)
        elif rec.op_type in (OpType.MEMBAR, OpType.STBAR):
            self._perform_barrier_when_ready(rec)
        self._kick()

    def _replay_load(self, rec: OpRec) -> None:
        def done(mismatch: bool, replay_value: int) -> None:
            if mismatch:
                if rec.squashed:
                    # Tracked write to a speculatively loaded address:
                    # legitimate mis-speculation, not an error (paper 4.1).
                    rec.bound_value = replay_value
                    self._incr(f"{self._stat}.load_squashes")
                    self._stall_until = self.scheduler.now + SQUASH_PENALTY
                else:
                    self.uo.report_mismatch(
                        rec.addr, rec.bound_value, replay_value, seq=rec.seq
                    )
            rec.verified = True
            if self._load_ordered:
                self._resolve_speculation(rec)
                self._mark_performed(rec)
                # Perform point: deliver the (possibly squash-corrected)
                # value to the program.  No-op for forwarded loads under
                # TSO/PSO, which released their final value at execute.
                self._release(rec, rec.bound_value)
            self._kick()

        s = self.spans
        if s is not None:
            s.cur = rec.tid
        if rec.squashed and rec.release is not None:
            # Mis-speculated load whose value has not been delivered
            # yet: a real core re-executes it.  The VC compare is
            # meaningless for a squashed load (paper 4.1) — and may be
            # skipped as vacuous when a younger store has since
            # committed — so read the cache directly for the value the
            # load performs with.
            self.controller.replay_load(
                rec.addr, lambda value: done(value != rec.bound_value, value)
            )
            if s is not None:
                s.cur = 0
            return
        self.uo.replay_load(rec.addr, rec.bound_value, done, seq=rec.seq)
        if s is not None:
            s.cur = 0

    # ------------------------------------------------------------------
    # Perform bookkeeping
    # ------------------------------------------------------------------
    def _perform_barrier_when_ready(self, rec: OpRec) -> None:
        if rec.performed:
            return
        if self._can_perform(rec):
            self._mark_performed(rec)
        else:
            self._ws_order.park(self._cb_barrier, rec.poll_args)

    def _perform_forwarded_when_ready(self, rec: OpRec) -> None:
        """Deferred perform point for a forwarded load in a model
        without load ordering: the value was released at execute, the
        perform marking waits out older barriers."""
        if rec.performed:
            return
        if self._can_perform(rec):
            self._mark_performed(rec)
        else:
            self._ws_order.park(self._cb_perform_forwarded, rec.poll_args)

    def _mark_performed(self, rec: OpRec) -> None:
        if rec.performed:
            return
        rec.performed = True
        s = self.spans
        if s is not None and rec.tid:
            s.op_touch(rec.tid, self.scheduler.now)
        if self.ar is not None:
            self.ar.performed(rec.op_type, rec.seq, rec.mask)
        # Something became globally visible: every ordering gate
        # (atomics, barriers, blocked loads, the verify pump) may now
        # pass.
        self._ws_order.notify()
        self._kick()

    def _resolve_speculation(self, rec: OpRec) -> None:
        block = block_of(rec.addr)
        recs = self._spec_loads.get(block)
        if recs is not None:
            try:
                recs.remove(rec)
            except ValueError:
                pass
            if not recs:
                del self._spec_loads[block]

    def on_invalidation(self, block: int) -> None:
        """A write (or eviction) hit a speculatively loaded block."""
        for rec in self._spec_loads.get(block, ()):  # unverified loads
            if not rec.performed:
                rec.squashed = True

    # ------------------------------------------------------------------
    # Write-buffer interaction
    # ------------------------------------------------------------------
    def _issue_store(self, entry: WBEntry, on_done: Callable[[int], None]) -> None:
        s = self.spans
        if s is not None:
            s.cur = entry.tid
        self.controller.store(entry.addr, entry.value, on_done)
        if s is not None:
            s.cur = 0

    def _store_performed(self, entry: WBEntry, old_value: int) -> None:
        if self.uo is not None:
            self.uo.store_performed(entry.seq, entry.addr, entry.value)
        s = self.spans
        if s is not None and entry.token:
            # Write-buffer residency span: insert -> globally performed.
            s.close(entry.token, self.scheduler.now)
            entry.token = 0
        rec = self._find_rec(entry.seq)
        if rec is not None:
            self._mark_performed(rec)
        elif self.ar is not None:
            # Already retired from the ROB; notify the checker directly.
            self.ar.performed(OpType.STORE, entry.seq, MembarMask.ALL)
        self._kick()

    def _find_rec(self, seq: int) -> Optional[OpRec]:
        for rec in self._inflight:
            if rec.seq == seq:
                return rec
        return None

    def _may_drain(self, entry: WBEntry) -> bool:
        """Ordering-table veto for write-buffer drains.

        ``wb_veto`` is the decode-time precompilation of the old
        per-type ``table.ordered(LOAD/MEMBAR/STBAR, STORE)`` checks.
        """
        entry_seq = entry.seq
        for rec in self._inflight:
            if rec.wb_veto and rec.seq < entry_seq and not rec.performed:
                return False
        return True

    # ------------------------------------------------------------------
    # Generic ordering-table gate
    # ------------------------------------------------------------------
    def _has_unperformed_older(self, op_type: OpType, before_seq: int) -> bool:
        if op_type is OpType.STORE:
            if self.wb is not None and self.wb.has_store_older_than(before_seq):
                return True
            if self._sc_store_outstanding:
                return True
        for rec in self._inflight:
            if rec.seq >= before_seq:
                break
            if not rec.performed and (
                rec.op_type is op_type
                or (rec.op_type is OpType.ATOMIC and op_type in rec.op_type.access_types())
            ):
                return True
        return False

    def _can_perform(self, rec: OpRec) -> bool:
        """May ``rec`` perform now without violating the ordering table?

        ``other.ord_row[rec.ord_si]`` is exactly the old
        ``table.ordered(other.op_type, target, first_mask, second_mask)``
        over every target of ``rec`` (atomics are expanded inside the
        precompiled cell) — but as a single list lookup, since this is
        the per-poll inner loop of every blocked operation.
        """
        blocker = rec.blocker
        if blocker is not None:
            if not blocker.performed:
                return False
            rec.blocker = None
        seq = rec.seq
        si = rec.ord_si
        for other in self._inflight:
            if other.seq >= seq:
                break
            if not other.performed and other.ord_row[si]:
                if other.op_type is not OpType.STORE:
                    rec.blocker = other
                return False
        # Stores already retired to the write buffer:
        if self._store_row[si]:
            if self.wb is not None and self.wb.has_store_older_than(seq):
                return False
            if self._sc_store_outstanding:
                return False
        return True

    # ------------------------------------------------------------------
    # Retirement and the pump
    # ------------------------------------------------------------------
    def _kick(self) -> None:
        if self._pump_scheduled:
            return
        self._pump_scheduled = True
        delay = self._stall_until - self.scheduler.now
        if delay < 1:
            delay = 1
        self._post(delay, self._cb_pump)

    def _pump(self) -> None:
        self._pump_scheduled = False
        # Stage calls are guarded by their own early-out conditions so
        # an idle stage costs one inline check, not a call: commit has
        # work only past the committed prefix, verify only with a
        # queued record (``_verify_q`` stays empty when ``uo`` is
        # None), retire only with something in flight.
        inflight = self._inflight
        if self._ncommitted < len(inflight):
            self._try_commit()
        if self._verify_q:
            self._pump_verify()
        wb = self.wb
        if wb is not None and wb._entries:
            wb.drain(self._cb_may_drain)
        # Retire stage, inlined (one caller, ~one call per event): pop
        # the head run of completed records off the ROB.
        needs_verify = self.uo is not None
        sc_stores = wb is None
        retired = 0
        while inflight:
            rec = inflight[0]
            if not (rec.verified if needs_verify else rec.committed):
                break
            if rec.op_type is OpType.STORE:
                if sc_stores and not rec.performed:
                    break  # SC: stores retire once performed
            elif not rec.performed:
                break
            inflight.popleft()
            retired += 1
        if retired:
            self._ncommitted -= retired
            self._values[self._h_retired] += retired
            self.last_progress_cycle = self.scheduler.now
            # ROB entries freed: parked decodes may proceed.
            self._ws_rob.notify()
        # Every transition that can complete the program funnels
        # through a kick, so this is the one place quiescence needs
        # checking.  The report lets the System halt the scheduler once
        # all cores are done instead of polling a stop predicate.
        if (
            self.finished
            and not self._q_reported
            and self.on_quiescent is not None
            and self.quiescent
        ):
            self._q_reported = True
            self.on_quiescent()

    # ------------------------------------------------------------------
    @property
    def quiescent(self) -> bool:
        """Program done and every side effect globally visible."""
        return (
            self.finished
            and not self._inflight
            and not self._verify_q
            and (self.wb is None or self.wb.empty)
            and not self._sc_store_outstanding
        )
