"""Processor model: pipeline core, write buffers, operations."""

from .core import Core, OpRec, SQUASH_PENALTY
from .operations import (
    Atomic,
    Batch,
    Compute,
    Load,
    Membar,
    MemoryOp,
    Stbar,
    Store,
    Yieldable,
)
from .write_buffer import WBEntry, WriteBuffer

__all__ = [
    "Atomic",
    "Batch",
    "Compute",
    "Core",
    "Load",
    "Membar",
    "MemoryOp",
    "OpRec",
    "SQUASH_PENALTY",
    "Stbar",
    "Store",
    "WBEntry",
    "WriteBuffer",
    "Yieldable",
]
