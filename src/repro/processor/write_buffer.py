"""Write buffers: the paper's per-model store optimisations (Table 5).

* **TSO — in-order write buffer**: stores drain strictly in program
  order, one outstanding store transaction at a time; store misses come
  off the critical path.
* **PSO/RMO — out-of-order write buffer**: any fence-eligible entry may
  drain; the issue policy picks the oldest store of the block with the
  most queued stores first and coalesces all queued stores to that
  block into one ownership acquisition, reducing write-buffer stalls
  and coherence traffic.

Fences (Stbar under PSO, Membar with #SS under any model) divide the
buffer into generations; a store may not drain while an older
generation has stores left.  Loads are forwarded the youngest matching
word (the paper's "incorrect forwarding" fault targets this path).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.stats import StatsRegistry
from repro.common.types import block_of, word_of


class WBEntry:
    """One buffered store."""

    __slots__ = (
        "seq",
        "addr",
        "value",
        "generation",
        "verified",
        "issued",
        "tid",
        "token",
    )

    def __init__(self, seq: int, addr: int, value: int, generation: int):
        self.seq = seq
        self.addr = addr
        self.value = value
        self.generation = generation
        self.verified = False  # UO checker replayed it (VC entry exists)
        self.issued = False  # handed to the cache controller
        self.tid = 0  # flight-recorder trace id (0 = untraced)
        self.token = 0  # open residency-span token (0 = none)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WBEntry(seq={self.seq} addr=0x{self.addr:x} v={self.value})"


class WriteBuffer:
    """Store buffer with in-order or out-of-order drain policy.

    The core inserts stores at commit and calls :meth:`drain` whenever
    drain conditions may have changed; the buffer issues eligible
    stores to the cache controller and reports each perform through
    ``on_perform(entry, old_value)``.

    Args:
        node: owning core id (stats only).
        capacity: number of entries (paper Table 7: 8).
        in_order: True for the TSO policy, False for PSO/RMO.
        max_outstanding: cap on concurrently issued store transactions.
    """

    def __init__(
        self,
        node: int,
        capacity: int,
        in_order: bool,
        stats: StatsRegistry,
        issue: Callable[[WBEntry, Callable[[int], None]], None],
        on_perform: Callable[["WBEntry", int], None],
        max_outstanding: int = 4,
        require_verified: bool = False,
    ):
        self.node = node
        self.capacity = capacity
        self.in_order = in_order
        self.stats = stats
        self._issue = issue
        self._on_perform = on_perform
        self.max_outstanding = 1 if in_order else max_outstanding
        self.require_verified = require_verified
        #: WaitSet notified when a store performs (set by the owning
        #: core): frees buffer space and clears drain/ordering gates.
        self.wakes = None
        self._entries: List[WBEntry] = []
        self._outstanding = 0
        self._generation = 0
        self._stat = f"wb.{node}"
        # Precomputed per-event stat keys (f-string assembly is
        # measurable at insert/forward/issue call rates).
        self._h_inserts = stats.handle(f"wb.{node}.inserts")
        self._h_forwards = stats.handle(f"wb.{node}.forwards")
        self._h_issues = stats.handle(f"wb.{node}.issues")
        self._h_performs = stats.handle(f"wb.{node}.performs")
        self._values = stats.values

    # -- occupancy ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries and self._outstanding == 0

    def entries(self) -> List[WBEntry]:
        """Live entries (fault injection targets these)."""
        return list(self._entries)

    def has_store_older_than(self, seq: int) -> bool:
        """Any unperformed store with sequence number below ``seq``?"""
        # Plain loop, not any(genexpr): this is the per-poll gate of
        # every blocked operation and the generator frame dominates.
        for e in self._entries:
            if e.seq < seq:
                return True
        return False

    # -- core-facing -----------------------------------------------------------
    def insert(self, seq: int, addr: int, value: int) -> WBEntry:
        """Append a committed store.  Caller must check :attr:`full`."""
        entry = WBEntry(seq, addr, value, self._generation)
        self._entries.append(entry)
        self._values[self._h_inserts] += 1
        return entry

    def fence(self) -> None:
        """Close the current generation (Stbar / Membar #SS)."""
        self._generation += 1

    def mark_verified(self, seq: int) -> None:
        """The UO checker replayed this store; it may now drain."""
        for entry in self._entries:
            if entry.seq == seq:
                entry.verified = True
                return

    def forward(self, addr: int) -> Optional[int]:
        """Youngest buffered value for the word at ``addr``, if any."""
        if not self._entries:
            return None
        word = word_of(addr)
        value = None
        for entry in self._entries:  # oldest -> youngest
            if word_of(entry.addr) == word:
                value = entry.value
        if value is not None:
            self._values[self._h_forwards] += 1
        return value

    # -- draining -----------------------------------------------------------
    def _eligible(self) -> List[WBEntry]:
        """Entries allowed to issue right now."""
        entries = self._entries
        if not entries:
            return []
        if self.in_order:
            # In-order policy: only the head may ever issue, so the
            # pending/verified list builds reduce to two flag checks.
            # (With the head issued, or unverified under
            # ``require_verified``, no younger entry is eligible either
            # way — matching the general path's answer.)
            head = entries[0]
            if head.issued or (self.require_verified and not head.verified):
                return []
            return [head]
        pending = [e for e in entries if not e.issued]
        if not pending:
            return []
        if self.require_verified:
            pending = [e for e in pending if e.verified]
            if not pending:
                return []
        oldest_gen = min(e.generation for e in self._entries)
        eligible = [e for e in pending if e.generation == oldest_gen]
        # Same-word program order: only the oldest entry per word may
        # issue (younger same-word stores coalesce behind it), and a
        # word with an issued-but-unperformed store blocks its younger
        # stores entirely.
        busy_words = {word_of(e.addr) for e in self._entries if e.issued}
        seen: Dict[int, WBEntry] = {}
        out = []
        for e in eligible:
            w = word_of(e.addr)
            if w in busy_words:
                continue
            if w not in seen:
                seen[w] = e
                out.append(e)
        return out

    def drain(self, may_issue: Callable[[WBEntry], bool]) -> None:
        """Issue eligible entries whose external constraints pass.

        ``may_issue`` lets the core veto drains that would violate the
        ordering table (e.g. TSO's Load->Store constraint while an older
        load has not performed).
        """
        if self.in_order:
            # Head-only policy with max_outstanding == 1: the general
            # path's list builds collapse to flag checks on the head.
            if self._outstanding:
                return
            entries = self._entries
            if not entries:
                return
            head = entries[0]
            if (
                head.issued
                or (self.require_verified and not head.verified)
                or not may_issue(head)
            ):
                return
            head.issued = True
            self._outstanding += 1
            self._values[self._h_issues] += 1
            self._issue(head, lambda old, e=head: self._performed(e, old))
            return
        while self._outstanding < self.max_outstanding:
            if not self._entries:
                return
            candidates = [e for e in self._eligible() if may_issue(e)]
            if not candidates:
                return

            # Issue-policy: favour the block with the most queued
            # stores (maximises coalescing), oldest entry first.
            def block_weight(e: WBEntry) -> int:
                return sum(
                    1
                    for x in self._entries
                    if block_of(x.addr) == block_of(e.addr)
                )

            entry = max(candidates, key=lambda e: (block_weight(e), -e.seq))
            entry.issued = True
            self._outstanding += 1
            self._values[self._h_issues] += 1
            self._issue(entry, lambda old, e=entry: self._performed(e, old))

    def _performed(self, entry: WBEntry, old_value: int) -> None:
        self._outstanding -= 1
        self._entries.remove(entry)
        self._values[self._h_performs] += 1
        self._on_perform(entry, old_value)
        # After on_perform so waiters re-check against the fully
        # updated state (checker + ROB bookkeeping included).  Covers
        # the retired-store case _mark_performed never sees.
        if self.wakes is not None:
            self.wakes.notify()

    # -- fault injection ----------------------------------------------------
    def corrupt_entry(self, index: int, addr_xor: int = 0, value_xor: int = 0) -> bool:
        """Flip bits in a buffered store (paper's WB data/address faults)."""
        if not 0 <= index < len(self._entries):
            return False
        entry = self._entries[index]
        entry.addr ^= addr_xor
        entry.value ^= value_xor
        self.stats.incr(f"{self._stat}.corruptions")
        return True

    def illegal_reorder(self) -> bool:
        """Swap the two oldest entries (paper's WB reordering fault).

        Under TSO this silently breaks the in-order drain contract —
        exactly the class of error DVMC's AR checker must catch.
        """
        pending = [i for i, e in enumerate(self._entries) if not e.issued]
        if len(pending) < 2:
            return False
        i, j = pending[0], pending[1]
        self._entries[i], self._entries[j] = self._entries[j], self._entries[i]
        # Make the swap effective under every policy: merge generations.
        gen = min(self._entries[i].generation, self._entries[j].generation)
        self._entries[i].generation = gen
        self._entries[j].generation = gen
        self.stats.incr(f"{self._stat}.corruptions")
        return True
