"""Allowable Reordering checker (paper Section 4.2).

Every instruction gets a sequence number at decode (its program-order
rank).  When an operation performs, the checker verifies that no
*younger* operation of a constrained type performed earlier, using one
``max{OP}`` counter per operation type — plus one counter per Membar
mask bit, so a Membar only constrains the access kinds its mask names.

Lost operations are detected by comparing committed against performed
operations at Membar points; because real Membars can be arbitrarily
rare, artificial membar checks are injected periodically (paper: about
one per 100k cycles, negligible cost, no effect on correctness).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict

from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.common.types import MembarMask, OpType, ViolationReport
from repro.config import SystemConfig
from repro.consistency.ordering_table import OrderingTable

_MASK_BITS = (
    MembarMask.LOADLOAD,
    MembarMask.LOADSTORE,
    MembarMask.STORELOAD,
    MembarMask.STORESTORE,
)


class AllowableReorderingChecker:
    """Per-core AR checker.

    ``table`` is provided through a zero-argument callable so that
    SPARC v9's runtime consistency-model switching (PSTATE.MM) is
    honoured: the checker always consults the table active *now*.
    """

    def __init__(
        self,
        node: int,
        scheduler: Scheduler,
        stats: StatsRegistry,
        config: SystemConfig,
        table: Callable[[], OrderingTable],
        violations: Callable[[ViolationReport], None],
    ):
        self.node = node
        self.scheduler = scheduler
        self.stats = stats
        self.config = config
        self.table = table
        self.violations = violations
        self._max: Dict[OpType, int] = {t: -1 for t in OpType}
        self._membar_bit_max: Dict[MembarMask, int] = {b: -1 for b in _MASK_BITS}
        #: Precompiled per-(table, op type, mask) check plans: the
        #: table/mask algebra in :meth:`performed` is a pure function
        #: of its arguments, so it is folded into a flat list of
        #: counter comparisons the first time each combination is seen.
        self._plans: Dict[tuple, tuple] = {}
        #: committed-but-not-yet-performed operations, insertion ordered.
        self._outstanding: "OrderedDict[int, tuple]" = OrderedDict()
        self._stat = f"ar.{node}"
        self._interval = config.dvmc.membar_injection_interval
        #: Set by the system builder; used by the progress watchdog.
        self.core = None
        scheduler.after(self._interval, self._injected_membar_check)

    # -- event feed -----------------------------------------------------------
    def committed(self, op_type: OpType, seq: int, cycle: int) -> None:
        """An operation committed; it must eventually perform."""
        if op_type.is_memory_access():
            self._outstanding[seq] = (op_type, cycle)

    def performed(self, op_type: OpType, seq: int, mask: MembarMask) -> None:
        """An operation performed; check it against the ordering table."""
        self._outstanding.pop(seq, None)
        table = self.table()
        plan = self._plans.get((table, op_type, mask))
        if plan is None:
            plan = self._compile_plan(table, op_type, mask)
        checks, targets, bar_bits = plan
        # ``bit is None`` entries compare against the per-type max;
        # membar entries compare against the per-mask-bit max.
        bit_max = self._membar_bit_max
        type_max = self._max
        for target, second, bit in checks:
            if bit is None:
                if type_max[second] > seq:
                    self._violate(target, second, seq)
            elif bit_max[bit] > seq:
                self._violate(target, OpType.MEMBAR, seq)
        # Update the max counters.
        for target in targets:
            if seq > type_max[target]:
                type_max[target] = seq
        for bit in bar_bits:
            if seq > bit_max[bit]:
                bit_max[bit] = seq

    def _compile_plan(
        self, table: OrderingTable, op_type: OpType, mask: MembarMask
    ) -> tuple:
        """Fold the ordering-table lookups for (op_type, mask) into a
        flat comparison list, preserving the original check order."""
        first_mask = mask if op_type is OpType.MEMBAR else MembarMask.ALL
        access_targets = (
            op_type.access_types() if op_type is OpType.ATOMIC else (op_type,)
        )
        checks = []
        for target in access_targets:
            for second in table.op_types:
                if second is OpType.MEMBAR:
                    # Per-bit counters: only membars whose mask shares a
                    # bit with this cell constrain `target`.
                    cell = table.cell(target, OpType.MEMBAR)
                    for bit in _MASK_BITS:
                        if cell & bit & first_mask:
                            checks.append((target, OpType.MEMBAR, bit))
                elif table.ordered(target, second, first_mask=first_mask):
                    checks.append((target, second, None))
        bar_bits = (
            [bit for bit in _MASK_BITS if mask & bit]
            if op_type is OpType.MEMBAR
            else []
        )
        plan = (tuple(checks), tuple(access_targets), tuple(bar_bits))
        self._plans[(table, op_type, mask)] = plan
        return plan

    # -- lost-operation detection ------------------------------------------------
    def check_outstanding(self) -> None:
        """Membar-point check: committed operations older than the
        injection interval should long since have performed."""
        now = self.scheduler.now
        stale = [
            (seq, op_type, cycle)
            for seq, (op_type, cycle) in self._outstanding.items()
            if now - cycle > self._interval
        ]
        for seq, op_type, cycle in stale:
            self._outstanding.pop(seq, None)
            self.stats.incr(f"{self._stat}.violations")
            self.violations(
                ViolationReport(
                    "AR",
                    now,
                    self.node,
                    "lost-operation",
                    f"{op_type.value} seq {seq} committed at cycle {cycle} "
                    f"never performed",
                )
            )

    def _injected_membar_check(self) -> None:
        self.stats.incr(f"{self._stat}.injected_membars")
        self.check_outstanding()
        self._watchdog()
        # Re-arm only while something else can still happen: other
        # queued events, unperformed operations to watch, or a core
        # that has not finished its workload.  An unconditional
        # reschedule keeps a bare ``Scheduler.run()`` from ever
        # draining the queue once the machine is otherwise done.
        if (
            self.scheduler.pending()
            or self._outstanding
            or (self.core is not None and not self.core.quiescent)
        ):
            self.scheduler.after(self._interval, self._injected_membar_check)

    def _watchdog(self) -> None:
        """Catch operations lost before commit (e.g. a dropped data
        response leaves a load stuck in execute forever): a core with
        unfinished work but no progress for several membar-injection
        intervals has lost an operation."""
        core = self.core
        if core is None or core.quiescent:
            return
        stalled = self.scheduler.now - core.last_progress_cycle
        if stalled > 3 * self._interval:
            self.stats.incr(f"{self._stat}.violations")
            self.violations(
                ViolationReport(
                    "AR",
                    self.scheduler.now,
                    self.node,
                    "lost-operation",
                    f"core {self.node} made no progress for {stalled} cycles",
                )
            )

    # -- internals -----------------------------------------------------------
    def _violate(self, first: OpType, second: OpType, seq: int) -> None:
        self.stats.incr(f"{self._stat}.violations")
        self.violations(
            ViolationReport(
                "AR",
                self.scheduler.now,
                self.node,
                "illegal-reordering",
                f"{first.value} seq {seq} performed after a younger "
                f"{second.value} it is ordered before",
            )
        )

    @property
    def outstanding_count(self) -> int:
        return len(self._outstanding)
