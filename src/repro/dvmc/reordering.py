"""Allowable Reordering checker (paper Section 4.2).

Every instruction gets a sequence number at decode (its program-order
rank).  When an operation performs, the checker verifies that no
*younger* operation of a constrained type performed earlier, using one
``max{OP}`` counter per operation type — plus one counter per Membar
mask bit, so a Membar only constrains the access kinds its mask names.

Lost operations are detected by comparing committed against performed
operations at Membar points; because real Membars can be arbitrarily
rare, artificial membar checks are injected periodically (paper: about
one per 100k cycles, negligible cost, no effect on correctness).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional

from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.common.types import MembarMask, OpType, ViolationReport
from repro.config import SystemConfig
from repro.consistency.ordering_table import OrderingTable
from repro.dvmc.streaming import OpLog, RECORD_WIDTH
from repro.obs.spans import K_AR

_MASK_BITS = (
    MembarMask.LOADLOAD,
    MembarMask.LOADSTORE,
    MembarMask.STORELOAD,
    MembarMask.STORESTORE,
)

#: Integer encodings for the streaming log (see :mod:`repro.dvmc.streaming`).
_OP_CODE = {op: i for i, op in enumerate(OpType)}
_OP_FROM_CODE = tuple(OpType)
_MASK_FROM_BITS = tuple(MembarMask(v) for v in range(16))
_REC_COMMITTED = 0
_REC_PERFORMED = 1


class AllowableReorderingChecker:
    """Per-core AR checker.

    ``table`` is provided through a zero-argument callable so that
    SPARC v9's runtime consistency-model switching (PSTATE.MM) is
    honoured: the checker always consults the table active *now*.
    """

    def __init__(
        self,
        node: int,
        scheduler: Scheduler,
        stats: StatsRegistry,
        config: SystemConfig,
        table: Callable[[], OrderingTable],
        violations: Callable[[ViolationReport], None],
    ):
        self.node = node
        self.scheduler = scheduler
        self.stats = stats
        self.config = config
        self.table = table
        self.violations = violations
        self._max: Dict[OpType, int] = {t: -1 for t in OpType}
        self._membar_bit_max: Dict[MembarMask, int] = {b: -1 for b in _MASK_BITS}
        #: Precompiled per-(table, op type, mask) check plans: the
        #: table/mask algebra in :meth:`performed` is a pure function
        #: of its arguments, so it is folded into a flat list of
        #: counter comparisons the first time each combination is seen.
        self._plans: Dict[tuple, tuple] = {}
        #: committed-but-not-yet-performed operations, insertion ordered.
        self._outstanding: "OrderedDict[int, tuple]" = OrderedDict()
        self._stat = f"ar.{node}"
        self._stat_violations = f"ar.{node}.violations"
        self._stat_injected = f"ar.{node}.injected_membars"
        self._interval = config.dvmc.membar_injection_interval
        #: Set by the system builder; used by the progress watchdog.
        self.core = None
        #: Streaming-plane state (see :mod:`repro.dvmc.streaming`).
        #: With no log attached the checker is eager (per-event checks,
        #: the mode unit tests and ``REPRO_EAGER_CHECK=1`` use); with a
        #: log, ``committed``/``performed`` append ints-only records
        #: and :meth:`drain_log` replays a whole segment in one call.
        self._log: Optional[OpLog] = None
        #: Ordering-table registry: tables are long-lived singletons
        #: (``table_for`` memoises them), so a small id <-> table map
        #: lets a log record pin the table active at *record* time even
        #: if PSTATE.MM switches the core's table before the drain.
        self._tables: list = []
        self._table_ids: Dict[int, int] = {}
        # Observability (repro.obs): raw drain-depth ints, maintained
        # only when attached — the drain itself is already off the hot
        # path, so this is a few adds per segment, not per record.
        self._obs_on = False
        self._obs_drains = 0
        self._obs_drained_records = 0
        self._obs_drain_max = 0
        #: Flight recorder (None unless REPRO_OBS_SPANS; see obs.spans).
        self.spans = None
        self._span_track = 0
        scheduler.post(self._interval, self._injected_membar_check)

    def attach_spans(self, spans) -> None:
        """Attach the flight recorder; AR verdicts share one track."""
        self.spans = spans
        self._span_track = spans.track("checker.ar")

    def attach_obs(self) -> None:
        """Start recording streaming-log drain depths."""
        self._obs_on = True

    def obs_snapshot(self) -> dict:
        """Observable interface: streaming-plane and checker state."""
        drains = self._obs_drains
        return {
            "mode": "eager" if self._log is None else "streaming",
            "log_fill_records": 0 if self._log is None else len(self._log),
            "log_capacity_records": (
                0 if self._log is None else self._log.capacity // 6
            ),
            "drains": drains,
            "drained_records": self._obs_drained_records,
            "drain_depth_mean": (
                self._obs_drained_records / drains if drains else 0.0
            ),
            "drain_depth_max": self._obs_drain_max,
            "outstanding": len(self._outstanding),
            "compiled_plans": len(self._plans),
            "injected_membars": self.stats.counter(self._stat_injected),
            "violations": self.stats.counter(self._stat_violations),
        }

    # -- streaming plane ------------------------------------------------------
    def attach_log(self, log: Optional[OpLog] = None) -> OpLog:
        """Switch to batch mode: record operations, check at drains."""
        self.drain_log()
        self._log = log if log is not None else OpLog()
        return self._log

    def _table_id(self) -> int:
        table = self.table()
        tid = self._table_ids.get(id(table))
        if tid is None:
            tid = len(self._tables)
            self._tables.append(table)  # keeps the id() pin alive
            self._table_ids[id(table)] = tid
        return tid

    def drain_log(self) -> None:
        """Batch entry point: replay every buffered record in one call.

        The drain performs exactly the checks the eager path would have
        made, against the table and cycle captured when each record was
        appended, so violations and stats are bit-identical between the
        two modes.
        """
        log = self._log
        if log is None or log.length == 0:
            return
        buf = log.buf
        end = log.length
        log.length = 0
        if self._obs_on:
            records = end // RECORD_WIDTH
            self._obs_drains += 1
            self._obs_drained_records += records
            if records > self._obs_drain_max:
                self._obs_drain_max = records
        outstanding = self._outstanding
        ops = _OP_FROM_CODE
        masks = _MASK_FROM_BITS
        tables = self._tables
        performed_at = self._performed_at
        i = 0
        while i < end:
            if buf[i] == _REC_COMMITTED:
                outstanding[buf[i + 2]] = (ops[buf[i + 1]], buf[i + 3])
            else:
                performed_at(
                    ops[buf[i + 1]],
                    buf[i + 2],
                    masks[buf[i + 3]],
                    tables[buf[i + 4]],
                    buf[i + 5],
                )
            i += 6

    # -- event feed -----------------------------------------------------------
    def committed(self, op_type: OpType, seq: int, cycle: int) -> None:
        """An operation committed; it must eventually perform."""
        if op_type.is_memory_access():
            log = self._log
            if log is not None:
                n = log.length
                if n == log.capacity:
                    self.drain_log()
                    n = 0
                buf = log.buf
                buf[n] = _REC_COMMITTED
                buf[n + 1] = _OP_CODE[op_type]
                buf[n + 2] = seq
                buf[n + 3] = cycle
                log.length = n + 6
                return
            self._outstanding[seq] = (op_type, cycle)

    def performed(self, op_type: OpType, seq: int, mask: MembarMask) -> None:
        """An operation performed; check it against the ordering table."""
        log = self._log
        if log is not None:
            n = log.length
            if n == log.capacity:
                self.drain_log()
                n = 0
            buf = log.buf
            buf[n] = _REC_PERFORMED
            buf[n + 1] = _OP_CODE[op_type]
            buf[n + 2] = seq
            buf[n + 3] = mask
            buf[n + 4] = self._table_id()
            buf[n + 5] = self.scheduler.now
            log.length = n + 6
            return
        self._performed_at(op_type, seq, mask, self.table(), self.scheduler.now)

    def _performed_at(
        self,
        op_type: OpType,
        seq: int,
        mask: MembarMask,
        table: OrderingTable,
        cycle: int,
    ) -> None:
        self._outstanding.pop(seq, None)
        s = self.spans
        if s is not None:
            tid = s.tid_for(self.node, seq)
            if tid:
                # The AR verdict point: this op's reorder window closed.
                s.instant(
                    tid, self._span_track, K_AR, cycle,
                    _OP_CODE[op_type], seq, self.node,
                )
        plan = self._plans.get((table, op_type, mask))
        if plan is None:
            plan = self._compile_plan(table, op_type, mask)
        checks, targets, bar_bits = plan
        # ``bit is None`` entries compare against the per-type max;
        # membar entries compare against the per-mask-bit max.
        bit_max = self._membar_bit_max
        type_max = self._max
        for target, second, bit in checks:
            if bit is None:
                if type_max[second] > seq:
                    self._violate(target, second, seq, cycle)
            elif bit_max[bit] > seq:
                self._violate(target, OpType.MEMBAR, seq, cycle)
        # Update the max counters.
        for target in targets:
            if seq > type_max[target]:
                type_max[target] = seq
        for bit in bar_bits:
            if seq > bit_max[bit]:
                bit_max[bit] = seq

    def _compile_plan(
        self, table: OrderingTable, op_type: OpType, mask: MembarMask
    ) -> tuple:
        """Fold the ordering-table lookups for (op_type, mask) into a
        flat comparison list, preserving the original check order."""
        first_mask = mask if op_type is OpType.MEMBAR else MembarMask.ALL
        access_targets = (
            op_type.access_types() if op_type is OpType.ATOMIC else (op_type,)
        )
        checks = []
        for target in access_targets:
            for second in table.op_types:
                if second is OpType.MEMBAR:
                    # Per-bit counters: only membars whose mask shares a
                    # bit with this cell constrain `target`.
                    cell = table.cell(target, OpType.MEMBAR)
                    for bit in _MASK_BITS:
                        if cell & bit & first_mask:
                            checks.append((target, OpType.MEMBAR, bit))
                elif table.ordered(target, second, first_mask=first_mask):
                    checks.append((target, second, None))
        bar_bits = (
            [bit for bit in _MASK_BITS if mask & bit]
            if op_type is OpType.MEMBAR
            else []
        )
        plan = (tuple(checks), tuple(access_targets), tuple(bar_bits))
        self._plans[(table, op_type, mask)] = plan
        return plan

    # -- lost-operation detection ------------------------------------------------
    def check_outstanding(self) -> None:
        """Membar-point check: committed operations older than the
        injection interval should long since have performed."""
        self.drain_log()
        now = self.scheduler.now
        stale = [
            (seq, op_type, cycle)
            for seq, (op_type, cycle) in self._outstanding.items()
            if now - cycle > self._interval
        ]
        for seq, op_type, cycle in stale:
            self._outstanding.pop(seq, None)
            self.stats.incr(self._stat_violations)
            detail = (
                f"{op_type.value} seq {seq} committed at cycle {cycle} "
                f"never performed"
            )
            s = self.spans
            if s is not None:
                s.violation("AR", self.node, now, seq=seq, detail=detail)
            self.violations(
                ViolationReport(
                    "AR",
                    now,
                    self.node,
                    "lost-operation",
                    detail,
                )
            )

    def _injected_membar_check(self) -> None:
        self.stats.incr(self._stat_injected)
        self.check_outstanding()
        self._watchdog()
        # Re-arm only while something else can still happen: other
        # queued events, unperformed operations to watch, or a core
        # that has not finished its workload.  An unconditional
        # reschedule keeps a bare ``Scheduler.run()`` from ever
        # draining the queue once the machine is otherwise done.
        if (
            self.scheduler.pending()
            or self._outstanding
            or (self.core is not None and not self.core.quiescent)
        ):
            self.scheduler.post(self._interval, self._injected_membar_check)

    def _watchdog(self) -> None:
        """Catch operations lost before commit (e.g. a dropped data
        response leaves a load stuck in execute forever): a core with
        unfinished work but no progress for several membar-injection
        intervals has lost an operation."""
        core = self.core
        if core is None or core.quiescent:
            return
        stalled = self.scheduler.now - core.last_progress_cycle
        if stalled > 3 * self._interval:
            self.stats.incr(self._stat_violations)
            detail = f"core {self.node} made no progress for {stalled} cycles"
            s = self.spans
            if s is not None:
                s.violation("AR", self.node, self.scheduler.now, detail=detail)
            self.violations(
                ViolationReport(
                    "AR",
                    self.scheduler.now,
                    self.node,
                    "lost-operation",
                    detail,
                )
            )

    # -- internals -----------------------------------------------------------
    def _violate(
        self, first: OpType, second: OpType, seq: int, cycle: int
    ) -> None:
        self.stats.incr(self._stat_violations)
        detail = (
            f"{first.value} seq {seq} performed after a younger "
            f"{second.value} it is ordered before"
        )
        s = self.spans
        if s is not None:
            s.violation("AR", self.node, cycle, seq=seq, detail=detail)
        self.violations(
            ViolationReport(
                "AR",
                cycle,
                self.node,
                "illegal-reordering",
                detail,
            )
        )

    @property
    def outstanding_count(self) -> int:
        self.drain_log()
        return len(self._outstanding)
