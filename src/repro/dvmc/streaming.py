"""Streaming verification plane: batch DVMC checking off the hot loop.

The simulator's hot loop used to pay the full checker cost on every
committed/performed operation.  This module provides the log substrate
that moves the *pure observer* part of that work off the per-event
path:

* Cores append ints-only records into a preallocated ``array``-backed
  :class:`OpLog` (no per-operation object allocation, no dict churn).
* The owning checker drains a whole log segment in one call at its
  natural observation points (membar-injection heartbeats, log-full,
  ``DVMC.finalize``), with attribute lookups hoisted out of the loop.

Only verification that feeds *nothing* back into the simulation may be
deferred this way.  The Allowable Reordering checker qualifies: it is a
pure function from the (op type, seq, mask, cycle) stream to violation
reports and max-counter updates.  The Uniprocessor Ordering checker
does **not** qualify — VC backpressure stalls the verify stage and
replays read the live L1 — so it stays synchronous and instead gains a
batch entry point (:meth:`~repro.dvmc.uniprocessor.
UniprocessorOrderingChecker.commit_stores`) that drains a run of the
verify queue in one call.  The Coherence checker's inform stream is
already deferred architecturally (the MET's begin-sorted priority
queue); its batch path lives in
:meth:`~repro.dvmc.coherence_checker.CoherenceChecker.handle_batch`.

Because every record carries the cycle at which the event was
*observed*, a drained checker reports the same violations with the
same timestamps as an eager one; ``REPRO_EAGER_CHECK=1`` disables log
attachment entirely and the two modes are bit-identical (violations
and stats), which the performance benchmark asserts.
"""

from __future__ import annotations

from array import array
from typing import Callable, Optional

#: Ints per record.  All logs use one fixed record width so a drain
#: loop is a single stride walk over the backing array.
RECORD_WIDTH = 6

#: Default log capacity in records.  A segment this size amortises the
#: per-drain overhead thousands of ways while staying small enough
#: (~192 KiB) to be cache-friendly.
LOG_RECORDS = 4096


class OpLog:
    """Preallocated ring of fixed-width integer records.

    The log is deliberately dumb: the owning checker writes fields
    directly into :attr:`buf` at offset :attr:`length` and bumps
    ``length`` by :data:`RECORD_WIDTH` (inlined at the call site — one
    method call per record would defeat the purpose).  When an append
    finds the log full, the owner drains it in place and restarts at
    offset zero, so ``buf`` never reallocates and record tuples are
    never materialised.
    """

    __slots__ = ("buf", "length", "capacity", "on_full")

    def __init__(
        self,
        records: int = LOG_RECORDS,
        on_full: Optional[Callable[[], None]] = None,
    ):
        self.capacity = records * RECORD_WIDTH
        #: Signed 64-bit storage: every logged field (op codes, sequence
        #: numbers, membar masks, table ids, cycles) is a machine int.
        self.buf = array("q", bytes(8 * self.capacity))
        self.length = 0
        self.on_full = on_full

    def __len__(self) -> int:
        return self.length // RECORD_WIDTH

    @property
    def full(self) -> bool:
        return self.length >= self.capacity

    def clear(self) -> None:
        self.length = 0

    def stats(self) -> dict:
        """Observable interface: fill level in records, not array slots."""
        return {
            "records": self.length // RECORD_WIDTH,
            "capacity_records": self.capacity // RECORD_WIDTH,
            "fill": (self.length / self.capacity) if self.capacity else 0.0,
        }
