"""Sorted interval index for the MET's epoch-overlap rule (Plakal rule 2).

The Memory Epoch Table processes Inform-Epochs in epoch-begin order and
must flag any Read-Write epoch that overlaps another epoch of the same
block.  This module provides the begin-sorted index backing that check:
intervals are kept in begin order alongside a prefix-maximum of their
end times, so an overlap query is one ``bisect`` plus one compare —
O(log n) per inform — instead of a scan over the block's epoch history.

For a begin-sorted inform stream the index is *provably equivalent* to
the brute-force pairwise overlap scan (the property test in
``tests/dvmc/test_interval_index.py`` checks this on randomised epoch
sets): every stored interval has ``begin_i <= begin``, so ``[begin,
end)`` overlaps some stored interval iff ``begin < max(end_i)`` over
intervals with ``begin_i < end`` — exactly what the prefix maximum
answers.  For out-of-order stragglers (informs force-drained past the
MET's sorting slack) the index is strictly more precise than the old
per-block scalar watermark: it only flags *actual* overlaps.

The index is bounded: :meth:`drop_oldest` folds the oldest intervals
into a single scalar watermark (their maximum end), which is exactly
the 48-bit hardware summary the paper's MET keeps — so a pruned index
degrades gracefully to the hardware-faithful conservative check rather
than losing violations.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional


class IntervalIndex:
    """Begin-sorted intervals ``[begin, end)`` with O(log n) overlap query."""

    __slots__ = ("_begins", "_ends", "_maxend")

    def __init__(self) -> None:
        self._begins: List[int] = []
        self._ends: List[int] = []
        #: ``_maxend[i]`` = max of ``_ends[:i+1]`` (nondecreasing).
        self._maxend: List[int] = []

    def __len__(self) -> int:
        return len(self._begins)

    def add(self, begin: int, end: int) -> None:
        """Insert ``[begin, end)``; O(1) amortised for sorted streams."""
        begins = self._begins
        maxend = self._maxend
        if not begins or begin >= begins[-1]:
            begins.append(begin)
            self._ends.append(end)
            maxend.append(end if not maxend or end > maxend[-1] else maxend[-1])
            return
        # Straggler insert (rare: only force-drained out-of-order
        # informs land here); rebuild the prefix max from the slot.
        i = bisect_left(begins, begin)
        begins.insert(i, begin)
        self._ends.insert(i, end)
        maxend.insert(i, 0)
        running = maxend[i - 1] if i > 0 else None
        ends = self._ends
        for j in range(i, len(begins)):
            e = ends[j]
            if running is None or e > running:
                running = e
            maxend[j] = running

    def max_overlap_end(self, begin: int, end: int) -> Optional[int]:
        """Largest end among intervals overlapping ``[begin, end)``.

        Returns None when nothing overlaps.  Overlap is half-open:
        an interval ending exactly at ``begin`` does not conflict.
        """
        i = bisect_left(self._begins, end)  # candidates have begin_i < end
        if i == 0:
            return None
        m = self._maxend[i - 1]
        return m if m > begin else None

    def max_end(self) -> Optional[int]:
        """Largest stored end (for open epochs: overlap vs ``[begin, inf)``)."""
        return self._maxend[-1] if self._maxend else None

    def drop_oldest(self, keep: int) -> Optional[int]:
        """Bound the index: fold all but the newest ``keep`` intervals
        into their max end (the caller merges it into its scalar
        watermark) and return it; None when nothing was dropped."""
        drop = len(self._begins) - keep
        if drop <= 0:
            return None
        folded = self._maxend[drop - 1]
        del self._begins[:drop]
        del self._ends[:drop]
        del self._maxend[:drop]
        running = None
        ends = self._ends
        maxend = self._maxend
        for j, e in enumerate(ends):
            if running is None or e > running:
                running = e
            maxend[j] = running
        return folded

    def intervals(self) -> List[tuple]:
        """All stored ``(begin, end)`` pairs (test introspection)."""
        return list(zip(self._begins, self._ends))
