"""Uniprocessor Ordering checker (paper Section 4.1).

Every committed memory operation is replayed in program order in the
verification stage.  Stores are speculative during replay and write a
dedicated **Verification Cache (VC)** instead of architectural state;
replayed loads read the VC first and fall back to the L1 (bypassing the
write buffer).  A replayed load value differing from the original
execution signals a Uniprocessor Ordering violation — unless the block
was invalidated while the load was speculative, in which case the core
treats it as load-order mis-speculation and squashes (paper 4.1).

A VC entry for word *w* is allocated when a store to *w* commits and
freed when the store performs; at deallocation the value written to the
cache must equal the VC value (Appendix A, Proof 1).  Under RMO, load
values may live in the VC after execution and satisfy replays without
touching the L1 (the paper's single-thread-verification optimisation),
which is why RMO shows no replay misses.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.common.types import ViolationReport, word_of
from repro.config import SystemConfig
from repro.obs.spans import K_REPLAY, K_UO


class VCEntry:
    """Per-word VC state: latest committed value + outstanding stores.

    ``load_seq`` marks entries whose value was deposited by an executed
    load (the RMO optimisation) rather than a committed store; replays
    only compare against a load-deposited value if it is the replaying
    load's own (a younger load may legally have observed a different
    value from a remote writer).
    """

    __slots__ = (
        "value",
        "count",
        "oldest_commit_cycle",
        "last_used",
        "load_seq",
        "store_seq",
        "reported",
    )

    def __init__(self, value: int, count: int, cycle: int, load_seq=None):
        self.value = value
        self.count = count  # committed-but-unperformed stores to this word
        self.oldest_commit_cycle = cycle
        self.last_used = cycle
        self.load_seq = load_seq
        #: Program-order seq of the newest committed store held in
        #: ``value``.  An older load's replay can be delayed past a
        #: younger store's commit (the verify pump keeps running while
        #: the replay's stage latency elapses); the seq makes such a
        #: replay skip its vacuous compare instead of flagging the
        #: younger value as a mismatch.
        self.store_seq: Optional[int] = None
        self.reported = False  # store-lost already reported at least once


class UniprocessorOrderingChecker:
    """Per-core UO checker owning the Verification Cache."""

    def __init__(
        self,
        node: int,
        scheduler: Scheduler,
        stats: StatsRegistry,
        config: SystemConfig,
        controller,
        violations: Callable[[ViolationReport], None],
        rmo_mode: bool,
    ):
        self.node = node
        self.scheduler = scheduler
        self.stats = stats
        self.config = config
        self.controller = controller
        self.violations = violations
        #: RMO optimisation: keep executed load values in the VC.
        self.rmo_mode = rmo_mode
        #: WaitSet notified when a live VC entry frees (set by the
        #: builder): VC backpressure is one of the verify pump's
        #: parking conditions.
        self.wakes = None
        self._vc: Dict[int, VCEntry] = {}
        self._capacity = config.dvmc.verification_cache_entries
        self._stat = f"uo.{node}"
        # Precomputed per-event stat keys (the replay/commit paths run
        # once per memory operation).
        self._stat_store_allocs = f"uo.{node}.vc_store_allocs"
        self._stat_vc_hits = f"uo.{node}.replay_vc_hits"
        self._stat_stale = f"uo.{node}.replay_stale_entries"
        self._stat_cache_reads = f"uo.{node}.replay_cache_reads"
        # Handle plane for the per-operation increments; the string
        # keys above remain the obs_snapshot read keys.
        self._h_store_allocs = stats.handle(self._stat_store_allocs)
        self._h_vc_hits = stats.handle(self._stat_vc_hits)
        self._h_cache_reads = stats.handle(self._stat_cache_reads)
        self._values = stats.values
        self._scan_interval = config.dvmc.membar_injection_interval
        #: Flight recorder (None unless REPRO_OBS_SPANS; see obs.spans).
        self.spans = None
        self._span_track = 0
        scheduler.post(self._scan_interval, self._scan_stale)

    def attach_spans(self, spans) -> None:
        """Attach the flight recorder; UO verdicts share one track."""
        self.spans = spans
        self._span_track = spans.track("checker.uo")

    # -- store path --------------------------------------------------------
    def commit_store(self, seq: int, addr: int, value: int) -> bool:
        """Replay a committed store into the VC.

        Returns False when the VC is full of live store entries; the
        verification stage must stall and retry (backpressure).
        """
        word = word_of(addr)
        entry = self._vc.get(word)
        now = self.scheduler.now
        if entry is None:
            if len(self._vc) >= self._capacity and not self._evict_clean():
                return False
            entry = VCEntry(value, 0, now)
            self._vc[word] = entry
        if entry.count == 0:
            entry.oldest_commit_cycle = now
        entry.value = value
        entry.count += 1
        entry.last_used = now
        entry.load_seq = None
        entry.store_seq = seq
        self._values[self._h_store_allocs] += 1
        s = self.spans
        if s is not None:
            tid = s.tid_for(self.node, seq)
            if tid:
                s.instant(
                    tid, self._span_track, K_UO, now, addr, seq, self.node
                )
        return True

    def commit_stores(self, records) -> int:
        """Batch entry point: replay a run of committed stores at once.

        ``records`` is a sequence of ``(seq, addr, value)`` tuples in
        program order (a store run from the core's verify queue).  The
        whole segment is drained in one call with the VC dict and the
        clock hoisted out of the loop; semantics are exactly ``N``
        consecutive :meth:`commit_store` calls.  Returns the number of
        stores accepted before VC backpressure stopped the run.
        """
        vc = self._vc
        now = self.scheduler.now
        capacity = self._capacity
        s = self.spans
        done = 0
        for seq, addr, value in records:
            word = addr & ~0x3  # word_of, inlined
            entry = vc.get(word)
            if entry is None:
                if len(vc) >= capacity and not self._evict_clean():
                    break
                entry = VCEntry(value, 0, now)
                vc[word] = entry
            if entry.count == 0:
                entry.oldest_commit_cycle = now
            entry.value = value
            entry.count += 1
            entry.last_used = now
            entry.load_seq = None
            entry.store_seq = seq
            done += 1
            if s is not None:
                tid = s.tid_for(self.node, seq)
                if tid:
                    s.instant(
                        tid, self._span_track, K_UO, now, addr, seq, self.node
                    )
        if done:
            self._values[self._h_store_allocs] += done
        return done

    def store_performed(self, seq: int, addr: int, value_written: int) -> None:
        """A store reached the cache; free its VC entry and check it."""
        word = word_of(addr)
        entry = self._vc.get(word)
        if entry is None or entry.count == 0:
            self._violate(
                "store-no-vc-entry",
                f"store seq {seq} performed at 0x{addr:x} with no live VC entry",
                addr=addr,
                seq=seq,
            )
            return
        entry.count -= 1
        if entry.count == 0:
            if entry.value != value_written:
                self._violate(
                    "store-value-mismatch",
                    f"word 0x{word:x}: cache got 0x{value_written:x}, "
                    f"VC holds 0x{entry.value:x}",
                    addr=addr,
                    seq=seq,
                )
            if self.rmo_mode:
                entry.last_used = self.scheduler.now
            else:
                del self._vc[word]
            # Entry went dead (evictable or gone): a VC-full-stalled
            # verify pump may now make progress.
            if self.wakes is not None:
                self.wakes.notify()

    # -- load path -----------------------------------------------------------
    def note_load_executed(self, addr: int, value: int, seq: Optional[int] = None) -> None:
        """Record an executed load's value (RMO VC optimisation).

        The value recorded is the one supplied by the cache/forwarding
        path *before* any downstream (LSQ) corruption can touch it, so
        a later replay-compare catches wrong-value faults.
        """
        if not self.rmo_mode:
            return
        word = word_of(addr)
        entry = self._vc.get(word)
        if entry is None:
            if len(self._vc) >= self._capacity and not self._evict_clean():
                return  # optimisation only; dropping is safe
            self._vc[word] = VCEntry(value, 0, self.scheduler.now, load_seq=seq)
        elif entry.count == 0:
            entry.value = value
            entry.last_used = self.scheduler.now
            entry.load_seq = seq

    def note_atomic(self, addr: int, new_value: int) -> None:
        """An atomic reached its verification slot: in program order its
        value supersedes any load-deposited value for the word."""
        entry = self._vc.get(word_of(addr))
        if entry is not None and entry.count == 0:
            entry.value = new_value
            entry.last_used = self.scheduler.now
            entry.load_seq = None

    def replay_load(
        self,
        addr: int,
        original_value: Optional[int],
        done: Callable[[bool, int], None],
        seq: Optional[int] = None,
    ) -> None:
        """Replay a committed load; ``done(mismatch, replay_value)``."""
        s = self.spans
        if s is not None and s.cur:
            # The core parks its trace id in ``cur`` around this call.
            s.instant(
                s.cur, self._span_track, K_REPLAY, self.scheduler.now,
                addr, -1 if seq is None else seq, self.node,
            )
        word = word_of(addr)
        entry = self._vc.get(word)
        if entry is not None and entry.count == 0 and not self.rmo_mode:
            # Residual load-value entry from an RMO section; outside RMO
            # only live store entries may satisfy replays.
            entry = None
        if entry is not None:
            entry.last_used = self.scheduler.now
            if entry.load_seq is not None and entry.load_seq != seq:
                # The entry holds a *different* load's observation: the
                # words may legally differ (a remote store intervened
                # between the two loads under RMO); the compare would be
                # vacuous, so skip it.
                self.stats.incr(self._stat_stale)
                done(False, original_value if original_value is not None else 0)
                return
            if (
                seq is not None
                and entry.store_seq is not None
                and entry.store_seq > seq
            ):
                # The VC value was committed by a store *younger* than
                # the replaying load (the pump raced ahead while this
                # replay's stage latency elapsed); the value the load
                # should compare against is gone, so the compare is
                # vacuous.
                self.stats.incr(self._stat_stale)
                done(False, original_value if original_value is not None else 0)
                return
            self._values[self._h_vc_hits] += 1
            done(entry.value != original_value, entry.value)
            return
        self._values[self._h_cache_reads] += 1
        self.controller.replay_load(
            addr, lambda value: done(value != original_value, value)
        )

    def flush_clean_entries(self) -> None:
        """Drop count==0 entries (called on consistency-model switches:
        load-value entries from one model must not leak into another)."""
        for word in [w for w, e in self._vc.items() if e.count == 0]:
            del self._vc[word]

    def report_mismatch(self, addr: int, original, replayed, seq: int = -1) -> None:
        self._violate(
            "load-replay-mismatch",
            f"load 0x{addr:x}: executed 0x{original:x}, replayed 0x{replayed:x}",
            addr=addr,
            seq=seq,
        )

    # -- housekeeping ----------------------------------------------------------
    def _evict_clean(self) -> bool:
        """Drop the LRU count==0 (load-value) entry; False if none."""
        victim_word, victim = None, None
        for word, entry in self._vc.items():
            if entry.count == 0 and (
                victim is None or entry.last_used < victim.last_used
            ):
                victim_word, victim = word, entry
        if victim_word is None:
            return False
        del self._vc[victim_word]
        return True

    def _scan_stale(self) -> None:
        """Detect stores that never perform (e.g. lost to a corrupted
        write-buffer address): a live VC entry far older than any normal
        store latency means the store was lost."""
        now = self.scheduler.now
        for word, entry in self._vc.items():
            if entry.count > 0 and now - entry.oldest_commit_cycle > self._scan_interval:
                self._violate(
                    "store-lost",
                    f"store to 0x{word:x} committed at cycle "
                    f"{entry.oldest_commit_cycle} never performed",
                    addr=word,
                )
                entry.oldest_commit_cycle = now  # report once per interval
                entry.reported = True
        # Re-arm only while other events are queued or some live store
        # has yet to be reported lost; otherwise the machine is done
        # (or dead and fully diagnosed) and an unconditional reschedule
        # would keep a bare ``Scheduler.run()`` from ever draining.
        if self.scheduler.pending() or any(
            e.count > 0 and not e.reported for e in self._vc.values()
        ):
            self.scheduler.post(self._scan_interval, self._scan_stale)

    def _violate(
        self, kind: str, detail: str, addr: int = 0, seq: int = -1
    ) -> None:
        self.stats.incr(f"{self._stat}.violations")
        s = self.spans
        if s is not None:
            s.violation(
                "UO", self.node, self.scheduler.now,
                addr=addr, seq=seq, detail=detail,
            )
        self.violations(
            ViolationReport("UO", self.scheduler.now, self.node, kind, detail)
        )

    @property
    def vc_occupancy(self) -> int:
        return len(self._vc)

    def obs_snapshot(self) -> dict:
        """Observable interface: VC state + replay accounting.

        Replay counters live in the shared stats registry (they are
        deterministic run output); this view adds live VC occupancy so
        backpressure is visible without poking checker internals.
        """
        stats = self.stats
        vc_hits = stats.counter(self._stat_vc_hits)
        cache_reads = stats.counter(self._stat_cache_reads)
        stale = stats.counter(self._stat_stale)
        return {
            "vc_occupancy": len(self._vc),
            "vc_capacity": self._capacity,
            "vc_live_stores": sum(
                1 for entry in self._vc.values() if entry.count > 0
            ),
            "vc_store_allocs": stats.counter(self._stat_store_allocs),
            "replays": vc_hits + cache_reads + stale,
            "replay_vc_hits": vc_hits,
            "replay_cache_reads": cache_reads,
            "replay_stale_entries": stale,
            "violations": stats.counter(f"{self._stat}.violations"),
        }
