"""DVMC framework assembly (paper Section 3).

DVMC composes three independently replaceable checkers — Uniprocessor
Ordering, Allowable Reordering, Cache Coherence — which together are
sufficient for memory consistency (Appendix A).  This module provides
the violation sink shared by all checkers and a small container that
the system builder populates according to the
:class:`~repro.config.DVMCConfig` enables (Base / SN / SN+DVCC /
SN+DVUO / full DVMC, as in Figure 5).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.types import ViolationReport


class ViolationLog:
    """Collects violation reports from every checker.

    ``first`` gives the earliest detection, which the error-injection
    campaign compares against the SafetyNet recovery window.  An
    optional callback supports tests that want to react immediately.
    """

    def __init__(self, callback=None):
        self.reports: List[ViolationReport] = []
        self._callback = callback

    def __call__(self, report: ViolationReport) -> None:
        self.reports.append(report)
        if self._callback is not None:
            self._callback(report)

    def __len__(self) -> int:
        return len(self.reports)

    @property
    def first(self) -> Optional[ViolationReport]:
        return self.reports[0] if self.reports else None

    def by_checker(self, checker: str) -> List[ViolationReport]:
        return [r for r in self.reports if r.checker == checker]

    def clear(self) -> None:
        self.reports.clear()


class DVMC:
    """The per-system checker bundle (populated by the SystemBuilder)."""

    def __init__(self) -> None:
        self.violations = ViolationLog()
        self.uo_checkers: list = []  # one per core, or empty
        self.ar_checkers: list = []  # one per core, or empty
        self.coherence_checker = None  # CoherenceChecker or None

    @property
    def enabled(self) -> bool:
        return bool(
            self.uo_checkers or self.ar_checkers or self.coherence_checker
        )

    def attach_obs(self) -> None:
        """Turn on internal observability counters in every checker."""
        for ar in self.ar_checkers:
            ar.attach_obs()
        if self.coherence_checker is not None:
            self.coherence_checker.attach_obs()

    def obs_snapshot(self) -> dict:
        """Observable interface: one view over every attached checker.

        Node keys are strings so the snapshot survives a JSON round
        trip (the result cache stores ``RunMetrics.obs`` as JSON)
        unchanged.
        """
        snap: dict = {"violations": len(self.violations.reports)}
        if self.uo_checkers:
            snap["uo"] = {
                str(uo.node): uo.obs_snapshot() for uo in self.uo_checkers
            }
        if self.ar_checkers:
            snap["ar"] = {
                str(ar.node): ar.obs_snapshot() for ar in self.ar_checkers
            }
        if self.coherence_checker is not None:
            snap["cc"] = self.coherence_checker.obs_snapshot()
        return snap

    def finalize(self) -> None:
        """Flush buffered checker state (end of simulation): drain the
        streaming AR logs and MET priority queues, run a final
        lost-operation scan, and put the report list into canonical
        order.

        The canonical sort makes the final report list independent of
        *when* each checker ran its deferred work: every report is
        timestamped with the cycle at which the violation was observed
        (not when a batch drain got around to checking it), so sorting
        on (cycle, checker, node, kind, detail) yields bit-identical
        output between eager (``REPRO_EAGER_CHECK=1``) and batch modes.
        The sort is stable and idempotent; ``first`` keeps meaning "the
        earliest detection" for the recovery-window comparison.
        """
        if self.coherence_checker is not None:
            self.coherence_checker.flush()
        for ar in self.ar_checkers:
            ar.check_outstanding()
        self.violations.reports.sort(
            key=lambda r: (r.cycle, r.checker, r.node, r.kind, r.detail)
        )
