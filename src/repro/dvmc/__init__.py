"""DVMC: dynamic verification of memory consistency (the paper's core
contribution) — three composable invariant checkers."""

from .coherence_checker import CETEntry, CoherenceChecker, METEntry
from .framework import DVMC, ViolationLog
from .reordering import AllowableReorderingChecker
from .uniprocessor import UniprocessorOrderingChecker, VCEntry

__all__ = [
    "AllowableReorderingChecker",
    "CETEntry",
    "CoherenceChecker",
    "DVMC",
    "METEntry",
    "UniprocessorOrderingChecker",
    "VCEntry",
    "ViolationLog",
]
