"""Cache Coherence checker (paper Section 4.3): epochs, CET, MET.

Each cache keeps a **Cache Epoch Table (CET)** entry per held block:
epoch type (Read-Only / Read-Write), logical begin time, CRC-16 of the
block at epoch begin, and a DataReadyBit (an epoch can begin before its
data arrives).  When an epoch ends, the cache sends an **Inform-Epoch**
to the block's home memory controller — a real network message (block
address, epoch type, begin/end logical times, begin/end data hashes) —
whose traffic is what Figure 7 measures.

Each home's **Memory Epoch Table (MET)** processes Inform-Epochs in
epoch-*begin*-time order (a bounded priority queue re-sorts the nearly
ordered arrival stream) and verifies Plakal-style rules: (1) accesses
happen in appropriate epochs (checked at the CET), (2) Read-Write
epochs never overlap other epochs, (3) the data at an epoch's begin
equals the data at the most recent Read-Write epoch's end.

Timestamps are stored 16-bit; long-lived epochs are *scrubbed* before
wraparound using a per-CET FIFO that triggers Inform-Open-Epoch /
Inform-Closed-Epoch message pairs, with matching open-epoch tracking
(sharer bitmask / owner id) at the MET.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.common.crc import hash_block
from repro.common.events import Scheduler
from repro.common.logical_time import LogicalTimeBase
from repro.common.stats import StatsRegistry
from repro.common.types import EpochType, ViolationReport, block_of
from repro.config import SystemConfig
from repro.interconnect.message import Message

from repro.coherence.messages import Dvcc

#: How much logical time the MET waits before processing an inform,
#: letting stragglers with earlier begin times arrive first.
MET_SORT_SLACK = 128

#: Cycles between MET priority-queue drain sweeps and CET scrub sweeps.
SWEEP_PERIOD = 500


class CETEntry:
    """One cache-side epoch record (34 bits in hardware)."""

    __slots__ = (
        "etype",
        "begin",
        "begin_hash",
        "data_ready",
        "ended",
        "end",
        "end_hash",
        "open_informed",
    )

    def __init__(self, etype: EpochType, begin: int):
        self.etype = etype
        self.begin = begin
        self.begin_hash: Optional[int] = None
        self.data_ready = False
        self.ended = False
        self.end = 0
        self.end_hash: Optional[int] = None
        #: An Inform-Open-Epoch was sent (wraparound scrubbing); the end
        #: must be reported with Inform-Closed-Epoch instead.
        self.open_informed = False


class METEntry:
    """Home-side per-block epoch summary (48 bits in hardware)."""

    __slots__ = (
        "last_ro_end",
        "last_rw_end",
        "last_rw_end_hash",
        "mem_hash",
        "open_ro",
        "open_rw",
    )

    def __init__(self, created: int, data_hash: int):
        self.last_ro_end = created
        self.last_rw_end = created
        #: None means unknown (after an open RW epoch closed without a
        #: hash — the Inform-Closed-Epoch carries only address + time).
        self.last_rw_end_hash: Optional[int] = data_hash
        #: Hash of the block's DRAM-resident copy, maintained at the
        #: co-located home: set at entry creation and at each applied
        #: writeback.  Memory contents change nowhere else, so DRAM
        #: must hash to this at all times — writebacks and scrubber
        #: passes cross-check it to catch in-memory corruption.
        self.mem_hash: Optional[int] = data_hash
        self.open_ro: Set[int] = set()
        self.open_rw: Optional[int] = None


class CoherenceChecker:
    """System-wide DVCC: one CET per cache, one MET per home node."""

    def __init__(
        self,
        scheduler: Scheduler,
        stats: StatsRegistry,
        config: SystemConfig,
        logical_time: LogicalTimeBase,
        home_of: Callable[[int], int],
        memories,  # node -> MainMemory (for MET entry creation)
        send: Callable[[Message], None],
        violations: Callable[[ViolationReport], None],
    ):
        self.scheduler = scheduler
        self.stats = stats
        self.config = config
        self.lt = logical_time
        self.home_of = home_of
        self.memories = memories
        self.send = send
        self.violations = violations
        num = config.num_nodes
        self._cet: List[Dict[int, CETEntry]] = [dict() for _ in range(num)]
        self._met: List[Dict[int, METEntry]] = [dict() for _ in range(num)]
        self._pq: List[List[Tuple[int, int, int, dict]]] = [
            [] for _ in range(num)
        ]
        self._pq_seq = itertools.count()
        #: Scrub FIFOs: (block, begin_full) per epoch, per node.
        self._scrub_fifo: List[List[Tuple[int, int]]] = [[] for _ in range(num)]
        self._wrap_horizon = (1 << config.dvmc.timestamp_bits) // 2
        #: Per-block hash memo: block -> (words-at-hash-time, hash).
        #: hash_block runs on every epoch begin/end and MET update, and
        #: most epochs open and close over unchanged data, so a content
        #: compare (one C-level list ==) replaces most CRC passes.  The
        #: stored words are a snapshot, never the live cache line, so a
        #: mutated (or fault-corrupted) block always misses the memo —
        #: the memo can never mask real corruption.
        self._hash_memo: Dict[int, Tuple[List[int], int]] = {}
        scheduler.after(SWEEP_PERIOD, self._sweep)

    def _hash_block(self, block: int, data) -> int:
        """Hash ``data`` with a per-block memo keyed on content."""
        memo = self._hash_memo.get(block)
        if memo is not None and memo[0] == data:
            return memo[1]
        value = hash_block(data)
        self._hash_memo[block] = (list(data), value)
        return value

    # ------------------------------------------------------------------
    # Hook subscriptions (wired by the system builder)
    # ------------------------------------------------------------------
    def attach(self, hooks) -> None:
        hooks.on_epoch_begin(self.epoch_begin)
        hooks.on_epoch_data(self.epoch_data)
        hooks.on_epoch_end(self.epoch_end)
        hooks.on_access(self.check_access)
        hooks.on_home_request(self.home_request)
        hooks.on_memory_write(self.memory_written)

    # ------------------------------------------------------------------
    # CET side
    # ------------------------------------------------------------------
    def epoch_begin(
        self,
        node: int,
        addr: int,
        etype: EpochType,
        data: Optional[list],
        lt: Optional[int] = None,
    ) -> None:
        block = block_of(addr)
        cet = self._cet[node]
        if block in cet and not cet[block].ended:
            # The protocol opened an epoch over a live one: itself a
            # coherence anomaly worth flagging.
            self._violate(node, "epoch-begin-over-open", f"block 0x{block:x}")
        entry = CETEntry(etype, self.lt.now(node) if lt is None else lt)
        if data is not None:
            entry.begin_hash = self._hash_block(block, data)
            entry.data_ready = True
        cet[block] = entry
        self._scrub_fifo[node].append((block, entry.begin))
        if len(self._scrub_fifo[node]) > self.config.dvmc.scrub_fifo_entries:
            self._scrub_check(node)
        self.stats.incr(f"dvcc.{node}.epochs_begun")

    def epoch_data(self, node: int, addr: int, data: list) -> None:
        block = block_of(addr)
        entry = self._cet[node].get(block)
        if entry is None:
            self._violate(node, "data-without-epoch", f"block 0x{block:x}")
            return
        if not entry.data_ready:
            entry.begin_hash = self._hash_block(block, data)
            entry.data_ready = True
        if entry.ended:
            # Degenerate epoch (block handed over before data arrived).
            if entry.end_hash is None:
                entry.end_hash = entry.begin_hash
            self._finish_epoch(node, block, entry)

    def epoch_end(
        self,
        node: int,
        addr: int,
        data: Optional[list],
        lt: Optional[int] = None,
    ) -> None:
        block = block_of(addr)
        entry = self._cet[node].get(block)
        if entry is None:
            self._violate(node, "end-without-epoch", f"block 0x{block:x}")
            return
        if entry.ended:
            self._violate(node, "double-epoch-end", f"block 0x{block:x}")
            return
        entry.ended = True
        entry.end = self.lt.now(node) if lt is None else lt
        if data is not None:
            entry.end_hash = self._hash_block(block, data)
        elif entry.data_ready:
            entry.end_hash = entry.begin_hash
        if entry.data_ready:
            self._finish_epoch(node, block, entry)
        # else: wait for epoch_data to supply the hashes.

    def _finish_epoch(self, node: int, block: int, entry: CETEntry) -> None:
        del self._cet[node][block]
        home = self.home_of(block)
        if entry.open_informed:
            self._send_inform(
                node,
                home,
                Dvcc.INFORM_CLOSED_EPOCH,
                block,
                {"etype": entry.etype, "end": entry.end},
            )
        else:
            self._send_inform(
                node,
                home,
                Dvcc.INFORM_EPOCH,
                block,
                {
                    "etype": entry.etype,
                    "begin": entry.begin,
                    "end": entry.end,
                    "begin_hash": entry.begin_hash,
                    "end_hash": entry.end_hash,
                },
            )

    def check_access(self, node: int, addr: int, is_store: bool) -> None:
        """Rule 1: accesses happen within appropriate epochs."""
        entry = self._cet[node].get(block_of(addr))
        if entry is None:
            self._violate(
                node,
                "access-without-epoch",
                f"{'store' if is_store else 'load'} 0x{addr:x}",
            )
            return
        if is_store:
            # The store is about to change the block: drop the memoised
            # hash so the next epoch event re-hashes the new contents.
            self._hash_memo.pop(block_of(addr), None)
            if entry.etype is not EpochType.READ_WRITE or entry.ended:
                self._violate(node, "store-outside-rw-epoch", f"0x{addr:x}")

    def cet_occupancy(self, node: int) -> int:
        return len(self._cet[node])

    # ------------------------------------------------------------------
    # Scrubbing (timestamp wraparound, paper 4.3 "Logical Time")
    # ------------------------------------------------------------------
    def _scrub_check(self, node: int) -> None:
        fifo = self._scrub_fifo[node]
        now = self.lt.now(node)
        keep: List[Tuple[int, int]] = []
        for block, begin in fifo:
            entry = self._cet[node].get(block)
            if entry is None or entry.begin != begin or entry.open_informed:
                continue  # epoch already over (or renumbered, or informed)
            if now - begin >= self._wrap_horizon:
                entry.open_informed = True
                self._send_inform(
                    node,
                    self.home_of(block),
                    Dvcc.INFORM_OPEN_EPOCH,
                    block,
                    {
                        "etype": entry.etype,
                        "begin": entry.begin,
                        "begin_hash": entry.begin_hash,
                    },
                )
                self.stats.incr(f"dvcc.{node}.open_informs")
            else:
                keep.append((block, begin))
        self._scrub_fifo[node] = keep

    # ------------------------------------------------------------------
    # Inform transport
    # ------------------------------------------------------------------
    def _send_inform(
        self, src: int, dst: int, kind: Dvcc, block: int, meta: dict
    ) -> None:
        self.stats.incr(f"dvcc.{src}.informs_sent")
        self.send(
            Message(
                src=src,
                dst=dst,
                kind=kind,
                addr=block,
                meta=meta,
                size_bytes=self.config.network.inform_epoch_bytes,
            )
        )

    def handle_message(self, msg: Message) -> None:
        """One inform arriving at a home memory controller's MET."""
        self._drain(self._push_inform(msg))

    def handle_batch(self, batch) -> None:
        """Informs arriving at a home MET, possibly several per cycle.

        The interconnect delivers all same-(node, cycle) informs as one
        batch: every inform is pushed onto the begin-time-sorted
        priority queue first and the queue is drained once, amortising
        the drain sweep across the batch.  All inform kinds ride the
        same queue; an Inform-Closed-Epoch sorts by its end time, which
        keeps it behind its paired Inform-Open-Epoch (end >= begin).
        """
        homes = set()
        for msg in batch:
            homes.add(self._push_inform(msg))
        for home in homes:
            self._drain(home)

    def _push_inform(self, msg: Message) -> int:
        """Queue one inform on its home's MET priority queue.

        Returns the home node; the caller is responsible for the drain
        sweep (once per message, or once per batch).
        """
        home = msg.dst
        meta = msg.meta
        begin = (
            meta["end"]
            if msg.kind is Dvcc.INFORM_CLOSED_EPOCH
            else meta.get("begin", 0)
        )
        heapq.heappush(
            self._pq[home],
            (begin, next(self._pq_seq), msg.src, {"kind": msg.kind, "addr": msg.addr, **meta}),
        )
        if len(self._pq[home]) > self.config.dvmc.priority_queue_entries:
            # Hardware's bounded queue: evict (process) the oldest
            # entry immediately rather than grow without bound.
            self.stats.incr(f"dvcc.{home}.pq_forced_drains")
            self._drain(home, force_one=True)
        return home

    # ------------------------------------------------------------------
    # MET side
    # ------------------------------------------------------------------
    def home_request(self, home: int, addr: int) -> None:
        """Create the MET entry at first request (paper 4.3)."""
        block = block_of(addr)
        if block not in self._met[home]:
            data = self.memories[home].read_block(block)
            self._met[home][block] = METEntry(
                self.lt.now(home), self._hash_block(block, data)
            )

    def memory_written(
        self, home: int, addr: int, old_data: list, new_data: list
    ) -> None:
        """A writeback is being applied at ``home``.

        Rule 3 extended to DRAM residency: the data being replaced must
        still hash to what the MET last saw stored there — anything
        else means the block was corrupted while memory-resident.
        """
        block = block_of(addr)
        entry = self._met[home].get(block)
        if entry is None:
            # First touch is the writeback itself; the lazy MET entry
            # created later will hash post-writeback memory.
            return
        old_hash = self._hash_block(block, old_data)
        if entry.mem_hash is not None and old_hash != entry.mem_hash:
            self._violate(
                home,
                "data-propagation",
                f"block 0x{block:x}: memory holds hash {old_hash:#06x} "
                f"at writeback, last stored {entry.mem_hash:#06x}",
            )
        entry.mem_hash = self._hash_block(block, new_data)

    def verify_memory(self) -> None:
        """Scrubber pass: DRAM contents of every MET-tracked block must
        hash to the value recorded when they were last stored."""
        for home, met in enumerate(self._met):
            for block, entry in met.items():
                if entry.mem_hash is None:
                    continue
                got = self._hash_block(
                    block, self.memories[home].read_block(block)
                )
                if got != entry.mem_hash:
                    self._violate(
                        home,
                        "data-propagation",
                        f"block 0x{block:x}: scrub reads hash "
                        f"{got:#06x}, last stored {entry.mem_hash:#06x}",
                    )

    def _met_entry(self, home: int, block: int) -> METEntry:
        entry = self._met[home].get(block)
        if entry is None:
            # Shouldn't happen fault-free (home_request precedes epochs),
            # but injected faults can reorder things; create leniently.
            data = self.memories[home].read_block(block)
            entry = METEntry(0, self._hash_block(block, data))
            self._met[home][block] = entry
        return entry

    def _drain(self, home: int, force_one: bool = False) -> None:
        pq = self._pq[home]
        now = self.lt.now(home)
        while pq:
            begin = pq[0][0]
            if not force_one and now - begin < MET_SORT_SLACK:
                return
            _, _, src, inform = heapq.heappop(pq)
            self._process_inform(home, src, inform)
            force_one = False

    def flush(self) -> None:
        """Process every queued inform (end of simulation)."""
        for home in range(self.config.num_nodes):
            pq = self._pq[home]
            while pq:
                _, _, src, inform = heapq.heappop(pq)
                self._process_inform(home, src, inform)

    def _process_inform(self, home: int, src: int, inform: dict) -> None:
        self.stats.incr(f"dvcc.{home}.informs_processed")
        block = block_of(inform["addr"])
        if inform["kind"] is Dvcc.INFORM_CLOSED_EPOCH:
            self._met_close_open(home, block, src, inform)
            return
        entry = self._met_entry(home, block)
        etype: EpochType = inform["etype"]
        begin = inform["begin"]
        begin_hash = inform.get("begin_hash")
        is_open = inform["kind"] is Dvcc.INFORM_OPEN_EPOCH

        # Rule 2: Read-Write epochs do not overlap other epochs.
        if etype is EpochType.READ_WRITE:
            limit = max(entry.last_ro_end, entry.last_rw_end)
        else:
            limit = entry.last_rw_end
        if begin < limit:
            self._violate(
                home,
                "epoch-overlap",
                f"block 0x{block:x}: {etype.value} epoch from node {src} "
                f"begins at {begin} before a conflicting epoch ended at {limit}",
            )
        if entry.open_rw is not None and entry.open_rw != src:
            self._violate(
                home,
                "epoch-overlap-open",
                f"block 0x{block:x}: epoch begins while node "
                f"{entry.open_rw} holds an open RW epoch",
            )
        if etype is EpochType.READ_WRITE and any(
            n != src for n in entry.open_ro
        ):
            self._violate(
                home,
                "epoch-overlap-open",
                f"block 0x{block:x}: RW epoch while RO epochs open",
            )

        # Rule 3: data propagates intact from the last RW epoch.
        if (
            begin_hash is not None
            and entry.last_rw_end_hash is not None
            and begin_hash != entry.last_rw_end_hash
        ):
            self._violate(
                home,
                "data-propagation",
                f"block 0x{block:x}: epoch begins with hash "
                f"{begin_hash:#06x}, last RW epoch ended with "
                f"{entry.last_rw_end_hash:#06x}",
            )

        if is_open:
            if etype is EpochType.READ_WRITE:
                entry.open_rw = src
            else:
                entry.open_ro.add(src)
            return

        end = inform["end"]
        end_hash = inform.get("end_hash")
        if etype is EpochType.READ_WRITE:
            if end > entry.last_rw_end:
                entry.last_rw_end = end
                entry.last_rw_end_hash = end_hash
        else:
            if inform.get("end_hash") is not None and begin_hash is not None:
                if inform["end_hash"] != begin_hash:
                    self._violate(
                        home,
                        "ro-epoch-data-changed",
                        f"block 0x{block:x} changed during a read-only epoch",
                    )
            entry.last_ro_end = max(entry.last_ro_end, end)

    def _met_close_open(self, home: int, block: int, src: int, meta: dict) -> None:
        """Inform-Closed-Epoch: only address and end time (paper 4.3)."""
        entry = self._met_entry(home, block)
        end = meta["end"]
        if meta["etype"] is EpochType.READ_WRITE:
            if entry.open_rw == src:
                entry.open_rw = None
            entry.last_rw_end = max(entry.last_rw_end, end)
            entry.last_rw_end_hash = None  # unknown until the next epoch
        else:
            entry.open_ro.discard(src)
            entry.last_ro_end = max(entry.last_ro_end, end)

    # ------------------------------------------------------------------
    def _sweep(self) -> None:
        for node in range(self.config.num_nodes):
            self._scrub_check(node)
            self._drain(node)
        self.scheduler.after(SWEEP_PERIOD, self._sweep)

    def _violate(self, node: int, kind: str, detail: str) -> None:
        self.stats.incr(f"dvcc.{node}.violations")
        self.violations(
            ViolationReport("CC", self.scheduler.now, node, kind, detail)
        )
