"""Cache Coherence checker (paper Section 4.3): epochs, CET, MET.

Each cache keeps a **Cache Epoch Table (CET)** entry per held block:
epoch type (Read-Only / Read-Write), logical begin time, CRC-16 of the
block at epoch begin, and a DataReadyBit (an epoch can begin before its
data arrives).  When an epoch ends, the cache sends an **Inform-Epoch**
to the block's home memory controller — a real network message (block
address, epoch type, begin/end logical times, begin/end data hashes) —
whose traffic is what Figure 7 measures.

Each home's **Memory Epoch Table (MET)** processes Inform-Epochs in
epoch-*begin*-time order (a bounded priority queue re-sorts the nearly
ordered arrival stream) and verifies Plakal-style rules: (1) accesses
happen in appropriate epochs (checked at the CET), (2) Read-Write
epochs never overlap other epochs, (3) the data at an epoch's begin
equals the data at the most recent Read-Write epoch's end.

The MET is **sharded by (home, block bank)**: each home keeps
:data:`MET_BANKS` independent bank heaps and bank-local block tables,
selected by the low block-number bits.  Informs for different blocks
commute (all MET state is per block), and same-block informs always
land in the same bank, so sharding preserves processing semantics
while keeping each heap small; the bounded-capacity forced drain pops
the global minimum across bank heads, which equals the unsharded
queue's minimum.  Queued informs are flat integer tuples (no per-
inform dict allocation), and the rule-2 overlap check queries a
begin-sorted :class:`~repro.dvmc.interval_index.IntervalIndex` per
block instead of scanning epoch history.

Timestamps are stored 16-bit; long-lived epochs are *scrubbed* before
wraparound using a per-CET FIFO that triggers Inform-Open-Epoch /
Inform-Closed-Epoch message pairs, with matching open-epoch tracking
(sharer bitmask / owner id) at the MET.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.common.crc import hash_block
from repro.common.events import Scheduler
from repro.common.logical_time import LogicalTimeBase
from repro.common.stats import StatsRegistry
from repro.common.types import BLOCK_SIZE, EpochType, ViolationReport, block_of
from repro.config import SystemConfig
from repro.dvmc.interval_index import IntervalIndex
from repro.interconnect.message import Message, acquire, release
from repro.obs.spans import K_EPOCH, K_MET

from repro.coherence.messages import Dvcc

#: How much logical time the MET waits before processing an inform,
#: letting stragglers with earlier begin times arrive first.
MET_SORT_SLACK = 128

#: Cycles between MET priority-queue drain sweeps and CET scrub sweeps.
SWEEP_PERIOD = 500

#: MET shards per home node.  Bank = low bits of the block number, so
#: consecutive blocks interleave across banks.
MET_BANKS = 4

_BANK_SHIFT = BLOCK_SIZE.bit_length() - 1
_BANK_MASK = MET_BANKS - 1

#: Per-block interval-index bound: beyond this many recorded epochs the
#: oldest are folded into the entry's scalar watermark (exactly the
#: hardware MET's 48-bit summary), so memory stays bounded and the
#: check degrades to the paper's conservative form, never weaker.
MET_INDEX_CAPACITY = 128

#: Flat integer encodings for queued informs (tuple records, no dicts).
_K_EPOCH = 0
_K_OPEN = 1
_K_CLOSED = 2
_ETYPE_FROM_CODE = (EpochType.READ_ONLY, EpochType.READ_WRITE)


class CETEntry:
    """One cache-side epoch record (34 bits in hardware)."""

    __slots__ = (
        "etype",
        "begin",
        "begin_hash",
        "data_ready",
        "ended",
        "end",
        "end_hash",
        "open_informed",
        "span_token",
    )

    def __init__(self, etype: EpochType, begin: int):
        self.etype = etype
        self.begin = begin
        self.begin_hash: Optional[int] = None
        self.data_ready = False
        self.ended = False
        self.end = 0
        self.end_hash: Optional[int] = None
        #: An Inform-Open-Epoch was sent (wraparound scrubbing); the end
        #: must be reported with Inform-Closed-Epoch instead.
        self.open_informed = False
        self.span_token = 0  # open flight-recorder span (0 = none)


class METEntry:
    """Home-side per-block epoch summary (48 bits in hardware).

    The scalar watermarks (``floor_ro`` / ``floor_rw``) carry the
    hardware-faithful conservative state: entry creation time and the
    ends of epochs whose begin is unknown (Inform-Closed-Epoch) or that
    were folded out of the bounded interval index.  The two interval
    indexes hold the recent exact epoch history for the O(log n)
    overlap query.
    """

    __slots__ = (
        "last_ro_end",
        "last_rw_end",
        "last_rw_end_hash",
        "mem_hash",
        "open_ro",
        "open_rw",
        "floor_ro",
        "floor_rw",
        "ro_index",
        "rw_index",
    )

    def __init__(self, created: int, data_hash: int):
        self.last_ro_end = created
        self.last_rw_end = created
        #: None means unknown (after an open RW epoch closed without a
        #: hash — the Inform-Closed-Epoch carries only address + time).
        self.last_rw_end_hash: Optional[int] = data_hash
        #: Hash of the block's DRAM-resident copy, maintained at the
        #: co-located home: set at entry creation and at each applied
        #: writeback.  Memory contents change nowhere else, so DRAM
        #: must hash to this at all times — writebacks and scrubber
        #: passes cross-check it to catch in-memory corruption.
        self.mem_hash: Optional[int] = data_hash
        self.open_ro: Set[int] = set()
        self.open_rw: Optional[int] = None
        self.floor_ro = created
        self.floor_rw = created
        self.ro_index = IntervalIndex()
        self.rw_index = IntervalIndex()


class CoherenceChecker:
    """System-wide DVCC: one CET per cache, one banked MET per home."""

    def __init__(
        self,
        scheduler: Scheduler,
        stats: StatsRegistry,
        config: SystemConfig,
        logical_time: LogicalTimeBase,
        home_of: Callable[[int], int],
        memories,  # node -> MainMemory (for MET entry creation)
        send: Callable[[Message], None],
        violations: Callable[[ViolationReport], None],
    ):
        self.scheduler = scheduler
        self.stats = stats
        self.config = config
        self.lt = logical_time
        self.home_of = home_of
        self.memories = memories
        self.send = send
        self.violations = violations
        num = config.num_nodes
        self._cet: List[Dict[int, CETEntry]] = [dict() for _ in range(num)]
        #: Banked MET: ``_met[home][bank]`` maps block -> METEntry.
        self._met: List[List[Dict[int, METEntry]]] = [
            [dict() for _ in range(MET_BANKS)] for _ in range(num)
        ]
        #: Banked inform queues: one begin-sorted heap of flat tuple
        #: records per (home, bank); ``_pq_len[home]`` tracks the total
        #: so the bounded-capacity forced drain stays per home.
        self._pq: List[List[list]] = [
            [[] for _ in range(MET_BANKS)] for _ in range(num)
        ]
        self._pq_len: List[int] = [0] * num
        self._pq_seq = itertools.count()
        #: Scrub FIFOs: (block, begin_full) per epoch, per node.
        self._scrub_fifo: List[List[Tuple[int, int]]] = [[] for _ in range(num)]
        self._wrap_horizon = (1 << config.dvmc.timestamp_bits) // 2
        #: Per-block hash memo: block -> (words-at-hash-time, hash).
        #: hash_block runs on every epoch begin/end and MET update, and
        #: most epochs open and close over unchanged data, so a content
        #: compare (one C-level list ==) replaces most CRC passes.  The
        #: stored words are a snapshot, never the live cache line, so a
        #: mutated (or fault-corrupted) block always misses the memo —
        #: the memo can never mask real corruption.
        self._hash_memo: Dict[int, Tuple[List[int], int]] = {}
        # Precomputed per-node stat keys (these fire once per epoch
        # event / inform; f-string assembly was measurable).
        self._stat_epochs_begun = [f"dvcc.{n}.epochs_begun" for n in range(num)]
        self._stat_informs_sent = [f"dvcc.{n}.informs_sent" for n in range(num)]
        self._stat_informs_processed = [
            f"dvcc.{n}.informs_processed" for n in range(num)
        ]
        self._stat_open_informs = [f"dvcc.{n}.open_informs" for n in range(num)]
        self._stat_pq_forced = [
            f"dvcc.{n}.pq_forced_drains" for n in range(num)
        ]
        self._stat_violations = [f"dvcc.{n}.violations" for n in range(num)]
        # Int-slot handles for the per-inform/per-epoch increments; the
        # string lists above stay as the obs_snapshot read keys (the
        # registry merges both planes).
        self._h_epochs_begun = [stats.handle(k) for k in self._stat_epochs_begun]
        self._h_informs_sent = [stats.handle(k) for k in self._stat_informs_sent]
        self._h_informs_processed = [
            stats.handle(k) for k in self._stat_informs_processed
        ]
        self._h_pq_forced = [stats.handle(k) for k in self._stat_pq_forced]
        self._h_violations = [stats.handle(k) for k in self._stat_violations]
        self._values = stats.values
        # Observability (repro.obs): per-bank probe and overlap-check
        # counters, maintained only when attached.  Informs are orders
        # of magnitude rarer than scheduler events, so a guarded int
        # add per inform is well inside the obs overhead budget.
        self._obs_on = False
        self._obs_bank_pushes = [0] * MET_BANKS
        self._obs_met_probes = 0
        self._obs_overlap_checks = 0
        #: Flight recorder (None unless REPRO_OBS_SPANS; see obs.spans).
        self.spans = None
        self._span_cet_tracks: List[int] = []
        self._span_met_tracks: List[int] = []
        scheduler.post(SWEEP_PERIOD, self._sweep)

    def attach_spans(self, spans) -> None:
        """Attach the flight recorder; CET and MET tracks per node."""
        self.spans = spans
        num = self.config.num_nodes
        self._span_cet_tracks = [spans.track(f"cc.{n}") for n in range(num)]
        self._span_met_tracks = [spans.track(f"met.{n}") for n in range(num)]

    def attach_obs(self) -> None:
        """Start recording MET bank probes and overlap-check counts."""
        self._obs_on = True

    def obs_snapshot(self) -> dict:
        """Observable interface: CET/MET occupancy + checking effort."""
        stats = self.stats
        num = self.config.num_nodes
        pq_depth = sum(self._pq_len)
        return {
            "cet_entries": sum(len(cet) for cet in self._cet),
            "cet_open": sum(
                sum(1 for e in cet.values() if not e.ended)
                for cet in self._cet
            ),
            "met_entries": sum(
                len(bank) for banks in self._met for bank in banks
            ),
            "met_bank_entries": [
                sum(len(banks[b]) for banks in self._met)
                for b in range(MET_BANKS)
            ],
            "met_bank_pushes": list(self._obs_bank_pushes),
            "met_probes": self._obs_met_probes,
            "epoch_overlap_checks": self._obs_overlap_checks,
            "pq_depth": pq_depth,
            "pq_capacity": self.config.dvmc.priority_queue_entries,
            "pq_forced_drains": sum(
                stats.counter(self._stat_pq_forced[n]) for n in range(num)
            ),
            "informs_sent": sum(
                stats.counter(self._stat_informs_sent[n]) for n in range(num)
            ),
            "informs_processed": sum(
                stats.counter(self._stat_informs_processed[n])
                for n in range(num)
            ),
            "epochs_begun": sum(
                stats.counter(self._stat_epochs_begun[n]) for n in range(num)
            ),
            "hash_memo_entries": len(self._hash_memo),
            "violations": sum(
                stats.counter(self._stat_violations[n]) for n in range(num)
            ),
        }

    def _hash_block(self, block: int, data) -> int:
        """Hash ``data`` with a per-block memo keyed on content."""
        memo = self._hash_memo.get(block)
        if memo is not None and memo[0] == data:
            return memo[1]
        value = hash_block(data)
        self._hash_memo[block] = (list(data), value)
        return value

    # ------------------------------------------------------------------
    # Hook subscriptions (wired by the system builder)
    # ------------------------------------------------------------------
    def attach(self, hooks) -> None:
        hooks.on_epoch_begin(self.epoch_begin)
        hooks.on_epoch_data(self.epoch_data)
        hooks.on_epoch_end(self.epoch_end)
        hooks.on_access(self.check_access)
        hooks.on_home_request(self.home_request)
        hooks.on_memory_write(self.memory_written)

    # ------------------------------------------------------------------
    # CET side
    # ------------------------------------------------------------------
    def epoch_begin(
        self,
        node: int,
        addr: int,
        etype: EpochType,
        data: Optional[list],
        lt: Optional[int] = None,
    ) -> None:
        block = block_of(addr)
        cet = self._cet[node]
        if block in cet and not cet[block].ended:
            # The protocol opened an epoch over a live one: itself a
            # coherence anomaly worth flagging.
            self._violate(
                node, "epoch-begin-over-open", f"block 0x{block:x}", addr=block
            )
        entry = CETEntry(etype, self.lt.now(node) if lt is None else lt)
        if data is not None:
            entry.begin_hash = self._hash_block(block, data)
            entry.data_ready = True
        cet[block] = entry
        s = self.spans
        if s is not None and s.trace_infra:
            # Epochs belong to no single op (tid 0); forensics joins
            # them to transactions by block address.
            entry.span_token = s.open(
                0, self._span_cet_tracks[node], K_EPOCH,
                self.scheduler.now, block,
                1 if etype is EpochType.READ_WRITE else 0, node,
            )
        self._scrub_fifo[node].append((block, entry.begin))
        if len(self._scrub_fifo[node]) > self.config.dvmc.scrub_fifo_entries:
            self._scrub_check(node)
        self._values[self._h_epochs_begun[node]] += 1

    def epoch_data(self, node: int, addr: int, data: list) -> None:
        block = block_of(addr)
        entry = self._cet[node].get(block)
        if entry is None:
            self._violate(
                node, "data-without-epoch", f"block 0x{block:x}", addr=block
            )
            return
        if not entry.data_ready:
            entry.begin_hash = self._hash_block(block, data)
            entry.data_ready = True
        if entry.ended:
            # Degenerate epoch (block handed over before data arrived).
            if entry.end_hash is None:
                entry.end_hash = entry.begin_hash
            self._finish_epoch(node, block, entry)

    def epoch_end(
        self,
        node: int,
        addr: int,
        data: Optional[list],
        lt: Optional[int] = None,
    ) -> None:
        block = block_of(addr)
        entry = self._cet[node].get(block)
        if entry is None:
            self._violate(
                node, "end-without-epoch", f"block 0x{block:x}", addr=block
            )
            return
        if entry.ended:
            self._violate(
                node, "double-epoch-end", f"block 0x{block:x}", addr=block
            )
            return
        entry.ended = True
        entry.end = self.lt.now(node) if lt is None else lt
        if data is not None:
            entry.end_hash = self._hash_block(block, data)
        elif entry.data_ready:
            entry.end_hash = entry.begin_hash
        if entry.data_ready:
            self._finish_epoch(node, block, entry)
        # else: wait for epoch_data to supply the hashes.

    def _finish_epoch(self, node: int, block: int, entry: CETEntry) -> None:
        del self._cet[node][block]
        s = self.spans
        if s is not None and entry.span_token:
            s.close(entry.span_token, self.scheduler.now)
            entry.span_token = 0
        home = self.home_of(block)
        if entry.open_informed:
            self._send_inform(
                node,
                home,
                Dvcc.INFORM_CLOSED_EPOCH,
                block,
                entry.etype,
                end=entry.end,
            )
        else:
            bh = entry.begin_hash
            eh = entry.end_hash
            self._send_inform(
                node,
                home,
                Dvcc.INFORM_EPOCH,
                block,
                entry.etype,
                begin=entry.begin,
                end=entry.end,
                begin_hash=-1 if bh is None else bh,
                end_hash=-1 if eh is None else eh,
            )

    def check_access(self, node: int, addr: int, is_store: bool) -> None:
        """Rule 1: accesses happen within appropriate epochs.

        This check stays synchronous in every mode: the verdict depends
        on CET state *at access time*, and a store must drop the hash
        memo before the block's next epoch event re-hashes it.
        """
        entry = self._cet[node].get(block_of(addr))
        if entry is None:
            self._violate(
                node,
                "access-without-epoch",
                f"{'store' if is_store else 'load'} 0x{addr:x}",
                addr=addr,
            )
            return
        if is_store:
            # The store is about to change the block: drop the memoised
            # hash so the next epoch event re-hashes the new contents.
            self._hash_memo.pop(block_of(addr), None)
            if entry.etype is not EpochType.READ_WRITE or entry.ended:
                self._violate(
                    node, "store-outside-rw-epoch", f"0x{addr:x}", addr=addr
                )

    def cet_occupancy(self, node: int) -> int:
        return len(self._cet[node])

    # ------------------------------------------------------------------
    # Scrubbing (timestamp wraparound, paper 4.3 "Logical Time")
    # ------------------------------------------------------------------
    def _scrub_check(self, node: int) -> None:
        fifo = self._scrub_fifo[node]
        now = self.lt.now(node)
        keep: List[Tuple[int, int]] = []
        for block, begin in fifo:
            entry = self._cet[node].get(block)
            if entry is None or entry.begin != begin or entry.open_informed:
                continue  # epoch already over (or renumbered, or informed)
            if now - begin >= self._wrap_horizon:
                entry.open_informed = True
                bh = entry.begin_hash
                self._send_inform(
                    node,
                    self.home_of(block),
                    Dvcc.INFORM_OPEN_EPOCH,
                    block,
                    entry.etype,
                    begin=entry.begin,
                    begin_hash=-1 if bh is None else bh,
                )
                self.stats.incr(self._stat_open_informs[node])
            else:
                keep.append((block, begin))
        self._scrub_fifo[node] = keep

    # ------------------------------------------------------------------
    # Inform transport
    # ------------------------------------------------------------------
    def _send_inform(
        self,
        src: int,
        dst: int,
        kind: Dvcc,
        block: int,
        etype: EpochType,
        begin: int = -1,
        end: int = -1,
        begin_hash: int = -1,
        end_hash: int = -1,
    ) -> None:
        """Build an inform on pooled int slots (no meta dict).

        ``-1`` marks an absent time/hash, matching the flat MET record
        encoding.
        """
        self._values[self._h_informs_sent[src]] += 1
        msg = acquire(
            src,
            dst,
            kind,
            addr=block,
            size_bytes=self.config.network.inform_epoch_bytes,
        )
        msg.etype = 1 if etype is EpochType.READ_WRITE else 0
        msg.t_begin = begin
        msg.t_end = end
        msg.h_begin = begin_hash
        msg.h_end = end_hash
        self.send(msg)

    def handle_message(self, msg: Message) -> None:
        """One inform arriving at a home memory controller's MET."""
        self._drain(self._push_inform(msg))

    def handle_batch(self, batch) -> None:
        """Batch entry point: informs arriving at a home MET together.

        The interconnect delivers all same-(node, cycle) informs as one
        batch: every inform is pushed onto its begin-time-sorted bank
        heap first and each touched home is drained once, amortising
        the drain sweep across the batch.  All inform kinds ride the
        same queues; an Inform-Closed-Epoch sorts by its end time,
        which keeps it behind its paired Inform-Open-Epoch (end >=
        begin).
        """
        homes = set()
        for msg in batch:
            homes.add(self._push_inform(msg))
        for home in homes:
            self._drain(home)

    def _push_inform(self, msg: Message) -> int:
        """Queue one inform as a flat tuple record on its bank heap.

        Returns the home node; the caller is responsible for the drain
        sweep (once per message, or once per batch).  Record layout:
        ``(sort_key, seq, kind, src, block, etype, begin, end,
        begin_hash, end_hash)`` with -1 for absent hashes/times.
        """
        home = msg.dst
        kind = msg.kind
        block = block_of(msg.addr)
        etype_code = msg.etype
        if etype_code < 0:
            etype_code = 0
        if kind is Dvcc.INFORM_EPOCH:
            begin = msg.t_begin
            if begin < 0:
                begin = 0
            record = (
                begin,
                next(self._pq_seq),
                _K_EPOCH,
                msg.src,
                block,
                etype_code,
                begin,
                msg.t_end,
                msg.h_begin,
                msg.h_end,
            )
        elif kind is Dvcc.INFORM_OPEN_EPOCH:
            begin = msg.t_begin
            if begin < 0:
                begin = 0
            record = (
                begin,
                next(self._pq_seq),
                _K_OPEN,
                msg.src,
                block,
                etype_code,
                begin,
                -1,
                msg.h_begin,
                -1,
            )
        else:  # INFORM_CLOSED_EPOCH sorts by its end time
            end = msg.t_end
            record = (
                end,
                next(self._pq_seq),
                _K_CLOSED,
                msg.src,
                block,
                etype_code,
                -1,
                end,
                -1,
                -1,
            )
        # The record carries everything the MET needs; the checker is
        # the inform's sole consumer, so the wire record recycles here.
        release(msg)
        bank = (block >> _BANK_SHIFT) & _BANK_MASK
        if self._obs_on:
            self._obs_bank_pushes[bank] += 1
        heapq.heappush(self._pq[home][bank], record)
        self._pq_len[home] += 1
        if self._pq_len[home] > self.config.dvmc.priority_queue_entries:
            # Hardware's bounded queue: evict (process) the oldest
            # entry immediately rather than grow without bound.
            self._values[self._h_pq_forced[home]] += 1
            self._drain(home, force_one=True)
        return home

    # ------------------------------------------------------------------
    # MET side
    # ------------------------------------------------------------------
    def home_request(self, home: int, addr: int) -> None:
        """Create the MET entry at first request (paper 4.3)."""
        block = block_of(addr)
        met = self._met[home][(block >> _BANK_SHIFT) & _BANK_MASK]
        if block not in met:
            data = self.memories[home].read_block(block)
            met[block] = METEntry(
                self.lt.now(home), self._hash_block(block, data)
            )

    def memory_written(
        self, home: int, addr: int, old_data: list, new_data: list
    ) -> None:
        """A writeback is being applied at ``home``.

        Rule 3 extended to DRAM residency: the data being replaced must
        still hash to what the MET last saw stored there — anything
        else means the block was corrupted while memory-resident.
        """
        block = block_of(addr)
        entry = self._met[home][(block >> _BANK_SHIFT) & _BANK_MASK].get(block)
        if entry is None:
            # First touch is the writeback itself; the lazy MET entry
            # created later will hash post-writeback memory.
            return
        old_hash = self._hash_block(block, old_data)
        if entry.mem_hash is not None and old_hash != entry.mem_hash:
            self._violate(
                home,
                "data-propagation",
                f"block 0x{block:x}: memory holds hash {old_hash:#06x} "
                f"at writeback, last stored {entry.mem_hash:#06x}",
                addr=block,
            )
        entry.mem_hash = self._hash_block(block, new_data)

    def verify_memory(self) -> None:
        """Scrubber pass: DRAM contents of every MET-tracked block must
        hash to the value recorded when they were last stored."""
        for home, banks in enumerate(self._met):
            for met in banks:
                for block, entry in met.items():
                    if entry.mem_hash is None:
                        continue
                    got = self._hash_block(
                        block, self.memories[home].read_block(block)
                    )
                    if got != entry.mem_hash:
                        self._violate(
                            home,
                            "data-propagation",
                            f"block 0x{block:x}: scrub reads hash "
                            f"{got:#06x}, last stored {entry.mem_hash:#06x}",
                            addr=block,
                        )

    def _met_entry(self, home: int, block: int) -> METEntry:
        if self._obs_on:
            self._obs_met_probes += 1
        met = self._met[home][(block >> _BANK_SHIFT) & _BANK_MASK]
        entry = met.get(block)
        if entry is None:
            # Shouldn't happen fault-free (home_request precedes epochs),
            # but injected faults can reorder things; create leniently.
            data = self.memories[home].read_block(block)
            entry = METEntry(0, self._hash_block(block, data))
            met[block] = entry
        return entry

    def _drain(self, home: int, force_one: bool = False) -> None:
        """Process eligible informs in global begin order across banks.

        Each bank heap's head is its minimum, so the minimum over heads
        is the home's global minimum — identical pop order to a single
        unsharded queue, at a 4-way compare per pop instead of a wide
        heap sift.
        """
        banks = self._pq[home]
        now = self.lt.now(home)
        process = self._process_inform
        while True:
            best = None
            best_bank = 0
            for i in range(MET_BANKS):
                pq = banks[i]
                if pq:
                    head = pq[0]
                    if best is None or head < best:
                        best = head
                        best_bank = i
            if best is None:
                return
            if not force_one and now - best[0] < MET_SORT_SLACK:
                return
            heapq.heappop(banks[best_bank])
            self._pq_len[home] -= 1
            process(home, best)
            force_one = False

    def flush(self) -> None:
        """Process every queued inform (end of simulation)."""
        for home in range(self.config.num_nodes):
            banks = self._pq[home]
            while self._pq_len[home]:
                best = None
                best_bank = 0
                for i in range(MET_BANKS):
                    pq = banks[i]
                    if pq and (best is None or pq[0] < best):
                        best = pq[0]
                        best_bank = i
                heapq.heappop(banks[best_bank])
                self._pq_len[home] -= 1
                self._process_inform(home, best)

    def _process_inform(self, home: int, record: tuple) -> None:
        self._values[self._h_informs_processed[home]] += 1
        (
            _key,
            _seq,
            kind,
            src,
            block,
            etype_code,
            begin,
            end,
            begin_hash,
            end_hash,
        ) = record
        s = self.spans
        if s is not None and s.trace_infra:
            s.instant(
                0, self._span_met_tracks[home], K_MET,
                self.scheduler.now, block, src, home,
            )
        if kind == _K_CLOSED:
            self._met_close_open(home, block, src, etype_code, end)
            return
        entry = self._met_entry(home, block)
        is_rw = etype_code == 1

        # Rule 2: Read-Write epochs do not overlap other epochs.  The
        # interval index answers the exact-overlap query in O(log n);
        # the scalar floors cover entry creation, unknown-begin closed
        # epochs, and history folded out of the bounded index.  An open
        # inform has no end yet, so it conflicts with any later end
        # (query against [begin, inf)); a degenerate epoch (end ==
        # begin) queries as a point so it still conflicts with an epoch
        # spanning it.
        if kind == _K_EPOCH:
            query_end = end if end > begin else begin + 1
        else:
            query_end = None
        if self._obs_on:
            self._obs_overlap_checks += 1
        if is_rw:
            limit = (
                entry.floor_rw
                if entry.floor_rw >= entry.floor_ro
                else entry.floor_ro
            )
            for index in (entry.rw_index, entry.ro_index):
                m = (
                    index.max_overlap_end(begin, query_end)
                    if query_end is not None
                    else index.max_end()
                )
                if m is not None and m > limit:
                    limit = m
        else:
            limit = entry.floor_rw
            index = entry.rw_index
            m = (
                index.max_overlap_end(begin, query_end)
                if query_end is not None
                else index.max_end()
            )
            if m is not None and m > limit:
                limit = m
        if begin < limit:
            etype = _ETYPE_FROM_CODE[etype_code]
            self._violate(
                home,
                "epoch-overlap",
                f"block 0x{block:x}: {etype.value} epoch from node {src} "
                f"begins at {begin} before a conflicting epoch ended at {limit}",
                addr=block,
            )
        if entry.open_rw is not None and entry.open_rw != src:
            self._violate(
                home,
                "epoch-overlap-open",
                f"block 0x{block:x}: epoch begins while node "
                f"{entry.open_rw} holds an open RW epoch",
                addr=block,
            )
        open_ro = entry.open_ro
        if is_rw and open_ro and (len(open_ro) > 1 or src not in open_ro):
            self._violate(
                home,
                "epoch-overlap-open",
                f"block 0x{block:x}: RW epoch while RO epochs open",
                addr=block,
            )

        # Rule 3: data propagates intact from the last RW epoch.
        if (
            begin_hash != -1
            and entry.last_rw_end_hash is not None
            and begin_hash != entry.last_rw_end_hash
        ):
            self._violate(
                home,
                "data-propagation",
                f"block 0x{block:x}: epoch begins with hash "
                f"{begin_hash:#06x}, last RW epoch ended with "
                f"{entry.last_rw_end_hash:#06x}",
                addr=block,
            )

        if kind == _K_OPEN:
            if is_rw:
                entry.open_rw = src
            else:
                entry.open_ro.add(src)
            return

        if is_rw:
            if end > entry.last_rw_end:
                entry.last_rw_end = end
                entry.last_rw_end_hash = None if end_hash == -1 else end_hash
            index = entry.rw_index
            index.add(begin, end)
            if len(index) > MET_INDEX_CAPACITY:
                folded = index.drop_oldest(MET_INDEX_CAPACITY // 2)
                if folded is not None and folded > entry.floor_rw:
                    entry.floor_rw = folded
        else:
            if end_hash != -1 and begin_hash != -1 and end_hash != begin_hash:
                self._violate(
                    home,
                    "ro-epoch-data-changed",
                    f"block 0x{block:x} changed during a read-only epoch",
                    addr=block,
                )
            if end > entry.last_ro_end:
                entry.last_ro_end = end
            index = entry.ro_index
            index.add(begin, end)
            if len(index) > MET_INDEX_CAPACITY:
                folded = index.drop_oldest(MET_INDEX_CAPACITY // 2)
                if folded is not None and folded > entry.floor_ro:
                    entry.floor_ro = folded

    def _met_close_open(
        self, home: int, block: int, src: int, etype_code: int, end: int
    ) -> None:
        """Inform-Closed-Epoch: only address and end time (paper 4.3).

        With no begin time the epoch cannot enter the interval index;
        its end raises the scalar floor instead (the conservative
        hardware check), exactly as the paper's 48-bit MET would.
        """
        entry = self._met_entry(home, block)
        if etype_code == 1:
            if entry.open_rw == src:
                entry.open_rw = None
            entry.last_rw_end = max(entry.last_rw_end, end)
            entry.last_rw_end_hash = None  # unknown until the next epoch
            entry.floor_rw = max(entry.floor_rw, end)
        else:
            entry.open_ro.discard(src)
            entry.last_ro_end = max(entry.last_ro_end, end)
            entry.floor_ro = max(entry.floor_ro, end)

    # ------------------------------------------------------------------
    def _sweep(self) -> None:
        for node in range(self.config.num_nodes):
            self._scrub_check(node)
            self._drain(node)
        self.scheduler.post(SWEEP_PERIOD, self._sweep)

    def _violate(
        self, node: int, kind: str, detail: str, addr: int = 0
    ) -> None:
        self._values[self._h_violations[node]] += 1
        s = self.spans
        if s is not None:
            s.violation(
                "CC", node, self.scheduler.now, addr=addr, detail=detail
            )
        self.violations(
            ViolationReport("CC", self.scheduler.now, node, kind, detail)
        )
