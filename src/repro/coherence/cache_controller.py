"""Cache-controller machinery shared by the directory and snooping
protocols.

The controller owns the node's L1 array, serialises core requests per
block, runs coherence transactions, performs loads/stores/atomics when
permissions allow, and announces epoch lifecycle events through
:class:`~repro.coherence.hooks.SystemHooks`.

Evictions are *blocking*: a dirty victim's writeback completes (ack or
stale notification) before the demand request is issued.  This closes
the writeback/forward races without NACKs or extra protocol states and
matches the paper's note that blocks are evicted "before requesting a
new block".
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.common.errors import SimulationError
from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.common.types import WORD_MASK, CoherenceState, EpochType
from repro.config import SystemConfig
from repro.memory.cache import CacheArray, CacheLine
from repro.obs.spans import K_MSHR, K_OWNER

from .hooks import SystemHooks

#: Flight-recorder codes for cache-line state transitions (the ``b``
#: column of cache-side K_OWNER instants, offset by +1 so 0 = absent).
_STATE_CODE = {state: index for index, state in enumerate(CoherenceState)}


class OpKind(enum.Enum):
    """Core-request kinds handled by the controller."""

    LOAD = "load"
    STORE = "store"
    ATOMIC = "atomic"
    REPLAY = "replay"  # verification-stage load replay (counted apart)
    PREFETCH = "prefetch"  # exclusive prefetch (SC store optimisation)


class CoreRequest:
    """One pending core request for a block."""

    __slots__ = (
        "kind",
        "addr",
        "value",
        "on_done",
        "issued_at",
        "needs_write",
        "tid",
    )

    def __init__(
        self,
        kind: OpKind,
        addr: int,
        value: Optional[int],
        on_done: Callable,
        issued_at: int,
    ):
        self.kind = kind
        self.addr = addr
        self.value = value
        self.on_done = on_done
        self.issued_at = issued_at
        self.tid = 0  # flight-recorder trace id (0 = untraced)
        # Stored, not a property: the service loop consults this once
        # per queued request and the descriptor call shows up there.
        self.needs_write = (
            kind is OpKind.STORE
            or kind is OpKind.ATOMIC
            or kind is OpKind.PREFETCH
        )


class WritebackEntry:
    """A dirty block awaiting writeback acknowledgement."""

    __slots__ = ("addr", "data", "state", "responded", "on_done")

    def __init__(
        self,
        addr: int,
        data: List[int],
        on_done: Callable,
        state: CoherenceState = CoherenceState.M,
    ):
        self.addr = addr
        self.data = data
        self.state = state  # state the line had when evicted (M or O)
        self.responded = False  # serviced a forward while in flight
        self.on_done = on_done


class BaseCacheController:
    """Per-node L1 controller; protocol subclasses supply transactions.

    Subclasses implement :meth:`_start_transaction` (obtain S or M for a
    block) and :meth:`_start_writeback` (write a dirty block back) and
    call :meth:`_transaction_done` / :meth:`_writeback_done` when the
    network activity completes.
    """

    def __init__(
        self,
        node: int,
        scheduler: Scheduler,
        stats: StatsRegistry,
        hooks: SystemHooks,
        config: SystemConfig,
        l1: CacheArray,
    ):
        self.node = node
        self.scheduler = scheduler
        self.stats = stats
        self.hooks = hooks
        self.config = config
        self.l1 = l1
        self._queues: Dict[int, Deque[CoreRequest]] = {}
        self._active: Dict[int, object] = {}  # block -> transaction record
        self._writebacks: Dict[int, WritebackEntry] = {}
        self._stat = f"l1.{node}"
        # Preresolved int-slot counter handles for the per-request and
        # per-miss increment sites (the old f-string-per-miss keys cost
        # a string build plus dict hash per event).
        self._h_accesses = stats.handle(f"l1.{node}.accesses")
        self._h_replay_accesses = stats.handle(f"l1.{node}.replay_accesses")
        self._h_misses = stats.handle(f"l1.{node}.misses")
        self._h_replay_misses = stats.handle(f"l1.{node}.replay_misses")
        self._h_evictions = stats.handle(f"l1.{node}.evictions")
        self._h_writebacks = stats.handle(f"l1.{node}.writebacks")
        self._h_writebacks_stale = stats.handle(f"l1.{node}.writebacks_stale")
        self._values = stats.values
        self._hit_latency = config.l1.hit_latency
        # Interned bound method: _submit/_transaction_done post this once
        # per request, and a fresh bound-method object per post is pure
        # allocator traffic on the hot path.
        self._cb_service = self._service_block
        # Interned hot-path targets (one attribute hop instead of two
        # per request).
        self._post = scheduler.post
        self._incr = stats.incr
        # L1 array internals, interned for the inlined peek in
        # _service_block (one request = one peek; the method call and
        # its re-derived locals are measurable at that rate).  The
        # ``_sets`` list object is mutated in place, never rebound.
        self._l1_sets = l1._sets
        self._l1_shift = l1._shift
        self._l1_set_mask = l1._set_mask
        self._l1_ports = l1.config.ports
        #: When False (snooping), the protocol subclass fires epoch
        #: hooks itself at serialization points; the shared helpers stay
        #: silent except for clean-eviction epoch ends (no serialization
        #: event exists for those).
        self.manage_epochs = True
        #: WaitSet notified on block state/ownership changes and
        #: transaction (MSHR) completion — wired to the owning core's
        #: ordering WaitSet by the system builder.  Spurious notifies
        #: are safe: parked checks just re-evaluate and re-park.
        self.wakes = None
        #: Transaction flight recorder (None = disabled; wired by the
        #: builder via :meth:`attach_spans`).
        self.spans = None
        self._span_track = 0
        #: Trace id of the miss being started (read by the protocol
        #: subclass when stamping its request messages).
        self._miss_tid = 0
        self._mshr_tokens: Dict[int, int] = {}

    def attach_spans(self, spans) -> None:
        """Wire the flight recorder (never changes simulation results)."""
        self.spans = spans
        self._span_track = spans.track(f"cache.{self.node}")

    # ------------------------------------------------------------------
    # Core-facing API
    # ------------------------------------------------------------------
    def load(self, addr: int, on_done: Callable[[int], None]) -> None:
        """Read the word at ``addr``; ``on_done(value)`` when performed."""
        self._submit(CoreRequest(OpKind.LOAD, addr, None, on_done, self.scheduler.now))

    def store(self, addr: int, value: int, on_done: Callable[[int], None]) -> None:
        """Write ``value``; ``on_done(old_value)`` when the store performs."""
        self._submit(CoreRequest(OpKind.STORE, addr, value, on_done, self.scheduler.now))

    def atomic(self, addr: int, value: int, on_done: Callable[[int], None]) -> None:
        """Atomic swap; ``on_done(old_value)`` when performed."""
        self._submit(CoreRequest(OpKind.ATOMIC, addr, value, on_done, self.scheduler.now))

    def replay_load(self, addr: int, on_done: Callable[[int], None]) -> None:
        """Verification-stage replay read (bypasses the write buffer)."""
        self._submit(CoreRequest(OpKind.REPLAY, addr, None, on_done, self.scheduler.now))

    def prefetch_m(self, addr: int) -> None:
        """Obtain write permission without writing (store prefetch)."""
        self._submit(
            CoreRequest(OpKind.PREFETCH, addr, None, lambda _v: None, self.scheduler.now)
        )

    def peek_line(self, addr: int) -> Optional[CacheLine]:
        """Non-intrusive lookup (used by checkers and fault targeting)."""
        return self.l1.peek(addr)

    # ------------------------------------------------------------------
    # Request scheduling
    # ------------------------------------------------------------------
    def _submit(self, req: CoreRequest) -> None:
        s = self.spans
        if s is not None:
            # The core sets the side channel just before calling in.
            req.tid = s.cur
        if req.kind is OpKind.REPLAY:
            self._values[self._h_replay_accesses] += 1
        else:
            self._values[self._h_accesses] += 1
        # Port model (CacheArray.next_access_delay), inlined: one call
        # per request and the common shape is "first access this cycle".
        l1 = self.l1
        now = self.scheduler.now
        delay = self._hit_latency
        if now > l1._port_cycle:
            l1._port_cycle = now
            l1._port_used = 1
        else:  # now == l1._port_cycle: time never goes backwards
            used = l1._port_used
            if used >= self._l1_ports:
                delay += used // self._l1_ports
            l1._port_used = used + 1
        block = req.addr & ~63  # block_of, inlined
        queue = self._queues.get(block)
        if queue is None:
            queue = self._queues[block] = deque()
        queue.append(req)
        self._post(delay, self._cb_service, (block,))

    def _service_block(self, block: int) -> None:
        """Complete satisfiable queued requests; start a transaction for
        the first one that needs more permission."""
        if block in self._active:
            return
        queue = self._queues.get(block)
        if not queue:
            if queue is not None:
                del self._queues[block]
            return
        # The line (identity and state) cannot change synchronously while
        # we drain: on_done callbacks only enqueue work through _submit /
        # the scheduler, so one peek serves the whole loop.  The peek is
        # CacheArray.peek inlined over the interned set list (``block``
        # is already block-aligned): an I-state line counts as absent,
        # exactly like peek returning None.
        set_mask = self._l1_set_mask
        cache_set = self._l1_sets[
            (block >> self._l1_shift) & set_mask
            if set_mask is not None
            else self.l1._set_index(block)
        ]
        line = cache_set.get(block) if cache_set is not None else None
        if line is None or line.state is CoherenceState.I:
            line = None
            can_read = can_write = False
        else:
            can_read = True  # any valid state is readable
            can_write = line.state is CoherenceState.M
        while queue:
            req = queue[0]
            if can_write if req.needs_write else can_read:
                queue.popleft()
                self._perform(req, line)
                continue
            if block in self._writebacks:
                # Eviction of this block still in flight; retry when the
                # writeback completes (see _writeback_done).
                return
            self._begin_miss(req, block, line)
            return
        del self._queues[block]

    def _begin_miss(self, req: CoreRequest, block: int, line: Optional[CacheLine]) -> None:
        """Evict if necessary (blocking), then start the transaction."""
        want_m = req.needs_write
        if req.kind is OpKind.REPLAY:
            self._values[self._h_replay_misses] += 1
        else:
            self._values[self._h_misses] += 1
        self._miss_tid = req.tid
        s = self.spans
        if s is not None and req.tid:
            # MSHR lifetime: miss start -> _transaction_done.
            self._mshr_tokens[block] = s.open(
                req.tid, self._span_track, K_MSHR,
                self.scheduler.now, block, 1 if want_m else 0, self.node,
            )
        if line is None:
            victim = self.l1.victim_for(block, pinned=self._pinned)
            if victim is not None and self._evict(victim, then_block=block):
                return  # resumes via _writeback_done
        self._start_transaction(block, want_m)

    def _evict(self, victim: CacheLine, then_block: Optional[int] = None) -> bool:
        """Evict ``victim``.  Returns True if the caller must wait for a
        blocking writeback before proceeding with ``then_block``."""
        addr = victim.addr
        self._values[self._h_evictions] += 1
        if (self.manage_epochs or not victim.is_dirty()) and self.hooks.sub_epoch_end:
            self.hooks.epoch_end(self.node, addr, list(victim.data))
        if self.hooks.sub_invalidation:
            self.hooks.invalidation(self.node, addr)
        self.l1.remove(addr)
        if victim.is_dirty():
            entry = WritebackEntry(
                addr,
                list(victim.data),
                on_done=(lambda: self._service_block(then_block))
                if then_block is not None
                else (lambda: None),
                state=victim.state,
            )
            self._writebacks[addr] = entry
            self._start_writeback(entry)
            return then_block is not None
        return False

    # ------------------------------------------------------------------
    # Performing accesses
    # ------------------------------------------------------------------
    def _perform(self, req: CoreRequest, line: CacheLine) -> None:
        # CacheArray.touch inlined: refresh LRU recency without a second
        # set lookup (or a method call — one per performed access).
        l1 = self.l1
        l1._use_clock = clock = l1._use_clock + 1
        line.last_used = clock
        kind = req.kind
        hooks = self.hooks
        addr = req.addr
        if kind is OpKind.PREFETCH:
            req.on_done(0)
            return
        word = (addr & 63) >> 2  # word_index, inlined
        if kind is OpKind.LOAD or kind is OpKind.REPLAY:
            value = line.data[word]
            if kind is OpKind.LOAD and hooks.sub_access:
                hooks.access(self.node, addr, False)
            req.on_done(value)
            return
        # STORE / ATOMIC: write in place (state M guaranteed).
        data = line.data
        old_value = data[word]
        if hooks.sub_block_write:
            hooks.block_write(self.node, line.addr, list(data))
        data[word] = req.value & WORD_MASK
        if hooks.sub_access:
            hooks.access(self.node, addr, True)
            if kind is OpKind.ATOMIC:
                hooks.access(self.node, addr, False)
        req.on_done(old_value)

    # ------------------------------------------------------------------
    # State-change helpers used by protocol subclasses
    # ------------------------------------------------------------------
    def _pinned(self, block: int) -> bool:
        """Blocks with outstanding transactions must not be evicted."""
        return block in self._active

    def _install_block(
        self, block: int, state: CoherenceState, data: List[int]
    ) -> CacheLine:
        """Install a freshly arrived block and open its epoch."""
        victim = self.l1.victim_for(block, pinned=self._pinned)
        if victim is not None:
            # The blocking-eviction policy frees a way before requesting,
            # but a concurrent transaction for another block in the same
            # set can refill it; evict again (non-blocking is safe here
            # only for clean victims; dirty victims ride the writeback
            # buffer and the install proceeds).
            self._evict(victim)
        line = self.l1.install(block, state, data)
        s = self.spans
        if s is not None and (self._miss_tid or s.trace_infra):
            s.instant(
                self._miss_tid, self._span_track, K_OWNER,
                self.scheduler.now, block, _STATE_CODE[state] + 1, self.node,
            )
        if self.manage_epochs and self.hooks.sub_epoch_begin:
            etype = (
                EpochType.READ_WRITE
                if state is CoherenceState.M
                else EpochType.READ_ONLY
            )
            self.hooks.epoch_begin(self.node, block, etype, list(line.data))
        if self.wakes is not None:
            self.wakes.notify()
        return line

    def _upgrade_to_m(self, block: int) -> CacheLine:
        """S/O -> M upgrade: close the RO epoch, open an RW epoch."""
        line = self.l1.peek(block)
        if line is None:
            raise SimulationError(f"upgrade of absent block 0x{block:x}")
        if self.manage_epochs and self.hooks.sub_epoch_end:
            self.hooks.epoch_end(self.node, block, list(line.data))
        line.state = CoherenceState.M
        s = self.spans
        if s is not None and (self._miss_tid or s.trace_infra):
            s.instant(
                self._miss_tid, self._span_track, K_OWNER,
                self.scheduler.now, block,
                _STATE_CODE[CoherenceState.M] + 1, self.node,
            )
        if self.manage_epochs and self.hooks.sub_epoch_begin:
            self.hooks.epoch_begin(
                self.node, block, EpochType.READ_WRITE, list(line.data)
            )
        if self.wakes is not None:
            self.wakes.notify()
        return line

    def _downgrade_to_o(self, block: int) -> Optional[CacheLine]:
        """M -> O on a forwarded GetS: RW epoch ends, RO epoch begins."""
        line = self.l1.peek(block)
        if line is None:
            return None
        if line.state is CoherenceState.M:
            if self.manage_epochs and self.hooks.sub_epoch_end:
                self.hooks.epoch_end(self.node, block, list(line.data))
            line.state = CoherenceState.O
            s = self.spans
            if s is not None and s.trace_infra:
                s.instant(
                    0, self._span_track, K_OWNER,
                    self.scheduler.now, block,
                    _STATE_CODE[CoherenceState.O] + 1, self.node,
                )
            if self.manage_epochs and self.hooks.sub_epoch_begin:
                self.hooks.epoch_begin(
                    self.node, block, EpochType.READ_ONLY, list(line.data)
                )
        return line

    def _invalidate_block(self, block: int) -> Optional[List[int]]:
        """Drop the block (remote GetM / Inv).  Returns its data."""
        line = self.l1.peek(block)
        if line is None:
            return None
        data = list(line.data)
        if self.manage_epochs and self.hooks.sub_epoch_end:
            self.hooks.epoch_end(self.node, block, data)
        self.hooks.invalidation(self.node, block)
        self.l1.remove(block)
        s = self.spans
        if s is not None and s.trace_infra:
            # Invalidation: the line leaves this cache (state code 0).
            s.instant(
                0, self._span_track, K_OWNER,
                self.scheduler.now, block, 0, self.node,
            )
        if self.wakes is not None:
            self.wakes.notify()
        return data

    def _writeback_done(self, addr: int, stale: bool) -> None:
        entry = self._writebacks.pop(addr, None)
        if entry is None:
            self.stats.incr(f"{self._stat}.unexpected_wb_ack")
            return
        self._values[
            self._h_writebacks_stale if stale else self._h_writebacks
        ] += 1
        entry.on_done()
        if self.wakes is not None:
            self.wakes.notify()

    # ------------------------------------------------------------------
    # Protocol hooks (implemented by subclasses)
    # ------------------------------------------------------------------
    def _start_transaction(self, block: int, want_m: bool) -> None:
        raise NotImplementedError

    def _start_writeback(self, entry: WritebackEntry) -> None:
        raise NotImplementedError

    def _transaction_done(self, block: int) -> None:
        """Subclasses call this once permissions are in place."""
        self._active.pop(block, None)
        s = self.spans
        if s is not None and self._mshr_tokens:
            token = self._mshr_tokens.pop(block, 0)
            if token:
                s.close(token, self.scheduler.now)
        self.scheduler.post(1, self._cb_service, (block,))
        if self.wakes is not None:
            self.wakes.notify()

    # ------------------------------------------------------------------
    def unexpected(self, what: str) -> None:
        """Record a message the protocol spec does not allow here.

        Fault-free runs must keep this at zero (asserted in tests);
        injected faults can legitimately trigger it, and detection then
        flows through the DVMC checkers rather than simulator errors.
        """
        self.stats.incr(f"{self._stat}.unexpected.{what}")
