"""MOSI snooping protocol (paper's snooping system, Table 6).

Coherence requests broadcast on a totally ordered address network
(broadcast tree); data moves on the unordered torus.  A request's
position in the broadcast order is its serialization point: epochs for
the coherence checker begin and end at serialization, with block data
possibly arriving later (the CET's DataReadyBit case).

Memory controllers snoop every request and track, exactly, which cache
owns each of their home blocks (ownership changes only through GetM and
PutM, which are never silent), so they know when memory must supply
data.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.common.types import CoherenceState, EpochType, block_of, word_index
from repro.config import SystemConfig
from repro.interconnect.base import Network
from repro.interconnect.message import Message, acquire, release
from repro.memory.cache import CacheArray
from repro.memory.memory import MainMemory
from repro.obs.spans import K_OWNER

from .cache_controller import BaseCacheController, WritebackEntry
from .hooks import SystemHooks
from .messages import Coh, Snoop

_CTRL_LATENCY = 2


class _SnoopTransaction:
    """Requestor-side state of an outstanding broadcast request."""

    __slots__ = (
        "block",
        "want_m",
        "serialized",
        "await_data",
        "killed",
        "obligations",
        "lost_to",
        "tid",
    )

    def __init__(self, block: int, want_m: bool):
        self.block = block
        self.want_m = want_m
        self.serialized = False
        self.await_data = False
        self.killed = False  # a later GetM took the block before our data came
        self.obligations: List[Tuple[Snoop, int, Optional[int], int]] = []
        self.tid = 0  # flight-recorder trace id (0 = untraced)
        #: Node whose GetM was serialized after ours took future
        #: ownership; once set, later snoops are that node's problem.
        self.lost_to: Optional[int] = None


class SnoopingCacheController(BaseCacheController):
    """Cache side of the MOSI snooping protocol."""

    def __init__(
        self,
        node: int,
        scheduler: Scheduler,
        stats: StatsRegistry,
        hooks: SystemHooks,
        config: SystemConfig,
        l1: CacheArray,
        address_net: Network,
        data_net: Network,
        home_of: Callable[[int], int],
    ):
        super().__init__(node, scheduler, stats, hooks, config, l1)
        self.address_net = address_net
        self.data_net = data_net
        self.home_of = home_of
        self.manage_epochs = False
        #: Set by the system builder; epochs are stamped with snoop
        #: counts so handoffs land exactly at their serialization point.
        self.logical_time = None
        self._cb_snoop = self._snoop
        self._cb_data = self._data

    def _now(self):
        return None if self.logical_time is None else self.logical_time.now(self.node)

    # -- outbound ---------------------------------------------------------
    def _broadcast(self, kind: Snoop, addr: int, tid: int = 0) -> None:
        # Snoop broadcasts fan out to two consumers per node (cache and
        # memory controller) and are therefore never pooled: plain
        # construction, no release.
        msg = Message(
            src=self.node,
            dst=-1,  # rewritten per delivery by the broadcast net
            kind=kind,
            addr=addr,
            size_bytes=self.config.network.control_message_bytes,
        )
        if tid:
            msg.tid = tid
        self.address_net.send(msg)

    def _send_data(
        self, dst: int, kind: Coh, addr: int, data: List[int], tid: int = 0
    ) -> None:
        msg = acquire(
            self.node,
            dst,
            kind,
            addr,
            list(data),
            self.config.network.data_message_bytes,
        )
        if tid:
            msg.tid = tid
        self.data_net.send(msg)

    def _start_transaction(self, block: int, want_m: bool) -> None:
        txn = _SnoopTransaction(block, want_m)
        txn.tid = self._miss_tid
        self._active[block] = txn
        self._broadcast(Snoop.GETM if want_m else Snoop.GETS, block, tid=txn.tid)

    def _start_writeback(self, entry: WritebackEntry) -> None:
        self._broadcast(Snoop.PUTM, entry.addr)

    # -- snoops (ordered) ---------------------------------------------------
    def handle_snoop(self, msg: Message) -> None:
        self.scheduler.post(_CTRL_LATENCY, self._cb_snoop, (msg,))

    def _snoop(self, msg: Message) -> None:
        block = block_of(msg.addr)
        if msg.src == self.node:
            self._own_snoop(msg, block)
        else:
            self._other_snoop(msg, block)

    # Own request reaches its serialization point --------------------------
    def _own_snoop(self, msg: Message, block: int) -> None:
        if msg.kind is Snoop.PUTM:
            self._own_putm(block)
            return
        txn = self._active.get(block)
        if not isinstance(txn, _SnoopTransaction) or txn.serialized:
            self.unexpected("own_snoop_no_txn")
            return
        txn.serialized = True
        line = self.l1.peek(block)
        if txn.want_m:
            if line is not None and line.state.is_owner():
                # O->M (or M; no data movement): epochs switch here.
                self.hooks.epoch_end(self.node, block, list(line.data))
                line.state = CoherenceState.M
                self.hooks.epoch_begin(
                    self.node, block, EpochType.READ_WRITE, list(line.data)
                )
                if self.wakes is not None:
                    self.wakes.notify()
                self._complete(txn)
                return
            if line is not None:
                # S->M: the RO epoch ends here; fresh data will arrive
                # (memory always supplies unless the requestor owns).
                self.hooks.epoch_end(self.node, block, list(line.data))
                self.l1.remove(block)
            self.hooks.epoch_begin(
                self.node, block, EpochType.READ_WRITE, None
            )
            txn.await_data = True
        else:
            self.hooks.epoch_begin(self.node, block, EpochType.READ_ONLY, None)
            txn.await_data = True

    def _own_putm(self, block: int) -> None:
        wb = self._writebacks.get(block)
        if wb is None:
            self.unexpected("own_putm_no_wb")
            return
        if wb.responded:
            # A GetM serialized before our PutM already took the block.
            self._writeback_done(block, stale=True)
            return
        self.hooks.epoch_end(self.node, block, list(wb.data))
        self._send_data(self.home_of(block), Coh.PUTM, block, wb.data)
        self._writeback_done(block, stale=False)

    # Another node's request ------------------------------------------------
    def _other_snoop(self, msg: Message, block: int) -> None:
        if msg.kind is Snoop.GETS:
            self._other_gets(msg.src, block, tid=msg.tid)
        elif msg.kind is Snoop.GETM:
            self._other_getm(msg.src, block, tid=msg.tid)
        # PUTM by others: caches are not involved.

    def _other_gets(
        self,
        requestor: int,
        block: int,
        at_lt: Optional[int] = None,
        tid: int = 0,
    ) -> None:
        at = self._now() if at_lt is None else at_lt
        line = self.l1.peek(block)
        if line is not None and line.state.is_owner():
            if line.state is CoherenceState.M:
                self.hooks.epoch_end(self.node, block, list(line.data), at)
                line.state = CoherenceState.O
                self.hooks.epoch_begin(
                    self.node, block, EpochType.READ_ONLY, list(line.data), at
                )
                if self.wakes is not None:
                    self.wakes.notify()
            self._send_data(requestor, Coh.DATA, block, line.data, tid=tid)
            return
        wb = self._writebacks.get(block)
        if wb is not None and not wb.responded:
            # Still the owner until our PutM serializes; supply data and
            # continue owning (M->O transition applies to the WB copy).
            if wb.state is CoherenceState.M:
                self.hooks.epoch_end(self.node, block, list(wb.data), at)
                wb.state = CoherenceState.O
                self.hooks.epoch_begin(
                    self.node, block, EpochType.READ_ONLY, list(wb.data), at
                )
            self._send_data(requestor, Coh.DATA, block, wb.data, tid=tid)
            return
        txn = self._active.get(block)
        if (
            isinstance(txn, _SnoopTransaction)
            and txn.serialized
            and txn.want_m
            and txn.lost_to is None
        ):
            txn.obligations.append((Snoop.GETS, requestor, at, tid))

    def _other_getm(
        self,
        requestor: int,
        block: int,
        at_lt: Optional[int] = None,
        tid: int = 0,
    ) -> None:
        at = self._now() if at_lt is None else at_lt
        line = self.l1.peek(block)
        if line is not None:
            if line.state.is_owner():
                self._send_data(requestor, Coh.DATA, block, line.data, tid=tid)
            self.hooks.epoch_end(self.node, block, list(line.data), at)
            self.hooks.invalidation(self.node, block)
            self.l1.remove(block)
            return
        wb = self._writebacks.get(block)
        if wb is not None and not wb.responded:
            wb.responded = True
            self.hooks.epoch_end(self.node, block, list(wb.data), at)
            self._send_data(requestor, Coh.DATA, block, wb.data, tid=tid)
            return
        txn = self._active.get(block)
        if isinstance(txn, _SnoopTransaction) and txn.serialized:
            if txn.want_m:
                if txn.lost_to is None:
                    txn.obligations.append((Snoop.GETM, requestor, at, tid))
                    txn.lost_to = requestor
            elif not txn.killed:
                # Our read was serialized first but the writer's GetM
                # arrived before our data: the arriving block serves the
                # waiting load once, then the line is dead on arrival.
                txn.killed = True
                self.hooks.epoch_end(self.node, block, None, at)
                self.hooks.invalidation(self.node, block)

    # -- data arrival ---------------------------------------------------------
    def handle_data(self, msg: Message) -> None:
        self.scheduler.post(_CTRL_LATENCY, self._cb_data, (msg,))

    def _data(self, msg: Message) -> None:
        block = block_of(msg.addr)
        txn = self._active.get(block)
        if not isinstance(txn, _SnoopTransaction) or not txn.await_data:
            self.unexpected("data_no_txn")
            return
        if msg.data is None:
            raise SimulationError("snooping DATA without payload")
        if txn.killed:
            # Serve the waiting load from the in-flight data *before*
            # closing out the epoch record (the access must be checked
            # against the still-present CET entry).
            self._complete_killed(txn, list(msg.data))
            self.hooks.epoch_data(self.node, block, list(msg.data))
            release(msg)
            return
        self.hooks.epoch_data(self.node, block, list(msg.data))
        state = CoherenceState.M if txn.want_m else CoherenceState.S
        self._install_block(block, state, list(msg.data))
        self._complete(txn)
        release(msg)

    # -- completion -----------------------------------------------------------
    def _complete(self, txn: _SnoopTransaction) -> None:
        block = txn.block
        self._active.pop(block, None)
        # Perform the waiting core accesses now, inside our epoch...
        self._service_block(block)
        # ...then honour handoffs that serialized after our request,
        # stamped with the logical time of *their* serialization point.
        for kind, requestor, at_lt, tid in txn.obligations:
            if kind is Snoop.GETM:
                self._other_getm(requestor, block, at_lt, tid=tid)
            else:
                self._other_gets(requestor, block, at_lt, tid=tid)
        self.scheduler.post(1, self._cb_service, (block,))
        if self.wakes is not None:
            self.wakes.notify()

    def _complete_killed(self, txn: _SnoopTransaction, data: List[int]) -> None:
        """Serve the head load from in-flight data; the line is not
        installed (a later writer already owns it)."""
        block = txn.block
        self._active.pop(block, None)
        queue = self._queues.get(block)
        if queue:
            head = queue[0]
            if not head.needs_write:
                queue.popleft()
                value = data[word_index(head.addr)]
                self.hooks.access(self.node, head.addr, False)
                head.on_done(value)
        self.stats.incr(f"{self._stat}.killed_fills")
        self.scheduler.post(1, self._cb_service, (block,))
        if self.wakes is not None:
            self.wakes.notify()


class SnoopingMemoryController:
    """Memory side: snoops every request; supplies data when it owns."""

    def __init__(
        self,
        node: int,
        scheduler: Scheduler,
        stats: StatsRegistry,
        hooks: SystemHooks,
        config: SystemConfig,
        memory: MainMemory,
        data_net: Network,
        home_of: Callable[[int], int],
    ):
        self.node = node
        self.scheduler = scheduler
        self.stats = stats
        self.hooks = hooks
        self.config = config
        self.memory = memory
        self.data_net = data_net
        self.home_of = home_of
        self._owner: Dict[int, Optional[int]] = {}
        self._pending_wb: Dict[int, int] = {}
        self._stat = f"snoopmem.{node}"
        # Preresolved int-slot counter handles (hot increment sites).
        self._h_gets = stats.handle(f"snoopmem.{node}.gets")
        self._h_getm = stats.handle(f"snoopmem.{node}.getm")
        self._h_putm = stats.handle(f"snoopmem.{node}.putm")
        self._values = stats.values
        self._cb_snoop = self._snoop
        self._cb_wb_data = self._wb_data
        #: Flight recorder (None unless REPRO_OBS_SPANS; see obs.spans).
        self.spans = None
        self._span_track = 0

    def attach_spans(self, spans) -> None:
        """Attach the flight recorder; one track per home node."""
        self.spans = spans
        self._span_track = spans.track(f"snoopmem.{self.node}")

    def handle_snoop(self, msg: Message) -> None:
        self.scheduler.post(_CTRL_LATENCY, self._cb_snoop, (msg,))

    def _snoop(self, msg: Message) -> None:
        block = block_of(msg.addr)
        if self.home_of(block) != self.node:
            return
        owner = self._owner.get(block)
        kind = msg.kind
        if kind is Snoop.GETS:
            self.hooks.home_request(self.node, block)
            self._values[self._h_gets] += 1
            if owner is None:
                self._supply(msg.src, block, msg.tid)
        elif kind is Snoop.GETM:
            self.hooks.home_request(self.node, block)
            self._values[self._h_getm] += 1
            if owner is None and owner != msg.src:
                self._supply(msg.src, block, msg.tid)
            if owner != msg.src:
                self._owner[block] = msg.src
                s = self.spans
                if s is not None and (msg.tid or s.trace_infra):
                    # Home's exact-ownership view: block moved to msg.src.
                    s.instant(
                        msg.tid, self._span_track, K_OWNER,
                        self.scheduler.now, block, msg.src + 1, self.node,
                    )
        elif kind is Snoop.PUTM:
            self._values[self._h_putm] += 1
            if owner == msg.src:
                self._owner[block] = None
                self._pending_wb[block] = msg.src
                s = self.spans
                if s is not None and (msg.tid or s.trace_infra):
                    # Ownership returned to memory (owner code 0).
                    s.instant(
                        msg.tid, self._span_track, K_OWNER,
                        self.scheduler.now, block, 0, self.node,
                    )

    def _supply(self, requestor: int, block: int, tid: int = 0) -> None:
        data = self.memory.read_block(block)
        msg = acquire(
            self.node,
            requestor,
            Coh.DATA,
            block,
            data,
            self.config.network.data_message_bytes,
        )
        if tid:
            msg.tid = tid
        self.scheduler.post(
            self.config.memory.latency,
            self.data_net.send,
            (msg,),
        )

    def handle_data(self, msg: Message) -> None:
        """Writeback data arriving on the torus."""
        self.scheduler.post(_CTRL_LATENCY, self._cb_wb_data, (msg,))

    def _wb_data(self, msg: Message) -> None:
        block = block_of(msg.addr)
        if self._pending_wb.get(block) == msg.src and msg.data is not None:
            del self._pending_wb[block]
            self.hooks.memory_write(
                self.node, block, self.memory.read_block(block), msg.data
            )
            self.memory.write_block(block, msg.data)
            release(msg)
        else:
            self.stats.incr(f"{self._stat}.stale_wb_data")
            release(msg)
