"""Coherence protocol message kinds.

Shared by the MOSI directory and snooping protocols, plus the message
kinds the DVMC coherence checker and SafetyNet add to the interconnect
(both consume real bandwidth; paper Figures 7-8).
"""

from __future__ import annotations

import enum


class Coh(enum.Enum):
    """Directory-protocol and data-network message kinds."""

    # Requests, cache -> home
    GETS = "GetS"
    GETM = "GetM"
    PUTM = "PutM"  # writeback of an M or O block (carries data)

    # Home -> cache / cache -> cache
    FWD_GETS = "Fwd_GetS"  # home asks owner to supply data, keep O
    FWD_GETM = "Fwd_GetM"  # home asks owner to supply data, go I
    INV = "Inv"  # home asks sharer to invalidate
    INV_ACK = "InvAck"  # sharer -> requestor
    ACK_COUNT = "AckCount"  # home -> requestor: how many InvAcks to await
    DATA = "Data"  # data block transfer
    WB_ACK = "WBAck"  # home accepted a writeback
    WB_STALE = "WBStale"  # writeback raced with an ownership transfer
    UNBLOCK = "Unblock"  # requestor -> home: transaction complete

    # Singleton members: identity hashing dispatches in C instead of
    # hashing the member name per lookup; message kinds key the
    # protocol dispatch dicts on every delivery.
    __hash__ = object.__hash__


class Snoop(enum.Enum):
    """Snooping address-network broadcast kinds (totally ordered)."""

    GETS = "Snoop_GetS"
    GETM = "Snoop_GetM"
    PUTM = "Snoop_PutM"

    __hash__ = object.__hash__  # singleton members; see Coh


class Dvcc(enum.Enum):
    """Coherence-checker messages (cache -> home memory controller)."""

    INFORM_EPOCH = "InformEpoch"
    INFORM_OPEN_EPOCH = "InformOpenEpoch"
    INFORM_CLOSED_EPOCH = "InformClosedEpoch"

    __hash__ = object.__hash__  # singleton members; see Coh


class Sn(enum.Enum):
    """SafetyNet checkpoint-coordination messages."""

    CKPT_VALIDATE = "CkptValidate"

    __hash__ = object.__hash__  # singleton members; see Coh
