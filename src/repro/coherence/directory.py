"""MOSI directory protocol (paper's directory system, Table 6).

Home memory controllers keep a full-map directory (owner + sharer set)
and *block*: transactions for a block serialise at its home, queued
requests waiting for the active transaction's Unblock.  Invalidation
acknowledgements flow directly from sharers to the requestor.  All
traffic rides the unordered 2D torus.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set

from repro.common.errors import SimulationError
from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.common.types import CoherenceState, EpochType, block_of
from repro.config import SystemConfig
from repro.interconnect.base import Network
from repro.interconnect.message import (
    FLAG_DATA_COMING,
    FLAG_HAVE_LINE,
    Message,
    acquire,
    release,
)
from repro.memory.cache import CacheArray
from repro.memory.memory import MainMemory
from repro.obs.spans import K_OWNER

from .cache_controller import BaseCacheController, WritebackEntry
from .hooks import SystemHooks
from .messages import Coh

#: Controller occupancy per handled message, cycles.
_CTRL_LATENCY = 2


class _DirTransaction:
    """Requestor-side state of an outstanding GetS/GetM."""

    __slots__ = (
        "block",
        "want_m",
        "had_line",
        "data",
        "acks_expected",
        "acks_received",
        "data_coming",
        "tid",
    )

    def __init__(self, block: int, want_m: bool, had_line: bool):
        self.block = block
        self.want_m = want_m
        self.had_line = had_line  # upgrading from S/O (data already valid)
        self.data: Optional[List[int]] = None
        self.acks_expected: Optional[int] = None
        self.acks_received = 0
        self.data_coming: Optional[bool] = None
        self.tid = 0  # flight-recorder trace id (0 = untraced)

    def complete(self) -> bool:
        if not self.want_m:
            return self.data is not None
        if self.acks_expected is None or self.data_coming is None:
            return False
        if self.acks_received < self.acks_expected:
            return False
        return (not self.data_coming) or self.data is not None


class DirectoryCacheController(BaseCacheController):
    """Cache side of the MOSI directory protocol."""

    def __init__(
        self,
        node: int,
        scheduler: Scheduler,
        stats: StatsRegistry,
        hooks: SystemHooks,
        config: SystemConfig,
        l1: CacheArray,
        network: Network,
        home_of: Callable[[int], int],
    ):
        super().__init__(node, scheduler, stats, hooks, config, l1)
        self.network = network
        self.home_of = home_of
        self._cb_handle = self._handle

    # -- outbound ---------------------------------------------------------
    def _send(
        self,
        dst: int,
        kind: Coh,
        addr: int,
        data=None,
        req: int = -1,
        flags: int = 0,
        tid: int = 0,
    ) -> None:
        size = (
            self.config.network.data_message_bytes
            if data is not None
            else self.config.network.control_message_bytes
        )
        msg = acquire(self.node, dst, kind, addr, data, size, req=req, flags=flags)
        if tid:
            msg.tid = tid
        self.network.send(msg)

    def _start_transaction(self, block: int, want_m: bool) -> None:
        line = self.l1.peek(block)
        txn = _DirTransaction(block, want_m, had_line=line is not None)
        txn.tid = self._miss_tid
        self._active[block] = txn
        home = self.home_of(block)
        # have_line tells the home whether an upgrade really holds data;
        # silent Shared evictions leave the directory's sharer list
        # stale, so the home cannot rely on it for data-supply decisions.
        self._send(
            home,
            Coh.GETM if want_m else Coh.GETS,
            block,
            flags=FLAG_HAVE_LINE if line is not None else 0,
            tid=txn.tid,
        )

    def _start_writeback(self, entry: WritebackEntry) -> None:
        self._send(self.home_of(entry.addr), Coh.PUTM, entry.addr, data=entry.data)

    # -- inbound ------------------------------------------------------------
    def handle_message(self, msg: Message) -> None:
        """Entry point from the node's network dispatcher."""
        self.scheduler.post(_CTRL_LATENCY, self._cb_handle, (msg,))

    def _handle(self, msg: Message) -> None:
        kind = msg.kind
        if kind is Coh.DATA:
            self._on_data(msg)
        elif kind is Coh.ACK_COUNT:
            self._on_ack_count(msg)
        elif kind is Coh.INV_ACK:
            self._on_inv_ack(msg)
        elif kind is Coh.FWD_GETS:
            self._on_fwd_gets(msg)
        elif kind is Coh.FWD_GETM:
            self._on_fwd_getm(msg)
        elif kind is Coh.INV:
            self._on_inv(msg)
        elif kind is Coh.WB_ACK:
            self._writeback_done(msg.addr, stale=False)
        elif kind is Coh.WB_STALE:
            self._writeback_done(msg.addr, stale=True)
        else:
            self.unexpected(f"kind_{kind}")
            return
        # Sole consumer of this record; payload copies were taken above.
        release(msg)

    # Transaction replies -------------------------------------------------
    def _txn(self, addr: int) -> Optional[_DirTransaction]:
        return self._active.get(block_of(addr))

    def _on_data(self, msg: Message) -> None:
        txn = self._txn(msg.addr)
        if txn is None:
            self.unexpected("data_no_txn")
            return
        txn.data = list(msg.data) if msg.data is not None else None
        self._maybe_finish(txn)

    def _on_ack_count(self, msg: Message) -> None:
        txn = self._txn(msg.addr)
        if txn is None or not txn.want_m:
            self.unexpected("ackcount_no_txn")
            return
        txn.acks_expected = msg.acks
        txn.data_coming = bool(msg.flags & FLAG_DATA_COMING)
        self._maybe_finish(txn)

    def _on_inv_ack(self, msg: Message) -> None:
        txn = self._txn(msg.addr)
        if txn is None or not txn.want_m:
            self.unexpected("invack_no_txn")
            return
        txn.acks_received += 1
        self._maybe_finish(txn)

    def _maybe_finish(self, txn: _DirTransaction) -> None:
        if not txn.complete():
            return
        block = txn.block
        line = self.l1.peek(block)
        if txn.want_m:
            if line is not None:
                if txn.data is not None:
                    # Upgrade with a fresh copy (owner supplied data):
                    # the RO epoch ends over the *old* line content; the
                    # RW epoch begins over the arriving data.
                    self.hooks.epoch_end(self.node, block, list(line.data))
                    line.data = list(txn.data)
                    line.state = CoherenceState.M
                    self.hooks.epoch_begin(
                        self.node, block, EpochType.READ_WRITE, list(line.data)
                    )
                    if self.wakes is not None:
                        self.wakes.notify()
                else:
                    self._upgrade_to_m(block)
            else:
                if txn.data is None:
                    # Only reachable under injected faults (e.g. a lost
                    # or misrouted Data): abandon; the watchdog detects
                    # the stuck core request.
                    self.unexpected("getm_no_data_or_line")
                    self._active.pop(block, None)
                    return
                self._install_block(block, CoherenceState.M, txn.data)
        else:
            if txn.data is None:
                self.unexpected("gets_no_data")
                self._active.pop(block, None)
                return
            self._install_block(block, CoherenceState.S, txn.data)
        self._send(self.home_of(block), Coh.UNBLOCK, block, tid=txn.tid)
        self._transaction_done(block)

    # Remote-initiated actions ---------------------------------------------
    def _on_fwd_gets(self, msg: Message) -> None:
        requestor = msg.req
        block = block_of(msg.addr)
        line = self.l1.peek(block)
        if line is not None and line.state.is_owner():
            self._downgrade_to_o(block)
            self._send(requestor, Coh.DATA, block, data=list(line.data), tid=msg.tid)
            return
        wb = self._writebacks.get(block)
        if wb is not None:
            wb.responded = True
            self._send(requestor, Coh.DATA, block, data=list(wb.data), tid=msg.tid)
            return
        self.unexpected("fwd_gets_no_copy")

    def _on_fwd_getm(self, msg: Message) -> None:
        requestor = msg.req
        block = block_of(msg.addr)
        line = self.l1.peek(block)
        if line is not None and line.state.is_owner():
            data = self._invalidate_block(block)
            self._send(requestor, Coh.DATA, block, data=data, tid=msg.tid)
            return
        wb = self._writebacks.get(block)
        if wb is not None:
            wb.responded = True
            self._send(requestor, Coh.DATA, block, data=list(wb.data), tid=msg.tid)
            return
        self.unexpected("fwd_getm_no_copy")

    def _on_inv(self, msg: Message) -> None:
        requestor = msg.req
        block = block_of(msg.addr)
        line = self.l1.peek(block)
        if line is not None:
            if line.state.is_owner():
                # Spec: Inv only targets S sharers; owners get Fwd_GetM.
                self.unexpected("inv_on_owner")
            self._invalidate_block(block)
        # Always ack, even when the copy was silently evicted earlier.
        self._send(requestor, Coh.INV_ACK, block, tid=msg.tid)


class _DirEntry:
    """Compatibility view of one block's directory state.

    The controller keeps its real state struct-of-arrays (parallel
    int-keyed dicts with sharer *bitmasks*); this object is materialised
    on demand for tests and fault targeting, which want the old
    owner/sharer-set shape.
    """

    __slots__ = ("owner", "sharers", "busy", "queue")

    def __init__(self) -> None:
        self.owner: Optional[int] = None  # None => memory is owner
        self.sharers: Set[int] = set()
        self.busy = False
        self.queue: Deque[Message] = deque()


class DirectoryMemoryController:
    """Home side: full-map blocking directory plus its memory slice.

    Directory state is struct-of-arrays: ``_owner`` (block -> owning
    node, absent when memory owns), ``_sharers`` (block -> bitmask of
    sharer nodes), ``_busy`` (set of blocks with an open transaction)
    and ``_queue`` (block -> deferred messages, allocated lazily).  The
    bitmask form makes the GetM invalidation sweep a few int ops per
    sharer instead of set algebra plus a sort.
    """

    def __init__(
        self,
        node: int,
        scheduler: Scheduler,
        stats: StatsRegistry,
        hooks: SystemHooks,
        config: SystemConfig,
        memory: MainMemory,
        network: Network,
    ):
        self.node = node
        self.scheduler = scheduler
        self.stats = stats
        self.hooks = hooks
        self.config = config
        self.memory = memory
        self.network = network
        self._owner: Dict[int, int] = {}
        self._sharers: Dict[int, int] = {}
        self._busy: Set[int] = set()
        self._queue: Dict[int, Deque[Message]] = {}
        self._stat = f"dir.{node}"
        # Preresolved int-slot counter handles (hot increment sites).
        self._h_gets = stats.handle(f"dir.{node}.gets")
        self._h_getm = stats.handle(f"dir.{node}.getm")
        self._h_putm = stats.handle(f"dir.{node}.putm")
        self._h_unexpected = stats.handle(f"dir.{node}.unexpected")
        self._values = stats.values
        self._cb_handle = self._handle
        # Interned hot-path targets; every coherence transaction funnels
        # several messages through this controller.
        self._post = scheduler.post
        self._cb_supply = self._supply
        self._mem_latency = config.memory.latency
        #: Flight recorder (None unless REPRO_OBS_SPANS; see obs.spans).
        self.spans = None
        self._span_track = 0

    def attach_spans(self, spans) -> None:
        """Attach the flight recorder; one track per home node."""
        self.spans = spans
        self._span_track = spans.track(f"dir.{self.node}")

    def entry(self, block: int) -> _DirEntry:
        """Materialise the old per-block entry shape (cold path)."""
        ent = _DirEntry()
        ent.owner = self._owner.get(block)
        mask = self._sharers.get(block, 0)
        while mask:
            low = mask & -mask
            ent.sharers.add(low.bit_length() - 1)
            mask ^= low
        ent.busy = block in self._busy
        ent.queue = self._queue.get(block, ent.queue)
        return ent

    # -- outbound ---------------------------------------------------------
    def _send(
        self,
        dst: int,
        kind: Coh,
        addr: int,
        data=None,
        req: int = -1,
        acks: int = -1,
        flags: int = 0,
        tid: int = 0,
    ) -> None:
        size = (
            self.config.network.data_message_bytes
            if data is not None
            else self.config.network.control_message_bytes
        )
        msg = acquire(
            self.node, dst, kind, addr, data, size,
            req=req, acks=acks, flags=flags,
        )
        if tid:
            msg.tid = tid
        self.network.send(msg)

    # -- inbound ------------------------------------------------------------
    def handle_message(self, msg: Message) -> None:
        self.scheduler.post(_CTRL_LATENCY, self._cb_handle, (msg,))

    def _handle(self, msg: Message) -> None:
        block = msg.addr & ~63  # block_of, inlined
        if msg.kind is Coh.UNBLOCK:
            self._on_unblock(block)
            release(msg)
            return
        if block in self._busy:
            queue = self._queue.get(block)
            if queue is None:
                queue = self._queue[block] = deque()
            queue.append(msg)
            return
        self._process(msg, block)

    def _process(self, msg: Message, block: int) -> None:
        if msg.kind is Coh.GETS:
            self._on_gets(msg.src, block, msg.tid)
        elif msg.kind is Coh.GETM:
            self._on_getm(
                msg.src, block, bool(msg.flags & FLAG_HAVE_LINE), msg.tid
            )
        elif msg.kind is Coh.PUTM:
            self._on_putm(msg, block)
        else:
            self._values[self._h_unexpected] += 1
            return
        # Done with the record (queued requests release here, when the
        # unblock drain finally processes them).
        release(msg)

    def _supply(
        self, requestor: int, block: int, data: List[int], tid: int
    ) -> None:
        """Memory-sourced Data reply (posted after the memory latency)."""
        self._send(requestor, Coh.DATA, block, data=data, tid=tid)

    def _on_gets(self, requestor: int, block: int, tid: int = 0) -> None:
        self._busy.add(block)
        self._values[self._h_gets] += 1
        self.hooks.home_request(self.node, block)
        owner = self._owner.get(block)
        if owner is None:
            data = self.memory.read_block(block)
            self._post(
                self._mem_latency, self._cb_supply, (requestor, block, data, tid)
            )
        else:
            self._send(owner, Coh.FWD_GETS, block, req=requestor, tid=tid)
        self._sharers[block] = self._sharers.get(block, 0) | (1 << requestor)
        # Owner (if any) retains ownership in O state.

    def _on_getm(
        self,
        requestor: int,
        block: int,
        have_line: bool = False,
        tid: int = 0,
    ) -> None:
        self._busy.add(block)
        self._values[self._h_getm] += 1
        self.hooks.home_request(self.node, block)
        owner = self._owner.get(block)
        rbit = 1 << requestor
        sharer_mask = self._sharers.get(block, 0)
        inv_mask = sharer_mask & ~rbit
        data_coming = not (owner == requestor or (sharer_mask & rbit and have_line))
        if owner is not None and owner != requestor:
            self._send(owner, Coh.FWD_GETM, block, req=requestor, tid=tid)
            data_coming = True
            inv_mask &= ~(1 << owner)
        elif owner is None and data_coming:
            data = self.memory.read_block(block)
            self._post(
                self._mem_latency, self._cb_supply, (requestor, block, data, tid)
            )
        self._send(
            requestor,
            Coh.ACK_COUNT,
            block,
            acks=inv_mask.bit_count(),
            flags=FLAG_DATA_COMING if data_coming else 0,
            tid=tid,
        )
        # Ascending bit order matches the old sorted(invalidatees) sweep.
        mask = inv_mask
        while mask:
            low = mask & -mask
            self._send(low.bit_length() - 1, Coh.INV, block, req=requestor, tid=tid)
            mask ^= low
        self._owner[block] = requestor
        self._sharers[block] = 0
        s = self.spans
        if s is not None and (tid or s.trace_infra):
            # Directory's view: ownership moved to the requestor.
            s.instant(
                tid, self._span_track, K_OWNER, self.scheduler.now,
                block, requestor + 1, self.node,
            )

    def _on_putm(self, msg: Message, block: int) -> None:
        self._values[self._h_putm] += 1
        if self._owner.get(block) == msg.src:
            if msg.data is None:
                raise SimulationError("PutM without data")
            self.hooks.memory_write(
                self.node, block, self.memory.read_block(block), msg.data
            )
            self.memory.write_block(block, msg.data)
            del self._owner[block]
            self._send(msg.src, Coh.WB_ACK, block, tid=msg.tid)
            s = self.spans
            if s is not None and (msg.tid or s.trace_infra):
                # Ownership returned to memory (owner code 0).
                s.instant(
                    msg.tid, self._span_track, K_OWNER, self.scheduler.now,
                    block, 0, self.node,
                )
        else:
            self._send(msg.src, Coh.WB_STALE, block, tid=msg.tid)

    def _on_unblock(self, block: int) -> None:
        busy = self._busy
        busy.discard(block)
        queue = self._queue.get(block)
        if queue is None:
            return
        while queue and block not in busy:
            self._process(queue.popleft(), block)
        if not queue:
            del self._queue[block]
