"""Cache coherence: MOSI directory and snooping protocols."""

from .cache_controller import BaseCacheController, OpKind, WritebackEntry
from .directory import DirectoryCacheController, DirectoryMemoryController
from .hooks import SystemHooks
from .messages import Coh, Dvcc, Sn, Snoop
from .snooping import SnoopingCacheController, SnoopingMemoryController

__all__ = [
    "BaseCacheController",
    "Coh",
    "DirectoryCacheController",
    "DirectoryMemoryController",
    "Dvcc",
    "OpKind",
    "Sn",
    "Snoop",
    "SnoopingCacheController",
    "SnoopingMemoryController",
    "SystemHooks",
    "WritebackEntry",
]
