"""Observation hooks linking the memory system to checkers and BER.

Coherence controllers announce epoch lifecycle events, accesses, and
state-modifying writes through a :class:`SystemHooks` instance.  The
DVMC coherence checker, SafetyNet, and the logical-time base subscribe;
an unprotected system runs with the no-op defaults.  Keeping the
protocol blind to its observers mirrors the paper's claim that
Inform-Epoch generation is off the critical path and adds no protocol
states.

Epoch events are split three ways because an epoch can begin before its
data arrives (the paper's CET *DataReadyBit*): in the snooping system an
epoch opens at the request's serialization point on the ordered address
network, while the data block shows up later on the data network.
``epoch_begin``/``epoch_end`` may therefore carry ``data=None``; the
missing hash is supplied by ``epoch_data`` when the block arrives.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.common.types import EpochType


class SystemHooks:
    """Multicast dispatch of memory-system events.

    All callbacks are synchronous and must not raise during normal
    operation; checkers report problems through their violation sinks.

    The subscriber lists are public on purpose: dispatch sites on the
    per-access hot path guard with ``if hooks.sub_block_write:`` (plain
    attribute truthiness) before building the argument payload, so an
    unobserved system never pays for the ``list(line.data)`` snapshots
    the observers would have received.  Treat them as read-only;
    register through the ``on_*`` methods.
    """

    __slots__ = (
        "sub_epoch_begin",
        "sub_epoch_data",
        "sub_epoch_end",
        "sub_access",
        "sub_block_write",
        "sub_mem_write",
        "sub_snoop_tick",
        "sub_invalidation",
        "sub_home_request",
    )

    def __init__(self) -> None:
        self.sub_epoch_begin: List[Callable] = []
        self.sub_epoch_data: List[Callable] = []
        self.sub_epoch_end: List[Callable] = []
        self.sub_access: List[Callable] = []
        self.sub_block_write: List[Callable] = []
        self.sub_mem_write: List[Callable] = []
        self.sub_snoop_tick: List[Callable] = []
        self.sub_invalidation: List[Callable] = []
        self.sub_home_request: List[Callable] = []

    # Registration -------------------------------------------------------
    def on_epoch_begin(
        self, fn: Callable[[int, int, EpochType, Optional[list]], None]
    ) -> None:
        """fn(node, block_addr, epoch_type, block_data_or_None, lt_or_None)

        ``lt`` is an explicit logical timestamp for protocols whose
        epochs transition at serialization points (snooping); None means
        "now" per the system's logical-time base."""
        self.sub_epoch_begin.append(fn)

    def on_epoch_data(self, fn: Callable[[int, int, list], None]) -> None:
        """fn(node, block_addr, block_data) — data arrived for an epoch
        that began earlier (DataReadyBit transition)."""
        self.sub_epoch_data.append(fn)

    def on_epoch_end(self, fn: Callable[[int, int, Optional[list]], None]) -> None:
        """fn(node, block_addr, block_data_at_end_or_None, lt_or_None)"""
        self.sub_epoch_end.append(fn)

    def on_access(self, fn: Callable[[int, int, bool], None]) -> None:
        """fn(node, addr, is_store) — called when an access performs."""
        self.sub_access.append(fn)

    def on_block_write(self, fn: Callable[[int, int, list], None]) -> None:
        """fn(node, block_addr, old_data) — before a cache block changes."""
        self.sub_block_write.append(fn)

    def on_memory_write(self, fn: Callable[[int, int, list, list], None]) -> None:
        """fn(home_node, block_addr, old_data, new_data) — before a
        writeback replaces a memory block's contents."""
        self.sub_mem_write.append(fn)

    def on_snoop_tick(self, fn: Callable[[int], None]) -> None:
        """fn(node) — a controller processed one ordered snoop."""
        self.sub_snoop_tick.append(fn)

    def on_invalidation(self, fn: Callable[[int, int], None]) -> None:
        """fn(node, block_addr) — node lost read permission for block.

        Cores use this to detect writes to speculatively loaded
        addresses (load-order mis-speculation squash, paper 4.1).
        """
        self.sub_invalidation.append(fn)

    def on_home_request(self, fn: Callable[[int, int], None]) -> None:
        """fn(home_node, block_addr) — a home controller is processing a
        request for the block (MET entries are created here)."""
        self.sub_home_request.append(fn)

    # Dispatch -------------------------------------------------------------
    def epoch_begin(
        self,
        node: int,
        addr: int,
        etype: EpochType,
        data: Optional[list],
        lt: Optional[int] = None,
    ) -> None:
        for fn in self.sub_epoch_begin:
            fn(node, addr, etype, data, lt)

    def epoch_data(self, node: int, addr: int, data: list) -> None:
        for fn in self.sub_epoch_data:
            fn(node, addr, data)

    def epoch_end(
        self,
        node: int,
        addr: int,
        data: Optional[list],
        lt: Optional[int] = None,
    ) -> None:
        for fn in self.sub_epoch_end:
            fn(node, addr, data, lt)

    def access(self, node: int, addr: int, is_store: bool) -> None:
        for fn in self.sub_access:
            fn(node, addr, is_store)

    def block_write(self, node: int, addr: int, old_data: list) -> None:
        for fn in self.sub_block_write:
            fn(node, addr, old_data)

    def memory_write(self, node: int, addr: int, old_data: list, new_data: list) -> None:
        for fn in self.sub_mem_write:
            fn(node, addr, old_data, new_data)

    def snoop_tick(self, node: int) -> None:
        for fn in self.sub_snoop_tick:
            fn(node)

    def invalidation(self, node: int, addr: int) -> None:
        for fn in self.sub_invalidation:
            fn(node, addr)

    def home_request(self, home: int, addr: int) -> None:
        for fn in self.sub_home_request:
            fn(home, addr)
