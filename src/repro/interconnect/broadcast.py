"""Ordered broadcast tree: the snooping protocol's address network.

The paper's snooping system uses a broadcast tree of 2.5 GB/s ordered
links for coherence requests (Table 6).  The essential property is a
*total order*: every controller (including the sender and the memory
controllers) observes all requests in the same sequence.  We model the
tree as a root arbiter: requests serialise through the root and are
then broadcast to every node; bandwidth is accounted on the up-link
from the sender and the down-link to every receiver.
"""

from __future__ import annotations


from repro.common.errors import ConfigError
from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.config import NetworkConfig
from repro.obs.spans import K_BCAST

from .base import Network
from .message import Message


class BroadcastTreeNetwork(Network):
    """Totally ordered broadcast network.

    ``send`` broadcasts to **all** registered nodes; ``message.dst`` is
    ignored on input and rewritten per delivery.  All controllers see
    broadcasts in the same global order, which the snooping protocol
    uses as its serialisation point and the coherence checker uses as
    its logical time base.
    """

    def __init__(
        self,
        name: str,
        scheduler: Scheduler,
        stats: StatsRegistry,
        num_nodes: int,
        config: NetworkConfig,
    ):
        super().__init__(name, scheduler, stats)
        if num_nodes < 1:
            raise ConfigError("broadcast tree needs at least one node")
        self.config = config
        self._num_nodes = num_nodes
        self._root_free_at = 0
        self.order_count = 0  # total broadcasts ordered so far
        self._ser_memo = {}
        #: Per-source up-link byte-counter handles, resolved on first use.
        self._up_handles = {}
        #: (sorted nodes, their handlers, down-link handles), rebuilt
        #: lazily after registration changes.
        self._fanout = None

    def register(self, node, handler):
        super().register(node, handler)
        self._fanout = None

    def send(self, message: Message) -> None:
        """Arbitrate at the root, then broadcast in total order."""
        self.messages_sent += 1
        if self._fault_hook is not None:
            msgs = self._apply_fault_hook(message)
        else:
            msgs = (message,)
        values = self._values
        link_latency = self.config.link_latency
        for msg in msgs:
            size = msg.size_bytes
            ser = self._ser_memo.get(size)
            if ser is None:
                ser = self._ser_memo[size] = self.config.serialization_cycles(
                    size
                )
            start = self.scheduler.now + link_latency
            if self._root_free_at > start:
                start = self._root_free_at
            self._root_free_at = start + ser
            hidx = self._up_handles.get(msg.src)
            if hidx is None:
                hidx = self._up_handles[msg.src] = self.stats.handle(
                    f"net.{self.name}.link.{msg.src}-root"
                )
            values[hidx] += size
            order_index = self.order_count
            self.order_count += 1
            deliver = start + ser + link_latency
            s = self.spans
            if s is not None and msg.tid:
                # Arbitration + fanout as one span: root serialisation
                # makes the delivery cycle known at send time.
                s.span(
                    msg.tid, self._span_track, K_BCAST,
                    self.scheduler.now, deliver,
                    msg.addr, msg.src, order_index,
                )
            self._post_at(deliver, self._broadcast, (msg, order_index))

    def _broadcast(self, msg: Message, order_index: int) -> None:
        # One scheduled event fans out to every node synchronously, so
        # a broadcast is already a maximally batched delivery — there
        # is nothing for ``deliver_at`` to coalesce (root serialisation
        # keeps distinct broadcasts on distinct cycles).  Each node's
        # single message goes straight to its plain handler.
        fanout = self._fanout
        if fanout is None:
            nodes = sorted(self._handlers)
            fanout = self._fanout = [
                (
                    node,
                    self._handlers[node],
                    self.stats.handle(f"net.{self.name}.link.root-{node}"),
                )
                for node in nodes
            ]
        values = self._values
        size = msg.size_bytes
        src = msg.src
        for node, handler, hidx in fanout:
            values[hidx] += size
            delivered = msg if node == src else self._clone_for(msg, node)
            delivered.dst = node
            delivered.order = order_index
            handler(delivered)

    def obs_snapshot(self) -> dict:
        """Broadcast-tree view: ordered-broadcast accounting."""
        snap = super().obs_snapshot()
        snap.update(
            {
                "topology": f"broadcast-tree-{self._num_nodes}",
                "broadcasts_ordered": self.order_count,
                "root_free_at": self._root_free_at,
            }
        )
        return snap

    @staticmethod
    def _clone_for(msg: Message, node: int) -> Message:
        clone = msg.copy_for_duplicate()
        clone.uid = msg.uid  # same logical broadcast
        clone.dst = node
        return clone
