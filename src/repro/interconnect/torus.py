"""2D torus with XY (dimension-order) routing — the express message plane.

The paper's data network (both protocols) and the directory system's
only network: a 2D torus of 2.5 GB/s links (Table 6).  Each directed
link serialises one message at a time at the configured bytes/cycle,
and per-link byte counters feed the Figure 7 bandwidth analysis.

**Whole-path link reservation.**  A message's entire route is a pure
function of (src, dst) under XY routing, so ``send()`` walks the
memoized link path once and reserves every directed link *at send
time* with the recurrence::

    t_0     = now
    start_k = max(free_at_k, t_k)
    free_at_k <- start_k + ser          # ser = serialization cycles
    t_{k+1} = start_k + ser + hop_fixed # hop_fixed = link + switch latency

Per-link byte counters are charged during the same walk, and the final
delivery event is posted at send time — in **both** regimes, so the
delivery's position in its cycle's tie-break order depends only on
architectural history.  The *express* regime (default) posts nothing
else; the *hop-by-hop* regime (``REPRO_HOPS=1``, or ``express=False``)
additionally posts one **inert** relay event per intermediate node
along the precomputed timetable, reproducing per-hop simulation's
event structure without touching state.  The two regimes are therefore
identical in every architectural observable — delivery cycles, per-link
bytes, violations, memory/cache images — and differ only in raw event
counts (``hop_events_elided``), exactly the contract the wake-on-change
kernel established for ``REPRO_POLL``.

Reservation order is global **send order** (the paper's torus is
unordered between src/dst pairs; per-link FIFO now follows send order
rather than hop-arrival order — see EXPERIMENTS.md, "Express message
plane").
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.config import NetworkConfig
from repro.obs.spans import K_LINK, K_MSG

from .base import Network
from .message import Message


def grid_shape(num_nodes: int) -> Tuple[int, int]:
    """(rows, cols) of the most-square grid holding ``num_nodes``.

    The paper's 8-node systems form a 2x4 torus.
    """
    rows = int(math.isqrt(num_nodes))
    while rows > 1 and num_nodes % rows != 0:
        rows -= 1
    return rows, num_nodes // rows


class _Link:
    """One directed link: serialisation + occupancy tracking."""

    __slots__ = ("free_at", "key", "hidx", "high_water", "span_track")

    def __init__(self, key: str, hidx: int):
        self.free_at = 0
        self.key = key
        #: Preresolved stats handle for the per-link byte counter.
        self.hidx = hidx
        #: Largest reservation backlog seen (cycles the link was already
        #: booked ahead when a new reservation landed).
        self.high_water = 0
        #: Flight-recorder track id, interned on first traced use.
        self.span_track = 0


class TorusNetwork(Network):
    """2D torus, XY routing, wraparound in both dimensions.

    Delivery order between different source-destination pairs is not
    globally ordered (the paper's torus is "unordered"); per-link
    transmission is FIFO in send order.

    ``express=None`` (default) reads ``REPRO_HOPS`` from the
    environment at construction: set ``REPRO_HOPS=1`` to retain the
    hop-by-hop relay-event regime.  Tests pass ``express`` explicitly.
    """

    def __init__(
        self,
        name: str,
        scheduler: Scheduler,
        stats: StatsRegistry,
        num_nodes: int,
        config: NetworkConfig,
        express: Optional[bool] = None,
    ):
        super().__init__(name, scheduler, stats)
        if num_nodes < 1:
            raise ConfigError("torus needs at least one node")
        self.config = config
        self.rows, self.cols = grid_shape(num_nodes)
        self._num_nodes = num_nodes
        self._links: Dict[Tuple[int, int], _Link] = {}
        #: Next-hop memo: XY routing is a pure function of (cur, dst),
        #: keyed ``cur * n + dst`` so lookups need no tuple allocation.
        self._next_hop: Dict[int, int] = {}
        #: Whole-path memos, same int key: the node sequence (route())
        #: and the directed-link sequence send() walks for reservation.
        self._node_paths: Dict[int, Tuple[int, ...]] = {}
        self._link_paths: Dict[int, Tuple[_Link, ...]] = {}
        #: Serialization cycles by message size; sizes take only a
        #: handful of distinct (interned small-int) values.
        self._ser_memo: Dict[int, int] = {}
        self._hop_fixed = config.link_latency + config.switch_latency
        self._switch_latency = config.switch_latency
        if express is None:
            express = os.environ.get("REPRO_HOPS", "0") != "1"
        self.express = express
        #: Event-plane accounting (plain attributes, not stats counters,
        #: so express and hop-by-hop runs stay metric-identical).
        self.hop_events_elided = 0
        self.express_sends = 0
        self.fallback_sends = 0
        # Interned bound method for the hop-by-hop relay chain.
        self._cb_relay = self._relay

    # Topology helpers ---------------------------------------------------
    def _coords(self, node: int) -> Tuple[int, int]:
        return divmod(node, self.cols)

    def _node_at(self, row: int, col: int) -> int:
        return (row % self.rows) * self.cols + (col % self.cols)

    def _step_toward(self, cur: int, dst: int) -> int:
        """Next hop under XY routing with shortest wraparound."""
        key = cur * self._num_nodes + dst
        nxt = self._next_hop.get(key)
        if nxt is None:
            nxt = self._next_hop[key] = self._compute_step(cur, dst)
        return nxt

    def _compute_step(self, cur: int, dst: int) -> int:
        crow, ccol = self._coords(cur)
        drow, dcol = self._coords(dst)
        if ccol != dcol:
            fwd = (dcol - ccol) % self.cols
            back = (ccol - dcol) % self.cols
            step = 1 if fwd <= back else -1
            return self._node_at(crow, ccol + step)
        fwd = (drow - crow) % self.rows
        back = (crow - drow) % self.rows
        step = 1 if fwd <= back else -1
        return self._node_at(crow + step, ccol)

    def _node_path(self, key: int, src: int, dst: int) -> Tuple[int, ...]:
        """Memoized full node sequence from ``src`` to ``dst``."""
        path = [src]
        cur = src
        guard = self.rows + self.cols + 2
        while cur != dst:
            cur = self._step_toward(cur, dst)
            path.append(cur)
            if len(path) > guard:  # pragma: no cover - defensive
                raise ConfigError("routing loop in torus")
        memo = tuple(path)
        self._node_paths[key] = memo
        return memo

    def route(self, src: int, dst: int) -> List[int]:
        """Full node path from ``src`` to ``dst`` (inclusive).

        Served from the same path memo ``send()`` reserves over, so
        repeated route queries cost one dict lookup.
        """
        key = src * self._num_nodes + dst
        path = self._node_paths.get(key)
        if path is None:
            path = self._node_path(key, src, dst)
        return list(path)

    def _link(self, a: int, b: int) -> _Link:
        link = self._links.get((a, b))
        if link is None:
            key = f"net.{self.name}.link.{a}-{b}"
            link = _Link(key, self.stats.handle(key))
            self._links[(a, b)] = link
        return link

    def _link_path(self, key: int, src: int, dst: int) -> Tuple[_Link, ...]:
        """Memoized directed-link sequence along the XY route."""
        nodes = self._node_paths.get(key)
        if nodes is None:
            nodes = self._node_path(key, src, dst)
        links = tuple(
            self._link(nodes[i], nodes[i + 1]) for i in range(len(nodes) - 1)
        )
        self._link_paths[key] = links
        return links

    # Sending ------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Inject ``message``: reserve its whole path, then deliver."""
        self.messages_sent += 1
        if self._fault_hook is not None:
            msgs = self._apply_fault_hook(message)
        else:
            msgs = (message,)
        n = self._num_nodes
        values = self._values
        hop_fixed = self._hop_fixed
        express = self.express
        spans = self.spans
        for msg in msgs:
            dst = msg.dst
            src = msg.src
            now = self.scheduler.now
            traced = spans is not None and msg.tid != 0
            if dst == src:
                # Local delivery (e.g. home node is the requestor):
                # bypasses the network after the switch latency.
                t = now + self._switch_latency
                if traced:
                    spans.span(
                        msg.tid, self._span_track, K_MSG, now, t,
                        msg.addr, src, dst,
                    )
                self.deliver_at(t, msg)
                continue
            key = src * n + dst
            path = self._link_paths.get(key)
            if path is None:
                path = self._link_path(key, src, dst)
            size = msg.size_bytes
            ser = self._ser_memo.get(size)
            if ser is None:
                ser = self._ser_memo[size] = self.config.serialization_cycles(
                    size
                )
            if express:
                self.express_sends += 1
                t = now
                for link in path:
                    free = link.free_at
                    start = free if free > t else t
                    if free > t:
                        backlog = free - t
                        if backlog > link.high_water:
                            link.high_water = backlog
                    link.free_at = start + ser
                    t = start + ser + hop_fixed
                    values[link.hidx] += size
                    if traced:
                        lt = link.span_track
                        if not lt:
                            lt = link.span_track = spans.track(link.key)
                        spans.span(
                            msg.tid, lt, K_LINK, start, start + ser,
                            msg.addr, src, dst,
                        )
                self.hop_events_elided += len(path) - 1
                if traced:
                    spans.span(
                        msg.tid, self._span_track, K_MSG, now, t,
                        msg.addr, src, dst,
                    )
                self.deliver_at(t, msg)
            else:
                self.fallback_sends += 1
                t = now
                times = []
                for link in path:
                    free = link.free_at
                    start = free if free > t else t
                    if free > t:
                        backlog = free - t
                        if backlog > link.high_water:
                            link.high_water = backlog
                    link.free_at = start + ser
                    t = start + ser + hop_fixed
                    values[link.hidx] += size
                    times.append(t)
                    if traced:
                        lt = link.span_track
                        if not lt:
                            lt = link.span_track = spans.track(link.key)
                        spans.span(
                            msg.tid, lt, K_LINK, start, start + ser,
                            msg.addr, src, dst,
                        )
                if len(times) > 1:
                    self._post_at(times[0], self._cb_relay, (times, 0))
                if traced:
                    spans.span(
                        msg.tid, self._span_track, K_MSG, now, t,
                        msg.addr, src, dst,
                    )
                self.deliver_at(t, msg)

    def _relay(self, times: List[int], k: int) -> None:
        """Hop-by-hop regime: inert relay along the reserved timetable.

        Fires at ``times[k]`` — the arrival at intermediate node k+1 of
        the route — and chains the next relay, reproducing the
        one-event-per-hop structure of per-hop simulation.  All
        architectural effects (reservation, byte counters, the final
        delivery event) were already posted at send time, identically
        in both regimes, so a relay touches no state: the two regimes
        differ *only* in raw event count.
        """
        nxt = k + 1
        if nxt < len(times) - 1:
            self._post_at(times[nxt], self._cb_relay, (times, nxt))

    # Introspection ------------------------------------------------------
    def obs_snapshot(self) -> dict:
        """Torus view: base traffic numbers plus express-plane state."""
        snap = super().obs_snapshot()
        snap.update(
            {
                "topology": f"torus-{self.rows}x{self.cols}",
                "links_active": len(self._links),
                "next_hop_memo_entries": len(self._next_hop),
                "path_memo_entries": len(self._link_paths),
                "express": self.express,
                "express_sends": self.express_sends,
                "fallback_sends": self.fallback_sends,
                "hop_events_elided": self.hop_events_elided,
                "reservation_queue_high_water": max(
                    (link.high_water for link in self._links.values()),
                    default=0,
                ),
            }
        )
        return snap

    def link_utilization(self, elapsed_cycles: int) -> Dict[str, float]:
        """Per-link bytes/cycle over ``elapsed_cycles`` (Figure 7/8)."""
        if elapsed_cycles <= 0:
            return {}
        out = {}
        for (a, b), link in self._links.items():
            out[f"{a}-{b}"] = self.stats.counter(link.key) / elapsed_cycles
        return out
