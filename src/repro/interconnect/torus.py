"""2D torus with XY (dimension-order) routing.

The paper's data network (both protocols) and the directory system's
only network: a 2D torus of 2.5 GB/s links (Table 6).  Messages are
routed hop by hop; each directed link serialises one message at a time
at the configured bytes/cycle, and per-link byte counters feed the
Figure 7 bandwidth analysis.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.common.errors import ConfigError
from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.config import NetworkConfig

from .base import Network
from .message import Message


def grid_shape(num_nodes: int) -> Tuple[int, int]:
    """(rows, cols) of the most-square grid holding ``num_nodes``.

    The paper's 8-node systems form a 2x4 torus.
    """
    rows = int(math.isqrt(num_nodes))
    while rows > 1 and num_nodes % rows != 0:
        rows -= 1
    return rows, num_nodes // rows


class _Link:
    """One directed link: serialisation + occupancy tracking."""

    __slots__ = ("free_at", "key")

    def __init__(self, key: str):
        self.free_at = 0
        self.key = key


class TorusNetwork(Network):
    """2D torus, XY routing, wraparound in both dimensions.

    Delivery order between different source-destination pairs is not
    globally ordered (the paper's torus is "unordered"); per-link
    transmission is FIFO.
    """

    def __init__(
        self,
        name: str,
        scheduler: Scheduler,
        stats: StatsRegistry,
        num_nodes: int,
        config: NetworkConfig,
    ):
        super().__init__(name, scheduler, stats)
        if num_nodes < 1:
            raise ConfigError("torus needs at least one node")
        self.config = config
        self.rows, self.cols = grid_shape(num_nodes)
        self._num_nodes = num_nodes
        self._links: Dict[Tuple[int, int], _Link] = {}
        #: Next-hop memo: XY routing is a pure function of (cur, dst)
        #: and ``_step_toward`` runs once per hop of every message, so
        #: the wraparound arithmetic is worth caching (the table is at
        #: most num_nodes**2 entries).  Keyed by ``cur * n + dst`` so
        #: the per-hop lookup needs no tuple allocation.
        self._next_hop: Dict[int, int] = {}
        #: Links and serialization cycles by the same int-key trick;
        #: message sizes take only a handful of distinct values.
        self._links_fast: Dict[int, _Link] = {}
        self._ser_memo: Dict[int, int] = {}
        self._hop_fixed = config.link_latency + config.switch_latency
        # Interned bound method: multi-hop messages re-post _hop once
        # per intermediate hop, and binding it fresh each time costs an
        # allocation on the hot path.
        self._cb_hop = self._hop

    # Topology helpers ---------------------------------------------------
    def _coords(self, node: int) -> Tuple[int, int]:
        return divmod(node, self.cols)

    def _node_at(self, row: int, col: int) -> int:
        return (row % self.rows) * self.cols + (col % self.cols)

    def _step_toward(self, cur: int, dst: int) -> int:
        """Next hop under XY routing with shortest wraparound."""
        key = cur * self._num_nodes + dst
        nxt = self._next_hop.get(key)
        if nxt is None:
            nxt = self._next_hop[key] = self._compute_step(cur, dst)
        return nxt

    def _compute_step(self, cur: int, dst: int) -> int:
        crow, ccol = self._coords(cur)
        drow, dcol = self._coords(dst)
        if ccol != dcol:
            fwd = (dcol - ccol) % self.cols
            back = (ccol - dcol) % self.cols
            step = 1 if fwd <= back else -1
            return self._node_at(crow, ccol + step)
        fwd = (drow - crow) % self.rows
        back = (crow - drow) % self.rows
        step = 1 if fwd <= back else -1
        return self._node_at(crow + step, ccol)

    def route(self, src: int, dst: int) -> List[int]:
        """Full node path from ``src`` to ``dst`` (inclusive)."""
        path = [src]
        cur = src
        guard = self.rows + self.cols + 2
        while cur != dst:
            cur = self._step_toward(cur, dst)
            path.append(cur)
            if len(path) > guard:  # pragma: no cover - defensive
                raise ConfigError("routing loop in torus")
        return path

    def _link(self, a: int, b: int) -> _Link:
        link = self._links.get((a, b))
        if link is None:
            link = _Link(f"net.{self.name}.link.{a}-{b}")
            self._links[(a, b)] = link
        return link

    # Sending ------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Inject ``message``; it traverses links hop by hop."""
        self.messages_sent += 1
        for msg in self._apply_fault_hook(message):
            if msg.dst == msg.src:
                # Local delivery (e.g. home node is the requestor):
                # bypasses the network after the switch latency.
                self.deliver_at(
                    self.scheduler.now + self.config.switch_latency, msg
                )
                continue
            self._hop(msg, msg.src)

    def _hop(self, msg: Message, at_node: int) -> None:
        n = self._num_nodes
        dst = msg.dst
        key = at_node * n + dst
        nxt = self._next_hop.get(key)
        if nxt is None:
            nxt = self._next_hop[key] = self._compute_step(at_node, dst)
        link_key = at_node * n + nxt
        link = self._links_fast.get(link_key)
        if link is None:
            link = self._link(at_node, nxt)
            self._links_fast[link_key] = link
        size = msg.size_bytes
        ser = self._ser_memo.get(size)
        if ser is None:
            ser = self._ser_memo[size] = self.config.serialization_cycles(size)
        now = self.scheduler.now
        start = link.free_at
        if start < now:
            start = now
        link.free_at = start + ser
        self._incr(link.key, size)
        arrival_delay = (start - now) + ser + self._hop_fixed
        if nxt == dst:
            # Final hop: coalesce with other same-cycle arrivals at the
            # destination so each (node, cycle) costs one event.
            self.deliver_at(now + arrival_delay, msg)
        else:
            self._post(arrival_delay, self._cb_hop, (msg, nxt))

    # Introspection ------------------------------------------------------
    def obs_snapshot(self) -> dict:
        """Torus view: base traffic numbers plus topology/memo state."""
        snap = super().obs_snapshot()
        snap.update(
            {
                "topology": f"torus-{self.rows}x{self.cols}",
                "links_active": len(self._links),
                "next_hop_memo_entries": len(self._next_hop),
            }
        )
        return snap

    def link_utilization(self, elapsed_cycles: int) -> Dict[str, float]:
        """Per-link bytes/cycle over ``elapsed_cycles`` (Figure 7/8)."""
        if elapsed_cycles <= 0:
            return {}
        out = {}
        for (a, b), link in self._links.items():
            out[f"{a}-{b}"] = self.stats.counter(link.key) / elapsed_cycles
        return out
