"""Interconnection networks: 2D torus and ordered broadcast tree."""

from .base import FaultAction, FaultHook, Network
from .broadcast import BroadcastTreeNetwork
from .message import Message
from .torus import TorusNetwork, grid_shape

__all__ = [
    "BroadcastTreeNetwork",
    "FaultAction",
    "FaultHook",
    "Message",
    "Network",
    "TorusNetwork",
    "grid_shape",
]
