"""Abstract network interface and fault hooks.

Networks deliver :class:`~repro.interconnect.message.Message` objects to
per-node handlers.  A single fault hook can be installed; the fault
injector uses it to drop, duplicate, misroute, delay, or corrupt
messages in flight (paper Section 6.1's injected network errors).
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional

from repro.common.errors import ConfigError, SimulationError
from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry

from . import message as message_pool
from .message import Message


class FaultAction(enum.Enum):
    """What a network fault hook asks the network to do with a message."""

    DELIVER = "deliver"  # normal delivery (possibly after mutation)
    DROP = "drop"
    DUPLICATE = "duplicate"  # deliver twice
    MISROUTE = "misroute"  # deliver to ``hook``-chosen wrong node


#: Hook signature: called once per message on send; may mutate the
#: message (bit flips) and returns (action, misroute_destination).
FaultHook = Callable[[Message], "tuple[FaultAction, Optional[int]]"]


class Network(ABC):
    """Base class for interconnect models."""

    def __init__(self, name: str, scheduler: Scheduler, stats: StatsRegistry):
        self.name = name
        self.scheduler = scheduler
        self.stats = stats
        self._handlers: Dict[int, Callable[[Message], None]] = {}
        self._batch_handlers: Dict[int, Callable[[List[Message]], None]] = {}
        #: In-flight coalesced deliveries, keyed ``cycle << 16 | dst``
        #: (one int hash instead of a tuple allocation per delivery) ->
        #: the message list captured by the already-scheduled callback.
        self._pending_batches: Dict[int, List[Message]] = {}
        self._fault_hook: Optional[FaultHook] = None
        self.messages_sent = 0
        self.deliveries_coalesced = 0
        self._h_coalesce = stats.handle(f"net.{name}.coalesced_deliveries")
        # Interned hot-path targets: every message delivery goes through
        # deliver_at, and subclasses charge per-link byte counters per
        # hop via preresolved handles into the flat values list.
        self._post = scheduler.post
        self._post_at = scheduler.post_at
        self._incr = stats.incr
        self._values = stats.values
        self._cb_deliver_batch = self._deliver_batch
        #: Flight recorder (:mod:`repro.obs.spans`); ``None`` unless
        #: ``REPRO_OBS_SPANS`` is set — every record site is guarded so
        #: the disabled path costs one attribute load.
        self.spans = None
        self._span_track = 0

    def attach_spans(self, spans) -> None:
        """Attach the flight recorder; one span track per network."""
        self.spans = spans
        self._span_track = spans.track(f"net.{self.name}")

    def register(self, node: int, handler: Callable[[Message], None]) -> None:
        """Attach the handler receiving messages addressed to ``node``."""
        if node in self._handlers:
            raise ConfigError(f"node {node} already registered on {self.name}")
        self._handlers[node] = handler

    def register_batch(
        self, node: int, handler: Callable[[List[Message]], None]
    ) -> None:
        """Attach a batch handler for ``node``.

        When present it receives all messages of a *coalesced* delivery
        (two or more landing on ``node`` in the same cycle) as a single
        list, letting the receiver amortise per-arrival work.  Lone
        arrivals keep going to the plain handler — the common case pays
        no wrapper cost.
        """
        if node in self._batch_handlers:
            raise ConfigError(
                f"node {node} already has a batch handler on {self.name}"
            )
        self._batch_handlers[node] = handler

    def set_fault_hook(self, hook: Optional[FaultHook]) -> None:
        """Install (or clear) the fault-injection hook."""
        self._fault_hook = hook

    @property
    def num_nodes(self) -> int:
        return len(self._handlers)

    def _apply_fault_hook(self, message: Message) -> "list[Message]":
        """Run the hook; return the list of messages to actually route.

        Every message a hook saw is pinned (``no_recycle``): the
        injector (or a test asserting on the fault) may hold a
        reference past delivery, so the record must never be recycled
        under it.
        """
        if self._fault_hook is None:
            return [message]
        message.no_recycle = True
        action, misroute_to = self._fault_hook(message)
        if action is FaultAction.DROP:
            self.stats.incr(f"net.{self.name}.faults.dropped")
            return []
        if action is FaultAction.DUPLICATE:
            self.stats.incr(f"net.{self.name}.faults.duplicated")
            dup = message.copy_for_duplicate()
            dup.no_recycle = True
            return [message, dup]
        if action is FaultAction.MISROUTE:
            self.stats.incr(f"net.{self.name}.faults.misrouted")
            if misroute_to is None:
                raise SimulationError("misroute fault without destination")
            message.dst = misroute_to
            return [message]
        return [message]

    def _deliver(self, message: Message) -> None:
        """Deliver one message immediately (synchronous path)."""
        handler = self._handlers.get(message.dst)
        if handler is None:
            raise SimulationError(
                f"{self.name}: no handler for node {message.dst}"
            )
        handler(message)

    def deliver_at(self, time: int, message: Message) -> None:
        """Schedule delivery at ``time``, coalescing same-cycle arrivals.

        The first message bound for ``(dst, time)`` schedules one
        callback; later messages for the same node and cycle ride that
        callback's list instead of costing an event each.  Within a
        batch, messages keep their scheduling order — the order the old
        one-event-per-message scheme would have delivered them in.
        """
        key = time << 16 | message.dst
        batch = self._pending_batches.get(key)
        if batch is not None:
            batch.append(message)
            self.deliveries_coalesced += 1
            self._values[self._h_coalesce] += 1
            return
        self._pending_batches[key] = batch = [message]
        self._post_at(time, self._cb_deliver_batch, (key, batch))

    def _deliver_batch(self, key: int, batch: List[Message]) -> None:
        del self._pending_batches[key]
        if len(batch) == 1:
            self._deliver(batch[0])
            return
        node = key & 0xFFFF
        batch_handler = self._batch_handlers.get(node)
        if batch_handler is not None:
            batch_handler(batch)
            return
        handler = self._handlers.get(node)
        if handler is None:
            raise SimulationError(f"{self.name}: no handler for node {node}")
        for message in batch:
            handler(message)

    @abstractmethod
    def send(self, message: Message) -> None:
        """Route ``message`` to its destination with modelled timing."""

    def total_bytes(self) -> int:
        """Total bytes carried (sum over links)."""
        return self.stats.sum(f"net.{self.name}.link.")

    def max_link_bytes(self) -> int:
        """Bytes carried by the busiest link (paper Figure 7)."""
        return self.stats.max_over(f"net.{self.name}.link.")[1]

    def obs_snapshot(self) -> dict:
        """Observable interface: traffic and delivery-coalescing view.

        Per-link byte counters live in the shared stats registry (they
        are part of the deterministic run output); this view adds the
        derived numbers the dashboards want — total/busiest-link bytes
        and the coalescing ratio of the batched-delivery path.
        """
        link_prefix = f"net.{self.name}.link."
        links = self.stats.counters_with_prefix(link_prefix)
        sent = self.messages_sent
        coalesced = self.deliveries_coalesced
        pool = message_pool.pool_stats()
        return {
            "messages_sent": sent,
            "deliveries_coalesced": coalesced,
            "coalescing_ratio": coalesced / sent if sent else 0.0,
            "pending_batches": len(self._pending_batches),
            "links": len(links),
            "total_bytes": sum(links.values()),
            "max_link_bytes": max(links.values(), default=0),
            # Message-record freelist (process-wide, shared by every
            # network; repeated per layer for dashboard convenience).
            "msg_pool_depth": pool["depth"],
            "msg_pool_allocated": pool["allocated"],
            "msg_pool_reused": pool["reused"],
        }
