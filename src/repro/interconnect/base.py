"""Abstract network interface and fault hooks.

Networks deliver :class:`~repro.interconnect.message.Message` objects to
per-node handlers.  A single fault hook can be installed; the fault
injector uses it to drop, duplicate, misroute, delay, or corrupt
messages in flight (paper Section 6.1's injected network errors).
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional

from repro.common.errors import ConfigError, SimulationError
from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry

from .message import Message


class FaultAction(enum.Enum):
    """What a network fault hook asks the network to do with a message."""

    DELIVER = "deliver"  # normal delivery (possibly after mutation)
    DROP = "drop"
    DUPLICATE = "duplicate"  # deliver twice
    MISROUTE = "misroute"  # deliver to ``hook``-chosen wrong node


#: Hook signature: called once per message on send; may mutate the
#: message (bit flips) and returns (action, misroute_destination).
FaultHook = Callable[[Message], "tuple[FaultAction, Optional[int]]"]


class Network(ABC):
    """Base class for interconnect models."""

    def __init__(self, name: str, scheduler: Scheduler, stats: StatsRegistry):
        self.name = name
        self.scheduler = scheduler
        self.stats = stats
        self._handlers: Dict[int, Callable[[Message], None]] = {}
        self._fault_hook: Optional[FaultHook] = None
        self.messages_sent = 0

    def register(self, node: int, handler: Callable[[Message], None]) -> None:
        """Attach the handler receiving messages addressed to ``node``."""
        if node in self._handlers:
            raise ConfigError(f"node {node} already registered on {self.name}")
        self._handlers[node] = handler

    def set_fault_hook(self, hook: Optional[FaultHook]) -> None:
        """Install (or clear) the fault-injection hook."""
        self._fault_hook = hook

    @property
    def num_nodes(self) -> int:
        return len(self._handlers)

    def _apply_fault_hook(self, message: Message) -> "list[Message]":
        """Run the hook; return the list of messages to actually route."""
        if self._fault_hook is None:
            return [message]
        action, misroute_to = self._fault_hook(message)
        if action is FaultAction.DROP:
            self.stats.incr(f"net.{self.name}.faults.dropped")
            return []
        if action is FaultAction.DUPLICATE:
            self.stats.incr(f"net.{self.name}.faults.duplicated")
            return [message, message.copy_for_duplicate()]
        if action is FaultAction.MISROUTE:
            self.stats.incr(f"net.{self.name}.faults.misrouted")
            if misroute_to is None:
                raise SimulationError("misroute fault without destination")
            message.dst = misroute_to
            return [message]
        return [message]

    def _deliver(self, message: Message) -> None:
        handler = self._handlers.get(message.dst)
        if handler is None:
            raise SimulationError(
                f"{self.name}: no handler for node {message.dst}"
            )
        handler(message)

    @abstractmethod
    def send(self, message: Message) -> None:
        """Route ``message`` to its destination with modelled timing."""

    def total_bytes(self) -> int:
        """Total bytes carried (sum over links)."""
        return self.stats.sum(f"net.{self.name}.link.")

    def max_link_bytes(self) -> int:
        """Bytes carried by the busiest link (paper Figure 7)."""
        return self.stats.max_over(f"net.{self.name}.link.")[1]
