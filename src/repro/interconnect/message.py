"""Network messages.

The interconnect treats message kinds opaquely; coherence protocols and
the DVMC coherence checker define their own kind enums.  Sizes follow
the paper's accounting: data messages carry a 64 B block plus header,
control messages are small, and Inform-Epoch messages carry an address,
epoch type, two 16-bit timestamps and two 16-bit hashes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

_uid_counter = itertools.count()


@dataclass(slots=True)
class Message:
    """A unicast message between two nodes.

    Attributes:
        src: sending node id.
        dst: destination node id.
        kind: protocol-defined message kind (any hashable; usually an enum).
        addr: block address the message concerns (or 0 for barriers).
        data: optional data-block payload (list of words); mutable so the
            fault injector can flip bits in flight.
        meta: protocol-defined extras (ack counts, epoch info, requestor).
        size_bytes: wire size used for bandwidth accounting.
        uid: unique id for tracing and duplicate detection in tests.
    """

    src: int
    dst: int
    kind: Any
    addr: int = 0
    data: Optional[List[int]] = None
    meta: Dict[str, Any] = field(default_factory=dict)
    size_bytes: int = 8
    uid: int = field(default_factory=lambda: next(_uid_counter))

    def copy_for_duplicate(self) -> "Message":
        """Clone with a fresh uid (used by the duplication fault)."""
        return Message(
            src=self.src,
            dst=self.dst,
            kind=self.kind,
            addr=self.addr,
            data=None if self.data is None else list(self.data),
            meta=dict(self.meta),
            size_bytes=self.size_bytes,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Message(#{self.uid} {self.kind} {self.src}->{self.dst} "
            f"addr=0x{self.addr:x})"
        )
