"""Network messages: packed records with a recycling freelist.

The interconnect treats message kinds opaquely; coherence protocols and
the DVMC coherence checker define their own kind enums.  Sizes follow
the paper's accounting: data messages carry a 64 B block plus header,
control messages are small, and Inform-Epoch messages carry an address,
epoch type, two 16-bit timestamps and two 16-bit hashes.

Protocol extras ride fixed int slots instead of a per-message dict —
``req`` (requestor node), ``acks`` (invalidation-ack count), ``flags``
(data-coming / have-line bits), and the Inform-Epoch quartet ``etype``
/ ``t_begin`` / ``t_end`` / ``h_begin`` / ``h_end`` — all ``-1`` (or 0
for ``flags``) when absent, mirroring the flat MET record layout in
:mod:`repro.dvmc.coherence_checker`.  ``order`` carries a broadcast's
position in the snooping address network's total order.

Delivered records are recycled through a bounded module-level freelist
(:func:`acquire` / :func:`release`).  Lifetime rules:

* a consumer may call :func:`release` only when it is the message's
  **sole** receiver and is done reading it (snooping *address*
  broadcasts have two consumers per node and are never released);
* messages touched by an armed fault hook, duplicated by the injector,
  or handed an external ``meta`` dict are marked ``no_recycle`` — the
  holder of the extra reference keeps a stable object;
* ``data`` payload lists are never pooled: :func:`release` drops the
  reference and consumers that retain data copy it
  (``MainMemory.write_block`` and the cache install paths already do).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

_uid_counter = itertools.count()

#: ``Message.flags`` bits.
FLAG_DATA_COMING = 1  #: AckCount: a Data reply is in flight.
FLAG_HAVE_LINE = 2  #: GetM: requestor still holds a valid (S/O) copy.


class Message:
    """A unicast message between two nodes.

    Attributes:
        src: sending node id.
        dst: destination node id.
        kind: protocol-defined message kind (any hashable; usually an enum).
        addr: block address the message concerns (or 0 for barriers).
        data: optional data-block payload (list of words); mutable so the
            fault injector can flip bits in flight.
        size_bytes: wire size used for bandwidth accounting.
        uid: unique id for tracing and duplicate detection in tests.
        req: requestor node id for forwarded/invalidate messages (-1 none).
        acks: invalidation-ack count on AckCount replies (-1 none).
        flags: FLAG_* bit set (0 none).
        etype: epoch-type code on informs (0 RO, 1 RW, -1 none).
        t_begin/t_end: epoch begin/end logical timestamps (-1 absent).
        h_begin/h_end: epoch begin/end block hashes (-1 absent).
        order: broadcast total-order index (-1 none).
        tid: flight-recorder trace id of the memory operation this
            message serves (0 = untraced; see :mod:`repro.obs.spans`).
        no_recycle: never return this record to the freelist.
    """

    __slots__ = (
        "src",
        "dst",
        "kind",
        "addr",
        "data",
        "size_bytes",
        "uid",
        "req",
        "acks",
        "flags",
        "etype",
        "t_begin",
        "t_end",
        "h_begin",
        "h_end",
        "order",
        "tid",
        "no_recycle",
        "_in_pool",
        "_extras",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        kind: Any,
        addr: int = 0,
        data: Optional[List[int]] = None,
        meta: Optional[Dict[str, Any]] = None,
        size_bytes: int = 8,
    ):
        self.src = src
        self.dst = dst
        self.kind = kind
        self.addr = addr
        self.data = data
        self.size_bytes = size_bytes
        self.uid = next(_uid_counter)
        self.req = -1
        self.acks = -1
        self.flags = 0
        self.etype = -1
        self.t_begin = -1
        self.t_end = -1
        self.h_begin = -1
        self.h_end = -1
        self.order = -1
        self.tid = 0
        self.no_recycle = meta is not None
        self._in_pool = False
        self._extras = meta

    @property
    def meta(self) -> Dict[str, Any]:
        """Compat extras dict (cold path: tests, tools).

        Created lazily; a message whose extras dict has been handed out
        is pinned (``no_recycle``) because the dict may be aliased.
        """
        extras = self._extras
        if extras is None:
            extras = self._extras = {}
            self.no_recycle = True
        return extras

    def copy_for_duplicate(self) -> "Message":
        """Clone with a fresh uid (used by the duplication fault)."""
        clone = Message(
            src=self.src,
            dst=self.dst,
            kind=self.kind,
            addr=self.addr,
            data=None if self.data is None else list(self.data),
            meta=None if self._extras is None else dict(self._extras),
            size_bytes=self.size_bytes,
        )
        clone.req = self.req
        clone.acks = self.acks
        clone.flags = self.flags
        clone.etype = self.etype
        clone.t_begin = self.t_begin
        clone.t_end = self.t_end
        clone.h_begin = self.h_begin
        clone.h_end = self.h_end
        clone.order = self.order
        clone.tid = self.tid
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Message(#{self.uid} {self.kind} {self.src}->{self.dst} "
            f"addr=0x{self.addr:x})"
        )


# Freelist -----------------------------------------------------------------
#
# Module-level (per process; parallel workers each get their own).  The
# pool is bounded so a pathological run cannot pin unbounded garbage,
# and the counters feed bench_perf's ``messages_allocated`` /
# ``msg_pool_reuse_pct`` fields plus the obs network layer.

_POOL: List[Message] = []
_POOL_CAP = 1024
_allocated = 0
_reused = 0


def acquire(
    src: int,
    dst: int,
    kind: Any,
    addr: int = 0,
    data: Optional[List[int]] = None,
    size_bytes: int = 8,
    req: int = -1,
    acks: int = -1,
    flags: int = 0,
) -> Message:
    """Pooled :class:`Message` constructor (the hot-path entry point)."""
    global _allocated, _reused
    pool = _POOL
    if pool:
        _reused += 1
        msg = pool.pop()
        msg.src = src
        msg.dst = dst
        msg.kind = kind
        msg.addr = addr
        msg.data = data
        msg.size_bytes = size_bytes
        msg.uid = next(_uid_counter)
        msg.req = req
        msg.acks = acks
        msg.flags = flags
        msg.etype = -1
        msg.t_begin = -1
        msg.t_end = -1
        msg.h_begin = -1
        msg.h_end = -1
        msg.order = -1
        msg.tid = 0
        msg.no_recycle = False
        msg._in_pool = False
        msg._extras = None
        return msg
    _allocated += 1
    msg = Message(src, dst, kind, addr, data, None, size_bytes)
    msg.req = req
    msg.acks = acks
    msg.flags = flags
    return msg


def release(msg: Message) -> None:
    """Return a delivered record to the freelist.

    No-op for pinned records (``no_recycle``), records already pooled
    (double-release guard), or when the pool is full.  The data payload
    reference is dropped — payload lists are never recycled.
    """
    if msg.no_recycle or msg._in_pool:
        return
    pool = _POOL
    if len(pool) >= _POOL_CAP:
        return
    msg._in_pool = True
    msg.data = None
    msg.kind = None
    msg._extras = None
    pool.append(msg)


def pool_stats() -> Dict[str, int]:
    """Freelist introspection: depth + lifetime alloc/reuse counters."""
    return {
        "depth": len(_POOL),
        "allocated": _allocated,
        "reused": _reused,
    }
