"""System assembly: config -> fully wired simulated machine.

Builds the interconnect(s), memory controllers, cache controllers,
cores, logical-time base, DVMC checkers and SafetyNet for either
protocol, and wires the observation hooks between them.  This is the
main entry point of the library::

    from repro import SystemConfig, build_system
    system = build_system(SystemConfig.protected(), workload="oltp", ops=500)
    result = system.run()
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

from repro import obs
from repro.common.errors import ConfigError, DeadlockError
from repro.common.events import make_scheduler
from repro.common.logical_time import (
    DirectoryLogicalTime,
    SnoopingLogicalTime,
)
from repro.common.stats import StatsRegistry
from repro.common.types import BLOCK_SIZE, CoherenceState, block_of
from repro.common.waitsets import WakeHub
from repro.config import ProtocolKind, SystemConfig
from repro.coherence.directory import (
    DirectoryCacheController,
    DirectoryMemoryController,
)
from repro.coherence.hooks import SystemHooks
from repro.coherence.messages import Coh, Dvcc, Sn
from repro.coherence.snooping import (
    SnoopingCacheController,
    SnoopingMemoryController,
)
from repro.dvmc.coherence_checker import CoherenceChecker
from repro.dvmc.framework import DVMC
from repro.dvmc.reordering import AllowableReorderingChecker
from repro.dvmc.uniprocessor import UniprocessorOrderingChecker
from repro.interconnect.broadcast import BroadcastTreeNetwork
from repro.interconnect.message import Message, release as release_message
from repro.interconnect.torus import TorusNetwork
from repro.memory.cache import CacheArray
from repro.memory.memory import MainMemory
from repro.processor.core import Core
from repro.recovery.safetynet import SafetyNet
from repro.workloads.suite import make_program

#: Directory logical-clock period (cycles per logical tick).
CLOCK_PERIOD = 10


class RunResult:
    """Outcome of a simulation run."""

    def __init__(self, system: "System"):
        self.cycles = system.scheduler.now
        self.stats = system.stats
        self.violations = system.dvmc.violations.reports
        self.completed = all(core.quiescent for core in system.cores)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunResult(cycles={self.cycles}, completed={self.completed}, "
            f"violations={len(self.violations)})"
        )


class System:
    """A fully wired machine (see :func:`build_system`)."""

    def __init__(self, config: SystemConfig):
        config.validate()
        self.config = config
        self.scheduler = make_scheduler()
        #: Shared wakeup hub: one per system so the end-of-cycle retry
        #: agenda interleaves all cores' blocked checks in one global
        #: (cycle, seq) order — identical in wakeup and poll modes.
        self.wake_hub = WakeHub(
            self.scheduler,
            poll_mode=os.environ.get("REPRO_POLL", "0") == "1",
        )
        #: Armed only inside :meth:`run`'s simulate phase: lets the last
        #: core's quiescence halt the kernel at a bucket boundary
        #: instead of polling ``stop_when`` every N events.  Kept off
        #: during :meth:`run_cycles` / :meth:`drain_epochs` /
        #: :meth:`scrub_memory`, which advance time unconditionally.
        self._halt_on_quiesce = False
        self.stats = StatsRegistry()
        self.hooks = SystemHooks()
        self.cores: List[Core] = []
        self.cache_controllers: list = []
        self.memory_controllers: list = []
        self.memories: List[MainMemory] = []
        self.dvmc = DVMC()
        self.safetynet: Optional[SafetyNet] = None
        self.data_network: Optional[TorusNetwork] = None
        self.address_network: Optional[BroadcastTreeNetwork] = None
        self.logical_time = None
        #: Callbacks invoked after every :meth:`run` returns, e.g. a
        #: fault injector flushing a still-pending plan as not-landed.
        self.finalizers: List[Callable[[], None]] = []
        #: Observability plane (null objects unless ``REPRO_OBS`` is
        #: set when :func:`build_system` runs; never feeds back into
        #: the simulation).
        self.obs = obs.NULL_HUB
        self.obs_phases = obs.NULL_TIMER
        self.obs_trace = None  # TraceRing when REPRO_OBS_TRACE is set
        self._obs_trace_path: Optional[str] = None
        #: Transaction flight recorder (SpanRecorder when
        #: ``REPRO_OBS_SPANS`` is set; never feeds back into the run).
        self.spans = None

    # -- address interleaving ------------------------------------------------
    def home_of(self, addr: int) -> int:
        """Home node of a block (block-interleaved across nodes)."""
        return (block_of(addr) // BLOCK_SIZE) % self.config.num_nodes

    # -- running ---------------------------------------------------------------
    def run(
        self,
        max_cycles: int = 50_000_000,
        allow_incomplete: bool = False,
    ) -> RunResult:
        """Run until every core's program finishes and drains.

        Raises :class:`DeadlockError` if the deadline passes with work
        remaining (unless ``allow_incomplete``, used by fault campaigns
        where injected errors may legitimately hang the machine).
        """
        phases = self.obs_phases
        with phases.phase("simulate"):
            for core in self.cores:
                core.start()
            # Event-driven stop: each core reports quiescence exactly
            # once (via ``on_quiescent``); the last report halts the
            # kernel at the current bucket boundary.  No per-event
            # ``stop_when`` polling, and the stop cycle is identical in
            # wakeup and poll modes.
            self._halt_on_quiesce = True
            try:
                if all(core.quiescent for core in self.cores):
                    # Already drained before this run (e.g. a second
                    # ``run`` call): nothing will re-report, so halt
                    # up front.
                    self.scheduler.halt()
                self.scheduler.run(until=max_cycles)
            finally:
                self._halt_on_quiesce = False
        with phases.phase("verify"):
            self.dvmc.finalize()
        with phases.phase("drain"):
            for finalize in self.finalizers:
                finalize()
        with phases.phase("serialize"):
            result = RunResult(self)
            if self.obs.enabled:
                self.obs.counter("run.events_processed").add(
                    self.scheduler.obs_snapshot()["events_processed"]
                )
                self.obs.counter("run.violations").add(
                    len(self.dvmc.violations)
                )
                self.obs.gauge("run.cycles").set(self.scheduler.now)
            if self.obs_trace is not None and self._obs_trace_path:
                self.obs_trace.write_jsonl(self._obs_trace_path)
            if self.spans is not None:
                self.spans.finalize(self.scheduler.now)
                spans_out = obs.spans_out_path()
                if spans_out:
                    from repro.obs.chrome_trace import write_chrome_trace

                    write_chrome_trace(spans_out, self.spans)
        if not result.completed and not allow_incomplete:
            stuck = [c.node for c in self.cores if not c.quiescent]
            raise DeadlockError(
                f"cores {stuck} did not finish by cycle {self.scheduler.now}"
            )
        return result

    def _core_quiesced(self) -> None:
        """A core's program finished and fully drained (fired once per
        core per run).  When every core is quiescent and a :meth:`run`
        is in flight, stop the kernel at the current bucket boundary."""
        if self._halt_on_quiesce and all(
            core.quiescent for core in self.cores
        ):
            self.scheduler.halt()

    def run_cycles(self, cycles: int) -> None:
        """Advance the simulation by a bounded number of cycles."""
        for core in self.cores:
            core.start()
        self.scheduler.run(until=self.scheduler.now + cycles)

    # -- inspection ---------------------------------------------------------------
    def memory_image(self) -> Dict[int, List[int]]:
        """Architectural value of every touched block.

        A block's value lives at its owner cache (M/O) if one exists,
        else at its home memory.
        """
        image: Dict[int, List[int]] = {}
        for memory in self.memories:
            for block in memory.touched_blocks():
                image[block] = memory.read_block(block)
        for controller in self.cache_controllers:
            for line in controller.l1.lines():
                if line.state in (CoherenceState.M, CoherenceState.O):
                    image[line.addr] = list(line.data)
        return image

    def drain_epochs(self, settle_cycles: int = 20_000) -> None:
        """Evict every cache line so all epochs close and their
        Inform-Epochs reach the MET (used by fault campaigns to bound
        detection latency for faults that would otherwise be observed
        at the block's next natural epoch end)."""
        for controller in self.cache_controllers:
            for line in list(controller.l1.lines()):
                controller._evict(line)
        self.scheduler.run(until=self.scheduler.now + settle_cycles)
        self.dvmc.finalize()

    def scrub_memory(self, settle_cycles: int = 40_000) -> None:
        """Touch every memory-resident block once (a scrubber pass).

        Long-running servers eventually re-reference every live block;
        our benchmark runs are short, so fault campaigns use an explicit
        scrub to activate latent corruption the way hardware memory
        scrubbers do.  Each touched block opens and closes an epoch,
        driving the data-propagation check at its home MET.  The
        scrubber also reads DRAM directly at each home and cross-checks
        it against the MET's record of what was last stored there,
        catching corruption in blocks whose clean cached copies would
        otherwise mask it.
        """
        if self.dvmc.coherence_checker is not None:
            self.dvmc.coherence_checker.verify_memory()
        blocks = sorted(
            {
                block
                for memory in self.memories
                for block in memory.touched_blocks()
            }
        )
        for i, block in enumerate(blocks):
            controller = self.cache_controllers[i % self.config.num_nodes]
            controller.load(block, lambda _v: None)
        self.scheduler.run(until=self.scheduler.now + settle_cycles)

    @property
    def violations(self):
        return self.dvmc.violations.reports


def build_system(
    config: SystemConfig,
    workload: str = "oltp",
    ops: int = 400,
    programs: Optional[List] = None,
) -> System:
    """Construct a complete machine.

    Args:
        config: machine description.
        workload: name from :data:`repro.workloads.WORKLOAD_NAMES`
            (ignored when ``programs`` is given).
        ops: approximate per-core operation count for the workload.
        programs: optional explicit per-core generator list (length
            ``config.num_nodes``) for custom programs and litmus tests.
    """
    system = System(config)
    sched = system.scheduler
    stats = system.stats
    hooks = system.hooks
    num = config.num_nodes
    eager_check = os.environ.get("REPRO_EAGER_CHECK") == "1"

    # Observability (REPRO_OBS / REPRO_OBS_TRACE) -------------------------
    if obs.enabled():
        system.obs = obs.new_hub()
        system.obs_phases = obs.new_phase_timer()
        sched.attach_obs()
    trace_dest = obs.trace_path()
    if trace_dest:
        from repro.obs.otrace import TraceRing

        system.obs_trace = TraceRing.from_env()
        system._obs_trace_path = trace_dest
    spans = obs.new_span_recorder()
    system.spans = spans

    # Memories -----------------------------------------------------------
    system.memories = [
        MainMemory(stats, config.memory.ecc_enabled, name=f"mem.{n}")
        for n in range(num)
    ]

    # Networks -----------------------------------------------------------
    system.data_network = TorusNetwork("data", sched, stats, num, config.network)
    if config.protocol is ProtocolKind.SNOOPING:
        system.address_network = BroadcastTreeNetwork(
            "addr", sched, stats, num, config.network
        )

    # Logical time ---------------------------------------------------------
    if config.protocol is ProtocolKind.SNOOPING:
        lt = SnoopingLogicalTime(num)
        hooks.on_snoop_tick(lt.tick)
    else:
        min_latency = config.network.link_latency + config.network.serialization_cycles(
            config.network.control_message_bytes
        )
        period = min(CLOCK_PERIOD, max(1, min_latency - 1))
        skews = [n % max(1, min_latency - 1) for n in range(num)]
        lt = DirectoryLogicalTime(sched, skews, period=period)
        if lt.max_skew_delta >= min_latency:
            raise ConfigError("clock skew exceeds minimum network latency")
    system.logical_time = lt

    # Controllers -----------------------------------------------------------
    for n in range(num):
        l1 = CacheArray(f"l1.{n}", config.l1, config.block_size, stats)
        if config.protocol is ProtocolKind.DIRECTORY:
            cache_ctrl = DirectoryCacheController(
                n, sched, stats, hooks, config, l1, system.data_network,
                system.home_of,
            )
            mem_ctrl = DirectoryMemoryController(
                n, sched, stats, hooks, config, system.memories[n],
                system.data_network,
            )
        else:
            cache_ctrl = SnoopingCacheController(
                n, sched, stats, hooks, config, l1,
                system.address_network, system.data_network, system.home_of,
            )
            mem_ctrl = SnoopingMemoryController(
                n, sched, stats, hooks, config, system.memories[n],
                system.data_network, system.home_of,
            )
        if config.protocol is ProtocolKind.SNOOPING:
            cache_ctrl.logical_time = lt
        system.cache_controllers.append(cache_ctrl)
        system.memory_controllers.append(mem_ctrl)

    # DVMC checkers -----------------------------------------------------------
    violations = system.dvmc.violations
    if config.dvmc.enable_coherence:
        system.dvmc.coherence_checker = CoherenceChecker(
            sched,
            stats,
            config,
            lt,
            system.home_of,
            system.memories,
            system.data_network.send,
            violations,
        )
        system.dvmc.coherence_checker.attach(hooks)

    # SafetyNet -----------------------------------------------------------
    if config.safetynet.enabled:
        system.safetynet = SafetyNet(
            sched, stats, config, send=system.data_network.send
        )
        system.safetynet.attach(hooks)

    # Node message routing -----------------------------------------------------
    _wire_routers(system)

    # Cores and per-core checkers ------------------------------------------------
    for n in range(num):
        program = (
            programs[n]
            if programs is not None
            else make_program(
                workload, n, num, config.model, config.seed, ops
            )
        )
        if system.obs_trace is not None:
            from repro.verify.trace import record_program

            # Transparent generator wrapper: forwards every operation
            # and result unchanged, sampling into the obs trace ring.
            program = record_program(n, program, system.obs_trace)
        core = Core(
            n,
            sched,
            stats,
            config,
            system.cache_controllers[n],
            program,
            wake_hub=system.wake_hub,
        )
        core.on_quiescent = system._core_quiesced
        # Wake the core's blocked ordering checks whenever its cache
        # controller completes a transition (install, upgrade,
        # invalidate, writeback, MSHR completion).  Spurious notifies
        # are architecturally safe: a woken check that still fails
        # simply re-parks on the same retry grid as poll mode.
        system.cache_controllers[n].wakes = core._ws_order
        if config.dvmc.enable_uniprocessor:
            uo = UniprocessorOrderingChecker(
                n,
                sched,
                stats,
                config,
                system.cache_controllers[n],
                violations,
                rmo_mode=not config.model.requires_load_order,
            )
            core.uo = uo
            uo.wakes = core._ws_order
            if core.wb is not None:
                core.wb.require_verified = True
            system.dvmc.uo_checkers.append(uo)
        if config.dvmc.enable_reordering:
            ar = AllowableReorderingChecker(
                n, sched, stats, config, (lambda c=core: c.table), violations
            )
            core.ar = ar
            ar.core = core
            if not eager_check:
                # Streaming verification plane (default): the core
                # appends ints-only records to the checker's log; the
                # checker drains whole segments at membar heartbeats,
                # log-full, and finalize.  REPRO_EAGER_CHECK=1 keeps
                # per-event checking; both modes report bit-identical
                # violations and stats (the perf benchmark asserts it).
                ar.attach_log()
            system.dvmc.ar_checkers.append(ar)
        system.cores.append(core)

    hooks.on_invalidation(
        lambda node, block: system.cores[node].on_invalidation(block)
    )
    if system.obs.enabled:
        system.dvmc.attach_obs()

    # Flight recorder (REPRO_OBS_SPANS) --------------------------------
    # Attached last, in a fixed order, so track ids are deterministic
    # across runs; every record site is guarded by a ``spans is None``
    # check, keeping the disabled path to one attribute load.
    if spans is not None:
        system.data_network.attach_spans(spans)
        if system.address_network is not None:
            system.address_network.attach_spans(spans)
        for cache_ctrl in system.cache_controllers:
            cache_ctrl.attach_spans(spans)
        for mem_ctrl in system.memory_controllers:
            mem_ctrl.attach_spans(spans)
        if system.dvmc.coherence_checker is not None:
            system.dvmc.coherence_checker.attach_spans(spans)
        if system.safetynet is not None:
            system.safetynet.attach_spans(spans)
        for core in system.cores:
            core.attach_spans(spans)
        for uo in system.dvmc.uo_checkers:
            uo.attach_spans(spans)
        for ar in system.dvmc.ar_checkers:
            ar.attach_spans(spans)
    return system


def _wire_routers(system: System) -> None:
    """Register per-node dispatchers on the network(s)."""
    config = system.config
    directory = config.protocol is ProtocolKind.DIRECTORY
    checker = system.dvmc.coherence_checker

    for n in range(config.num_nodes):
        cache_ctrl = system.cache_controllers[n]
        mem_ctrl = system.memory_controllers[n]

        # Precomputed kind -> bound-handler table: one identity-hash
        # dict hit per delivery replaces the old class-check plus
        # membership chain.  The Sn sink (and the Dvcc sink when no
        # checker is attached) recycles the record straight back to the
        # freelist — it is the message's sole consumer.
        dispatch = {}
        dvcc_sink = (
            checker.handle_message if checker is not None else release_message
        )
        for kind in Dvcc:
            dispatch[kind] = dvcc_sink
        for kind in Sn:
            dispatch[kind] = release_message  # checkpoint coordination sink
        if directory:
            home_kinds = (Coh.GETS, Coh.GETM, Coh.PUTM, Coh.UNBLOCK)
            for kind in Coh:
                dispatch[kind] = (
                    mem_ctrl.handle_message
                    if kind in home_kinds
                    else cache_ctrl.handle_message
                )
        else:
            for kind in Coh:
                dispatch[kind] = (
                    mem_ctrl.handle_data
                    if kind is Coh.PUTM
                    else cache_ctrl.handle_data
                )

        def torus_handler(msg: Message, dispatch=dispatch):
            dispatch[msg.kind](msg)

        def torus_batch_handler(batch, dispatch=dispatch, checker=checker):
            # Coalesced same-cycle arrivals: coherence traffic is
            # dispatched per message in arrival order, while DVCC
            # informs are grouped into one MET push+drain pass.
            informs = None
            for msg in batch:
                if msg.kind.__class__ is Dvcc and checker is not None:
                    if informs is None:
                        informs = []
                    informs.append(msg)
                    continue
                dispatch[msg.kind](msg)
            if informs is not None:
                checker.handle_batch(informs)

        system.data_network.register(n, torus_handler)
        system.data_network.register_batch(n, torus_batch_handler)

        if not directory:

            def addr_handler(msg: Message, n=n, cache_ctrl=cache_ctrl, mem_ctrl=mem_ctrl):
                if system.hooks.sub_snoop_tick:
                    system.hooks.snoop_tick(n)
                cache_ctrl.handle_snoop(msg)
                mem_ctrl.handle_snoop(msg)

            system.address_network.register(n, addr_handler)
