"""Experiment harness used by the benchmarks.

Runs (config, workload) points with perturbed seeds, exactly like the
paper's methodology ("we run each simulation ten times with small
pseudo-random perturbations ... mean result values as well as error
bars that correspond to one standard deviation"), and extracts the
metrics each figure plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.stats import mean_stddev
from repro.config import SystemConfig
from repro.parallel import RunMetrics, RunSpec, run_points

from .builder import RunResult, System, build_system

#: Seeds per data point (the paper uses 10; 3 keeps benches fast while
#: still producing error bars — raise via ``seeds=`` for paper fidelity).
DEFAULT_SEEDS = 3


@dataclass
class Measurement:
    """One configuration's aggregated metrics across seeds."""

    runtime_mean: float
    runtime_std: float
    max_link_bytes_per_cycle: float
    replay_misses: int
    replay_accesses: int
    l1_misses: int
    l1_accesses: int
    violations: int

    @property
    def replay_miss_ratio(self) -> float:
        """Replay misses normalised to regular misses (Figure 6)."""
        if self.l1_misses == 0:
            return 0.0
        return self.replay_misses / self.l1_misses


def run_once(
    config: SystemConfig,
    workload: str,
    ops: int,
    max_cycles: int = 50_000_000,
) -> Tuple[System, RunResult]:
    """Build and run one system to completion."""
    system = build_system(config, workload=workload, ops=ops)
    result = system.run(max_cycles=max_cycles)
    return system, result


def replica_specs(
    config: SystemConfig, workload: str, ops: int, seeds: int
) -> List[RunSpec]:
    """The perturbed-seed replicas behind one data point."""
    return [
        RunSpec(config.with_seed(seed), workload, ops)
        for seed in range(1, seeds + 1)
    ]


def aggregate_metrics(
    config: SystemConfig, metrics: Sequence[RunMetrics]
) -> Measurement:
    """Fold per-replica :class:`RunMetrics` into one :class:`Measurement`.

    Pure data-plane aggregation — identical whether the metrics came
    from in-process runs or pool workers.
    """
    runtimes: List[float] = []
    max_link = 0.0
    replay_misses = replay_accesses = 0
    l1_misses = l1_accesses = 0
    violations = 0
    for m in metrics:
        runtimes.append(m.cycles)
        if m.cycles:
            max_link = max(max_link, m.counter_max("net.") / m.cycles)
        counters = m.counters
        for n in range(config.num_nodes):
            replay_misses += counters.get(f"l1.{n}.replay_misses", 0)
            replay_accesses += counters.get(f"l1.{n}.replay_accesses", 0)
            l1_misses += counters.get(f"l1.{n}.misses", 0)
            l1_accesses += counters.get(f"l1.{n}.accesses", 0)
        violations += m.violations
    mean, std = mean_stddev(runtimes)
    return Measurement(
        runtime_mean=mean,
        runtime_std=std,
        max_link_bytes_per_cycle=max_link,
        replay_misses=replay_misses,
        replay_accesses=replay_accesses,
        l1_misses=l1_misses,
        l1_accesses=l1_accesses,
        violations=violations,
    )


def merge_obs_phases(metrics: Sequence[RunMetrics]) -> Dict[str, float]:
    """Fold per-replica obs phase timings into one exclusive-seconds map.

    Replicas with no snapshot (obs disabled, or served from the result
    cache before the obs field existed) contribute nothing; an empty
    dict means no replica was observed.
    """
    merged: Dict[str, float] = {}
    for m in metrics:
        snap = getattr(m, "obs", None)
        if not snap:
            continue
        for name, secs in snap.get("phases", {}).get("exclusive", {}).items():
            merged[name] = merged.get(name, 0.0) + secs
    return merged


def measure(
    config: SystemConfig,
    workload: str,
    ops: int = 300,
    seeds: int = DEFAULT_SEEDS,
    jobs: Optional[int] = None,
    cache=None,
) -> Measurement:
    """Run ``seeds`` perturbed replicas and aggregate the metrics.

    ``jobs`` fans the replicas across worker processes (see
    :func:`repro.parallel.run_points`); results are aggregated in seed
    order, so every field is identical to a serial run.  ``cache``
    consults the run-level result cache first (see
    :func:`repro.parallel.resolve_cache`) — cached replicas aggregate
    bit-identically to fresh ones.
    """
    metrics = run_points(
        replica_specs(config, workload, ops, seeds), jobs=jobs, cache=cache
    )
    return aggregate_metrics(config, metrics)


def normalized_runtimes(
    measurements: Dict[str, Measurement], baseline_key: str
) -> Dict[str, Tuple[float, float]]:
    """Normalise runtimes to a baseline (the paper normalises to
    unprotected SC).  Returns ``key -> (mean_ratio, std_ratio)``."""
    base = measurements[baseline_key].runtime_mean
    if base == 0:
        raise ValueError("baseline runtime is zero")
    return {
        key: (m.runtime_mean / base, m.runtime_std / base)
        for key, m in measurements.items()
    }


def format_series(
    title: str,
    rows: Dict[str, Dict[str, Tuple[float, float]]],
    columns: List[str],
) -> str:
    """Render a figure's data as the paper-style table of bars.

    ``rows`` maps workload -> {column -> (mean, std)}.
    """
    width = max(10, max(len(c) for c in columns) + 8)
    out = [title, "workload".ljust(10) + "".join(c.ljust(width) for c in columns)]
    for workload, cells in rows.items():
        line = workload.ljust(10)
        for column in columns:
            mean, std = cells.get(column, (float("nan"), 0.0))
            line += f"{mean:6.3f} ±{std:5.3f}".ljust(width)
        out.append(line)
    return "\n".join(out)
