"""System assembly and experiment harness."""

from .builder import RunResult, System, build_system
from .experiments import (
    DEFAULT_SEEDS,
    Measurement,
    format_series,
    measure,
    normalized_runtimes,
    run_once,
)

__all__ = [
    "DEFAULT_SEEDS",
    "Measurement",
    "RunResult",
    "System",
    "build_system",
    "format_series",
    "measure",
    "normalized_runtimes",
    "run_once",
]
