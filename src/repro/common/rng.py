"""Deterministic random-number helpers.

Every stochastic decision in the simulator draws from a
:class:`SplitRng` derived from the experiment seed, so that runs are
reproducible and perturbed replicas (the paper runs each experiment ten
times with small pseudo-random perturbations) differ only by seed.
"""

from __future__ import annotations

import hashlib
import random


class SplitRng:
    """A seedable RNG that can derive independent child streams.

    Children are derived from the parent seed and a string label, so
    adding a new consumer of randomness does not perturb the streams of
    existing consumers (unlike sharing a single ``random.Random``).
    """

    def __init__(self, seed: int):
        self.seed = seed
        self._rng = random.Random(seed)

    def child(self, label: str) -> "SplitRng":
        """Derive an independent stream identified by ``label``.

        Uses a content hash (not Python's randomized ``hash``) so runs
        are reproducible across processes.
        """
        digest = hashlib.blake2s(
            f"{self.seed}:{label}".encode(), digest_size=6
        ).digest()
        return SplitRng(int.from_bytes(digest, "big"))

    # Delegated draws ----------------------------------------------------
    def randint(self, a: int, b: int) -> int:
        return self._rng.randint(a, b)

    def randrange(self, n: int) -> int:
        return self._rng.randrange(n)

    def random(self) -> float:
        return self._rng.random()

    def choice(self, seq):
        return self._rng.choice(seq)

    def shuffle(self, seq) -> None:
        self._rng.shuffle(seq)

    def sample(self, seq, k: int):
        return self._rng.sample(seq, k)

    def expovariate(self, lambd: float) -> float:
        return self._rng.expovariate(lambd)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)
