"""Shared substrate: types, events, stats, CRC, logical time, RNG."""

from .crc import crc16_bytes, crc16_words, hash_block
from .errors import (
    ConfigError,
    DeadlockError,
    ProtocolError,
    RecoveryError,
    ReproError,
    SimulationError,
    TraceFormatError,
)
from .events import Event, LegacyScheduler, Scheduler, make_scheduler
from .logical_time import (
    TIMESTAMP_BITS,
    TIMESTAMP_MASK,
    DirectoryLogicalTime,
    LogicalTimeBase,
    SnoopingLogicalTime,
    truncate,
)
from .rng import SplitRng
from .stats import Histogram, StatsRegistry, mean_stddev
from .types import (
    BLOCK_SIZE,
    WORD_MASK,
    WORD_SIZE,
    WORDS_PER_BLOCK,
    CoherenceState,
    EpochType,
    MembarMask,
    OpType,
    ViolationReport,
    block_of,
    is_word_aligned,
    word_index,
    word_of,
)

__all__ = [
    "BLOCK_SIZE",
    "WORD_MASK",
    "WORD_SIZE",
    "WORDS_PER_BLOCK",
    "CoherenceState",
    "ConfigError",
    "DeadlockError",
    "DirectoryLogicalTime",
    "EpochType",
    "Event",
    "Histogram",
    "LegacyScheduler",
    "LogicalTimeBase",
    "MembarMask",
    "OpType",
    "ProtocolError",
    "RecoveryError",
    "ReproError",
    "Scheduler",
    "SimulationError",
    "SnoopingLogicalTime",
    "SplitRng",
    "StatsRegistry",
    "TIMESTAMP_BITS",
    "TIMESTAMP_MASK",
    "TraceFormatError",
    "ViolationReport",
    "block_of",
    "crc16_bytes",
    "crc16_words",
    "hash_block",
    "is_word_aligned",
    "make_scheduler",
    "mean_stddev",
    "truncate",
    "word_index",
    "word_of",
]
