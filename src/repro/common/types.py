"""Fundamental value types shared by every subsystem.

The simulator models memory at word granularity (as in the paper's
Appendix A, which assumes word-granularity accesses) and coherence at
block granularity.  Addresses are plain byte addresses held in ``int``;
the helpers here convert between byte, word, and block granularity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Size of a coherence block (cache line) in bytes.  Matches the 64 B
#: lines of the paper's memory-system configuration (Table 6).
BLOCK_SIZE = 64

#: Size of a memory word in bytes.  Appendix A reasons at word
#: granularity; we use 32-bit words (the benchmarks' 32-bit fraction).
WORD_SIZE = 4

#: Number of words per block.
WORDS_PER_BLOCK = BLOCK_SIZE // WORD_SIZE

#: Mask for 32-bit word values.
WORD_MASK = 0xFFFFFFFF


def block_of(addr: int) -> int:
    """Return the block-aligned base address containing ``addr``."""
    return addr & ~(BLOCK_SIZE - 1)


def word_of(addr: int) -> int:
    """Return the word-aligned address containing ``addr``."""
    return addr & ~(WORD_SIZE - 1)


def word_index(addr: int) -> int:
    """Return the index of ``addr``'s word within its block."""
    return (addr & (BLOCK_SIZE - 1)) // WORD_SIZE


def is_word_aligned(addr: int) -> bool:
    """True if ``addr`` is word aligned."""
    return addr % WORD_SIZE == 0


class OpType(enum.Enum):
    """Memory-operation types that appear in ordering tables.

    ``ATOMIC`` (e.g. SPARC ``swap``) must satisfy the ordering
    constraints of both ``LOAD`` and ``STORE`` (paper Section 4).
    ``STBAR`` is PSO's store barrier; ``MEMBAR`` is SPARC v9's masked
    barrier.
    """

    LOAD = "load"
    STORE = "store"
    ATOMIC = "atomic"
    MEMBAR = "membar"
    STBAR = "stbar"

    # Members are singletons, so identity hashing is equivalent to the
    # default ``Enum.__hash__`` (a Python-level call that hashes the
    # member name) but dispatches in C.  Op types key the hottest dict
    # lookups in the simulator (ordering-table rows, per-op stats); no
    # code iterates *sets* of members, so the hash value itself is
    # never observable.
    __hash__ = object.__hash__

    def is_memory_access(self) -> bool:
        """True for operations that read or write memory."""
        return self in (OpType.LOAD, OpType.STORE, OpType.ATOMIC)

    def is_barrier(self) -> bool:
        """True for ordering barriers."""
        return self in (OpType.MEMBAR, OpType.STBAR)

    def access_types(self) -> tuple["OpType", ...]:
        """Primitive access types this operation counts as.

        Atomics count as both a load and a store for ordering purposes.
        """
        if self is OpType.ATOMIC:
            return (OpType.LOAD, OpType.STORE)
        return (self,)


class MembarMask(enum.IntFlag):
    """SPARC v9 Membar ordering mask bits (paper Section 4, Table 4).

    Each bit requires that accesses of the first kind that precede the
    membar in program order perform before accesses of the second kind
    that follow it.
    """

    NONE = 0
    LOADLOAD = 0x1  # #LL
    LOADSTORE = 0x2  # #LS
    STORELOAD = 0x4  # #SL
    STORESTORE = 0x8  # #SS
    ALL = 0xF

    @classmethod
    def full(cls) -> "MembarMask":
        """Mask ordering everything against everything (Membar #Sync)."""
        return cls.ALL


class CoherenceState(enum.Enum):
    """MOSI stable coherence states."""

    M = "M"  # Modified: read/write permission, owner, dirty
    O = "O"  # Owned: read permission, owner, dirty, sharers may exist
    S = "S"  # Shared: read permission
    I = "I"  # Invalid

    __hash__ = object.__hash__  # singleton members; see OpType

    def can_read(self) -> bool:
        # Everything but I is readable; the identity check avoids
        # building a members tuple per call on the per-access path.
        return self is not CoherenceState.I

    def can_write(self) -> bool:
        return self is CoherenceState.M

    def is_owner(self) -> bool:
        return self is CoherenceState.M or self is CoherenceState.O


class EpochType(enum.Enum):
    """Epoch kinds used by the Cache Coherence checker (Section 4.3)."""

    READ_ONLY = "RO"
    READ_WRITE = "RW"

    __hash__ = object.__hash__  # singleton members; see OpType


@dataclass(frozen=True)
class ViolationReport:
    """A dynamic-verification violation detected by a checker.

    Attributes:
        checker: short name of the detecting checker (``"UO"``, ``"AR"``,
            ``"CC"``, ``"ECC"`` or ``"WATCHDOG"``).
        cycle: simulation cycle at which the violation was flagged.
        node: node where the violation was observed.
        kind: machine-readable violation category.
        detail: human-readable explanation.
    """

    checker: str
    cycle: int
    node: int
    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"[cycle {self.cycle}] {self.checker} violation at node "
            f"{self.node}: {self.kind} ({self.detail})"
        )
