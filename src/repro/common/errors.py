"""Exception hierarchy for the DVMC reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """Raised for invalid or inconsistent configuration values."""


class SimulationError(ReproError):
    """Raised when the simulation itself malfunctions (not a detected
    hardware error; those are reported as :class:`ViolationReport`)."""


class DeadlockError(SimulationError):
    """Raised when the event queue drains while cores still have work.

    In an unprotected system an injected fault can hang the machine;
    with DVMC enabled the watchdog/membar-injection path should detect
    the lost operation before this is raised.
    """


class ProtocolError(SimulationError):
    """Raised when a coherence controller receives a message that its
    specification does not allow in the current state.

    This indicates a bug in the simulator (or an injected fault that
    escaped containment), never expected behaviour.
    """


class TraceFormatError(ReproError):
    """Raised when parsing a malformed memory trace."""


class RecoveryError(ReproError):
    """Raised when backward error recovery cannot restore a valid
    pre-error state (e.g. the needed checkpoint already expired)."""
