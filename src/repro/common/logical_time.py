"""Logical time bases for the Cache Coherence checker.

The checker needs a causality-respecting time base (paper Section 4.3,
"Logical Time").  The paper picks, for ease of implementation:

* **snooping**: each controller's count of coherence requests processed
  so far (the ordered address network totally orders requests, so all
  controllers observe the same sequence and counts agree causally);
* **directory**: a loosely synchronised physical clock distributed to
  every controller; causality holds as long as inter-controller skew is
  below the minimum communication latency.

Timestamps stored in CET/MET entries are truncated to 16 bits; the
wraparound-scrubbing machinery lives in the coherence checker, which
uses :func:`wraps_before` to reason about truncated times.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from .errors import ConfigError
from .events import Scheduler

#: Number of bits in a stored logical timestamp (paper: 16).
TIMESTAMP_BITS = 16
TIMESTAMP_MASK = (1 << TIMESTAMP_BITS) - 1


def truncate(time: int) -> int:
    """Truncate a full logical time to its stored 16-bit form."""
    return time & TIMESTAMP_MASK


class LogicalTimeBase(ABC):
    """Per-node source of causality-respecting logical timestamps."""

    @abstractmethod
    def now(self, node: int) -> int:
        """Full-width current logical time at ``node``."""

    def tick(self, node: int) -> None:
        """Advance node-local logical time, if the base is event counted."""


class SnoopingLogicalTime(LogicalTimeBase):
    """Counts coherence requests processed at each controller.

    Controllers call :meth:`tick` once per snooped request; because the
    address network delivers requests in a total order, any two
    controllers' counts for causally related events are consistent.
    """

    def __init__(self, num_nodes: int):
        if num_nodes <= 0:
            raise ConfigError("num_nodes must be positive")
        self._counts = [0] * num_nodes

    def now(self, node: int) -> int:
        return self._counts[node]

    def tick(self, node: int) -> None:
        self._counts[node] += 1


class DirectoryLogicalTime(LogicalTimeBase):
    """Loosely synchronised physical clock for directory systems.

    Each node sees ``(cycle + skew[node]) // period``.  Causality holds
    when ``max skew difference < min network latency`` (paper cites
    [26]); :class:`~repro.system.builder.SystemBuilder` validates this
    against the configured network.
    """

    def __init__(self, scheduler: Scheduler, skews: list, period: int = 10):
        if period <= 0:
            raise ConfigError("clock period must be positive")
        if any(s < 0 for s in skews):
            raise ConfigError("skews must be non-negative")
        self._scheduler = scheduler
        self._skews = list(skews)
        self.period = period

    @property
    def max_skew_delta(self) -> int:
        """Largest pairwise skew difference, in cycles."""
        return max(self._skews) - min(self._skews) if self._skews else 0

    def now(self, node: int) -> int:
        return (self._scheduler.now + self._skews[node]) // self.period


def wraps_before(start_full: int, horizon: int) -> int:
    """Full logical time at which a 16-bit timestamp starting at
    ``start_full`` becomes ambiguous.

    A truncated timestamp is unambiguous while fewer than
    ``2**TIMESTAMP_BITS - horizon`` ticks have elapsed; the scrubbing
    FIFO schedules a check before that point (paper: Inform-Open-Epoch).
    """
    return start_full + (1 << TIMESTAMP_BITS) - horizon
