"""CRC-16 hashing of data blocks.

The Cache Coherence checker hashes 64-byte blocks down to 16 bits for
the CET, MET and Inform-Epoch messages (paper Section 4.3, "Data Block
Hashing").  The paper uses CRC-16; we implement CRC-16/CCITT-FALSE
(polynomial 0x1021, init 0xFFFF), table driven.

Aliasing (two blocks with equal hashes) yields a false *negative* with
probability about 1/65536 for blocks differing in >= 16 bits; CRC-16
detects all corruptions of fewer than 16 bits within a block.
"""

from __future__ import annotations

from typing import Iterable, List

from .types import WORD_MASK, WORDS_PER_BLOCK

_POLY = 0x1021
_INIT = 0xFFFF


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ _POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return table


_TABLE = _build_table()


def crc16_bytes(data: bytes) -> int:
    """CRC-16/CCITT-FALSE over a byte string."""
    crc = _INIT
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ _TABLE[((crc >> 8) ^ byte) & 0xFF]
    return crc


def crc16_words(words: Iterable[int]) -> int:
    """CRC-16 over a sequence of 32-bit words (big-endian byte order).

    This is the hash applied to cache blocks: a block is its
    :data:`~repro.common.types.WORDS_PER_BLOCK` words in order.
    """
    crc = _INIT
    for word in words:
        word &= WORD_MASK
        for shift in (24, 16, 8, 0):
            byte = (word >> shift) & 0xFF
            crc = ((crc << 8) & 0xFFFF) ^ _TABLE[((crc >> 8) ^ byte) & 0xFF]
    return crc


def hash_block(block: Iterable[int]) -> int:
    """Hash a data block (list of words) to 16 bits for epoch checking."""
    words = list(block)
    if len(words) != WORDS_PER_BLOCK:
        raise ValueError(
            f"block must have {WORDS_PER_BLOCK} words, got {len(words)}"
        )
    return crc16_words(words)
