"""CRC-16 hashing of data blocks.

The Cache Coherence checker hashes 64-byte blocks down to 16 bits for
the CET, MET and Inform-Epoch messages (paper Section 4.3, "Data Block
Hashing").  The paper uses CRC-16; we implement CRC-16/CCITT-FALSE
(polynomial 0x1021, init 0xFFFF).

The hot path — :func:`hash_block` runs on every epoch begin/end and
MET update — packs the block's words into ``bytes`` and hands them to
:func:`binascii.crc_hqx`, which is exactly CRC-16/CCITT with a
caller-supplied init and runs its table-driven loop in C.  The pure
Python table implementation is kept as :func:`_crc16_bytes_py`, the
reference the tests check the fast path against.

Aliasing (two blocks with equal hashes) yields a false *negative* with
probability about 1/65536 for blocks differing in >= 16 bits; CRC-16
detects all corruptions of fewer than 16 bits within a block.
"""

from __future__ import annotations

import struct
from binascii import crc_hqx
from typing import Iterable, List

from .types import WORD_MASK, WORDS_PER_BLOCK

_POLY = 0x1021
_INIT = 0xFFFF

#: Captured builtin for the fast-path type check (keeps the check
#: working even when tests shadow ``list`` to count conversions).
_LIST = list

#: One-shot packer for a full block: a single C call replaces the
#: per-word ``int.to_bytes`` genexpr on the epoch-hash path.  Word
#: values are already masked to 32 bits by the memory model; the
#: masked genexpr fallback handles anything wider.
_BLOCK_PACK = struct.Struct(f"!{WORDS_PER_BLOCK}I").pack


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ _POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return table


_TABLE = _build_table()


def _crc16_bytes_py(data: bytes) -> int:
    """Reference table-driven implementation (used by tests to pin the
    :func:`binascii.crc_hqx` fast path to CRC-16/CCITT-FALSE)."""
    crc = _INIT
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ _TABLE[((crc >> 8) ^ byte) & 0xFF]
    return crc


def crc16_bytes(data: bytes) -> int:
    """CRC-16/CCITT-FALSE over a byte string."""
    return crc_hqx(data, _INIT)


def pack_words(words: Iterable[int]) -> bytes:
    """Pack 32-bit words into big-endian bytes (masked to word width)."""
    return b"".join((word & WORD_MASK).to_bytes(4, "big") for word in words)


def crc16_words(words: Iterable[int]) -> int:
    """CRC-16 over a sequence of 32-bit words (big-endian byte order).

    This is the hash applied to cache blocks: a block is its
    :data:`~repro.common.types.WORDS_PER_BLOCK` words in order.
    Equivalent to ``crc16_bytes(pack_words(words))``.
    """
    return crc_hqx(pack_words(words), _INIT)


def hash_block(block: Iterable[int]) -> int:
    """Hash a data block (list of words) to 16 bits for epoch checking.

    Fast path: a ``list`` is consumed in place (no intermediate copy);
    the words are packed with :func:`int.to_bytes` and hashed in one
    table-driven C pass.
    """
    words = block if type(block) is _LIST else list(block)
    if len(words) != WORDS_PER_BLOCK:
        raise ValueError(
            f"block must have {WORDS_PER_BLOCK} words, got {len(words)}"
        )
    try:
        return crc_hqx(_BLOCK_PACK(*words), _INIT)
    except struct.error:
        # A word outside [0, 2**32): mask and pack the slow way.
        return crc_hqx(pack_words(words), _INIT)
