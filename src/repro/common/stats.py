"""Lightweight statistics collection.

Components register named counters and histograms on a shared
:class:`StatsRegistry`.  Benchmarks read the registry to regenerate the
paper's tables and figures (runtime, replay misses, link utilisation).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Tuple


class Histogram:
    """Streaming histogram tracking count/sum/min/max and samples."""

    __slots__ = ("count", "total", "min", "max", "_sq")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._sq = 0.0

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        self._sq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        if self.count < 2:
            return 0.0
        mean = self.mean
        var = max(0.0, self._sq / self.count - mean * mean)
        return math.sqrt(var)


class StatsRegistry:
    """Hierarchical counter/histogram store.

    Keys are dotted paths, conventionally ``component.node.metric``
    (e.g. ``"l1.3.replay_misses"``); :meth:`sum` aggregates over glob-like
    prefixes.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = defaultdict(int)
        self._histograms: Dict[str, Histogram] = defaultdict(Histogram)

    # Counters -----------------------------------------------------------
    def incr(self, key: str, amount: int = 1) -> None:
        """Increment counter ``key`` by ``amount``."""
        self._counters[key] += amount

    def set_counter(self, key: str, value: int) -> None:
        self._counters[key] = value

    def counter(self, key: str) -> int:
        return self._counters.get(key, 0)

    def sum(self, prefix: str) -> int:
        """Sum of all counters whose key starts with ``prefix``."""
        return sum(v for k, v in self._counters.items() if k.startswith(prefix))

    def max_over(self, prefix: str) -> Tuple[str, int]:
        """(key, value) of the largest counter under ``prefix``.

        Used for Figure 7's "mean bandwidth on the highest loaded link".
        Returns ``("", 0)`` when no counter matches.
        """
        best_key, best = "", 0
        for k, v in self._counters.items():
            if k.startswith(prefix) and v > best:
                best_key, best = k, v
        return best_key, best

    # Histograms ---------------------------------------------------------
    def record(self, key: str, value: float) -> None:
        self._histograms[key].record(value)

    def histogram(self, key: str) -> Histogram:
        return self._histograms[key]

    # Reporting ----------------------------------------------------------
    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        return {k: v for k, v in self._counters.items() if k.startswith(prefix)}

    def as_dict(self) -> Dict[str, float]:
        """Flatten everything into a plain dict (counters + histogram means)."""
        out: Dict[str, float] = dict(self._counters)
        for key, hist in self._histograms.items():
            out[f"{key}.mean"] = hist.mean
            out[f"{key}.count"] = hist.count
        return out


def mean_stddev(values: Iterable[float]) -> Tuple[float, float]:
    """Mean and sample standard deviation of ``values``.

    The paper reports mean and one standard deviation across ten
    perturbed runs; experiment harnesses use this helper for the same.
    """
    vals: List[float] = list(values)
    if not vals:
        return 0.0, 0.0
    mean = sum(vals) / len(vals)
    if len(vals) < 2:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in vals) / (len(vals) - 1)
    return mean, math.sqrt(var)
