"""Lightweight statistics collection.

Components register named counters and histograms on a shared
:class:`StatsRegistry`.  Benchmarks read the registry to regenerate the
paper's tables and figures (runtime, replay misses, link utilisation).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple


class Histogram:
    """Streaming histogram tracking count/sum/min/max and samples."""

    __slots__ = ("count", "total", "min", "max", "_sq")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._sq = 0.0

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        self._sq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        if not self.count:
            return 0.0
        # Clamp: the running sum can drift a few ULPs outside the
        # observed range (e.g. three records of 0.1 average to
        # 0.10000000000000002), which breaks mean ∈ [min, max].
        mean = self.total / self.count
        if mean < self.min:
            return self.min
        if mean > self.max:
            return self.max
        return mean

    @property
    def stddev(self) -> float:
        if self.count < 2:
            return 0.0
        mean = self.mean
        var = max(0.0, self._sq / self.count - mean * mean)
        return math.sqrt(var)


class StatsRegistry:
    """Hierarchical counter/histogram store.

    Keys are dotted paths, conventionally ``component.node.metric``
    (e.g. ``"l1.3.replay_misses"``); :meth:`sum` aggregates over glob-like
    prefixes.

    Two counter planes share the same key space:

    * the string-keyed dict behind :meth:`incr` (cold/compat path);
    * preresolved **handles** — :meth:`handle` maps a key to an index
      into the flat :attr:`values` list once, and hot sites bump
      ``registry.values[h] += n`` with no hashing or string work at
      all.  Handle-backed keys surface through every read API
      (:meth:`counter`, :meth:`sum`, :meth:`counters`, ...) only when
      nonzero, preserving the old "a key exists iff it was
      incremented" reporting contract byte for byte.
    """

    __slots__ = ("_counters", "_histograms", "values", "_handles", "_handle_keys")

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: Flat handle-backed counter slots; hot sites index directly.
        self.values: List[int] = []
        self._handles: Dict[str, int] = {}
        self._handle_keys: List[str] = []

    # Counters -----------------------------------------------------------
    def incr(self, key: str, amount: int = 1) -> None:
        """Increment counter ``key`` by ``amount``.

        Hot path: called once or more per simulated event.  The
        try/except form is free on the existing-key path under
        CPython 3.11's zero-cost exceptions, unlike a defaultdict
        (factory machinery) or an ``in`` pre-check (extra hash).
        """
        try:
            self._counters[key] += amount
        except KeyError:
            self._counters[key] = amount

    def handle(self, key: str) -> int:
        """Preresolve ``key`` to an int index into :attr:`values`.

        Idempotent: the same key always maps to the same slot.  The
        slot starts at 0 and is invisible to the read APIs until the
        first increment lands.
        """
        idx = self._handles.get(key)
        if idx is None:
            idx = self._handles[key] = len(self._handle_keys)
            self._handle_keys.append(key)
            self.values.append(0)
        return idx

    def incr_handle(self, handle: int, amount: int = 1) -> None:
        """Increment a preresolved handle (hot sites inline this)."""
        self.values[handle] += amount

    def set_counter(self, key: str, value: int) -> None:
        idx = self._handles.get(key)
        if idx is not None:
            self.values[idx] = value
            self._counters.pop(key, None)
        else:
            self._counters[key] = value

    def counter(self, key: str) -> int:
        total = self._counters.get(key, 0)
        idx = self._handles.get(key)
        if idx is not None:
            total += self.values[idx]
        return total

    def _merged(self) -> Dict[str, int]:
        """String + handle planes folded together (nonzero handles only)."""
        out = dict(self._counters)
        values = self.values
        for key, idx in self._handles.items():
            v = values[idx]
            if v:
                out[key] = out.get(key, 0) + v
        return out

    def sum(self, prefix: str) -> int:
        """Sum of all counters whose key starts with ``prefix``."""
        return sum(
            v for k, v in self._merged().items() if k.startswith(prefix)
        )

    def max_over(self, prefix: str) -> Tuple[str, int]:
        """(key, value) of the largest counter under ``prefix``.

        Used for Figure 7's "mean bandwidth on the highest loaded link".
        Returns ``("", 0)`` when no counter matches.
        """
        best_key, best = "", 0
        for k, v in self._merged().items():
            if k.startswith(prefix) and v > best:
                best_key, best = k, v
        return best_key, best

    # Histograms ---------------------------------------------------------
    def record(self, key: str, value: float) -> None:
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = Histogram()
        hist.record(value)

    def histogram(self, key: str) -> Histogram:
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = Histogram()
        return hist

    # Reporting ----------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """Snapshot of every counter (plain data, safe to pickle)."""
        return self._merged()

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        return {
            k: v for k, v in self._merged().items() if k.startswith(prefix)
        }

    def as_dict(self) -> Dict[str, float]:
        """Flatten everything into a plain dict (counters + histogram means)."""
        out: Dict[str, float] = self._merged()
        for key, hist in self._histograms.items():
            out[f"{key}.mean"] = hist.mean
            out[f"{key}.count"] = hist.count
        return out


def mean_stddev(values: Iterable[float]) -> Tuple[float, float]:
    """Mean and sample standard deviation of ``values``.

    The paper reports mean and one standard deviation across ten
    perturbed runs; experiment harnesses use this helper for the same.
    """
    vals: List[float] = list(values)
    if not vals:
        return 0.0, 0.0
    # fsum + clamp: naive summation can put the mean of identical
    # values a few ULPs outside [min, max].
    mean = math.fsum(vals) / len(vals)
    lo, hi = min(vals), max(vals)
    if mean < lo:
        mean = lo
    elif mean > hi:
        mean = hi
    if len(vals) < 2:
        return mean, 0.0
    var = math.fsum((v - mean) ** 2 for v in vals) / (len(vals) - 1)
    return mean, math.sqrt(var)
