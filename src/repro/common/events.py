"""Discrete-event simulation kernel.

All hardware components share a single :class:`Scheduler`.  Components
schedule callbacks at absolute or relative cycle times; the scheduler
runs them in time order, breaking ties by insertion order so runs are
deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from .errors import SimulationError


class Event:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Scheduler:
    """Deterministic discrete-event scheduler keyed by cycle count.

    The heap holds ``(time, seq, event)`` tuples rather than bare
    events: tuple comparison happens entirely in C, where an
    ``Event.__lt__`` call per sift step would dominate the scheduler's
    profile (heap comparisons outnumber events several-fold).
    """

    def __init__(self) -> None:
        self._queue: list[tuple[int, int, Event]] = []
        self._counter = itertools.count()
        self.now = 0
        self._events_processed = 0

    @property
    def events_processed(self) -> int:
        """Total callbacks executed so far (for progress/statistics)."""
        return self._events_processed

    def at(self, time: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute cycle ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time}, current time is {self.now}"
            )
        event = Event(time, next(self._counter), callback, args)
        heapq.heappush(self._queue, (time, event.seq, event))
        return event

    def after(self, delay: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self.now + delay, callback, *args)

    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    def step(self) -> bool:
        """Run the next event.  Returns False if the queue is empty."""
        queue = self._queue
        pop = heapq.heappop
        while queue:
            event = pop(queue)[2]
            if event.cancelled:
                continue
            self.now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(
        self,
        until: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the queue drains or a bound is hit.

        This is the simulator's innermost loop (tens of thousands of
        iterations per run), so the heap primitives are bound locally
        and cancelled events are drained in a tight inner loop without
        re-checking the ``until``/``stop_when`` bounds per skip.

        Args:
            until: stop once simulated time would exceed this cycle.
            stop_when: predicate polled after every event; stops when true.
            max_events: hard cap on the number of callbacks executed
                (guards against runaway simulations in tests).
        """
        queue = self._queue
        pop = heapq.heappop
        executed = 0
        while queue:
            event = pop(queue)[2]
            while event.cancelled:
                if not queue:
                    return
                event = pop(queue)[2]
            if until is not None and event.time > until:
                heapq.heappush(queue, (event.time, event.seq, event))
                self.now = until
                return
            self.now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            executed += 1
            if stop_when is not None and stop_when():
                return
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} at cycle {self.now}"
                )
