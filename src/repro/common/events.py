"""Discrete-event simulation kernel.

All hardware components share a single :class:`Scheduler`.  Components
schedule callbacks at absolute or relative cycle times; the scheduler
runs them in time order, breaking ties by insertion order so runs are
deterministic for a fixed seed.

The queue is a *calendar queue*: a ring of per-cycle buckets covering
the window ``[now, window_end)`` plus an overflow heap for far-future
events (periodic heartbeats, checkpoint timers).  Scheduling inside the
window — the overwhelmingly common case: pipeline stages, cache and
link latencies are all far smaller than the ring — is an O(1) list
append, and draining a cycle is a linear walk of its bucket, replacing
the old heap's O(log n) push/pop and its per-event tuple allocation.
The window is never wider than the ring, so a bucket only ever holds
one cycle's events, appended in schedule order; execution therefore
preserves the exact ``(time, seq)`` order of the heap-based kernel and
serial results stay bit-identical.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from .errors import SimulationError

#: Number of per-cycle buckets in the calendar ring (power of two).
#: Events due within ``RING_SIZE`` cycles go to ring buckets; farther
#: events wait in the overflow heap and migrate into the ring when the
#: window advances past them.
RING_SIZE = 2048


class Event:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Scheduler:
    """Deterministic discrete-event scheduler keyed by cycle count.

    See the module docstring for the calendar-queue layout.  Invariants:

    * every ring event's time lies in ``[now, window_end)`` and
      ``window_end - now <= ring_size``, so bucket ``time & mask`` is
      unambiguous (two pending times can only collide if they differ by
      at least a full ring);
    * every overflow event's time is ``>= window_end``, so migrating
      the overflow in heap order appends each bucket's events in
      ``(time, seq)`` order before any direct append can target it.
    """

    __slots__ = (
        "_ring",
        "_mask",
        "_ring_size",
        "_ring_count",
        "_overflow",
        "_window_end",
        "_counter",
        "now",
        "_events_processed",
        "_obs_on",
        "_obs_buckets",
        "_obs_bucket_events",
        "_obs_bucket_max",
        "_obs_migrations",
        "_obs_window_jumps",
    )

    def __init__(self, ring_size: int = RING_SIZE) -> None:
        if ring_size <= 0 or ring_size & (ring_size - 1):
            raise SimulationError("ring_size must be a power of two")
        self._ring: List[List[Event]] = [[] for _ in range(ring_size)]
        self._mask = ring_size - 1
        self._ring_size = ring_size
        #: Events (including cancelled ones) currently in ring buckets.
        self._ring_count = 0
        self._overflow: List[Tuple[int, int, Event]] = []
        self._window_end = ring_size
        self._counter = itertools.count()
        self.now = 0
        self._events_processed = 0
        # Observability (repro.obs): disabled by default.  The kernel
        # keeps raw ints itself — an attribute add per *bucket* (not
        # per event) when attached, a single false branch otherwise —
        # and exposes them through :meth:`obs_snapshot`.
        self._obs_on = False
        self._obs_buckets = 0
        self._obs_bucket_events = 0
        self._obs_bucket_max = 0
        self._obs_migrations = 0
        self._obs_window_jumps = 0

    @property
    def events_processed(self) -> int:
        """Total callbacks executed so far (for progress/statistics)."""
        return self._events_processed

    def attach_obs(self) -> None:
        """Start collecting kernel-internal observability counters."""
        self._obs_on = True

    def obs_snapshot(self) -> dict:
        """Observable interface: queue state + (if attached) drain stats."""
        snap = {
            "events_processed": self._events_processed,
            "pending": self.pending(),
            "now": self.now,
            "ring_size": self._ring_size,
            "overflow_pending": len(self._overflow),
        }
        if self._obs_on:
            buckets = self._obs_buckets
            snap.update(
                {
                    "buckets_drained": buckets,
                    "bucket_events": self._obs_bucket_events,
                    "bucket_occupancy_mean": (
                        self._obs_bucket_events / buckets if buckets else 0.0
                    ),
                    "bucket_occupancy_max": self._obs_bucket_max,
                    "overflow_migrations": self._obs_migrations,
                    "window_jumps": self._obs_window_jumps,
                }
            )
        return snap

    def at(self, time: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute cycle ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time}, current time is {self.now}"
            )
        event = Event(time, next(self._counter), callback, args)
        if time < self._window_end:
            self._ring[time & self._mask].append(event)
            self._ring_count += 1
        else:
            heapq.heappush(self._overflow, (time, event.seq, event))
        return event

    def after(self, delay: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self.now + delay
        event = Event(time, next(self._counter), callback, args)
        if time < self._window_end:
            self._ring[time & self._mask].append(event)
            self._ring_count += 1
        else:
            heapq.heappush(self._overflow, (time, event.seq, event))
        return event

    def post(self, delay: int, callback: Callable[..., Any], args: tuple = ()) -> None:
        """Schedule ``callback(*args)`` ``delay`` cycles from now, cheaply.

        The no-handle fast path for hot call sites that never cancel:
        in-window events are stored as bare ``(callback, args)`` tuples
        (no :class:`Event` allocation, no sequence number — the bucket's
        append order alone carries the tie-break, which is exactly the
        insertion order the counter would have recorded).  Out-of-window
        posts fall back to a real overflow :class:`Event`, whose heap
        ordering does need a sequence number.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self.now + delay
        if time < self._window_end:
            self._ring[time & self._mask].append((callback, args))
            self._ring_count += 1
        else:
            event = Event(time, next(self._counter), callback, args)
            heapq.heappush(self._overflow, (time, event.seq, event))

    def post_at(self, time: int, callback: Callable[..., Any], args: tuple = ()) -> None:
        """Absolute-time twin of :meth:`post` (see :meth:`at`)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time}, current time is {self.now}"
            )
        if time < self._window_end:
            self._ring[time & self._mask].append((callback, args))
            self._ring_count += 1
        else:
            event = Event(time, next(self._counter), callback, args)
            heapq.heappush(self._overflow, (time, event.seq, event))

    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return self._ring_count + len(self._overflow)

    def _locate(
        self, limit: Optional[int] = None
    ) -> Optional[Tuple[int, Optional[List[Event]]]]:
        """Cursor to the next non-empty bucket, or None when drained.

        Shared by :meth:`run` and :meth:`step`, so both paths advance
        ``now``, skip cancelled events, and count ``events_processed``
        identically.  Does not consume events.  When the ring is empty
        the window jumps to the earliest overflow event and every
        overflow event inside the new window migrates into the ring (in
        heap order, preserving ``(time, seq)``) — except that with a
        ``limit`` the jump is *not* committed when the earliest event
        lies beyond it: ``(time, None)`` is returned instead, leaving
        the window consistent with ``now`` for the caller's early
        return.  The bucket scan starts at the window's base, not at
        ``now``, because right after a jump the window begins in the
        future and scanning from ``now`` could find a bucket under a
        time label one ring-period early.
        """
        ring = self._ring
        mask = self._mask
        overflow = self._overflow
        while True:
            if self._ring_count:
                t = self.now
                start = self._window_end - self._ring_size
                if start > t:
                    t = start
                bucket = ring[t & mask]
                while not bucket:
                    t += 1
                    bucket = ring[t & mask]
                return t, bucket
            if not overflow:
                # Re-anchor the (empty) window at ``now`` so times in
                # [now, now + ring) bucket unambiguously again even if
                # a jump had pushed the window into the far future.
                self._window_end = self.now + self._ring_size
                return None
            first = overflow[0][0]
            if limit is not None and first > limit:
                return first, None
            end = first + self._ring_size
            self._window_end = end
            pop = heapq.heappop
            count = 0
            while overflow and overflow[0][0] < end:
                time, _seq, event = pop(overflow)
                ring[time & mask].append(event)
                count += 1
            self._ring_count += count
            if self._obs_on:
                self._obs_window_jumps += 1
                self._obs_migrations += count

    def step(self) -> bool:
        """Run the next event.  Returns False if the queue is empty."""
        while True:
            located = self._locate()
            if located is None:
                return False
            t, bucket = located
            assert bucket is not None  # no limit passed
            i = 0
            n = len(bucket)
            while i < n:
                event = bucket[i]
                i += 1
                self._ring_count -= 1
                if event.__class__ is tuple:
                    del bucket[:i]
                    self.now = t
                    self._events_processed += 1
                    event[0](*event[1])
                    return True
                if event.cancelled:
                    continue
                del bucket[:i]
                self.now = t
                self._events_processed += 1
                event.callback(*event.args)
                return True
            del bucket[:n]

    def run(
        self,
        until: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
        max_events: Optional[int] = None,
        stop_interval: int = 1,
    ) -> None:
        """Run events until the queue drains or a bound is hit.

        This is the simulator's innermost loop (tens of thousands of
        iterations per run): buckets are drained with a plain index
        walk, and cancelled events are skipped without touching ``now``
        or the counters.

        Args:
            until: stop once simulated time would exceed this cycle.
            stop_when: predicate polled after events; stops when true.
            max_events: hard cap on the number of callbacks executed
                (guards against runaway simulations in tests).
            stop_interval: poll ``stop_when`` only every N executed
                events (default 1 = every event).  Lets callers hoist a
                cheap-but-not-free predicate out of the per-event path.
        """
        locate = self._locate
        executed = 0
        # Countdown twin of ``executed % stop_interval == 0`` — one
        # decrement-and-test per event instead of a modulo.
        poll_in = stop_interval
        while True:
            located = locate(until)
            if located is None:
                return
            t, bucket = located
            if until is not None and t > until:
                self.now = until
                return
            # Each event is decounted as it is consumed (not when the
            # bucket is finally cleared) so a callback that polls
            # ``pending()`` — e.g. a periodic check deciding whether to
            # re-arm itself — never sees already-run events, matching
            # the old heap kernel's pop-then-execute accounting.
            i = 0
            # ``n`` is re-sampled only when the walk catches up with it:
            # same-cycle posts append to the bucket being drained, so
            # the bound grows mid-walk, but re-checking len() at the
            # catch-up point (instead of per event) is enough to
            # notice — callbacks are the only appenders and every path
            # through the loop body funnels back here.
            n = len(bucket)
            if self._obs_on:
                self._obs_buckets += 1
                self._obs_bucket_events += n
                if n > self._obs_bucket_max:
                    self._obs_bucket_max = n
            while True:
                if i == n:
                    n = len(bucket)
                    if i == n:
                        break
                event = bucket[i]
                i += 1
                self._ring_count -= 1
                if event.__class__ is tuple:
                    self.now = t
                    self._events_processed += 1
                    executed += 1
                    event[0](*event[1])
                else:
                    if event.cancelled:
                        continue
                    self.now = t
                    self._events_processed += 1
                    executed += 1
                    event.callback(*event.args)
                poll_in -= 1
                if poll_in == 0:
                    poll_in = stop_interval
                    if stop_when is not None and stop_when():
                        del bucket[:i]
                        return
                if max_events is not None and executed >= max_events:
                    del bucket[:i]
                    raise SimulationError(
                        f"exceeded max_events={max_events} at cycle {self.now}"
                    )
            del bucket[:]
