"""Discrete-event simulation kernel.

All hardware components share a single :class:`Scheduler`.  Components
schedule callbacks at absolute or relative cycle times; the scheduler
runs them in time order, breaking ties by insertion order so runs are
deterministic for a fixed seed.

The queue is a *calendar queue*: a ring of per-cycle buckets covering
the window ``[now, window_end)`` plus an overflow heap for far-future
events (periodic heartbeats, checkpoint timers).  Scheduling inside the
window — the overwhelmingly common case: pipeline stages, cache and
link latencies are all far smaller than the ring — is an O(1) list
append, and draining a cycle is a linear walk of its bucket, replacing
the old heap's O(log n) push/pop and its per-event tuple allocation.
The window is never wider than the ring, so a bucket only ever holds
one cycle's events, appended in schedule order; execution therefore
preserves the exact ``(time, seq)`` order of the heap-based kernel and
serial results stay bit-identical.

Two kernels share this contract:

* :class:`Scheduler` — the **flat kernel** (default).  Hot-path records
  are stored *flat* inside the bucket list itself (two adjacent slots:
  callback, args) so a ``post`` allocates nothing, and a min-heap of
  occupied bucket times lets the drain cursor jump quiescent cycle
  spans in O(log b) instead of walking empty buckets one by one.
* :class:`LegacyScheduler` — the previous object/tuple kernel, kept
  verbatim as the ``REPRO_FLAT_KERNEL=0`` escape hatch and as the
  reference implementation for equivalence tests.

:func:`make_scheduler` picks between them from the environment; both
are asserted bit-identical across the full workload × protocol matrix
in ``tests/integration/test_flat_kernel_identity.py``.
"""

from __future__ import annotations

import heapq
import itertools
import os
from heapq import heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

from .errors import SimulationError

#: Number of per-cycle buckets in the calendar ring (power of two).
#: Events due within ``RING_SIZE`` cycles go to ring buckets; farther
#: events wait in the overflow heap and migrate into the ring when the
#: window advances past them.
RING_SIZE = 2048

#: Batch-advance threshold K (flat kernel): a post due within K cycles
#: is *dense* and costs nothing extra to schedule — the drain cursor
#: finds it with a short bucket walk.  A post due further out is
#: *sparse* and registers its bucket time in a small min-heap, so a
#: quiescent span of more than K cycles is jumped with one heap pop
#: instead of being probed bucket by bucket.
DENSE_SPAN = 64


def _noop() -> None:
    """Sentinel callback for late-lane cycles (see ``post_late``)."""


class Event:
    """Handle for a scheduled callback; supports cancellation.

    The compatibility shell for cold paths: anything needing a handle
    (cancellable timers, heartbeats) goes through :meth:`Scheduler.at`
    / :meth:`Scheduler.after` and gets one of these; the hot no-handle
    path (:meth:`Scheduler.post`) never allocates an ``Event``.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sched")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        sched: Optional["Scheduler"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        # Owning scheduler, so cancellation can keep the scheduler's
        # cancelled-slot count exact for pending().  Cleared when the
        # event is consumed (run or skipped) so a late cancel() on a
        # dead handle cannot skew the count.
        self._sched = sched

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        sched = self._sched
        if sched is not None:
            sched._cancelled += 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Scheduler:
    """Deterministic discrete-event scheduler keyed by cycle count.

    This is the **flat kernel**.  See the module docstring for the
    calendar-queue layout.  Representation:

    * a bucket is a flat list mixing two record shapes — a hot
      ``post``/``post_at`` record occupies two adjacent slots
      (``callback, args``; nothing is allocated to schedule it), while
      a cold :meth:`at`/:meth:`after` record is a single
      :class:`Event` slot.  The drain walk tells them apart with one
      class check per record;
    * ``_times`` is a min-heap of *sparse* bucket times — targets of
      posts due more than :data:`DENSE_SPAN` cycles out (plus overflow
      migrations).  Dense posts pay nothing; the drain cursor walks at
      most ``DENSE_SPAN`` buckets (which provably covers every pending
      dense record) and then batch-advances: one lazy heap pop jumps a
      quiescent span of any length straight to the next occupied
      sparse bucket.

    Invariants:

    * every ring event's time lies in ``[now, window_end)`` and
      ``window_end - now <= ring_size``, so bucket ``time & mask`` is
      unambiguous (two pending times can only collide if they differ by
      at least a full ring);
    * every overflow event's time is ``>= window_end``, so migrating
      the overflow in heap order appends each bucket's events in
      ``(time, seq)`` order before any direct append can target it;
    * a pending record posted with delay ``<= DENSE_SPAN`` always lies
      within ``DENSE_SPAN`` cycles of the current ``now`` (time only
      advances after the post), so the bounded drain walk cannot miss
      it; every record beyond the walk horizon was sparse when posted
      (or was migrated from overflow into an empty bucket) and its
      bucket time is in ``_times``.  Heap entries below the window
      floor or naming an empty bucket are stale and safe to pop.
    """

    __slots__ = (
        "_ring",
        "_mask",
        "_ring_size",
        "_ring_count",
        "_cancelled",
        "_times",
        "_overflow",
        "_window_end",
        "_counter",
        "now",
        "_events_processed",
        "_late",
        "_late_count",
        "_halted",
        "_obs_on",
        "_obs_buckets",
        "_obs_bucket_events",
        "_obs_bucket_max",
        "_obs_migrations",
        "_obs_window_jumps",
    )

    def __init__(self, ring_size: int = RING_SIZE) -> None:
        if ring_size <= 0 or ring_size & (ring_size - 1):
            raise SimulationError("ring_size must be a power of two")
        self._ring: List[list] = [[] for _ in range(ring_size)]
        self._mask = ring_size - 1
        self._ring_size = ring_size
        #: Records (including cancelled ones) currently in ring buckets.
        self._ring_count = 0
        #: Cancelled-but-not-yet-drained events (ring or overflow).
        self._cancelled = 0
        #: Min-heap of occupied bucket times (may hold stale entries).
        self._times: List[int] = []
        self._overflow: List[Tuple[int, int, Event]] = []
        self._window_end = ring_size
        self._counter = itertools.count()
        self.now = 0
        self._events_processed = 0
        #: Late lanes: cycle -> flat (callback, args) record pairs that
        #: run after every normally-posted record of that cycle.
        self._late: dict = {}
        #: Records currently sitting in late lanes.  Kept out of
        #: ``_ring_count`` until splice time: a lane's cycle may lie
        #: beyond the current window (its sentinel then lives in the
        #: overflow heap), and counting its records as ring-resident
        #: would make the drain cursor search the ring for records
        #: that are not there.
        self._late_count = 0
        self._halted = False
        # Observability (repro.obs): disabled by default.  The kernel
        # keeps raw ints itself — an attribute add per *bucket* (not
        # per event) when attached, a single false branch otherwise —
        # and exposes them through :meth:`obs_snapshot`.
        self._obs_on = False
        self._obs_buckets = 0
        self._obs_bucket_events = 0
        self._obs_bucket_max = 0
        self._obs_migrations = 0
        self._obs_window_jumps = 0

    @property
    def events_processed(self) -> int:
        """Total callbacks executed so far (for progress/statistics)."""
        return self._events_processed

    def attach_obs(self) -> None:
        """Start collecting kernel-internal observability counters."""
        self._obs_on = True

    def obs_snapshot(self) -> dict:
        """Observable interface: queue state + (if attached) drain stats."""
        snap = {
            "events_processed": self._events_processed,
            "pending": self.pending(),
            "now": self.now,
            "ring_size": self._ring_size,
            "overflow_pending": len(self._overflow),
        }
        if self._obs_on:
            buckets = self._obs_buckets
            snap.update(
                {
                    "buckets_drained": buckets,
                    "bucket_events": self._obs_bucket_events,
                    "bucket_occupancy_mean": (
                        self._obs_bucket_events / buckets if buckets else 0.0
                    ),
                    "bucket_occupancy_max": self._obs_bucket_max,
                    "overflow_migrations": self._obs_migrations,
                    "window_jumps": self._obs_window_jumps,
                }
            )
        return snap

    def at(self, time: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute cycle ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time}, current time is {self.now}"
            )
        event = Event(time, next(self._counter), callback, args, self)
        if time < self._window_end:
            bucket = self._ring[time & self._mask]
            if time - self.now > DENSE_SPAN and not bucket:
                heappush(self._times, time)
            bucket.append(event)
            self._ring_count += 1
        else:
            heapq.heappush(self._overflow, (time, event.seq, event))
        return event

    def after(self, delay: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self.now + delay, callback, *args)

    def post(self, delay: int, callback: Callable[..., Any], args: tuple = ()) -> None:
        """Schedule ``callback(*args)`` ``delay`` cycles from now, cheaply.

        The no-handle, no-allocation fast path for hot call sites that
        never cancel: an in-window record is stored *flat in the bucket
        itself* as two adjacent slots (``callback``, ``args``) — no
        :class:`Event`, no wrapper tuple, no sequence number (the
        bucket's append order alone carries the tie-break, which is
        exactly the insertion order the counter would have recorded).
        Out-of-window posts fall back to a real overflow
        :class:`Event`, whose heap ordering does need a sequence
        number.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self.now + delay
        if time < self._window_end:
            bucket = self._ring[time & self._mask]
            if delay > DENSE_SPAN and not bucket:
                heappush(self._times, time)
            bucket.append(callback)
            bucket.append(args)
            self._ring_count += 1
        else:
            event = Event(time, next(self._counter), callback, args, self)
            heapq.heappush(self._overflow, (time, event.seq, event))

    def post_at(self, time: int, callback: Callable[..., Any], args: tuple = ()) -> None:
        """Schedule ``callback(*args)`` at absolute cycle ``time``, cheaply.

        Absolute-time twin of :meth:`post`: same flat two-slot record
        in-window, same overflow :class:`Event` fallback, same
        no-cancellation contract; rejects times in the past exactly
        like :meth:`at`.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time}, current time is {self.now}"
            )
        if time < self._window_end:
            bucket = self._ring[time & self._mask]
            if time - self.now > DENSE_SPAN and not bucket:
                heappush(self._times, time)
            bucket.append(callback)
            bucket.append(args)
            self._ring_count += 1
        else:
            event = Event(time, next(self._counter), callback, args, self)
            heapq.heappush(self._overflow, (time, event.seq, event))

    def post_late(self, delay: int, callback: Callable[..., Any], args: tuple = ()) -> None:
        """Schedule ``callback(*args)`` in cycle ``now + delay``'s *late lane*.

        A late record runs at its cycle strictly **after** every
        normally-posted record of that cycle — including zero-delay
        records appended while the cycle's bucket is draining (the
        drain splices the late lane in only once the bucket is
        exhausted, re-checking its length first).  Within the lane,
        records run in post order.  This is the hook the wakeup plane
        (:mod:`repro.common.waitsets`) uses to run condition re-checks
        at end-of-cycle, after every state transition of the cycle has
        been applied, so check outcomes do not depend on intra-cycle
        event interleaving.

        A zero-delay post made *by* a late record runs in the same
        cycle, after the lane (normal records append behind the
        splice); a ``post_late(0, ...)`` made by a late record opens a
        fresh lane that runs after those.  The first late record for a
        cycle posts a no-op sentinel through :meth:`post_at` so the
        cycle stays discoverable by the drain cursor even when it has
        no normal records.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self.now + delay
        lane = self._late.get(time)
        if lane is None:
            self._late[time] = lane = []
            self.post_at(time, _noop)
        lane.append(callback)
        lane.append(args)
        self._late_count += 1

    def halt(self) -> None:
        """Make :meth:`run` return at the end of the current bucket.

        Called from inside a callback (or before :meth:`run`) this
        stops the run loop at the next bucket boundary — the cycle's
        remaining records (and late lane) still execute, so the stop
        point is a pure function of simulated time, never of how many
        host-side events a cycle happened to contain.  One-shot: the
        flag clears when it takes effect.
        """
        self._halted = True

    def pending(self) -> int:
        """Number of queued events still due to run, exact per event.

        Cancelled-but-undrained slots are excluded (the scheduler keeps
        an exact count as they are cancelled and as the drain reaps
        them), so a periodic check polling ``pending()`` to decide
        whether to re-arm itself is not kept alive by dead timers.

        Late-lane records (:meth:`post_late`) and their per-cycle
        sentinel each count as one pending event until they run.
        Waiters parked on a :class:`~repro.common.waitsets.WaitSet` are
        *not* scheduler events and never appear here — a parked (or
        parked-then-cancelled) waiter contributes nothing; only the
        per-cycle agenda record that an *armed* waiter shares with its
        cycle is counted, and that record always runs.
        """
        return (
            self._ring_count
            + self._late_count
            + len(self._overflow)
            - self._cancelled
        )

    def _locate(
        self, limit: Optional[int] = None
    ) -> Optional[Tuple[int, Optional[list]]]:
        """Cursor to the next non-empty bucket, or None when drained.

        Shared by :meth:`run` and :meth:`step`, so both paths advance
        ``now``, skip cancelled events, and count ``events_processed``
        identically.  Does not consume events.  The bucket walk is
        bounded: after :data:`DENSE_SPAN` empty probes (which provably
        cover every pending dense record) the cursor batch-advances
        through the ``_times`` heap of sparse bucket times (stale heads
        — entries below the window floor or naming since-emptied
        buckets — are popped lazily), so a long quiescent span is
        jumped in one heap operation rather than probed bucket by
        bucket.  When the ring is empty
        the window jumps to the earliest overflow event and every
        overflow event inside the new window migrates into the ring (in
        heap order, preserving ``(time, seq)``) — except that with a
        ``limit`` the jump is *not* committed when the earliest event
        lies beyond it: ``(time, None)`` is returned instead, leaving
        the window consistent with ``now`` for the caller's early
        return.  The floor for genuine entries is the window's base,
        not ``now``, because right after a jump the window begins in
        the future and an entry at ``now`` could name a bucket under a
        time label one ring-period early.
        """
        ring = self._ring
        mask = self._mask
        overflow = self._overflow
        times = self._times
        while True:
            if self._ring_count:
                floor = self._window_end - self._ring_size
                if self.now > floor:
                    floor = self.now
                t = floor
                bucket = ring[t & mask]
                if bucket:
                    return t, bucket
                # Bounded dense walk.  The horizon is clamped to the
                # window so a tiny ring can never wrap onto an aliased
                # time label mid-walk.
                horizon = t + DENSE_SPAN
                end = self._window_end - 1
                if horizon > end:
                    horizon = end
                while t < horizon:
                    t += 1
                    bucket = ring[t & mask]
                    if bucket:
                        return t, bucket
                # Batch advance: everything pending is sparse, so the
                # next occupied bucket's time is in the heap.
                while True:
                    t = times[0]
                    if t > horizon:
                        bucket = ring[t & mask]
                        if bucket:
                            return t, bucket
                    heappop(times)
            if not overflow:
                # Re-anchor the (empty) window at ``now`` so times in
                # [now, now + ring) bucket unambiguously again even if
                # a jump had pushed the window into the far future.
                self._window_end = self.now + self._ring_size
                del times[:]
                return None
            first = overflow[0][0]
            if limit is not None and first > limit:
                return first, None
            end = first + self._ring_size
            self._window_end = end
            pop = heapq.heappop
            count = 0
            while overflow and overflow[0][0] < end:
                time, _seq, event = pop(overflow)
                bucket = ring[time & mask]
                if not bucket:
                    heappush(times, time)
                bucket.append(event)
                count += 1
            self._ring_count += count
            if self._obs_on:
                self._obs_window_jumps += 1
                self._obs_migrations += count

    def _splice_late(self, t: int, bucket: list) -> bool:
        """Move cycle ``t``'s late lane into its (exhausted) bucket.

        Called only when ``bucket`` has no unconsumed records left, so
        the lane lands after every normal record of the cycle.  Returns
        True when records were spliced.
        """
        if not self._late:
            return False
        lane = self._late.pop(t, None)
        if lane is None:
            return False
        bucket.extend(lane)
        moved = len(lane) >> 1  # flat pairs: two slots per record
        self._late_count -= moved
        self._ring_count += moved
        return True

    def step(self) -> bool:
        """Run the next event.  Returns False if the queue is empty."""
        while True:
            located = self._locate()
            if located is None:
                return False
            t, bucket = located
            assert bucket is not None  # no limit passed
            i = 0
            n = len(bucket)
            while i < n:
                record = bucket[i]
                if record.__class__ is not Event:
                    args = bucket[i + 1]
                    i += 2
                    self._ring_count -= 1
                    del bucket[:i]
                    self.now = t
                    self._events_processed += 1
                    record(*args)
                    if not bucket:
                        self._splice_late(t, bucket)
                    return True
                i += 1
                self._ring_count -= 1
                record._sched = None
                if record.cancelled:
                    self._cancelled -= 1
                    continue
                del bucket[:i]
                self.now = t
                self._events_processed += 1
                record.callback(*record.args)
                if not bucket:
                    self._splice_late(t, bucket)
                return True
            del bucket[:n]
            self._splice_late(t, bucket)

    def run(
        self,
        until: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
        max_events: Optional[int] = None,
        stop_interval: int = 1,
    ) -> None:
        """Run events until the queue drains or a bound is hit.

        This is the simulator's innermost loop (tens of thousands of
        iterations per run): buckets are drained with a plain index
        walk over the flat records, and cancelled events are skipped
        without touching ``now`` or the counters.

        Args:
            until: stop once simulated time would exceed this cycle.
            stop_when: predicate polled after events; stops when true.
            max_events: hard cap on the number of callbacks executed
                (guards against runaway simulations in tests).
            stop_interval: poll ``stop_when`` only every N executed
                events (default 1 = every event).  Lets callers hoist a
                cheap-but-not-free predicate out of the per-event path.
        """
        locate = self._locate
        ring = self._ring
        mask = self._mask
        ring_size = self._ring_size
        # Countdown twin of ``done % stop_interval == 0`` — one
        # decrement-and-test per event instead of a modulo.
        poll_in = stop_interval
        # ``events_processed`` is flushed from this local at bucket
        # boundaries and on every exit (the ``finally`` covers early
        # returns, the max_events raise, and callback exceptions);
        # nothing observes the counter mid-run, so batching it off the
        # per-event path is free.  ``_ring_count`` by contrast *is*
        # decremented per record: callbacks may poll ``pending()`` and
        # must never see already-run events, matching the old heap
        # kernel's pop-then-execute accounting.
        done = 0
        try:
            while True:
                if self._halted:
                    self._halted = False
                    return
                # Inline bucket cursor: ``_locate``'s dense probe
                # without the call — at ~2 events per bucket the
                # call-and-rehoist overhead is measurable.  Sparse
                # batch-advance, window jumps, and the drained case
                # fall back to the full ``_locate``.
                bucket = None
                if self._ring_count:
                    floor = self._window_end - ring_size
                    now = self.now
                    t = floor if floor > now else now
                    bucket = ring[t & mask]
                    if not bucket:
                        horizon = t + DENSE_SPAN
                        end = self._window_end - 1
                        if horizon > end:
                            horizon = end
                        while t < horizon:
                            t += 1
                            bucket = ring[t & mask]
                            if bucket:
                                break
                        else:
                            bucket = None
                if bucket is None:
                    located = locate(until)
                    if located is None:
                        return
                    t, bucket = located
                if until is not None and t > until:
                    self.now = until
                    return
                i = 0
                # ``n`` is re-sampled only when the walk catches up with
                # it: same-cycle posts append to the bucket being
                # drained, so the bound grows mid-walk, but re-checking
                # len() at the catch-up point (instead of per record) is
                # enough to notice — callbacks are the only appenders
                # and every path through the loop body funnels back
                # here.  Appends are whole records, so ``i`` and ``n``
                # always land on record boundaries.
                n = len(bucket)
                if self._obs_on:
                    self._obs_buckets += 1
                    self._obs_bucket_events += n
                    if n > self._obs_bucket_max:
                        self._obs_bucket_max = n
                while True:
                    if i == n:
                        n = len(bucket)
                        if i == n:
                            # Exhausted for real: splice in the cycle's
                            # late lane (wakeup agendas) and keep
                            # draining, or finish the bucket.
                            if not self._splice_late(t, bucket):
                                break
                            n = len(bucket)
                    record = bucket[i]
                    if record.__class__ is not Event:
                        args = bucket[i + 1]
                        i += 2
                        self._ring_count -= 1
                        self.now = t
                        done += 1
                        record(*args)
                    else:
                        i += 1
                        self._ring_count -= 1
                        record._sched = None
                        if record.cancelled:
                            self._cancelled -= 1
                            continue
                        self.now = t
                        done += 1
                        record.callback(*record.args)
                    poll_in -= 1
                    if poll_in == 0:
                        poll_in = stop_interval
                        if stop_when is not None and stop_when():
                            del bucket[:i]
                            if not bucket:
                                self._splice_late(t, bucket)
                            return
                    if max_events is not None and done >= max_events:
                        del bucket[:i]
                        if not bucket:
                            self._splice_late(t, bucket)
                        raise SimulationError(
                            f"exceeded max_events={max_events} at cycle {self.now}"
                        )
                del bucket[:]
        finally:
            self._events_processed += done


class LegacyScheduler:
    """The pre-flat object/tuple calendar-queue kernel.

    Kept as the ``REPRO_FLAT_KERNEL=0`` escape hatch and as the
    object-``Event`` reference implementation for equivalence tests:
    hot ``post`` records are ``(callback, args)`` wrapper tuples, the
    drain cursor walks empty buckets one cycle at a time, and all
    counters are maintained per event.  Behaviour (event order, time
    labels, ``pending()``, ``events_processed``) is bit-identical to
    :class:`Scheduler`.
    """

    __slots__ = (
        "_ring",
        "_mask",
        "_ring_size",
        "_ring_count",
        "_cancelled",
        "_overflow",
        "_window_end",
        "_counter",
        "now",
        "_events_processed",
        "_late",
        "_late_count",
        "_halted",
        "_obs_on",
        "_obs_buckets",
        "_obs_bucket_events",
        "_obs_bucket_max",
        "_obs_migrations",
        "_obs_window_jumps",
    )

    def __init__(self, ring_size: int = RING_SIZE) -> None:
        if ring_size <= 0 or ring_size & (ring_size - 1):
            raise SimulationError("ring_size must be a power of two")
        self._ring: List[list] = [[] for _ in range(ring_size)]
        self._mask = ring_size - 1
        self._ring_size = ring_size
        self._ring_count = 0
        self._cancelled = 0
        self._overflow: List[Tuple[int, int, Event]] = []
        self._window_end = ring_size
        self._counter = itertools.count()
        self.now = 0
        self._events_processed = 0
        self._late: dict = {}
        self._late_count = 0
        self._halted = False
        self._obs_on = False
        self._obs_buckets = 0
        self._obs_bucket_events = 0
        self._obs_bucket_max = 0
        self._obs_migrations = 0
        self._obs_window_jumps = 0

    events_processed = Scheduler.events_processed
    attach_obs = Scheduler.attach_obs
    obs_snapshot = Scheduler.obs_snapshot
    pending = Scheduler.pending
    halt = Scheduler.halt

    def at(self, time: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute cycle ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time}, current time is {self.now}"
            )
        event = Event(time, next(self._counter), callback, args, self)
        if time < self._window_end:
            self._ring[time & self._mask].append(event)
            self._ring_count += 1
        else:
            heapq.heappush(self._overflow, (time, event.seq, event))
        return event

    def after(self, delay: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self.now + delay, callback, *args)

    def post(self, delay: int, callback: Callable[..., Any], args: tuple = ()) -> None:
        """No-handle fast path: in-window records are bare
        ``(callback, args)`` tuples (no :class:`Event`, no sequence
        number); out-of-window posts fall back to an overflow
        :class:`Event`."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self.now + delay
        if time < self._window_end:
            self._ring[time & self._mask].append((callback, args))
            self._ring_count += 1
        else:
            event = Event(time, next(self._counter), callback, args, self)
            heapq.heappush(self._overflow, (time, event.seq, event))

    def post_at(self, time: int, callback: Callable[..., Any], args: tuple = ()) -> None:
        """Absolute-time twin of :meth:`post` (past times rejected)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time}, current time is {self.now}"
            )
        if time < self._window_end:
            self._ring[time & self._mask].append((callback, args))
            self._ring_count += 1
        else:
            event = Event(time, next(self._counter), callback, args, self)
            heapq.heappush(self._overflow, (time, event.seq, event))

    def post_late(self, delay: int, callback: Callable[..., Any], args: tuple = ()) -> None:
        """Late-lane twin of :meth:`Scheduler.post_late` (records are
        ``(callback, args)`` tuples, matching this kernel's bucket
        shape; ordering contract identical)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self.now + delay
        lane = self._late.get(time)
        if lane is None:
            self._late[time] = lane = []
            self.post_at(time, _noop)
        lane.append((callback, args))
        self._late_count += 1

    def _splice_late(self, t: int, bucket: list) -> bool:
        """Move cycle ``t``'s late lane into its exhausted bucket."""
        if not self._late:
            return False
        lane = self._late.pop(t, None)
        if lane is None:
            return False
        bucket.extend(lane)
        moved = len(lane)  # one tuple per record
        self._late_count -= moved
        self._ring_count += moved
        return True

    def _locate(
        self, limit: Optional[int] = None
    ) -> Optional[Tuple[int, Optional[list]]]:
        """Cursor to the next non-empty bucket, walking the ring one
        cycle at a time (see :meth:`Scheduler._locate` for contract)."""
        ring = self._ring
        mask = self._mask
        overflow = self._overflow
        while True:
            if self._ring_count:
                t = self.now
                start = self._window_end - self._ring_size
                if start > t:
                    t = start
                bucket = ring[t & mask]
                while not bucket:
                    t += 1
                    bucket = ring[t & mask]
                return t, bucket
            if not overflow:
                self._window_end = self.now + self._ring_size
                return None
            first = overflow[0][0]
            if limit is not None and first > limit:
                return first, None
            end = first + self._ring_size
            self._window_end = end
            pop = heapq.heappop
            count = 0
            while overflow and overflow[0][0] < end:
                time, _seq, event = pop(overflow)
                ring[time & mask].append(event)
                count += 1
            self._ring_count += count
            if self._obs_on:
                self._obs_window_jumps += 1
                self._obs_migrations += count

    def step(self) -> bool:
        """Run the next event.  Returns False if the queue is empty."""
        while True:
            located = self._locate()
            if located is None:
                return False
            t, bucket = located
            assert bucket is not None  # no limit passed
            i = 0
            n = len(bucket)
            while i < n:
                event = bucket[i]
                i += 1
                self._ring_count -= 1
                if event.__class__ is tuple:
                    del bucket[:i]
                    self.now = t
                    self._events_processed += 1
                    event[0](*event[1])
                    if not bucket:
                        self._splice_late(t, bucket)
                    return True
                event._sched = None
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                del bucket[:i]
                self.now = t
                self._events_processed += 1
                event.callback(*event.args)
                if not bucket:
                    self._splice_late(t, bucket)
                return True
            del bucket[:n]
            self._splice_late(t, bucket)

    def run(
        self,
        until: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
        max_events: Optional[int] = None,
        stop_interval: int = 1,
    ) -> None:
        """Run events until the queue drains or a bound is hit
        (contract identical to :meth:`Scheduler.run`)."""
        locate = self._locate
        executed = 0
        poll_in = stop_interval
        while True:
            if self._halted:
                self._halted = False
                return
            located = locate(until)
            if located is None:
                return
            t, bucket = located
            if until is not None and t > until:
                self.now = until
                return
            i = 0
            n = len(bucket)
            if self._obs_on:
                self._obs_buckets += 1
                self._obs_bucket_events += n
                if n > self._obs_bucket_max:
                    self._obs_bucket_max = n
            while True:
                if i == n:
                    n = len(bucket)
                    if i == n:
                        if not self._splice_late(t, bucket):
                            break
                        n = len(bucket)
                event = bucket[i]
                i += 1
                self._ring_count -= 1
                if event.__class__ is tuple:
                    self.now = t
                    self._events_processed += 1
                    executed += 1
                    event[0](*event[1])
                else:
                    event._sched = None
                    if event.cancelled:
                        self._cancelled -= 1
                        continue
                    self.now = t
                    self._events_processed += 1
                    executed += 1
                    event.callback(*event.args)
                poll_in -= 1
                if poll_in == 0:
                    poll_in = stop_interval
                    if stop_when is not None and stop_when():
                        del bucket[:i]
                        if not bucket:
                            self._splice_late(t, bucket)
                        return
                if max_events is not None and executed >= max_events:
                    del bucket[:i]
                    if not bucket:
                        self._splice_late(t, bucket)
                    raise SimulationError(
                        f"exceeded max_events={max_events} at cycle {self.now}"
                    )
            del bucket[:]


def make_scheduler(ring_size: int = RING_SIZE):
    """Build the kernel selected by ``REPRO_FLAT_KERNEL``.

    The flat kernel is the default; setting ``REPRO_FLAT_KERNEL=0``
    swaps in :class:`LegacyScheduler` — the escape hatch CI and the
    equivalence tests use to pin down bit-identity between the two.
    The variable is read per call so tests can flip kernels without
    re-importing the world.
    """
    if os.environ.get("REPRO_FLAT_KERNEL", "1") == "0":
        return LegacyScheduler(ring_size)
    return Scheduler(ring_size)
