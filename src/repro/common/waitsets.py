"""Wait/notify plane: condition subscriptions for the event kernel.

A blocked operation used to re-post itself every ``RETRY_PERIOD``
cycles and re-evaluate its gate — cheap per event, but ~44% of all
simulated events were such polls (EXPERIMENTS.md, "Kernel
architecture").  This module replaces the re-posts with parking: a
blocked op parks a :class:`Waiter` on the :class:`WaitSet` guarding
its condition, and every hardware transition that can flip the
condition calls :meth:`WaitSet.notify`.  The waiter is then re-checked
once, at the next point of its retry grid — the same cycle the old
poll would have first observed the change — instead of burning an
event every period in between.

Identity with poll mode (``REPRO_POLL=1``) is architectural, not
approximate, and rests on four rules:

* **End-of-cycle agendas.**  Re-checks never run mid-bucket.  They run
  in the cycle's *late lane* (:meth:`Scheduler.post_late`), after every
  normally-posted event of the cycle, so a check's outcome depends
  only on the cycle's final state — not on where in the bucket the
  notifying transition happened to sit.  Poll mode uses the very same
  agenda machinery (every park arms the next grid point; notify is a
  no-op), so both modes evaluate the same predicates at the same
  simulated instants.
* **Grid anchoring.**  A waiter's checks stay on the grid
  ``anchor + k·period`` (the anchor resets at every failed check, which
  preserves the grid because the period is uniform).  A notify at cycle
  ``now`` schedules the re-check at the first grid point ``>= now`` —
  exactly the first poll that would have seen the change.
* **Episode-stable sequence numbers.**  Agendas check waiters in
  global park order (``seq``).  A seq is assigned once per *episode*
  (first park of a blocked op) and survives re-parks, so both modes
  number episodes identically even though poll mode re-parks every
  period.
* **One hub per system.**  Same-cycle checks from different cores
  share one agenda ordered by ``seq``; per-core agendas would order
  cross-core checks by notify arrival, which is mode-dependent.

Notify-at-``now`` edge cases: if the cycle's agenda is currently
running, a waiter whose seq is still ahead of the cursor joins it
(poll mode would have checked it in this agenda); a waiter already
passed — or a notify arriving after the agenda finished (delay-0
chains) — is armed for the next period, matching the poll that just
failed.  Failed checks must be architecturally side-effect-free;
per-episode stall counters belong to the parking site (see
``Core._vc_stall_flag``).

Parked waiters are **not** scheduler events: ``Scheduler.pending()``
never counts them (parked, cancelled, or otherwise) — only the single
per-cycle agenda record armed waiters share, which always runs.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Optional

#: Modeled retry latency: a failed check re-arms this many cycles out,
#: and a notified waiter wakes at the next multiple of this period on
#: its grid.  Uniform across every parking site — heterogeneous
#: periods would let wake mode skip intermediate grid points that poll
#: mode evaluates.
RETRY_PERIOD = 2


class Waiter:
    """One parked episode of a blocked operation.

    Identified by its ``(callback, args)`` check — the same callable
    the old poll would have re-posted.  Also serves as the "at most
    one pending retry per record" guard: parking an already-parked
    check returns the live waiter instead of stacking a second one.
    """

    __slots__ = (
        "ws",
        "callback",
        "args",
        "period",
        "seq",
        "anchor",
        "start",
        "parked",
        "armed",
        "cancelled",
    )

    def __init__(
        self,
        ws: "WaitSet",
        callback: Callable[..., Any],
        args: tuple,
        period: int,
        seq: int,
        now: int,
    ) -> None:
        self.ws = ws
        self.callback = callback
        self.args = args
        self.period = period
        self.seq = seq
        #: Retry-grid origin; reset at every park so the next check
        #: lands at ``anchor + period`` (grid-preserving: uniform
        #: period).
        self.anchor = now
        #: Episode start, for the wait-duration histogram.
        self.start = now
        self.parked = True
        self.armed = False
        self.cancelled = False

    def __lt__(self, other: "Waiter") -> bool:
        return self.seq < other.seq


class WaitSet:
    """A condition's set of parked waiters.

    One per guarded condition family (a core's ordering/resource
    state, its ROB head).  ``notify()`` is called by every transition
    that can flip the condition false→true; spurious notifies are safe
    (the re-check just fails and re-parks).
    """

    __slots__ = ("hub", "waiters")

    def __init__(self, hub: "WakeHub") -> None:
        self.hub = hub
        self.waiters: List[Waiter] = []

    def park(
        self,
        callback: Callable[..., Any],
        args: tuple = (),
        period: int = RETRY_PERIOD,
    ) -> Waiter:
        """Park ``callback(*args)`` until notified (or next poll)."""
        return self.hub.park(self, callback, args, period)

    def notify(self) -> None:
        """Signal that this set's condition may have become true."""
        self.hub.notify(self)


class WakeHub:
    """System-wide wakeup coordinator: arms waiters, runs agendas.

    Owns the global episode sequence and the per-cycle agendas that
    run in the scheduler's late lane.  ``poll_mode=True`` degrades to
    the classic fixed-period retry regime (every park arms the next
    grid point, notifies are ignored) — same checks at the same
    cycles, just carried by periodic events instead of subscriptions.
    """

    __slots__ = (
        "_sched",
        "poll_mode",
        "_seq",
        "_due",
        "_heap",
        "_running_cycle",
        "_cursor",
        "_agenda_done",
        "_checking",
        "waits_parked",
        "notifies",
        "wakes",
        "spurious_wakeups",
        "parked_now",
        "_wait_count",
        "_wait_sum",
        "_wait_min",
        "_wait_max",
    )

    def __init__(self, scheduler, poll_mode: bool = False) -> None:
        self._sched = scheduler
        self.poll_mode = poll_mode
        self._seq = 0
        #: cycle -> waiters armed for that cycle's agenda.
        self._due: dict = {}
        #: The agenda heap currently being drained (else None).
        self._heap: Optional[List[Waiter]] = None
        self._running_cycle = -1
        #: seq of the waiter the running agenda is at.
        self._cursor = -1
        #: Last cycle whose agenda has already finished.
        self._agenda_done = -1
        #: Waiter whose check callback is on the stack right now;
        #: a park of the same check is a re-park of this episode.
        self._checking: Optional[Waiter] = None
        # Obs counters (mode-varying; exported via obs_snapshot, never
        # part of RunMetrics equality).
        self.waits_parked = 0
        self.notifies = 0
        self.wakes = 0
        self.spurious_wakeups = 0
        self.parked_now = 0
        self._wait_count = 0
        self._wait_sum = 0
        self._wait_min = 0
        self._wait_max = 0

    def park(
        self,
        ws: WaitSet,
        callback: Callable[..., Any],
        args: tuple,
        period: int = RETRY_PERIOD,
    ) -> Waiter:
        """Park a check; returns its (new or already-live) waiter."""
        now = self._sched.now
        w = self._checking
        if w is not None and w.callback == callback and w.args == args:
            # Failed re-check parking itself again: same episode, same
            # seq — both modes number episodes identically.
            w.ws = ws
            w.parked = True
            w.anchor = now
            ws.waiters.append(w)
            self.spurious_wakeups += 1
            self.parked_now += 1
            if self.poll_mode:
                self._arm(w, now + w.period)
            return w
        # At-most-one pending retry per record: a second park of a
        # live check (e.g. two paths kicking the same stalled pump)
        # must not stack another episode.
        for w in ws.waiters:
            if not w.cancelled and w.callback == callback and w.args == args:
                return w
        w = Waiter(ws, callback, args, period, self._seq, now)
        self._seq += 1
        ws.waiters.append(w)
        self.waits_parked += 1
        self.parked_now += 1
        if self.poll_mode:
            self._arm(w, now + period)
        return w

    def notify(self, ws: WaitSet) -> None:
        """Arm ``ws``'s unarmed waiters for their next grid check."""
        self.notifies += 1
        if self.poll_mode:
            return
        waiters = ws.waiters
        if not waiters:
            return
        now = self._sched.now
        for w in waiters:
            if w.armed or w.cancelled:
                continue
            p = w.period
            # First grid point >= now (and > anchor): the first poll
            # that would have observed this change.
            k = -((w.anchor - now) // p)
            if k < 1:
                k = 1
            t = w.anchor + k * p
            if t > now:
                self._arm(w, t)
            elif self._running_cycle == now:
                if w.seq > self._cursor:
                    # This cycle's agenda would have reached it (poll
                    # mode already has it queued): join in seq order.
                    w.armed = True
                    heappush(self._heap, w)
                else:
                    # Already checked (and failed) earlier in this
                    # agenda — next chance is a full period out.
                    self._arm(w, now + p)
            elif self._agenda_done == now:
                # Post-agenda delay-0 chain: this cycle's check already
                # ran and failed.
                self._arm(w, now + p)
            else:
                self._arm(w, now)

    def cancel(self, w: Waiter) -> None:
        """Abandon a parked episode.  Idempotent; armed slots are
        reaped lazily by their agenda (never counted by
        ``Scheduler.pending()`` either way)."""
        if w.cancelled:
            return
        w.cancelled = True
        if w.parked:
            w.parked = False
            self.parked_now -= 1
            try:
                w.ws.waiters.remove(w)
            except ValueError:
                pass

    def _arm(self, w: Waiter, t: int) -> None:
        w.armed = True
        due = self._due.get(t)
        if due is None:
            self._due[t] = [w]
            self._sched.post_late(t - self._sched.now, self._run_agenda, (t,))
        else:
            due.append(w)

    def _run_agenda(self, t: int) -> None:
        """Run cycle ``t``'s checks in global park (seq) order."""
        heap = self._due.pop(t)
        heapify(heap)
        self._heap = heap
        self._running_cycle = t
        while heap:
            w = heappop(heap)
            self._cursor = w.seq
            w.armed = False
            if w.cancelled or not w.parked:
                continue
            w.parked = False
            self.parked_now -= 1
            w.ws.waiters.remove(w)
            self._checking = w
            w.callback(*w.args)
            self._checking = None
            if not w.parked:
                # Episode over: the check made progress.
                self.wakes += 1
                dur = t - w.start
                self._wait_count += 1
                self._wait_sum += dur
                if dur > self._wait_max:
                    self._wait_max = dur
                if dur < self._wait_min or self._wait_count == 1:
                    self._wait_min = dur
        self._heap = None
        self._running_cycle = -1
        self._cursor = -1
        self._agenda_done = t

    def obs_snapshot(self) -> dict:
        """Observable interface: wakeup counters + wait-duration
        histogram (count/sum/min/max, cycles per episode)."""
        return {
            "poll_mode": self.poll_mode,
            "waits_parked": self.waits_parked,
            "notifies": self.notifies,
            "wakes": self.wakes,
            "spurious_wakeups": self.spurious_wakeups,
            "parked": self.parked_now,
            "wait_cycles": {
                "count": self._wait_count,
                "sum": self._wait_sum,
                "min": self._wait_min,
                "max": self._wait_max,
            },
        }
