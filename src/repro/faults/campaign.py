"""Error-detection campaigns (paper Section 6.1).

For each trial: pick an error type, time and location at random, inject
it into a running benchmark, and continue until the error is detected —
then check that a valid SafetyNet checkpoint is still available.  The
paper reports that DVMC detected all injected errors well inside the
~100k-cycle recovery window; :func:`run_campaign` reproduces that
experiment and its summary table.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.rng import SplitRng
from repro.config import SystemConfig
from repro.parallel import ResultCache, run_points
from repro.system.builder import build_system

from .injector import ALL_FAULT_KINDS, FaultInjector, FaultKind, FaultPlan


@dataclass
class TrialResult:
    """Outcome of one fault-injection trial."""

    kind: FaultKind
    injected_cycle: int
    landed: bool
    detected: bool
    detector: Optional[str]  # "UO" / "AR" / "CC"
    detection_cycle: Optional[int]
    recoverable: Optional[bool]  # live checkpoint at detection time
    completed: bool  # benchmark ran to completion anyway
    description: str

    @property
    def latency(self) -> Optional[int]:
        if self.detection_cycle is None:
            return None
        return self.detection_cycle - self.injected_cycle

    @property
    def masked(self) -> bool:
        """Fault landed but had no architecturally visible effect."""
        return self.landed and not self.detected and self.completed


def run_trial(
    config: SystemConfig,
    workload: str,
    ops: int,
    kind: FaultKind,
    inject_cycle: int,
    seed: int,
    max_cycles: int = 500_000,
) -> TrialResult:
    """Inject one fault and observe detection."""
    system = build_system(config.with_seed(seed), workload=workload, ops=ops)
    injector = FaultInjector(system, seed=seed * 7919 + inject_cycle)
    injector.arm(FaultPlan(kind, inject_cycle))

    detection = {}

    def on_violation(report) -> None:
        if "cycle" in detection:
            return
        detection["cycle"] = report.cycle
        detection["checker"] = report.checker
        if system.safetynet is not None:
            detection["recoverable"] = system.safetynet.can_recover(inject_cycle)

    system.dvmc.violations._callback = on_violation
    result = system.run(max_cycles=max_cycles, allow_incomplete=True)
    # Close every epoch so the MET sees faults whose natural detection
    # point is the block's next epoch end, then scrub memory so latent
    # corruption in DRAM-resident blocks is activated.
    system.drain_epochs()
    if result.completed:
        system.scrub_memory()
        system.drain_epochs()

    record = injector.records[0] if injector.records else None
    landed = record.landed if record is not None else False
    return TrialResult(
        kind=kind,
        injected_cycle=inject_cycle,
        landed=landed,
        detected="cycle" in detection,
        detector=detection.get("checker"),
        detection_cycle=detection.get("cycle"),
        recoverable=detection.get("recoverable"),
        completed=result.completed,
        description=record.description if record else "plan never fired",
    )


@dataclass(frozen=True)
class TrialSpec:
    """Picklable description of one injection trial (pool-worker input)."""

    config: SystemConfig
    workload: str
    ops: int
    kind: FaultKind
    inject_cycle: int
    seed: int
    max_cycles: int


def _encode_trial(result: TrialResult) -> dict:
    data = dataclasses.asdict(result)
    data["kind"] = result.kind.value
    return data


def _decode_trial(data: dict) -> TrialResult:
    data = dict(data)
    data["kind"] = FaultKind(data["kind"])
    return TrialResult(**data)


# Campaign trials ride the same run-level result cache as RunSpec
# sweeps: a TrialSpec fingerprints like any frozen dataclass, and the
# codec round-trips the FaultKind enum through its string value.
ResultCache.register(TrialResult, _encode_trial, _decode_trial)


def run_trial_spec(spec: TrialSpec) -> TrialResult:
    """Top-level worker: execute one :class:`TrialSpec` in this process."""
    return run_trial(
        spec.config,
        spec.workload,
        spec.ops,
        spec.kind,
        spec.inject_cycle,
        seed=spec.seed,
        max_cycles=spec.max_cycles,
    )


def run_campaign(
    config: SystemConfig,
    workload: str = "oltp",
    ops: int = 150,
    kinds: Sequence[FaultKind] = ALL_FAULT_KINDS,
    trials_per_kind: int = 3,
    seed: int = 11,
    jobs: Optional[int] = None,
    cache=None,
) -> List[TrialResult]:
    """The Section 6.1 experiment: random (type, time, location) faults.

    All (type, time, location) choices are drawn up front from the
    campaign RNG, then the independent trials fan out across ``jobs``
    worker processes; results come back in trial order, identical to a
    serial campaign.  With ``cache`` enabled, previously executed
    trials (same spec, same code version) are served from the result
    cache.
    """
    rng = SplitRng(seed).child("campaign")
    # Calibrate the injection window against a fault-free run.
    baseline = build_system(config.with_seed(seed), workload=workload, ops=ops)
    base_cycles = baseline.run().cycles
    specs: List[TrialSpec] = []
    for kind in kinds:
        for trial in range(trials_per_kind):
            inject_cycle = rng.randint(base_cycles // 5, (3 * base_cycles) // 5)
            specs.append(
                TrialSpec(
                    config,
                    workload,
                    ops,
                    kind,
                    inject_cycle,
                    seed=seed + trial,
                    max_cycles=3 * base_cycles + 60_000,
                )
            )
    return run_points(specs, jobs=jobs, worker=run_trial_spec, cache=cache)


def summarize(results: List[TrialResult]) -> Dict[FaultKind, Dict[str, float]]:
    """Per-kind detection statistics for the campaign table."""
    out: Dict[FaultKind, Dict[str, float]] = {}
    for kind in {r.kind for r in results}:
        rows = [r for r in results if r.kind is kind]
        landed = [r for r in rows if r.landed]
        detected = [r for r in landed if r.detected]
        latencies = [r.latency for r in detected if r.latency is not None]
        out[kind] = {
            "trials": len(rows),
            "landed": len(landed),
            "detected": len(detected),
            "masked": sum(1 for r in landed if r.masked),
            "recoverable": sum(1 for r in detected if r.recoverable),
            "max_latency": max(latencies) if latencies else 0,
        }
    return out


def format_summary(summary: Dict[FaultKind, Dict[str, float]]) -> str:
    """Paper-style campaign table."""
    header = (
        f"{'fault kind':<18}{'trials':>7}{'landed':>7}{'detected':>9}"
        f"{'masked':>7}{'recov':>6}{'max latency':>13}"
    )
    lines = [header, "-" * len(header)]
    for kind in sorted(summary, key=lambda k: k.value):
        s = summary[kind]
        lines.append(
            f"{kind.value:<18}{s['trials']:>7}{s['landed']:>7}"
            f"{s['detected']:>9}{s['masked']:>7}{s['recoverable']:>6}"
            f"{s['max_latency']:>13}"
        )
    return "\n".join(lines)
