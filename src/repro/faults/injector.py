"""Fault injection into the memory system (paper Section 6.1).

The paper injects errors "into all components related to the memory
system: the load/store queue (LSQ), write buffer, caches, interconnect
switches and links, and memory and cache controllers", covering data
and address bit flips; dropped, reordered, mis-routed, and duplicated
messages; and reorderings and incorrect forwarding in the LSQ and write
buffer.  :class:`FaultKind` enumerates the same classes; the injector
mutates live simulator state (or installs one-shot network hooks) so
detection flows through the real checker mechanisms.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.rng import SplitRng
from repro.common.types import WORDS_PER_BLOCK, CoherenceState
from repro.interconnect.base import FaultAction
from repro.interconnect.message import Message

from repro.coherence.messages import Coh, Snoop


class FaultKind(enum.Enum):
    """Injectable error classes, mirroring the paper's list."""

    # Interconnect faults (links and switches)
    MSG_DROP = "msg-drop"
    MSG_DUPLICATE = "msg-duplicate"
    MSG_MISROUTE = "msg-misroute"
    MSG_DATA_FLIP = "msg-data-flip"

    # Cache and memory array faults
    CACHE_STATE_FLIP = "cache-state-flip"  # controller state bit (S->M)
    CACHE_DATA_FLIP = "cache-data-flip"  # multi-bit flip beyond ECC
    MEM_DATA_FLIP = "mem-data-flip"  # multi-bit DRAM flip beyond ECC

    # Processor-side faults
    WB_VALUE_FLIP = "wb-value-flip"
    WB_ADDR_FLIP = "wb-addr-flip"
    WB_REORDER = "wb-reorder"
    LSQ_WRONG_VALUE = "lsq-wrong-value"  # incorrect LSQ forwarding


ALL_FAULT_KINDS = tuple(FaultKind)


@dataclass
class FaultPlan:
    """One injection: what, when, and (optionally) where."""

    kind: FaultKind
    at_cycle: int
    node: Optional[int] = None  # None -> injector picks randomly
    bit_mask: int = 0x0101_0100  # multi-bit pattern (defeats ECC)


@dataclass
class InjectionRecord:
    """What the injector actually did when the plan fired."""

    plan: FaultPlan
    armed_cycle: int
    landed: bool
    description: str
    details: dict = field(default_factory=dict)


class FaultInjector:
    """Arms fault plans against a built system."""

    def __init__(self, system, seed: int = 99):
        self.system = system
        self.rng = SplitRng(seed).child("faults")
        self.records: List[InjectionRecord] = []
        #: Armed plans that have neither landed nor exhausted their
        #: retries.  The run can stop (workload done, deadline) while a
        #: retry is still queued; the system-level finalizer flushes
        #: such plans as not-landed so ``records`` reflects every plan.
        self._pending: List[FaultPlan] = []
        system.finalizers.append(self._flush_pending)

    # -- public API ---------------------------------------------------------
    #: State-dependent faults re-arm until a target exists.
    RETRY_DELAY = 500
    MAX_RETRIES = 40

    def arm(self, plan: FaultPlan) -> None:
        """Schedule the plan's injection at its cycle."""
        self._pending.append(plan)
        self.system.scheduler.at(plan.at_cycle, self._fire, plan, 0)

    def _fire(self, plan: FaultPlan, attempt: int) -> None:
        if plan not in self._pending:  # already flushed by a finalizer
            return
        handler = getattr(self, f"_inject_{plan.kind.name.lower()}")
        self._attempt = attempt
        record = handler(plan)
        if not record.landed and attempt < self.MAX_RETRIES:
            self.system.scheduler.after(self.RETRY_DELAY, self._fire, plan, attempt + 1)
            return
        self._pending.remove(plan)
        self.records.append(record)

    def _flush_pending(self) -> None:
        """Record any plan still retrying when the run stopped."""
        for plan in self._pending:
            self.records.append(
                self._record(plan, False, "no target before run ended")
            )
        self._pending.clear()

    def _record(self, plan: FaultPlan, landed: bool, desc: str, **details) -> InjectionRecord:
        return InjectionRecord(
            plan=plan,
            armed_cycle=self.system.scheduler.now,
            landed=landed,
            description=desc,
            details=details,
        )

    def _pick_node(self, plan: FaultPlan) -> int:
        if plan.node is not None:
            return plan.node
        return self.rng.randrange(self.system.config.num_nodes)

    # -- interconnect faults ------------------------------------------------
    def _one_shot_hook(self, action: FaultAction, mutate=None, need_data=False) -> str:
        """Install a hook hitting the next protocol message on the data
        network (checker/DVCC messages are excluded: the paper treats
        checker-hardware errors as false-positive sources, not targets)."""
        network = self.system.data_network
        fired = {"msg": None}

        def hook(msg: Message):
            if not isinstance(msg.kind, (Coh, Snoop)):
                return (FaultAction.DELIVER, None)
            if need_data and not msg.data:
                return (FaultAction.DELIVER, None)
            network.set_fault_hook(None)
            fired["msg"] = f"{msg.kind} {msg.src}->{msg.dst} addr=0x{msg.addr:x}"
            if mutate is not None:
                mutate(msg)
            if action is FaultAction.MISROUTE:
                wrong = (msg.dst + 1 + self.rng.randrange(
                    max(1, self.system.config.num_nodes - 1)
                )) % self.system.config.num_nodes
                if wrong == msg.dst:
                    wrong = (msg.dst + 1) % self.system.config.num_nodes
                return (action, wrong)
            return (action, None)

        network.set_fault_hook(hook)
        return "armed on next coherence message"

    def _inject_msg_drop(self, plan: FaultPlan) -> InjectionRecord:
        desc = self._one_shot_hook(FaultAction.DROP)
        return self._record(plan, True, f"drop: {desc}")

    def _inject_msg_duplicate(self, plan: FaultPlan) -> InjectionRecord:
        desc = self._one_shot_hook(FaultAction.DUPLICATE)
        return self._record(plan, True, f"duplicate: {desc}")

    def _inject_msg_misroute(self, plan: FaultPlan) -> InjectionRecord:
        desc = self._one_shot_hook(FaultAction.MISROUTE)
        return self._record(plan, True, f"misroute: {desc}")

    def _inject_msg_data_flip(self, plan: FaultPlan) -> InjectionRecord:
        def mutate(msg: Message) -> None:
            if msg.data:
                index = self.rng.randrange(len(msg.data))
                msg.data[index] ^= plan.bit_mask

        desc = self._one_shot_hook(FaultAction.DELIVER, mutate=mutate, need_data=True)
        return self._record(plan, True, f"data flip: {desc}")

    # -- cache / memory faults ---------------------------------------------
    def _inject_cache_state_flip(self, plan: FaultPlan) -> InjectionRecord:
        """Flip a coherence-state bit: a Shared line becomes Modified,
        letting stores slip through without write permission."""
        from repro.workloads.suite import PRIVATE_BASE, SHARED_BASE

        nodes = list(range(self.system.config.num_nodes))
        self.rng.shuffle(nodes)
        for node in nodes:
            lines = [
                l
                for l in self.system.cache_controllers[node].l1.lines()
                if l.state is CoherenceState.S
            ]
            # Prefer lock-region lines (every node's atomics exercise
            # them), then any shared line: the missing write permission
            # must actually be used for the fault to activate.  Stay
            # strict for the first half of the retry budget.
            locks = [l for l in lines if l.addr < SHARED_BASE]
            if getattr(self, "_attempt", 0) < self.MAX_RETRIES // 2:
                lines = locks
            else:
                hot = [l for l in lines if l.addr < PRIVATE_BASE]
                lines = locks or hot or lines
            if lines:
                line = self.rng.choice(lines)
                line.state = CoherenceState.M
                return self._record(
                    plan,
                    True,
                    f"state flip S->M at node {node} block 0x{line.addr:x}",
                    node=node,
                    block=line.addr,
                )
        return self._record(plan, False, "no Shared line to corrupt")

    def _inject_cache_data_flip(self, plan: FaultPlan) -> InjectionRecord:
        """Multi-bit flip (beyond ECC) in a clean cached block."""
        nodes = list(range(self.system.config.num_nodes))
        self.rng.shuffle(nodes)
        for node in nodes:
            lines = [
                l
                for l in self.system.cache_controllers[node].l1.lines()
                if l.state in (CoherenceState.S, CoherenceState.O)
            ]
            if lines:
                line = self.rng.choice(lines)
                index = self.rng.randrange(WORDS_PER_BLOCK)
                line.data[index] ^= plan.bit_mask
                return self._record(
                    plan,
                    True,
                    f"cache data flip at node {node} block 0x{line.addr:x}",
                    node=node,
                    block=line.addr,
                )
        return self._record(plan, False, "no clean line to corrupt")

    def _inject_mem_data_flip(self, plan: FaultPlan) -> InjectionRecord:
        """Multi-bit DRAM flip in a block no cache currently holds.

        Working sets that fit in L1 never evict, so a truly uncached
        touched block may not exist; fall back to flipping DRAM under a
        block cached only in Shared state.  No dirty owner will ever
        write back over the flip, so the corruption stays latent until
        the clean copies are dropped and the block is re-fetched from
        memory (a scrubber pass, or the next capacity miss).
        """
        states: dict = {}
        for controller in self.system.cache_controllers:
            for l in controller.l1.lines():
                states.setdefault(l.addr, set()).add(l.state)
        candidates = []
        for node, memory in enumerate(self.system.memories):
            for block in memory.touched_blocks():
                if block not in states:
                    candidates.append((node, block))
        if not candidates:
            candidates = [
                (self.system.home_of(block), block)
                for block, s in states.items()
                if s <= {CoherenceState.S}
            ]
        if not candidates:
            return self._record(plan, False, "no memory-resident block")
        from repro.workloads.suite import PRIVATE_BASE, SHARED_BASE

        shared = [
            (n, b) for n, b in candidates if SHARED_BASE <= b < PRIVATE_BASE
        ]
        node, block = self.rng.choice(shared or candidates)
        offset = self.rng.randrange(WORDS_PER_BLOCK) * 4
        self.system.memories[node].corrupt_word(
            block + offset, plan.bit_mask, defeat_ecc=True
        )
        return self._record(
            plan, True, f"memory flip at home {node} block 0x{block:x}",
            node=node, block=block,
        )

    # -- processor-side faults -----------------------------------------------
    def _wb_with_entries(self, plan: FaultPlan):
        order = list(range(self.system.config.num_nodes))
        self.rng.shuffle(order)
        if plan.node is not None:
            order = [plan.node]
        for node in order:
            wb = self.system.cores[node].wb
            if wb is not None and len(wb):
                return node, wb
        return None, None

    def _corruptible_indices(self, wb) -> list:
        """Entries whose corruption can still land (not yet issued)."""
        return [i for i, e in enumerate(wb.entries()) if not e.issued]

    def _inject_wb_value_flip(self, plan: FaultPlan) -> InjectionRecord:
        node, wb = self._wb_with_entries(plan)
        indices = self._corruptible_indices(wb) if wb is not None else []
        if not indices:
            return self._record(plan, False, "no corruptible WB entry")
        wb.corrupt_entry(self.rng.choice(indices), value_xor=plan.bit_mask)
        return self._record(plan, True, f"WB value flip at node {node}", node=node)

    def _inject_wb_addr_flip(self, plan: FaultPlan) -> InjectionRecord:
        node, wb = self._wb_with_entries(plan)
        indices = self._corruptible_indices(wb) if wb is not None else []
        if not indices:
            return self._record(plan, False, "no corruptible WB entry")
        # Flip an address bit: the store lands on a neighbouring word.
        wb.corrupt_entry(self.rng.choice(indices), addr_xor=4)
        return self._record(plan, True, f"WB addr flip at node {node}", node=node)

    def _inject_wb_reorder(self, plan: FaultPlan) -> InjectionRecord:
        node, wb = self._wb_with_entries(plan)
        if wb is None or not wb.illegal_reorder():
            return self._record(plan, False, "fewer than two swappable WB entries")
        return self._record(plan, True, f"WB illegal reorder at node {node}", node=node)

    def _inject_lsq_wrong_value(self, plan: FaultPlan) -> InjectionRecord:
        node = self._pick_node(plan)
        self.system.cores[node].fault_load_value_xor = plan.bit_mask
        return self._record(
            plan, True, f"next load at node {node} returns a corrupted value",
            node=node,
        )
