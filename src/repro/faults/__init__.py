"""Fault injection and error-detection campaigns (paper Section 6.1)."""

from .campaign import (
    TrialResult,
    format_summary,
    run_campaign,
    run_trial,
    summarize,
)
from .injector import (
    ALL_FAULT_KINDS,
    FaultInjector,
    FaultKind,
    FaultPlan,
    InjectionRecord,
)

__all__ = [
    "ALL_FAULT_KINDS",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "InjectionRecord",
    "TrialResult",
    "format_summary",
    "run_campaign",
    "run_trial",
    "summarize",
]
