"""Violation forensics: automated post-mortems from the flight recorder.

Given a :class:`~repro.obs.spans.SpanRecorder` from a recorded run and
(optionally) a violation detail string from a committed reproducer,
this module walks the recorder *backwards* from the violating
operation and extracts the minimal causal slice: the transaction's own
hand-off timeline (write buffer, MSHR, link reservations, message
flights, ownership transitions, checker verdicts), every other
transaction that touched the same block inside the forensic window,
and the infrastructure context (coherence epochs, MET informs,
SafetyNet checkpoints) the checkers judged it against.

Anchors resolve in priority order:

1. a live checker violation captured by the recorder
   (``recorder.violations`` — carries checker/node/cycle/addr/seq/tid);
2. a parsed detail string — both the online format
   (``[cycle 496] AR violation at node 0: ... seq 3 ...``) and the
   offline oracle's edge format (``T0#15:load@0x20080 -> ...``) are
   understood, so ``repro.cli explain`` works on reproducers whose
   online run is clean (``missed_violation`` cases).

Consumed by ``repro.cli explain`` and the differential-fuzz rig
(:mod:`repro.fuzz` attaches a post-mortem next to every fatal
reproducer it writes).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.spans import (
    CHECKER_CODES,
    K_AR,
    K_BCAST,
    K_CKPT,
    K_EPOCH,
    K_LINK,
    K_MET,
    K_MSG,
    K_MSHR,
    K_OP,
    K_OWNER,
    K_REPLAY,
    K_UO,
    K_VIOL,
    K_WB,
    KIND_NAMES,
    SpanRecorder,
)

#: Names for the ``a`` column of :data:`~repro.obs.spans.K_OP` records
#: (mirrors ``_SPAN_OP_CLASS`` in :mod:`repro.processor.core`).
OP_CLASS_NAMES = ("load", "store", "atomic", "membar", "stbar")

#: Default forensic window: how far back (cycles) from the violation
#: the same-block sweep reaches.
DEFAULT_WINDOW = 50_000

_CHECKER_NAMES = {code: name for name, code in CHECKER_CODES.items()}

# -- detail-string parsing ---------------------------------------------------

_RE_CYCLE = re.compile(r"\[cycle (\d+)\]")
_RE_CHECKER = re.compile(r"\b(AR|UO|CC)\s+violation")
_RE_NODE = re.compile(r"\bnode (\d+)")
_RE_SEQ = re.compile(r"\bseq (\d+)")
_RE_ADDR = re.compile(r"0x[0-9a-fA-F]+")
#: The oracle's performs-before edge endpoints: ``T3#13:store@0x20080``.
_RE_ORACLE_OP = re.compile(r"T(\d+)#(\d+):(\w+)@(0x[0-9a-fA-F]+)")
_RE_OP_CLASS = re.compile(r"\b(load|store|atomic|membar|stbar)\b")


@dataclass
class Anchor:
    """The resolved violating operation the post-mortem hangs off."""

    source: str  # "recorder" | "detail"
    checker: str  # AR / UO / CC / ORACLE
    detail: str
    node: int = -1
    cycle: int = -1
    addr: int = 0
    seq: int = -1
    tid: int = 0
    #: Index into :data:`OP_CLASS_NAMES` when the detail names the op.
    op_class: int = -1
    #: Extra (node, seq, kind, addr) hints from an oracle edge detail.
    hints: List[Tuple[int, int, str, int]] = field(default_factory=list)


def parse_detail(detail: str) -> Optional[Anchor]:
    """Extract an anchor from a reproducer/violation detail string."""
    if not detail:
        return None
    oracle_ops = [
        (int(n), int(s), kind, int(a, 16))
        for n, s, kind, a in _RE_ORACLE_OP.findall(detail)
    ]
    if oracle_ops:
        node, seq, kind, addr = oracle_ops[0]
        checker = _RE_CHECKER.search(detail)
        cycle = _RE_CYCLE.search(detail)
        return Anchor(
            source="detail",
            checker=checker.group(1) if checker else "ORACLE",
            detail=detail,
            node=node,
            cycle=int(cycle.group(1)) if cycle else -1,
            seq=seq,
            addr=addr,
            op_class=(
                OP_CLASS_NAMES.index(kind) if kind in OP_CLASS_NAMES else -1
            ),
            hints=oracle_ops[1:],
        )
    checker = _RE_CHECKER.search(detail)
    cycle = _RE_CYCLE.search(detail)
    node = _RE_NODE.search(detail)
    seq = _RE_SEQ.search(detail)
    addrs = _RE_ADDR.findall(detail)
    op_class = _RE_OP_CLASS.search(detail)
    if not (checker or cycle or node):
        return None
    return Anchor(
        source="detail",
        checker=checker.group(1) if checker else "?",
        detail=detail,
        node=int(node.group(1)) if node else -1,
        cycle=int(cycle.group(1)) if cycle else -1,
        addr=int(addrs[0], 16) if addrs else 0,
        seq=int(seq.group(1)) if seq else -1,
        op_class=OP_CLASS_NAMES.index(op_class.group(1)) if op_class else -1,
    )


# -- anchor resolution -------------------------------------------------------


def _find_op(
    recorder: SpanRecorder,
    node: int,
    addr: int,
    seq: int,
    cycle: int,
    block_size: int = 64,
    op_class: int = -1,
) -> int:
    """Best-effort trace id for a (node, addr, seq, cycle) description.

    Exact ``(node, seq)`` wins (when the op class matches, if the
    detail names one); otherwise the same-node op on the same block
    with the nearest sequence number (the oracle's per-thread indices
    and the core's issue sequence can differ by the count of
    non-memory ops), falling back to the last such op before the
    violation cycle.
    """
    ops = recorder.op_spans()
    if seq >= 0 and node >= 0:
        tid = recorder.tid_for(node, seq)
        if tid and (op_class < 0 or ops[tid][3] == op_class):
            return tid
    mask = ~(block_size - 1)
    for want_class in ((op_class, -1) if op_class >= 0 else (-1,)):
        best_tid = 0
        best_score = None
        for tid, (_, t0, _, cls, a, s, n) in ops.items():
            if node >= 0 and n != node:
                continue
            if addr and (a & mask) != (addr & mask):
                continue
            if want_class >= 0 and cls != want_class:
                continue
            if seq >= 0:
                score = abs(s - seq)
            elif cycle >= 0:
                if t0 > cycle:
                    continue
                score = cycle - t0
            else:
                score = -tid  # newest sampled op wins
            if best_score is None or score < best_score:
                best_score, best_tid = score, tid
        if best_tid:
            return best_tid
    return 0


def resolve_anchor(
    recorder: SpanRecorder, detail: str = "", block_size: int = 64
) -> Optional[Anchor]:
    """The violating op: live recorder violation first, detail second."""
    if recorder.violations:
        v = recorder.violations[0]
        anchor = Anchor(
            source="recorder",
            checker=v["checker"],
            detail=v["detail"] or detail,
            node=v["node"],
            cycle=v["cycle"],
            addr=v["addr"],
            seq=v["seq"],
            tid=v["tid"],
        )
    else:
        anchor = parse_detail(detail)
        if anchor is None:
            return None
    if not anchor.tid:
        anchor.tid = _find_op(
            recorder, anchor.node, anchor.addr, anchor.seq, anchor.cycle,
            block_size, anchor.op_class,
        )
    op = recorder.op_spans().get(anchor.tid)
    if op is not None:
        # Fill holes from the resolved op root (track, t0, t1, class,
        # addr, seq, node).
        if anchor.addr == 0:
            anchor.addr = op[4]
        if anchor.seq < 0:
            anchor.seq = op[5]
        if anchor.node < 0:
            anchor.node = op[6]
        if anchor.cycle < 0:
            anchor.cycle = op[2]
    return anchor


# -- causal slice ------------------------------------------------------------

#: Ring kinds that carry a block/word address in column ``a``.
_ADDR_KINDS = frozenset(
    (
        K_WB,
        K_MSHR,
        K_MSG,
        K_LINK,
        K_BCAST,
        K_OWNER,
        K_UO,
        K_REPLAY,
        K_EPOCH,
        K_MET,
        K_VIOL,
    )
)


@dataclass
class Slice:
    """The minimal causal slice around one violation."""

    anchor: Anchor
    #: The violating transaction's own records, chronological.
    own: List[Tuple[int, int, int, int, int, int, int, int]]
    #: Same-block records from *other* transactions in the window.
    same_block: List[Tuple[int, int, int, int, int, int, int, int]]
    #: Related transactions: tid -> op root (track..node), ordered by
    #: relevance (same block first, then program-order neighbours).
    related: Dict[int, Tuple[int, int, int, int, int, int, int]]
    #: SafetyNet checkpoints live inside the window.
    checkpoints: List[Tuple[int, int, int]]  # (cycle, index, live)
    block: int
    window: Tuple[int, int]


def causal_slice(
    recorder: SpanRecorder,
    anchor: Anchor,
    window: int = DEFAULT_WINDOW,
    block_size: int = 64,
) -> Slice:
    """Walk the recorder backwards from ``anchor`` and slice it."""
    mask = ~(block_size - 1)
    ops = recorder.op_spans()
    block = anchor.addr & mask if anchor.addr else 0
    anchor_root = ops.get(anchor.tid)
    if not block and anchor_root is not None:
        # Barriers carry no address: focus the slice on the nearest
        # program-order neighbour's block (the access the barrier was
        # ordering when the checker fired), younger side first.
        best = None
        for tid, (_t, _t0, _t1, _cls, a, s, _n) in ops.items():
            if tid == anchor.tid or not a or ops[tid][6] != anchor_root[6]:
                continue
            rank = (abs(s - anchor_root[5]), 0 if s > anchor_root[5] else 1)
            if best is None or rank < best[0]:
                best = (rank, a)
        if best is not None:
            block = best[1] & mask
    hi = anchor.cycle
    if hi < 0:
        hi = recorder.end_time or max((op[2] for op in ops.values()), default=0)
    anchor_op = ops.get(anchor.tid)
    if anchor_op is not None and anchor_op[2] > hi:
        hi = anchor_op[2]
    lo = max(0, (anchor_op[1] if anchor_op is not None else hi) - window)

    own: List[Tuple[int, ...]] = []
    same_block: List[Tuple[int, ...]] = []
    related: Dict[int, Tuple[int, ...]] = {}
    checkpoints: List[Tuple[int, int, int]] = []
    if anchor_op is not None:
        own.append(
            (
                anchor.tid, anchor_op[0], K_OP, anchor_op[1], anchor_op[2],
                anchor_op[3], anchor_op[4], anchor_op[5],
            )
        )
    for rec in recorder.events():
        tid, _, kind, t0, t1, a, b, _ = rec
        if tid and tid == anchor.tid:
            own.append(rec)
            continue
        if kind == K_CKPT and lo <= t0 <= hi:
            checkpoints.append((t0, a, b))
            continue
        if t1 < lo or t0 > hi:
            continue
        if block and kind in _ADDR_KINDS and (a & mask) == block:
            same_block.append(rec)
            if tid and tid not in related and tid in ops:
                related[tid] = ops[tid]
    # Same-block op roots the ring may have evicted (or that produced
    # no ring traffic, e.g. cache hits).
    if block:
        for tid, op in ops.items():
            if tid == anchor.tid or tid in related:
                continue
            if (op[4] & mask) == block and op[1] <= hi and op[2] >= lo:
                related[tid] = op
    # Oracle edge hints name the causally-related endpoints directly.
    for node, seq, _, addr in anchor.hints:
        tid = _find_op(recorder, node, addr, seq, -1, block_size)
        if tid and tid != anchor.tid and tid in ops:
            related.setdefault(tid, ops[tid])
    # Program-order neighbours on the violating node (the ops a fence
    # violation is *about* when the anchor itself has no address).
    if anchor.node >= 0 and anchor.seq >= 0:
        for seq in range(anchor.seq - 2, anchor.seq + 3):
            if seq == anchor.seq or seq < 0:
                continue
            tid = recorder.tid_for(anchor.node, seq)
            if tid and tid != anchor.tid and tid in ops:
                related.setdefault(tid, ops[tid])
    own.sort(key=lambda r: (r[3], r[4]))
    same_block.sort(key=lambda r: (r[3], r[4]))
    return Slice(
        anchor=anchor,
        own=own,
        same_block=same_block,
        related=related,
        checkpoints=checkpoints,
        block=block,
        window=(lo, hi),
    )


# -- rendering ---------------------------------------------------------------


def _op_name(op_class: int, addr: int, seq: int) -> str:
    name = (
        OP_CLASS_NAMES[op_class]
        if 0 <= op_class < len(OP_CLASS_NAMES)
        else f"op{op_class}"
    )
    if addr:
        return f"{name}@0x{addr:x} seq {seq}"
    return f"{name} seq {seq}"


def _describe(recorder: SpanRecorder, rec: Tuple[int, ...]) -> str:
    tid, track, kind, t0, t1, a, b, c = rec
    names = recorder.track_names()
    where = names[track] if track < len(names) else f"track{track}"
    when = f"[{t0:>7}..{t1:<7}]" if t1 != t0 else f"[{t0:>7}]{' ' * 9}"
    if kind == K_OP:
        what = _op_name(a, b, c)
    elif kind == K_WB:
        what = f"write-buffer residency 0x{a:x} (value 0x{b:x})"
    elif kind == K_MSHR:
        what = f"MSHR miss block 0x{a:x}"
    elif kind == K_MSG:
        what = f"message 0x{a:x} node {b} -> node {c}"
    elif kind == K_LINK:
        what = f"link reservation 0x{a:x} ({b} -> {c})"
    elif kind == K_BCAST:
        what = f"address broadcast 0x{a:x} from node {b} (order #{c})"
    elif kind == K_OWNER:
        owner = f"node {b - 1}" if b else "memory"
        what = f"ownership of block 0x{a:x} -> {owner} (home {c})"
    elif kind == K_CKPT:
        what = f"SafetyNet checkpoint #{a} ({b} live)"
    elif kind == K_AR:
        what = f"AR verdict: {_op_name(a, 0, b)} reorder window closed (node {c})"
    elif kind == K_UO:
        what = f"UO commit: store 0x{a:x} seq {b} verified (node {c})"
    elif kind == K_REPLAY:
        what = f"UO replay load 0x{a:x} seq {b} (node {c})"
    elif kind == K_EPOCH:
        what = f"{'RW' if b else 'RO'} coherence epoch block 0x{a:x} (node {c})"
    elif kind == K_MET:
        what = f"MET epoch record block 0x{a:x} from node {b} (home {c})"
    elif kind == K_VIOL:
        what = f"{_CHECKER_NAMES.get(c, '?')} VIOLATION addr 0x{a:x} node {b}"
    else:
        what = KIND_NAMES[kind] if kind < len(KIND_NAMES) else f"kind{kind}"
    return f"  {when} {where:<18} {what}"


def post_mortem(
    recorder: SpanRecorder,
    detail: str = "",
    window: int = DEFAULT_WINDOW,
    block_size: int = 64,
    max_lines: int = 40,
) -> str:
    """Human-readable post-mortem for the recorded run's violation.

    Names the violating operation, its block address, the transaction's
    full hand-off timeline, and every causally-related transaction
    (same block inside the window, oracle edge endpoints, program-order
    neighbours), plus epoch/checkpoint context.
    """
    anchor = resolve_anchor(recorder, detail, block_size)
    lines: List[str] = ["=== DVMC violation post-mortem ==="]
    if anchor is None:
        lines.append(
            "no violation anchor: the recorded run was clean and no "
            "parseable detail string was supplied."
        )
        stats = recorder.stats()
        lines.append(
            f"(recorded {stats['traced_ops']} ops, "
            f"{stats['spans_kept']} spans on {stats['tracks']} tracks)"
        )
        return "\n".join(lines)
    ops = recorder.op_spans()
    sl = causal_slice(recorder, anchor, window, block_size)
    lines.append(f"checker : {anchor.checker} ({anchor.source})")
    if anchor.detail:
        lines.append(f"verdict : {anchor.detail}")
    where = []
    if anchor.cycle >= 0:
        where.append(f"cycle {anchor.cycle}")
    if anchor.node >= 0:
        where.append(f"node {anchor.node}")
    if where:
        lines.append(f"at      : {', '.join(where)}")
    op = ops.get(anchor.tid)
    if op is not None:
        lines.append(
            f"violating op : {_op_name(op[3], op[4], op[5])} on node {op[6]}"
            f" (trace id {anchor.tid}, active cycles {op[1]}..{op[2]})"
        )
    elif anchor.seq >= 0:
        lines.append(
            f"violating op : seq {anchor.seq} on node {anchor.node}"
            " (not sampled by the recorder)"
        )
    if sl.block:
        note = (
            ""
            if anchor.addr
            else " (nearest ordered access; the barrier itself has none)"
        )
        lines.append(f"block        : 0x{sl.block:x}{note}")
    lines.append("")

    if sl.own:
        lines.append(f"-- transaction timeline (trace id {anchor.tid}) --")
        for rec in sl.own[:max_lines]:
            lines.append(_describe(recorder, rec))
        if len(sl.own) > max_lines:
            lines.append(f"  ... {len(sl.own) - max_lines} more records")
        lines.append("")

    if sl.related:
        lines.append("-- causally-related transactions --")
        for tid, rop in list(sl.related.items())[:12]:
            rel = (
                "same block"
                if sl.block and (rop[4] & ~(block_size - 1)) == sl.block
                else "program-order neighbour"
                if rop[6] == anchor.node
                else "window overlap"
            )
            remote = "" if rop[6] == anchor.node else " [remote]"
            lines.append(
                f"  * trace id {tid}: {_op_name(rop[3], rop[4], rop[5])} "
                f"on node {rop[6]}{remote}, cycles {rop[1]}..{rop[2]} "
                f"({rel})"
            )
        lines.append("")

    if sl.same_block:
        lines.append(
            f"-- block 0x{sl.block:x} activity, cycles "
            f"{sl.window[0]}..{sl.window[1]} --"
        )
        for rec in sl.same_block[:max_lines]:
            lines.append(_describe(recorder, rec))
        if len(sl.same_block) > max_lines:
            lines.append(
                f"  ... {len(sl.same_block) - max_lines} more records"
            )
        lines.append("")

    if sl.checkpoints:
        first, last = sl.checkpoints[0], sl.checkpoints[-1]
        lines.append(
            f"-- recovery context: {len(sl.checkpoints)} SafetyNet "
            f"checkpoints in window (#{first[1]} @ cycle {first[0]} .. "
            f"#{last[1]} @ cycle {last[0]}) --"
        )
    return "\n".join(lines).rstrip() + "\n"
