"""Fuzz-campaign counters on the observability plane's instruments.

The differential fuzz driver (:mod:`repro.fuzz`) runs entirely off the
simulation hot path, so unlike the rest of the plane its counters are
always live — campaign stats are a product, not a diagnostic.  The
instruments are the shared :class:`~repro.obs.hub.MetricsHub` types,
so a campaign snapshot drops straight into the same exporters and
summary tooling as any other run snapshot.
"""

from __future__ import annotations

from typing import Dict

from repro.obs.hub import MetricsHub

#: Differential outcome classes (see ``repro.fuzz.classify``).
OUTCOMES = (
    "agree_clean",
    "agree_violation",
    "online_only",
    "missed_violation",
    "undecided",
)


class FuzzCounters:
    """Counters and histograms for one differential campaign."""

    def __init__(self, hub: MetricsHub | None = None):
        self.hub = hub if hub is not None else MetricsHub()
        self._cases = self.hub.counter("fuzz.cases")
        self._outcomes = {
            name: self.hub.counter(f"fuzz.outcome.{name}") for name in OUTCOMES
        }
        self._mismatches = self.hub.counter("fuzz.mismatches")
        self._known = self.hub.counter("fuzz.mismatches.known")
        self._shrink_steps = self.hub.counter("fuzz.shrink.steps")
        self._events = self.hub.histogram("fuzz.trace.events")
        self._branches = self.hub.histogram("fuzz.oracle.branches")

    def record_case(self, outcome: str, oracle_stats: Dict[str, int]) -> None:
        self._cases.add()
        self._outcomes[outcome].add()
        self._events.record(oracle_stats.get("events", 0))
        self._branches.record(oracle_stats.get("branches", 0))

    def record_mismatch(self, known: bool) -> None:
        self._mismatches.add()
        if known:
            self._known.add()

    def record_shrink_steps(self, steps: int) -> None:
        self._shrink_steps.add(steps)

    def snapshot(self) -> Dict[str, Dict]:
        """Hub snapshot (exporter-compatible)."""
        return self.hub.snapshot()

    def summary(self) -> Dict[str, int]:
        """Flat campaign summary for the stats JSON / job summary."""
        out = {"cases": self._cases.value}
        for name, counter in self._outcomes.items():
            out[name] = counter.value
        out["mismatches"] = self._mismatches.value
        out["mismatches_known"] = self._known.value
        out["shrink_steps"] = self._shrink_steps.value
        return out
