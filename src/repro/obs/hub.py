"""Metrics registry: counters, gauges and histograms for one run.

The hub is the push half of the observability plane (see
:mod:`repro.obs`): components that produce *new* measurements — the
scheduler's bucket occupancy, an OpLog's drain depth, the MET's bank
probes — register named instruments and update them while the
simulation runs.  Everything already counted in the simulation-visible
:class:`~repro.common.stats.StatsRegistry` stays there (those counters
are part of the deterministic run output); the exporter pulls both
sides together at snapshot time.

Cost model: when observability is disabled (the default) components
hold the module-level no-op instruments below, so the hot paths pay at
most a single attribute test.  The real instruments are plain
``__slots__`` objects whose update is one attribute add — cheap enough
that the benchmark gates total obs overhead at a few percent.
"""

from __future__ import annotations

import math
from typing import Dict


class Counter:
    """Monotonic named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Point-in-time named value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class ObsHistogram:
    """Streaming histogram: count / sum / min / max (no samples kept)."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram.

    A single instance stands in for every instrument of a disabled hub,
    so `hub.counter(a) is hub.counter(b)` — identity the unit tests pin
    down, and the reason a disabled hub allocates nothing per call.
    """

    __slots__ = ()

    name = "null"
    value = 0
    count = 0
    total = 0.0
    mean = 0.0

    def add(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def record(self, value: float) -> None:
        pass

    def as_dict(self) -> Dict[str, float]:
        return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}


NULL_INSTRUMENT = _NullInstrument()


class MetricsHub:
    """Registry of named instruments for one system/run."""

    enabled = True

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, ObsHistogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> ObsHistogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = ObsHistogram(name)
        return inst

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-data view of every instrument (JSON-safe)."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.as_dict() for k, h in sorted(self._histograms.items())
            },
        }


class NullHub:
    """Disabled-mode hub: every instrument is the shared no-op."""

    enabled = False

    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def snapshot(self) -> Dict[str, Dict]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_HUB = NullHub()
