"""Chrome/Perfetto ``trace_event`` export of recorded spans.

Converts a :class:`~repro.obs.spans.SpanRecorder` into the JSON object
format understood by ``chrome://tracing`` and https://ui.perfetto.dev:
one *thread* (track) per node / link / checker, complete ("X") events
for spans, instant ("i") events for zero-duration records, and thread
metadata naming each track.  Simulated cycles map 1:1 onto trace
microseconds, so durations read directly as cycle counts.

The export is deterministic for a fixed recorder (events are sorted by
start time, then track) and round-trips through ``json`` — asserted by
``tests/obs/test_spans.py``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from repro.obs.spans import K_OP, KIND_NAMES, SpanRecorder

#: Operation class names for ``args.op`` (mirrors OpClass codes).
_OP_CLASS_NAMES = ("load", "store", "atomic", "membar", "other")


def _op_class_name(code: int) -> str:
    if 0 <= code < len(_OP_CLASS_NAMES):
        return _OP_CLASS_NAMES[code]
    return str(code)


def to_chrome_trace(recorder: SpanRecorder) -> Dict:
    """The recorder's contents as a ``trace_event`` JSON object."""
    events: List[Dict] = []
    tracks = recorder.track_names()
    for track_id, name in enumerate(tracks):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": track_id,
                "args": {"name": name},
            }
        )
        # Track order in the viewer follows sort_index, not name.
        events.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": 0,
                "tid": track_id,
                "args": {"sort_index": track_id},
            }
        )
    spans = sorted(recorder.records(), key=lambda r: (r[3], r[1], r[2]))
    for tid, track, kind, t0, t1, a, b, c in spans:
        kind_name = KIND_NAMES[kind] if kind < len(KIND_NAMES) else str(kind)
        if kind == K_OP:
            name = f"{_op_class_name(a)}@0x{b:x}#{c}"
        elif a:
            name = f"{kind_name}@0x{a:x}"
        else:
            name = kind_name
        args = {"trace_id": tid, "a": a, "b": b, "c": c, "kind": kind_name}
        if t1 > t0:
            events.append(
                {
                    "ph": "X",
                    "name": name,
                    "pid": 0,
                    "tid": track,
                    "ts": t0,
                    "dur": t1 - t0,
                    "args": args,
                }
            )
        else:
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": name,
                    "pid": 0,
                    "tid": track,
                    "ts": t0,
                    "args": args,
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "recorder": recorder.stats(),
            "source": "repro transaction flight recorder",
        },
    }


def write_chrome_trace(path: str, recorder: SpanRecorder) -> int:
    """Write the trace JSON at ``path``; returns events written."""
    trace = to_chrome_trace(recorder)
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(trace, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return len(trace["traceEvents"])
