"""Phase timer: attribute wall-clock time to named run phases.

DVMC's headline claim is that verification rides along at low cost;
until now the only way to see *where* a run's wall time went was an
external profiler.  The phase timer splits one run into named,
nestable phases (``simulate`` / ``verify`` / ``drain`` / ``serialize``
in :meth:`repro.system.builder.System.run`) and reports both views:

* **exclusive** — time spent in a phase minus time spent in phases
  nested inside it (the numbers sum to total instrumented time);
* **inclusive** — plain enter-to-exit time per phase.

The timer only exists on observed systems; unobserved systems hold
:data:`NULL_TIMER`, whose ``phase()`` returns one shared reentrant
no-op context manager, so the disabled cost is a method call per
``System.run`` — not per event.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, List


class PhaseTimer:
    """Nestable named wall-time accumulator.

    ``clock`` is injectable so tests can drive the timer with a fake
    clock and assert exact attribution.
    """

    __slots__ = ("exclusive", "inclusive", "_clock", "_stack")

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.exclusive: Dict[str, float] = {}
        self.inclusive: Dict[str, float] = {}
        self._clock = clock
        #: Open phases: [name, child-time accumulated so far].
        self._stack: List[List] = []

    @contextmanager
    def phase(self, name: str):
        """Time a phase; nested phases are subtracted from ``exclusive``."""
        start = self._clock()
        frame = [name, 0.0]
        self._stack.append(frame)
        try:
            yield
        finally:
            elapsed = self._clock() - start
            self._stack.pop()
            self.exclusive[name] = (
                self.exclusive.get(name, 0.0) + elapsed - frame[1]
            )
            self.inclusive[name] = self.inclusive.get(name, 0.0) + elapsed
            if self._stack:
                self._stack[-1][1] += elapsed

    def total(self) -> float:
        """Total instrumented wall time (sum of exclusive phases)."""
        return sum(self.exclusive.values())

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {
            "exclusive": dict(sorted(self.exclusive.items())),
            "inclusive": dict(sorted(self.inclusive.items())),
        }


class _NullContext:
    """Reentrant no-op context manager shared by every null phase."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()


class NullPhaseTimer:
    """Disabled-mode timer: ``phase()`` costs one shared object."""

    __slots__ = ()

    exclusive: Dict[str, float] = {}
    inclusive: Dict[str, float] = {}

    def phase(self, name: str) -> _NullContext:
        return _NULL_CONTEXT

    def total(self) -> float:
        return 0.0

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {"exclusive": {}, "inclusive": {}}


NULL_TIMER = NullPhaseTimer()
