"""Sampled, ring-buffer backed JSONL event trace.

With ``REPRO_OBS_TRACE=path`` the system builder wraps every core's
program with the offline oracle's transparent recorder
(:func:`repro.verify.trace.record_program`) pointed at a
:class:`TraceRing` instead of an unbounded :class:`~repro.verify.
trace.Trace`.  The ring keeps the *last* ``capacity`` operations
(debugging almost always wants the tail — the state right before the
hang or violation), optionally keeping only every Nth operation
(``REPRO_OBS_TRACE_SAMPLE=N``), and is written as JSON Lines through
the shared :mod:`repro.verify.trace` codecs at the end of
``System.run`` — so a recorded tail can be loaded straight back into
the offline :class:`~repro.verify.trace.TraceChecker`.

Recording is transparent to the simulation: the wrapper forwards every
operation and result untouched, and the identity tests cover runs with
tracing on.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Deque, List

from repro.obs import TRACE_CAP_ENV, TRACE_SAMPLE_ENV
from repro.verify.trace import Trace, TraceEvent, dump_jsonl

#: Default ring capacity (events kept).
DEFAULT_CAPACITY = 4096


def _env_int(name: str, default: int, floor: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value >= floor else floor


class _RingEvents:
    """The ``trace.events`` facade :func:`record_program` appends to."""

    __slots__ = ("ring", "owner")

    def __init__(self, ring: Deque[TraceEvent], owner: "TraceRing"):
        self.ring = ring
        self.owner = owner

    def append(self, event: TraceEvent) -> None:
        owner = self.owner
        owner.seen += 1
        if owner.sample > 1 and owner.seen % owner.sample:
            return
        ring = self.ring
        if len(ring) == ring.maxlen:
            owner.dropped += 1
        ring.append(event)


class TraceRing:
    """Bounded trace sink: last ``capacity`` events, 1-in-``sample``."""

    __slots__ = ("capacity", "sample", "seen", "dropped", "_ring", "events")

    def __init__(self, capacity: int = DEFAULT_CAPACITY, sample: int = 1):
        self.capacity = max(1, capacity)
        self.sample = max(1, sample)
        #: Operations offered to the ring (before sampling/eviction).
        self.seen = 0
        #: Sampled events evicted because the ring was full.
        self.dropped = 0
        self._ring: Deque[TraceEvent] = deque(maxlen=self.capacity)
        self.events = _RingEvents(self._ring, self)

    @classmethod
    def from_env(cls) -> "TraceRing":
        """Ring sized by ``REPRO_OBS_TRACE_CAP`` / ``_SAMPLE``."""
        return cls(
            capacity=_env_int(TRACE_CAP_ENV, DEFAULT_CAPACITY, 1),
            sample=_env_int(TRACE_SAMPLE_ENV, 1, 1),
        )

    def __len__(self) -> int:
        return len(self._ring)

    def tail(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._ring)

    def to_trace(self) -> Trace:
        """Materialise the tail as an offline-checkable :class:`Trace`."""
        return Trace(events=self.tail())

    def write_jsonl(self, path: str) -> int:
        """Dump the tail as JSON Lines; returns events written."""
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        return dump_jsonl(self._ring, path)

    def stats(self) -> dict:
        """Observable interface: ring occupancy and loss accounting."""
        return {
            "capacity": self.capacity,
            "sample": self.sample,
            "seen": self.seen,
            "kept": len(self._ring),
            "dropped": self.dropped,
        }
