"""Per-run provenance manifest.

A manifest pins down everything needed to reproduce (or refuse to
compare) a result: the exact configuration (content hash), the seed,
the code version (git sha and the same source fingerprint the result
cache keys on), and the interpreter/platform that produced it.  The
bench CI job writes one next to every ``BENCH_perf.json`` so perf
numbers are never compared across unknown code or machines.

Manifests are deterministic for a fixed (config, seed, code,
interpreter): no timestamps, no absolute paths — the unit tests assert
two manifests for the same run are equal.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import platform
import subprocess
import sys
from typing import Any, Dict, Optional

#: Bumped when the manifest layout changes incompatibly.
SCHEMA_VERSION = 2


def regime_flags(environ: Optional[Dict[str, str]] = None) -> Dict[str, Any]:
    """Resolved execution-regime switches, as the builders interpret them.

    Records the *effective* settings (defaults applied), not the raw
    environment, so a manifest pins the regime a result was produced
    under even when the variables were unset: flat event kernel on by
    default, wake-on-change (``poll`` off), express message plane
    (``hops`` off), streaming AR checker (``eager_check`` off), and the
    observability plane's three layers (counter hub, event trace ring,
    span flight recorder).  Deterministic for a fixed environment.
    """
    from repro.obs import _FALSEY

    env = os.environ if environ is None else environ

    def _get(name: str, default: str = "") -> str:
        return env.get(name, default)

    def _truthy(name: str) -> bool:
        return _get(name).strip().lower() not in _FALSEY

    return {
        "flat_kernel": _get("REPRO_FLAT_KERNEL", "1") != "0",
        "poll": _get("REPRO_POLL", "0") == "1",
        "hops": _get("REPRO_HOPS", "0") == "1",
        "eager_check": _get("REPRO_EAGER_CHECK") == "1",
        "obs": _truthy("REPRO_OBS"),
        "obs_trace": bool(_get("REPRO_OBS_TRACE").strip()),
        "obs_spans": _truthy("REPRO_OBS_SPANS"),
        "obs_spans_cap": _get("REPRO_OBS_SPANS_CAP").strip() or None,
        "obs_spans_sample": _get("REPRO_OBS_SPANS_SAMPLE").strip() or None,
    }


def _json_default(obj: Any) -> str:
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    raise TypeError(f"unhashable manifest value: {obj!r}")


def config_hash(config: Any) -> str:
    """Stable content hash of a (dataclass) system configuration."""
    if dataclasses.is_dataclass(config):
        payload = dataclasses.asdict(config)
    else:
        payload = config
    blob = json.dumps(payload, sort_keys=True, default=_json_default)
    return hashlib.sha256(blob.encode()).hexdigest()


def git_sha() -> Optional[str]:
    """HEAD commit of the repo containing this package, if available."""
    root = os.path.dirname(os.path.abspath(__file__))
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def run_manifest(
    config: Any = None,
    workload: Optional[str] = None,
    ops: Optional[int] = None,
    seed: Optional[int] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build the provenance manifest for one run (plain JSON-safe dict).

    ``seed`` defaults to ``config.seed`` when the config carries one.
    ``extra`` entries are merged under the ``"extra"`` key verbatim.
    """
    from repro.parallel import code_fingerprint

    if seed is None and config is not None:
        seed = getattr(config, "seed", None)
    manifest: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "config_hash": None if config is None else config_hash(config),
        "workload": workload,
        "ops": ops,
        "seed": seed,
        "git_sha": git_sha(),
        "code_fingerprint": code_fingerprint(),
        "regimes": regime_flags(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "endianness": sys.byteorder,
    }
    if extra:
        manifest["extra"] = dict(extra)
    return manifest


def write_manifest(path: str, manifest: Dict[str, Any]) -> None:
    """Write ``manifest`` as stable, sorted JSON at ``path``."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
