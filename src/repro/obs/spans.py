"""Transaction flight recorder: ints-only causal spans per memory op.

With ``REPRO_OBS_SPANS=1`` every sampled memory operation is assigned
a **trace id** at issue (``processor/core.py``) and child spans are
opened/closed at every hand-off the transaction makes on its way
through the machine: write-buffer residency, cache-controller MSHR
lifetime, per-link express-plane reservations and message flights,
directory/snooping ownership transitions, SafetyNet checkpoints, and
finally the DVMC verdicts (AR reorder check, UO commit/replay, CC
epoch + MET processing).

The storage discipline follows :class:`repro.dvmc.streaming.OpLog`:
records are flat integers in preallocated parallel arrays, closed
spans land in a ring that keeps the *last* ``capacity`` records (the
tail right before a violation is what forensics wants), and op
sampling (``REPRO_OBS_SPANS_SAMPLE=N``) bounds enabled-path cost.
Recording never feeds back into the simulation: a recorder-on run is
bit-identical to a recorder-off run (asserted by
``tests/integration/test_spans_identity.py`` and the benchmark's
``spans`` pass).

Consumers: :mod:`repro.obs.chrome_trace` (Perfetto export) and
:mod:`repro.obs.forensics` (violation post-mortems).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.obs import SPANS_CAP_ENV, SPANS_SAMPLE_ENV

#: Default ring capacity (closed spans kept).
DEFAULT_CAPACITY = 65536
#: First ring allocation (slots); the ring starts empty and grows
#: geometrically from here up to ``capacity`` as spans are emitted.
_GROW_MIN = 256
#: Default op sampling stride (trace every Nth operation).  Forensic
#: reruns (``repro.cli explain``, the fuzz rig) set stride 1 to record
#: everything; the default keeps the always-on cost bounded (gated at
#: ≤3% by the benchmark's ``span_overhead_pct``).  Infrastructure
#: spans that belong to no operation (coherence epochs, MET informs,
#: unsampled ownership transitions, checkpoints) are only recorded at
#: stride 1 — under sampling they would be pure ring pressure with no
#: sampled transaction to join against.
DEFAULT_SAMPLE = 64

# -- span kind codes (the ``kind`` column) ----------------------------------
K_OP = 0  #: root span: one memory operation     a=op class  b=addr  c=seq
K_WB = 1  #: write-buffer residency              a=addr      b=value c=seq
K_MSHR = 2  #: cache-controller miss lifetime    a=block     b=kind  c=node
K_MSG = 3  #: message flight (send -> deliver)   a=addr      b=src   c=dst
K_LINK = 4  #: one link's reserved occupancy     a=addr      b=src   c=dst
K_BCAST = 5  #: address-network broadcast        a=addr      b=src   c=order
K_OWNER = 6  #: ownership transition (instant)   a=block     b=owner+1  c=home
K_CKPT = 7  #: SafetyNet checkpoint (instant)    a=index     b=node count
K_AR = 8  #: AR reorder verdict (instant)        a=op class  b=seq   c=node
K_UO = 9  #: UO store commit (instant)           a=addr      b=seq   c=node
K_REPLAY = 10  #: UO verification replay load    a=addr      b=seq   c=node
K_EPOCH = 11  #: CC CET coherence epoch          a=block     b=etype c=node
K_MET = 12  #: CC MET epoch processed (instant)  a=block     b=src   c=home
K_VIOL = 13  #: checker violation (instant)      a=addr      b=node  c=checker

KIND_NAMES = (
    "op",
    "wb",
    "mshr",
    "msg",
    "link",
    "bcast",
    "owner",
    "ckpt",
    "ar",
    "uo",
    "replay",
    "epoch",
    "met",
    "violation",
)

#: ``c`` column of :data:`K_VIOL` records.
CHECKER_CODES = {"AR": 1, "UO": 2, "CC": 3}


def _env_int(name: str, default: int, floor: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value >= floor else floor


class SpanRecorder:
    """Ring-buffered span store with interned track names.

    A *track* is one timeline in the exported trace (one per core,
    cache, link, home node, checker...).  A *trace id* (``tid``) ties
    every span belonging to one memory operation together; ``tid 0``
    marks infrastructure spans (epochs, checkpoints, unsampled
    traffic) that belong to no single operation.

    Root op spans live outside the ring (one slot per sampled op,
    extended as child spans close) so a long run's tail of hand-off
    records never evicts the op table forensics anchors on.
    """

    __slots__ = (
        "capacity",
        "sample",
        "trace_infra",
        "_size",
        "seen_ops",
        "dropped_ops",
        "dropped_spans",
        "next_tid",
        "cur",
        "count",
        "force_closed",
        "finalized",
        "end_time",
        "violations",
        "_tid",
        "_track",
        "_kind",
        "_t0",
        "_t1",
        "_a",
        "_b",
        "_c",
        "_head",
        "_open",
        "_next_token",
        "_ops",
        "_seqmap",
        "_tracks",
        "_track_list",
    )

    def __init__(self, capacity: int = DEFAULT_CAPACITY, sample: int = 1):
        self.capacity = max(16, capacity)
        self.sample = max(1, sample)
        #: Record op-less infrastructure spans (epochs, MET informs,
        #: checkpoints, unsampled ownership handoffs)?  Only at full
        #: sampling — forensic reruns — where they can be joined to
        #: transactions by block; under sampling they are skipped to
        #: bound the always-on cost.
        self.trace_infra = self.sample == 1
        #: Operations offered at issue (before sampling).
        self.seen_ops = 0
        #: Sampled ops refused because the op table was full.
        self.dropped_ops = 0
        #: Closed spans evicted because the ring wrapped.
        self.dropped_spans = 0
        self.next_tid = 1
        #: Side-channel: the trace id of the op the core is currently
        #: handing to the cache controller (0 between hand-offs).
        self.cur = 0
        self.count = 0
        #: Spans still open at finalize (closed with the end time).
        self.force_closed = 0
        self.finalized = False
        self.end_time = 0
        #: Rare, so not ints-only: one dict per checker violation
        #: (checker/node/cycle/addr/seq/tid/detail) — the forensics
        #: anchor of choice when a checker actually fired.
        self.violations: List[Dict] = []
        # The ring starts empty and grows geometrically up to
        # ``capacity`` on demand (in ``_emit``): preallocating the full
        # ring (8 x 64k list slots) costs more than an entire short
        # run, and sampled always-on runs rarely need more than a few
        # hundred slots.
        self._size = 0
        self._tid: List[int] = []
        self._track: List[int] = []
        self._kind: List[int] = []
        self._t0: List[int] = []
        self._t1: List[int] = []
        self._a: List[int] = []
        self._b: List[int] = []
        self._c: List[int] = []
        self._head = 0
        self._open: Dict[int, Tuple[int, int, int, int, int, int, int]] = {}
        self._next_token = 1
        #: tid -> [track, t0, t1, op_class, addr, seq, node]
        self._ops: Dict[int, List[int]] = {}
        #: (node << 32 | seq) -> trace id of the sampled op.
        self._seqmap: Dict[int, int] = {}
        self._tracks: Dict[str, int] = {}
        self._track_list: List[str] = []

    @classmethod
    def from_env(cls) -> "SpanRecorder":
        """Recorder sized by ``REPRO_OBS_SPANS_CAP`` / ``_SAMPLE``."""
        return cls(
            capacity=_env_int(SPANS_CAP_ENV, DEFAULT_CAPACITY, 16),
            sample=_env_int(SPANS_SAMPLE_ENV, DEFAULT_SAMPLE, 1),
        )

    # -- tracks -------------------------------------------------------------

    def track(self, name: str) -> int:
        """Intern ``name``; returns its stable track id."""
        tracks = self._tracks
        tid = tracks.get(name)
        if tid is None:
            tid = len(self._track_list)
            tracks[name] = tid
            self._track_list.append(name)
        return tid

    def track_names(self) -> List[str]:
        return list(self._track_list)

    # -- op roots -----------------------------------------------------------

    def new_op(
        self, track: int, node: int, op_class: int, addr: int, seq: int, t: int
    ) -> int:
        """Assign a trace id at issue; 0 when sampled out or full."""
        seen = self.seen_ops
        self.seen_ops = seen + 1
        if self.sample > 1 and seen % self.sample:
            return 0
        if len(self._ops) >= self.capacity:
            self.dropped_ops += 1
            return 0
        tid = self.next_tid
        self.next_tid = tid + 1
        self._ops[tid] = [track, t, t, op_class, addr, seq, node]
        self._seqmap[node << 32 | seq] = tid
        return tid

    def tid_for(self, node: int, seq: int) -> int:
        """The trace id of (node, seq), or 0 when not sampled."""
        return self._seqmap.get(node << 32 | seq, 0)

    def _extend(self, tid: int, t: int) -> None:
        op = self._ops.get(tid)
        if op is not None and t > op[2]:
            op[2] = t

    def op_touch(self, tid: int, t: int) -> None:
        """Extend an op's root span to its latest hand-off time."""
        if tid > 0:
            self._extend(tid, t)

    # -- spans --------------------------------------------------------------

    def _emit(
        self, tid: int, track: int, kind: int,
        t0: int, t1: int, a: int, b: int, c: int,
    ) -> None:
        i = self._head
        if i == self._size:
            if i < self.capacity:
                pad = [0] * (min(self.capacity, max(_GROW_MIN, i * 4)) - i)
                self._tid.extend(pad)
                self._track.extend(pad)
                self._kind.extend(pad)
                self._t0.extend(pad)
                self._t1.extend(pad)
                self._a.extend(pad)
                self._b.extend(pad)
                self._c.extend(pad)
                self._size = i + len(pad)
            else:
                i = 0
        self._tid[i] = tid
        self._track[i] = track
        self._kind[i] = kind
        self._t0[i] = t0
        self._t1[i] = t1
        self._a[i] = a
        self._b[i] = b
        self._c[i] = c
        self._head = i + 1
        if self.count < self.capacity:
            self.count += 1
        else:
            self.dropped_spans += 1

    def open(
        self, tid: int, track: int, kind: int,
        t0: int, a: int = 0, b: int = 0, c: int = 0,
    ) -> int:
        """Open a child span; returns the token ``close`` pairs with."""
        token = self._next_token
        self._next_token = token + 1
        self._open[token] = (tid, track, kind, t0, a, b, c)
        return token

    def close(self, token: int, t1: int) -> None:
        rec = self._open.pop(token, None)
        if rec is None:
            return
        self._emit(rec[0], rec[1], rec[2], rec[3], t1, rec[4], rec[5], rec[6])
        if rec[0] > 0:
            self._extend(rec[0], t1)

    def span(
        self, tid: int, track: int, kind: int,
        t0: int, t1: int, a: int = 0, b: int = 0, c: int = 0,
    ) -> None:
        """Record a span whose end is already known at open time
        (express-plane flights: delivery time is computed at send)."""
        self._emit(tid, track, kind, t0, t1, a, b, c)
        if tid > 0:
            self._extend(tid, t1)

    def instant(
        self, tid: int, track: int, kind: int,
        t: int, a: int = 0, b: int = 0, c: int = 0,
    ) -> None:
        self._emit(tid, track, kind, t, t, a, b, c)
        if tid > 0:
            self._extend(tid, t)

    def violation(
        self, checker: str, node: int, cycle: int,
        addr: int = 0, seq: int = -1, detail: str = "",
    ) -> None:
        """Record a checker violation (instant + forensics anchor)."""
        tid = self._seqmap.get(node << 32 | seq, 0) if seq >= 0 else 0
        track = self.track(f"checker.{checker.lower()}")
        self.instant(
            tid, track, K_VIOL, cycle, addr, node,
            CHECKER_CODES.get(checker, 0),
        )
        self.violations.append(
            {
                "checker": checker,
                "node": node,
                "cycle": cycle,
                "addr": addr,
                "seq": seq,
                "tid": tid,
                "detail": detail,
            }
        )

    # -- finalize / export --------------------------------------------------

    def finalize(self, end_time: int) -> None:
        """Force-close dangling spans at the end of the run."""
        if self.finalized:
            return
        self.finalized = True
        self.end_time = end_time
        for token in sorted(self._open):
            self.force_closed += 1
            self.close(token, end_time)
        # Op roots end at their last touch, not at run end: no sweep.

    def open_count(self) -> int:
        return len(self._open)

    def events(self) -> List[Tuple[int, int, int, int, int, int, int, int]]:
        """Ring records oldest-first: (tid, track, kind, t0, t1, a, b, c)."""
        if self.count < self.capacity:
            idx = range(self.count)
        else:
            head = self._head
            idx = [*range(head, self.capacity), *range(head)]
        tid, track, kind = self._tid, self._track, self._kind
        t0, t1, a, b, c = self._t0, self._t1, self._a, self._b, self._c
        return [
            (tid[i], track[i], kind[i], t0[i], t1[i], a[i], b[i], c[i])
            for i in idx
        ]

    def op_spans(self) -> Dict[int, Tuple[int, int, int, int, int, int, int]]:
        """tid -> (track, t0, t1, op_class, addr, seq, node)."""
        return {tid: tuple(op) for tid, op in self._ops.items()}

    def records(self) -> List[Tuple[int, int, int, int, int, int, int, int]]:
        """Op roots + ring events as one uniform record list.

        Op roots are emitted as :data:`K_OP` records in tid order; ring
        events follow in close order.
        """
        out = [
            (tid, op[0], K_OP, op[1], op[2], op[3], op[4], op[5])
            for tid, op in sorted(self._ops.items())
        ]
        out.extend(self.events())
        return out

    def stats(self) -> Dict[str, int]:
        """Occupancy and loss accounting (observable interface)."""
        return {
            "capacity": self.capacity,
            "sample": self.sample,
            "seen_ops": self.seen_ops,
            "traced_ops": len(self._ops),
            "dropped_ops": self.dropped_ops,
            "spans_kept": self.count,
            "dropped_spans": self.dropped_spans,
            "open_spans": len(self._open),
            "force_closed": self.force_closed,
            "tracks": len(self._track_list),
            "violations": len(self.violations),
        }


def maybe_recorder(system) -> Optional[SpanRecorder]:
    """The system's recorder, or None (works on any builder output)."""
    return getattr(system, "spans", None)
