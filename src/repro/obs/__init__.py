"""Observability plane: metrics, phase timing, exporters, event traces.

Everything here is *off by default* and guaranteed not to change
simulation results: a run with ``REPRO_OBS=1`` produces bit-identical
violations and statistics to the same run without it (asserted by
``tests/integration/test_obs_identity.py`` and by the performance
benchmark's extra obs pass).

Layout:

* :mod:`repro.obs.hub` — :class:`MetricsHub`, the counter / gauge /
  histogram registry; :data:`NULL_HUB` is the shared disabled-mode hub
  whose instruments are no-ops.
* :mod:`repro.obs.phases` — :class:`PhaseTimer`, attributing wall time
  to simulate / verify / drain / serialize.
* :mod:`repro.obs.export` — run snapshots, Prometheus-style text
  exporter (imported on demand; no cost on the simulation path).
* :mod:`repro.obs.manifest` — per-run provenance manifest (config
  hash, seed, git sha, python/platform).
* :mod:`repro.obs.otrace` — ring-buffer backed sampled JSONL event
  trace (``REPRO_OBS_TRACE=path``).
* :mod:`repro.obs.spans` — transaction flight recorder
  (``REPRO_OBS_SPANS=1``): ints-only causal spans following each
  memory operation across core, write buffer, caches, interconnect,
  directory/snooping homes, SafetyNet and the DVMC checkers.
* :mod:`repro.obs.chrome_trace` — Chrome/Perfetto ``trace_event``
  JSON exporter for recorded spans (open in ``chrome://tracing``).
* :mod:`repro.obs.forensics` — violation post-mortems: walks the
  recorder backwards from a violating operation and extracts the
  minimal causal slice (``repro.cli explain``).

Enablement: ``REPRO_OBS=1`` in the environment (worker processes
inherit it) or ``--obs`` on the CLI, which sets the variable before
any system is built.  ``REPRO_OBS_TRACE=path`` additionally records a
sampled memory-operation trace regardless of ``REPRO_OBS``.
"""

from __future__ import annotations

import os

from repro.obs.hub import (
    Counter,
    Gauge,
    MetricsHub,
    NULL_HUB,
    NULL_INSTRUMENT,
    NullHub,
    ObsHistogram,
)
from repro.obs.phases import NULL_TIMER, NullPhaseTimer, PhaseTimer

#: Environment variable enabling the metrics/phase plane.
OBS_ENV = "REPRO_OBS"
#: Environment variable naming the JSONL event-trace output path.
TRACE_ENV = "REPRO_OBS_TRACE"
#: Ring capacity (records kept) for the event trace.
TRACE_CAP_ENV = "REPRO_OBS_TRACE_CAP"
#: Sampling stride for the event trace (keep every Nth operation).
TRACE_SAMPLE_ENV = "REPRO_OBS_TRACE_SAMPLE"
#: Environment variable enabling the transaction flight recorder.
SPANS_ENV = "REPRO_OBS_SPANS"
#: Ring capacity (closed spans kept) for the flight recorder.
SPANS_CAP_ENV = "REPRO_OBS_SPANS_CAP"
#: Sampling stride for the flight recorder (trace every Nth operation).
SPANS_SAMPLE_ENV = "REPRO_OBS_SPANS_SAMPLE"
#: Chrome trace_event JSON output path for the flight recorder.
SPANS_OUT_ENV = "REPRO_OBS_SPANS_OUT"

_FALSEY = ("", "0", "false", "no", "off")


def enabled() -> bool:
    """Whether the observability plane is on (``REPRO_OBS``)."""
    return os.environ.get(OBS_ENV, "").strip().lower() not in _FALSEY


def trace_path() -> str:
    """The event-trace output path, or "" when tracing is off."""
    return os.environ.get(TRACE_ENV, "").strip()


def spans_enabled() -> bool:
    """Whether the transaction flight recorder is on (``REPRO_OBS_SPANS``)."""
    return os.environ.get(SPANS_ENV, "").strip().lower() not in _FALSEY


def spans_out_path() -> str:
    """The Chrome-trace output path for recorded spans, or ""."""
    return os.environ.get(SPANS_OUT_ENV, "").strip()


def new_span_recorder():
    """A :class:`~repro.obs.spans.SpanRecorder` when enabled, else None."""
    if not spans_enabled():
        return None
    from repro.obs.spans import SpanRecorder

    return SpanRecorder.from_env()


def new_hub() -> "MetricsHub | NullHub":
    """A hub for one system: real when enabled, the null hub otherwise."""
    return MetricsHub() if enabled() else NULL_HUB


def new_phase_timer() -> "PhaseTimer | NullPhaseTimer":
    """A phase timer for one system, null when disabled."""
    return PhaseTimer() if enabled() else NULL_TIMER


__all__ = [
    "Counter",
    "Gauge",
    "MetricsHub",
    "NULL_HUB",
    "NULL_INSTRUMENT",
    "NULL_TIMER",
    "NullHub",
    "NullPhaseTimer",
    "OBS_ENV",
    "ObsHistogram",
    "PhaseTimer",
    "SPANS_CAP_ENV",
    "SPANS_ENV",
    "SPANS_OUT_ENV",
    "SPANS_SAMPLE_ENV",
    "TRACE_CAP_ENV",
    "TRACE_ENV",
    "TRACE_SAMPLE_ENV",
    "enabled",
    "new_hub",
    "new_phase_timer",
    "new_span_recorder",
    "spans_enabled",
    "spans_out_path",
    "trace_path",
]
