"""Run snapshots and exporters (JSON / Prometheus text format).

``snapshot_system`` is the pull half of the observability plane: each
layer exposes its own ``obs_snapshot()`` (scheduler, networks, cache
arrays, DVMC checkers — the RealityCheck argument that a verification
stack scales only when every layer is independently observable), and
the snapshot combines those with the push-side :class:`~repro.obs.hub.
MetricsHub` instruments and the phase timer.  The result is a plain
JSON-safe dict, merged into :class:`~repro.parallel.RunMetrics` as its
``obs`` field (excluded from equality, so observed and unobserved runs
still compare bit-identical on the deterministic payload).

``to_prometheus`` renders a snapshot in the Prometheus text exposition
format (counters/gauges plus ``_count``/``_sum``/``_min``/``_max``
series per histogram) so a run's metrics can be scraped, diffed, or
uploaded as a CI artifact without bespoke tooling.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")

#: Prefix for every exported Prometheus series.
PROM_PREFIX = "repro"


def snapshot_system(system) -> Dict[str, Any]:
    """Plain-data observability snapshot of a built system."""
    snap: Dict[str, Any] = system.obs.snapshot()
    snap["phases"] = system.obs_phases.snapshot()

    layers: Dict[str, Any] = {"scheduler": system.scheduler.obs_snapshot()}

    networks: Dict[str, Any] = {}
    for net in (system.data_network, system.address_network):
        if net is not None:
            networks[net.name] = net.obs_snapshot()
    layers["networks"] = networks

    layers["caches"] = {
        ctrl.l1.name: ctrl.l1.obs_snapshot()
        for ctrl in system.cache_controllers
    }
    layers["dvmc"] = system.dvmc.obs_snapshot()
    layers["wakeups"] = system.wake_hub.obs_snapshot()
    if system.obs_trace is not None:
        layers["trace"] = system.obs_trace.stats()
    snap["layers"] = layers
    return snap


def _flatten(prefix: str, value: Any, out: List) -> None:
    if isinstance(value, dict):
        for key, sub in sorted(value.items()):
            _flatten(f"{prefix}_{key}" if prefix else str(key), sub, out)
    elif isinstance(value, bool):
        out.append((prefix, int(value)))
    elif isinstance(value, (int, float)):
        if isinstance(value, float) and not math.isfinite(value):
            return
        out.append((prefix, value))
    # strings / None / lists are provenance, not metrics: skipped.


def sanitize_metric_name(name: str) -> str:
    """A legal Prometheus metric name for an arbitrary dotted key."""
    name = _NAME_RE.sub("_", name)
    if not name or name[0].isdigit():
        name = f"m_{name}"
    return name


def to_prometheus(snapshot: Dict[str, Any], prefix: str = PROM_PREFIX) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Counters become ``<prefix>_<name>_total`` counter series; every
    other numeric leaf (gauges, histogram fields, phase seconds, layer
    snapshots) becomes a gauge.  Deeply nested keys flatten with ``_``.
    """
    lines: List[str] = []

    counters = snapshot.get("counters", {})
    for key, value in sorted(counters.items()):
        name = f"{prefix}_{sanitize_metric_name(key)}_total"
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {value}")

    flat: List = []
    for section in ("gauges", "histograms", "phases", "layers"):
        _flatten(section, snapshot.get(section, {}), flat)
    for key, value in flat:
        name = f"{prefix}_{sanitize_metric_name(key)}"
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {value}")
    return "\n".join(lines) + "\n"


def write_prometheus(path: str, snapshot: Dict[str, Any]) -> None:
    """Write ``to_prometheus(snapshot)`` at ``path``."""
    import os

    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        fh.write(to_prometheus(snapshot))


def format_phase_table(snapshot: Dict[str, Any]) -> str:
    """Human-readable phase breakdown (the CLI's ``--obs`` output)."""
    phases = snapshot.get("phases", {})
    exclusive = phases.get("exclusive", {})
    inclusive = phases.get("inclusive", {})
    if not exclusive:
        return "(no phase data recorded)"
    total = sum(exclusive.values()) or 1.0
    rows = ["phase         exclusive      incl.    share"]
    for name, secs in sorted(
        exclusive.items(), key=lambda kv: -kv[1]
    ):
        rows.append(
            f"{name:<12}{secs:>9.4f} s {inclusive.get(name, 0.0):>9.4f} s "
            f"{secs / total:>7.1%}"
        )
    rows.append(f"{'total':<12}{total:>9.4f} s")
    return "\n".join(rows)
