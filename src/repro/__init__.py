"""DVMC — Dynamic Verification of Memory Consistency.

A full-system reproduction of Meixner & Sorin, "Dynamic Verification of
Memory Consistency in Cache-Coherent Multithreaded Computer
Architectures" (DSN 2006): a discrete-event multiprocessor simulator
(MOSI directory & snooping coherence, SC/TSO/PSO/RMO cores, torus and
broadcast-tree interconnects, SafetyNet-style recovery) plus the DVMC
checker hardware it evaluates.

Quickstart::

    from repro import ConsistencyModel, SystemConfig, build_system

    config = SystemConfig.protected(model=ConsistencyModel.TSO)
    system = build_system(config, workload="oltp", ops=300)
    result = system.run()
    assert result.violations == []   # error-free run
"""

from .config import (
    CacheConfig,
    DVMCConfig,
    MemoryConfig,
    NetworkConfig,
    ProcessorConfig,
    ProtocolKind,
    SafetyNetConfig,
    SystemConfig,
)
from .consistency import ConsistencyModel, OrderingTable, table_for
from .system import (
    Measurement,
    RunResult,
    System,
    build_system,
    measure,
    run_once,
)

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "ConsistencyModel",
    "DVMCConfig",
    "Measurement",
    "MemoryConfig",
    "NetworkConfig",
    "OrderingTable",
    "ProcessorConfig",
    "ProtocolKind",
    "RunResult",
    "SafetyNetConfig",
    "System",
    "SystemConfig",
    "__version__",
    "build_system",
    "measure",
    "run_once",
    "table_for",
]
