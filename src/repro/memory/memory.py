"""Word-granularity main memory with an ECC model.

The paper requires ECC on all main-memory DRAMs (and cache lines) so
that data blocks cannot change except through stores/writebacks;
Appendix A calls this *Cache Correctness*.  The fault injector can
corrupt data either within ECC's correction capability (corrected,
counted) or beyond it (the corruption lands; DVMC must catch the
consequences end-to-end).
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import SimulationError
from repro.common.stats import StatsRegistry
from repro.common.types import WORD_MASK, WORDS_PER_BLOCK, block_of, word_index


class MainMemory:
    """Sparse block-addressed memory image.

    Each node's memory controller owns the blocks for which it is home;
    they can share one :class:`MainMemory` (interleaving is a routing
    concern) or hold separate instances.
    """

    def __init__(self, stats: StatsRegistry, ecc_enabled: bool = True, name: str = "mem"):
        self._blocks: Dict[int, List[int]] = {}
        self._stats = stats
        self._name = name
        self.ecc_enabled = ecc_enabled

    def read_block(self, addr: int) -> List[int]:
        """Copy of the block containing ``addr`` (zero-filled if untouched)."""
        block = self._blocks.get(block_of(addr))
        if block is None:
            return [0] * WORDS_PER_BLOCK
        return list(block)

    def write_block(self, addr: int, data: List[int]) -> None:
        """Overwrite the block containing ``addr``."""
        if len(data) != WORDS_PER_BLOCK:
            raise SimulationError(
                f"block write needs {WORDS_PER_BLOCK} words, got {len(data)}"
            )
        self._blocks[block_of(addr)] = [w & WORD_MASK for w in data]

    def read_word(self, addr: int) -> int:
        block = self._blocks.get(block_of(addr))
        if block is None:
            return 0
        return block[word_index(addr)]

    def write_word(self, addr: int, value: int) -> None:
        base = block_of(addr)
        block = self._blocks.setdefault(base, [0] * WORDS_PER_BLOCK)
        block[word_index(addr)] = value & WORD_MASK

    # Fault injection ----------------------------------------------------
    def corrupt_word(self, addr: int, bitmask: int, defeat_ecc: bool = False) -> bool:
        """Flip ``bitmask`` bits in the word at ``addr``.

        Returns True if the corruption actually landed.  With ECC
        enabled, single-word flips are corrected at the array (counted
        as ``mem.ecc_corrected``) unless ``defeat_ecc`` forces a
        multi-bit escape.
        """
        if self.ecc_enabled and not defeat_ecc:
            self._stats.incr(f"{self._name}.ecc_corrected")
            return False
        base = block_of(addr)
        block = self._blocks.setdefault(base, [0] * WORDS_PER_BLOCK)
        block[word_index(addr)] ^= bitmask & WORD_MASK
        self._stats.incr(f"{self._name}.corruptions")
        return True

    def touched_blocks(self) -> List[int]:
        """Addresses of blocks ever written (for checkpoint snapshots)."""
        return list(self._blocks.keys())
