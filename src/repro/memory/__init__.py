"""Storage substrate: main memory and cache arrays."""

from .cache import CacheArray, CacheLine
from .memory import MainMemory

__all__ = ["CacheArray", "CacheLine", "MainMemory"]
