"""Set-associative cache array with LRU replacement and port modelling.

This is the storage half of a cache; coherence behaviour lives in
:mod:`repro.coherence.cache_controller`.  Port accounting matters for
DVMC: load replay in the verification stage shares L1 ports with
regular execution (paper Section 6.2.2), so the array hands out access
slots.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import SimulationError
from repro.common.stats import StatsRegistry
from repro.common.types import (
    WORD_MASK,
    WORDS_PER_BLOCK,
    CoherenceState,
    block_of,
    word_index,
)
from repro.config import CacheConfig


class CacheLine:
    """One cache line: coherence state + data + LRU bookkeeping."""

    __slots__ = ("addr", "state", "data", "last_used")

    def __init__(self, addr: int, state: CoherenceState, data: List[int]):
        self.addr = addr
        self.state = state
        self.data = list(data)
        self.last_used = 0

    def read_word(self, addr: int) -> int:
        return self.data[word_index(addr)]

    def write_word(self, addr: int, value: int) -> None:
        self.data[word_index(addr)] = value & WORD_MASK

    def is_dirty(self) -> bool:
        return self.state in (CoherenceState.M, CoherenceState.O)


class CacheArray:
    """Set-associative array of :class:`CacheLine`.

    The array never makes coherence decisions; it stores lines, picks
    LRU victims, and models port contention.
    """

    def __init__(
        self,
        name: str,
        config: CacheConfig,
        block_size: int,
        stats: StatsRegistry,
    ):
        self.name = name
        self.config = config
        self.block_size = block_size
        self.num_sets = config.num_sets(block_size)
        # Sets are allocated lazily (None until first install): short
        # runs touch a small fraction of the index space, and array
        # construction is on the per-run path of every experiment
        # sweep.
        self._sets: List[Optional[Dict[int, CacheLine]]] = (
            [None] * self.num_sets
        )
        # Fast set-index arithmetic: block size is always a power of two
        # here; when the set count is too, (addr >> shift) & mask beats
        # the divide/modulo pair on the per-access path.
        self._block_mask = ~(block_size - 1)
        self._shift = block_size.bit_length() - 1
        self._set_mask = (
            self.num_sets - 1
            if self.num_sets & (self.num_sets - 1) == 0
            else None
        )
        self._stats = stats
        self._use_clock = 0
        # Port model: (cycle, accesses already granted in that cycle).
        self._port_cycle = -1
        self._port_used = 0

    def _set_index(self, addr: int) -> int:
        if self._set_mask is not None:
            return (addr >> self._shift) & self._set_mask
        return (block_of(addr) // self.block_size) % self.num_sets

    # Lookup / insert ------------------------------------------------------
    def lookup(self, addr: int) -> Optional[CacheLine]:
        """Line holding ``addr`` in any valid state, updating LRU."""
        base = addr & self._block_mask
        # _set_index inlined (power-of-two fast path): lookup/peek run
        # once per access and the call overhead is measurable.
        set_mask = self._set_mask
        cache_set = self._sets[
            (base >> self._shift) & set_mask
            if set_mask is not None
            else self._set_index(base)
        ]
        line = cache_set.get(base) if cache_set is not None else None
        if line is not None and line.state is not CoherenceState.I:
            self._use_clock += 1
            line.last_used = self._use_clock
            return line
        return None

    def touch(self, line: CacheLine) -> None:
        """Refresh LRU recency for a line already in hand.

        Equivalent to the LRU side-effect of :meth:`lookup` without
        re-running the set walk; callers must pass a line this array
        returned from a prior lookup/peek.
        """
        self._use_clock += 1
        line.last_used = self._use_clock

    def peek(self, addr: int) -> Optional[CacheLine]:
        """Like :meth:`lookup` but without touching LRU state."""
        base = addr & self._block_mask
        set_mask = self._set_mask
        cache_set = self._sets[
            (base >> self._shift) & set_mask
            if set_mask is not None
            else self._set_index(base)
        ]
        line = cache_set.get(base) if cache_set is not None else None
        if line is not None and line.state is not CoherenceState.I:
            return line
        return None

    def victim_for(self, addr: int, pinned=None) -> Optional[CacheLine]:
        """LRU line that must be evicted to make room for ``addr``.

        Returns None when the set has a free way (or already holds the
        block).  ``pinned`` is an optional predicate over block
        addresses; pinned lines (e.g. blocks with an outstanding
        coherence transaction) are never chosen.
        """
        index = self._set_index(addr)
        cache_set = self._sets[index]
        if cache_set is None:
            return None  # untouched set: a free way by definition
        base = block_of(addr)
        if base in cache_set:
            return None
        live = [
            line
            for line in cache_set.values()
            if line.state is not CoherenceState.I
        ]
        if len(live) < self.config.associativity:
            return None
        if pinned is not None:
            live = [line for line in live if not pinned(line.addr)]
            if not live:
                raise SimulationError(
                    f"{self.name}: set {index} full of pinned lines"
                )
        return min(live, key=lambda line: line.last_used)

    def install(self, addr: int, state: CoherenceState, data: List[int]) -> CacheLine:
        """Place a block; caller must have evicted the victim already."""
        if len(data) != WORDS_PER_BLOCK:
            raise SimulationError("bad block size on install")
        index = self._set_index(addr)
        cache_set = self._sets[index]
        if cache_set is None:
            cache_set = self._sets[index] = {}
        base = block_of(addr)
        # Drop stale invalid entries beyond associativity.
        invalid = [a for a, l in cache_set.items() if l.state is CoherenceState.I]
        for a in invalid:
            del cache_set[a]
        live = [l for l in cache_set.values() if l.state is not CoherenceState.I]
        if base not in cache_set and len(live) >= self.config.associativity:
            raise SimulationError(
                f"{self.name}: set {index} full installing 0x{base:x}"
            )
        line = CacheLine(base, state, data)
        self._use_clock += 1
        line.last_used = self._use_clock
        cache_set[base] = line
        return line

    def remove(self, addr: int) -> Optional[CacheLine]:
        """Remove and return the line for ``addr``, if present."""
        cache_set = self._sets[self._set_index(addr)]
        if cache_set is None:
            return None
        return cache_set.pop(block_of(addr), None)

    def lines(self) -> List[CacheLine]:
        """All valid lines (for checkpointing and fault targeting)."""
        out = []
        for cache_set in self._sets:
            if cache_set:
                out.extend(
                    l
                    for l in cache_set.values()
                    if l.state is not CoherenceState.I
                )
        return out

    def obs_snapshot(self) -> dict:
        """Observable interface: hit/miss/replay view of this array.

        Access counters are incremented by the owning coherence
        controller under this array's name prefix; the array itself
        contributes occupancy and set-allocation state, so the cache
        layer is fully readable from one place.
        """
        stats = self._stats
        accesses = stats.counter(f"{self.name}.accesses")
        misses = stats.counter(f"{self.name}.misses")
        replay_accesses = stats.counter(f"{self.name}.replay_accesses")
        replay_misses = stats.counter(f"{self.name}.replay_misses")
        lines = self.lines()
        return {
            "accesses": accesses,
            "misses": misses,
            "hits": accesses - misses,
            "hit_rate": (accesses - misses) / accesses if accesses else 0.0,
            "replay_accesses": replay_accesses,
            "replay_misses": replay_misses,
            "evictions": stats.counter(f"{self.name}.evictions"),
            "writebacks": stats.counter(f"{self.name}.writebacks"),
            "lines_valid": len(lines),
            "lines_dirty": sum(1 for line in lines if line.is_dirty()),
            "sets_allocated": sum(1 for s in self._sets if s is not None),
            "num_sets": self.num_sets,
        }

    # Port model -----------------------------------------------------------
    def next_access_delay(self, now: int) -> int:
        """Extra cycles until a port is free, and reserve that slot.

        With ``ports`` accesses per cycle, the (ports+1)-th access in a
        cycle is pushed to the next cycle, and so on.
        """
        if now > self._port_cycle:
            self._port_cycle = now
            self._port_used = 1
            return 0
        # now == self._port_cycle (time never goes backwards)
        if self._port_used < self.config.ports:
            self._port_used += 1
            return 0
        extra = self._port_used // self.config.ports
        self._port_used += 1
        return extra
