"""Command-line interface: run simulations, campaigns and sweeps.

Examples::

    python -m repro.cli run --workload oltp --model TSO --protocol directory
    python -m repro.cli compare --workload slash --ops 150
    python -m repro.cli inject --fault wb-value-flip --at 4000
    python -m repro.cli campaign --workload slash --trials 2
    python -m repro.cli fuzz --litmus 100 --faults 10 --stats-out fuzz.json
    python -m repro.cli oracle trace.jsonl --model TSO
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.config import ProtocolKind, SystemConfig
from repro.consistency.models import ConsistencyModel
from repro.faults.campaign import format_summary, run_campaign, summarize
from repro.faults.injector import FaultInjector, FaultKind, FaultPlan
from repro.system.builder import build_system
from repro.system.experiments import measure
from repro.workloads import WORKLOAD_NAMES


def _config(args, protected: bool) -> SystemConfig:
    factory = SystemConfig.protected if protected else SystemConfig.unprotected
    config = factory(
        model=ConsistencyModel[args.model],
        protocol=ProtocolKind[args.protocol.upper()],
    )
    return config.with_nodes(args.nodes).with_seed(args.seed)


def cmd_run(args) -> int:
    config = _config(args, protected=not args.unprotected)
    system = build_system(config, workload=args.workload, ops=args.ops)
    result = system.run()
    print(f"cycles:     {result.cycles}")
    print(f"completed:  {result.completed}")
    print(f"violations: {len(result.violations)}")
    for report in result.violations[:5]:
        print(f"  {report}")
    if args.stats:
        for key, value in sorted(system.stats.as_dict().items()):
            print(f"  {key} = {value}")
    if system.obs.enabled:
        _export_obs(args, config, system)
    return 0 if result.completed and not result.violations else 1


def _export_obs(args, config: SystemConfig, system) -> None:
    """Print the phase breakdown; write exporter files to --obs-dir."""
    from repro.obs.export import (
        format_phase_table,
        snapshot_system,
        write_prometheus,
    )
    from repro.obs.manifest import run_manifest, write_manifest

    snapshot = snapshot_system(system)
    print(format_phase_table(snapshot))
    out_dir = getattr(args, "obs_dir", None)
    if not out_dir:
        return
    os.makedirs(out_dir, exist_ok=True)
    manifest = run_manifest(
        config, workload=args.workload, ops=args.ops, seed=args.seed
    )
    write_manifest(os.path.join(out_dir, "manifest.json"), manifest)
    write_prometheus(os.path.join(out_dir, "metrics.prom"), snapshot)
    with open(os.path.join(out_dir, "snapshot.json"), "w") as fh:
        json.dump(snapshot, fh, indent=1, sort_keys=True)
    print(f"obs artifacts written to {out_dir}/")


def cmd_compare(args) -> int:
    print(f"{'model':<6}{'base':>12}{'DVMC':>12}{'overhead':>10}")
    for model in ConsistencyModel:
        base = measure(
            SystemConfig.unprotected(
                model=model, protocol=ProtocolKind[args.protocol.upper()]
            ).with_nodes(args.nodes),
            args.workload,
            ops=args.ops,
            seeds=args.seeds,
            jobs=args.jobs,
            cache=args.cache,
        )
        dvmc = measure(
            SystemConfig.protected(
                model=model, protocol=ProtocolKind[args.protocol.upper()]
            ).with_nodes(args.nodes),
            args.workload,
            ops=args.ops,
            seeds=args.seeds,
            jobs=args.jobs,
            cache=args.cache,
        )
        overhead = dvmc.runtime_mean / base.runtime_mean - 1
        print(
            f"{model.value:<6}{base.runtime_mean:>12.0f}"
            f"{dvmc.runtime_mean:>12.0f}{overhead:>+9.1%}"
        )
    return 0


def cmd_inject(args) -> int:
    config = _config(args, protected=True)
    system = build_system(config, workload=args.workload, ops=args.ops)
    injector = FaultInjector(system, seed=args.seed)
    injector.arm(FaultPlan(FaultKind(args.fault), args.at))
    detection = {}

    def on_violation(report):
        detection.setdefault("report", report)

    system.dvmc.violations._callback = on_violation
    system.run(max_cycles=args.max_cycles, allow_incomplete=True)
    system.drain_epochs()
    record = injector.records[0] if injector.records else None
    print(f"injected: {record.description if record else '(never fired)'}")
    if "report" in detection:
        report = detection["report"]
        print(f"DETECTED by {report.checker} at cycle {report.cycle}: {report.kind}")
        print(f"  {report.detail}")
        return 0
    print("not detected (masked or latent)")
    return 2


def cmd_campaign(args) -> int:
    config = _config(args, protected=True)
    # Campaigns are the longest sweeps: default to all-but-one core.
    results = run_campaign(
        config,
        workload=args.workload,
        ops=args.ops,
        trials_per_kind=args.trials,
        seed=args.seed,
        jobs=args.jobs if args.jobs is not None else 0,
        cache=args.cache,
    )
    print(format_summary(summarize(results)))
    hangs_missed = [
        r for r in results if r.landed and not r.completed and not r.detected
    ]
    return 1 if hangs_missed else 0


def cmd_fuzz(args) -> int:
    from repro.fuzz import plan_campaign, replay_corpus, run_fuzz_campaign

    if args.replay_corpus:
        failures = 0
        for path, result in replay_corpus(args.corpus):
            status = "FATAL" if result.fatal else result.outcome
            print(f"{status:16s} {os.path.basename(path)}  {result.case.describe()}")
            if result.fatal:
                failures += 1
        print(f"corpus replay: {failures} regressions")
        return 1 if failures else 0

    cases = plan_campaign(
        litmus_count=args.litmus,
        fault_runs=args.faults,
        random_runs=args.randoms,
        seed=args.seed,
    )
    report = run_fuzz_campaign(
        cases,
        jobs=args.jobs,
        corpus_dir=args.corpus,
        reproducer_dir=args.reproducers,
    )
    summary = report.summary
    print(
        f"cases: {summary['cases']}  agree_clean: {summary['agree_clean']}  "
        f"agree_violation: {summary['agree_violation']}  "
        f"online_only: {summary['online_only']}  "
        f"missed_violation: {summary['missed_violation']}  "
        f"undecided: {summary['undecided']}"
    )
    for entry in report.mismatches:
        tag = "known" if entry.get("known") else "NEW"
        print(f"MISMATCH [{tag}] {entry['outcome']}: {json.dumps(entry['case'])}")
        print(f"  {entry['detail']}")
    for path in report.reproducers:
        print(f"reproducer written: {path}")
    if args.stats_out:
        with open(args.stats_out, "w") as fh:
            json.dump(report.to_json(), fh, indent=2, sort_keys=True)
        print(f"stats written: {args.stats_out}")
    print(f"elapsed: {report.elapsed_seconds}s")
    return 1 if report.new_mismatches else 0


def cmd_explain(args) -> int:
    """Violation forensics: recorded replay of a committed reproducer."""
    from repro.fuzz import FuzzCase, run_case_recorded
    from repro.obs.forensics import post_mortem

    with open(args.reproducer) as fh:
        data = json.load(fh)
    case = FuzzCase.from_json(data.get("case", data))
    print(f"replaying {case.describe()} with the flight recorder on...")
    result, recorder = run_case_recorded(case)
    print(f"outcome: {result.outcome}")
    print()
    print(
        post_mortem(
            recorder,
            detail=result.detail or data.get("detail", ""),
            window=args.window,
        )
    )
    if args.trace_out:
        from repro.obs.chrome_trace import write_chrome_trace

        write_chrome_trace(args.trace_out, recorder)
        print(f"chrome trace written: {args.trace_out} (open in Perfetto)")
    return 0


def cmd_oracle(args) -> int:
    from repro.oracle import verify_file

    verdict = verify_file(args.trace, ConsistencyModel[args.model])
    stats = " ".join(f"{k}={v}" for k, v in sorted(verdict.stats.items()))
    if not verdict.decided:
        print(f"UNDECIDED (branch budget exhausted)  {stats}")
        return 2
    if verdict.admissible:
        print(f"ADMISSIBLE under {args.model}  {stats}")
        return 0
    print(f"INADMISSIBLE under {args.model}  {stats}")
    for violation in verdict.violations:
        print(f"  [{violation.rule}] {violation.detail}")
    return 1


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", choices=WORKLOAD_NAMES, default="oltp")
    parser.add_argument(
        "--model", choices=[m.name for m in ConsistencyModel], default="TSO"
    )
    parser.add_argument(
        "--protocol", choices=["directory", "snooping"], default="directory"
    )
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--ops", type=int, default=200)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for independent runs (0 = all cores minus "
        "one; default: REPRO_JOBS env, then 1 — except campaigns, which "
        "default to 0; single `run` invocations always execute in-process)",
    )
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="serve repeated sweep points from the on-disk result cache "
        "under .repro_cache/ (entries are keyed by spec + code version; "
        "default: REPRO_CACHE env, then off)",
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="enable the observability plane (sets REPRO_OBS=1 before any "
        "system is built; results are bit-identical either way)",
    )
    parser.add_argument(
        "--obs-dir",
        default=None,
        metavar="DIR",
        help="with --obs on a `run`, write manifest.json, metrics.prom and "
        "snapshot.json under DIR",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DVMC reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one simulation")
    _add_common(run)
    run.add_argument("--unprotected", action="store_true")
    run.add_argument("--stats", action="store_true", help="dump all counters")
    run.set_defaults(fn=cmd_run)

    compare = sub.add_parser("compare", help="base-vs-DVMC per model")
    _add_common(compare)
    compare.add_argument("--seeds", type=int, default=2)
    compare.set_defaults(fn=cmd_compare)

    inject = sub.add_parser("inject", help="inject one fault")
    _add_common(inject)
    inject.add_argument(
        "--fault",
        choices=[k.value for k in FaultKind],
        default=FaultKind.WB_VALUE_FLIP.value,
    )
    inject.add_argument("--at", type=int, default=4000)
    inject.add_argument("--max-cycles", type=int, default=500_000)
    inject.set_defaults(fn=cmd_inject)

    campaign = sub.add_parser("campaign", help="full detection campaign")
    _add_common(campaign)
    campaign.add_argument("--trials", type=int, default=2)
    campaign.set_defaults(fn=cmd_campaign)

    fuzz = sub.add_parser(
        "fuzz", help="differential fuzz: DVMC online vs offline oracle"
    )
    fuzz.add_argument("--litmus", type=int, default=100, metavar="N",
                      help="generated litmus specs (each runs once per model)")
    fuzz.add_argument("--faults", type=int, default=10, metavar="N",
                      help="fault-injected random workload runs")
    fuzz.add_argument("--randoms", type=int, default=10, metavar="N",
                      help="fault-free random workload runs")
    fuzz.add_argument("--seed", type=int, default=2006)
    fuzz.add_argument("--jobs", type=int, default=None)
    fuzz.add_argument("--corpus", default="tests/corpus", metavar="DIR",
                      help="committed reproducer corpus (known-mismatch match)")
    fuzz.add_argument("--reproducers", default=None, metavar="DIR",
                      help="write shrunk mismatch reproducers under DIR")
    fuzz.add_argument("--stats-out", default=None, metavar="FILE",
                      help="write the campaign report as JSON")
    fuzz.add_argument("--replay-corpus", action="store_true",
                      help="re-run every committed reproducer instead of fuzzing")
    fuzz.set_defaults(fn=cmd_fuzz)

    explain = sub.add_parser(
        "explain",
        help="violation forensics: replay a reproducer with the flight "
        "recorder and print the causal post-mortem",
    )
    explain.add_argument(
        "reproducer",
        help="committed reproducer JSON (tests/corpus/ format: a FuzzCase "
        "under 'case' plus the mismatch 'detail' string)",
    )
    explain.add_argument(
        "--window", type=int, default=50_000, metavar="CYCLES",
        help="how far back the same-block causal sweep reaches",
    )
    explain.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="also export the recorded run as a Chrome/Perfetto trace",
    )
    explain.set_defaults(fn=cmd_explain)

    oracle = sub.add_parser(
        "oracle", help="offline admissibility check of a JSONL trace"
    )
    oracle.add_argument("trace", help="trace file (verify.trace JSONL codec)")
    oracle.add_argument(
        "--model", choices=[m.name for m in ConsistencyModel], default="TSO"
    )
    oracle.set_defaults(fn=cmd_oracle)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "obs", False):
        # Before any build_system call, and inherited by pool workers.
        os.environ["REPRO_OBS"] = "1"
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
