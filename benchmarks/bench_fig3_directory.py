"""Figure 3: runtimes on the DIRECTORY system, normalised to
unprotected SC — Base vs. DVMC for SC/TSO/PSO/RMO across the workloads.

Paper shapes under test:
* the TSO write buffer helps most workloads relative to SC;
* DVMC slowdown stays modest (paper: <= 11% worst case, mostly <= 6%),
  worst with SC;
* PSO/RMO give no significant gain over TSO.
"""

from repro.config import ProtocolKind, SystemConfig
from repro.consistency.models import ConsistencyModel

from bench_common import emit, measure_grid, runtime_table


def _configs():
    out = {}
    for model in ConsistencyModel:
        out[f"{model.value} Base"] = SystemConfig.unprotected(
            model=model, protocol=ProtocolKind.DIRECTORY
        )
        out[f"{model.value} DVMC"] = SystemConfig.protected(
            model=model, protocol=ProtocolKind.DIRECTORY
        )
    return out


def test_figure3_directory_runtimes(benchmark):
    grid = benchmark.pedantic(
        lambda: measure_grid(_configs()), rounds=1, iterations=1
    )
    columns = [
        f"{m.value} {kind}" for m in ConsistencyModel for kind in ("Base", "DVMC")
    ]
    text = runtime_table(
        "Figure 3. Runtime, directory system (normalised to SC Base)",
        grid,
        "SC Base",
        columns,
    )
    emit("fig3_directory", text)

    # Shape assertions (loose: perturbed seeds, scaled system).
    overheads = []
    for workload, cells in grid.items():
        for model in ConsistencyModel:
            base = cells[f"{model.value} Base"].runtime_mean
            dvmc = cells[f"{model.value} DVMC"].runtime_mean
            overheads.append(dvmc / base)
    # DVMC never catastrophically slows the machine down.
    assert max(overheads) < 3.0
    # ...and is usually cheap (median well under 2x even at this scale).
    overheads.sort()
    assert overheads[len(overheads) // 2] < 1.8
