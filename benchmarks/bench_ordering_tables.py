"""Tables 1-4: the consistency models' ordering tables.

These are specifications rather than measurements; the benchmark prints
each table exactly as the paper lays it out and times the Allowable
Reordering checker's hot path (the per-perform ordering check).
"""

from repro.common.types import MembarMask, OpType
from repro.consistency import (
    PC_TABLE,
    PSO_TABLE,
    RMO_TABLE,
    SC_TABLE,
    TSO_TABLE,
    format_table,
)

from bench_common import emit


def test_tables_1_to_4(benchmark):
    def check_hot_path():
        # The AR checker's inner loop: one ordering query per op pair.
        total = 0
        for table in (SC_TABLE, TSO_TABLE, PSO_TABLE, RMO_TABLE):
            for first in table.op_types:
                for second in table.op_types:
                    total += table.ordered(
                        first, second, second_mask=MembarMask.ALL
                    )
        return total

    benchmark.pedantic(check_hot_path, rounds=50, iterations=10)

    sections = [
        ("Table 1. Processor Consistency", PC_TABLE),
        ("Table 2. Total Store Order", TSO_TABLE),
        ("Table 3. Partial Store Order", PSO_TABLE),
        ("Table 4. Relaxed Memory Order", RMO_TABLE),
        ("(SC: all ordered)", SC_TABLE),
    ]
    text = "\n\n".join(f"{title}\n{format_table(table)}" for title, table in sections)
    emit("tables_1_to_4", text)

    # Spot-check the paper's cells.
    assert TSO_TABLE.ordered(OpType.LOAD, OpType.STORE)
    assert not TSO_TABLE.ordered(OpType.STORE, OpType.LOAD)
    assert not PSO_TABLE.ordered(OpType.STORE, OpType.STORE)
    assert not RMO_TABLE.ordered(OpType.LOAD, OpType.LOAD)
