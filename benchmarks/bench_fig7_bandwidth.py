"""Figure 7: mean bandwidth on the highest-loaded link per workload and
mechanism (TSO, directory).

Paper shapes under test: the coherence checker's Inform-Epoch traffic
imposes a consistent ~20-30% overhead on the hottest link; load replay
adds no measurable traffic; SafetyNet's checkpoint traffic is small.
"""

from repro.config import DVMCConfig, ProtocolKind, SafetyNetConfig, SystemConfig
from repro.consistency.models import ConsistencyModel
from repro.system.experiments import measure

from bench_common import OPS, SEEDS, WORKLOADS, emit

_BASE = dict(model=ConsistencyModel.TSO, protocol=ProtocolKind.DIRECTORY)

CONFIGS = {
    "Base": SystemConfig.unprotected(**_BASE),
    "SN": SystemConfig(**_BASE, dvmc=DVMCConfig.disabled(), safetynet=SafetyNetConfig()),
    "SN+DVCC": SystemConfig(**_BASE, dvmc=DVMCConfig.coherence_only()),
    "SN+DVUO": SystemConfig(**_BASE, dvmc=DVMCConfig.uniprocessor_only()),
    "DVMC": SystemConfig.protected(**_BASE),
}


def test_figure7_max_link_bandwidth(benchmark):
    def experiment():
        grid = {}
        for workload in WORKLOADS:
            grid[workload] = {
                label: measure(config, workload, ops=OPS, seeds=SEEDS)
                for label, config in CONFIGS.items()
            }
        return grid

    grid = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        "Figure 7. Max-link bandwidth, bytes/cycle (TSO, directory)",
        f"{'workload':<10}" + "".join(f"{label:>10}" for label in CONFIGS),
    ]
    for workload, cells in grid.items():
        lines.append(
            f"{workload:<10}"
            + "".join(
                f"{cells[label].max_link_bytes_per_cycle:>10.4f}"
                for label in CONFIGS
            )
        )
    # DVCC overhead relative to SN (isolating the inform traffic):
    lines.append("")
    lines.append("DVCC inform-traffic overhead over SN (hottest link):")
    for workload, cells in grid.items():
        sn = cells["SN"].max_link_bytes_per_cycle
        dvcc = cells["SN+DVCC"].max_link_bytes_per_cycle
        if sn:
            lines.append(f"  {workload:<10} {(dvcc / sn - 1) * 100:+6.1f}%")
    emit("fig7_bandwidth", "\n".join(lines))

    for workload, cells in grid.items():
        sn = cells["SN"].max_link_bytes_per_cycle
        dvcc = cells["SN+DVCC"].max_link_bytes_per_cycle
        dvuo = cells["SN+DVUO"].max_link_bytes_per_cycle
        if sn == 0:
            continue
        # Coherence verification costs bandwidth but bounded (paper 20-30%).
        assert dvcc / sn < 2.0, workload
        assert dvcc >= sn * 0.95, workload  # informs only ever add traffic
        # Load replay adds no measurable interconnect traffic.
        assert dvuo / sn < 1.5, workload
