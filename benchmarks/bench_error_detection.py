"""Section 6.1: the error-detection experiment.

Random (type, time, location) faults injected into running benchmarks
on protected systems; the campaign reports per-kind detection counts,
the detecting checker, detection latency against the SafetyNet window,
and recovery-point validity — the data behind the paper's statement
that "DVMC detected all injected errors well within the SafetyNet
recovery time frame".
"""

from repro.config import ProtocolKind, SystemConfig
from repro.consistency.models import ConsistencyModel
from repro.faults.campaign import format_summary, run_campaign, summarize

from bench_common import emit


def test_error_detection_campaign(benchmark):
    def experiment():
        out = {}
        for protocol in ProtocolKind:
            config = SystemConfig.protected(
                model=ConsistencyModel.TSO, protocol=protocol, num_nodes=4
            )
            out[protocol.value] = run_campaign(
                config, workload="slash", ops=130, trials_per_kind=2, seed=11
            )
        return out

    campaigns = benchmark.pedantic(experiment, rounds=1, iterations=1)

    sections = []
    for protocol, results in campaigns.items():
        summary = summarize(results)
        sections.append(f"--- {protocol} (TSO, slash) ---")
        sections.append(format_summary(summary))
        # Paper property: every fault that hangs the machine is caught.
        for r in results:
            if r.landed and not r.completed:
                assert r.detected, (protocol, r.kind, r.description)
        landed = [r for r in results if r.landed]
        detected = [r for r in landed if r.detected]
        assert len(detected) >= len(landed) * 0.5, protocol
        window = SystemConfig().safetynet.recovery_window
        in_window = [
            r for r in detected if r.latency is not None and r.latency <= window
        ]
        for r in in_window:
            assert r.recoverable, (protocol, r.kind)
    emit("error_detection", "\n".join(sections))
