"""Shared helpers for the paper-figure benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation (Section 6), printing the series and writing it to
``benchmarks/results/<name>.txt``.  Absolute numbers come from the
scaled pure-Python simulator, so the claims under test are the paper's
*shapes* (who wins, rough factors, crossovers), recorded side by side
with the paper's statements in EXPERIMENTS.md.

Benchmarks run each experiment exactly once (``pedantic`` with one
round): the experiment functions are themselves statistical aggregates
over perturbed seeds, mirroring the paper's ten-run methodology.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.config import SystemConfig
from repro.parallel import run_points
from repro.system.experiments import (
    Measurement,
    aggregate_metrics,
    replica_specs,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Benchmark-suite scale knobs.  The paper's runs are minutes of
#: simulated time; ours are scaled so that the full benchmark suite
#: finishes in minutes of wall-clock time.
WORKLOADS = ("apache", "oltp", "jbb", "slash", "barnes")
OPS = 80
SEEDS = 2
NODES = 8


def emit(name: str, text: str) -> str:
    """Print a result table and persist it under benchmarks/results."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return text


def measure_grid(
    configs: Dict[str, SystemConfig],
    workloads=WORKLOADS,
    ops: int = OPS,
    seeds: int = SEEDS,
    jobs: Optional[int] = None,
    cache=None,
) -> Dict[str, Dict[str, Measurement]]:
    """workload -> config-label -> Measurement.

    The whole config × workload × seed grid is one flat batch of
    independent runs, fanned across cores by
    :func:`repro.parallel.run_points` (``jobs=None`` honours the
    ``REPRO_JOBS`` environment variable, ``cache=None`` the
    ``REPRO_CACHE`` one).  Replicas are re-grouped in submission
    order, so the grid is identical to the serial one.
    """
    points = [(w, label) for w in workloads for label in configs]
    specs = []
    for workload, label in points:
        specs.extend(replica_specs(configs[label], workload, ops, seeds))
    metrics = run_points(specs, jobs=jobs, cache=cache)
    out: Dict[str, Dict[str, Measurement]] = {}
    for i, (workload, label) in enumerate(points):
        chunk = metrics[i * seeds : (i + 1) * seeds]
        out.setdefault(workload, {})[label] = aggregate_metrics(
            configs[label], chunk
        )
    return out


def runtime_table(
    title: str,
    grid: Dict[str, Dict[str, Measurement]],
    baseline_label: str,
    columns: List[str],
) -> str:
    """Render runtimes normalised per-workload to ``baseline_label``
    (the paper normalises each workload to the unprotected SC system)."""
    width = max(12, max(len(c) for c in columns) + 9)
    lines = [title, "workload".ljust(10) + "".join(c.ljust(width) for c in columns)]
    for workload, cells in grid.items():
        base = cells[baseline_label].runtime_mean
        line = workload.ljust(10)
        for column in columns:
            m = cells[column]
            line += (
                f"{m.runtime_mean / base:6.3f} ±{m.runtime_std / base:5.3f}"
            ).ljust(width)
        lines.append(line)
    return "\n".join(lines)
