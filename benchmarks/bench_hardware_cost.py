"""Section 6.3: hardware cost of the DVMC structures.

Computes the storage the paper quotes (34-bit CET entries -> ~70 KB per
node at 128 KB L1 + 1 MB of L2-resident lines; 48-bit MET entries ->
~102 KB per memory controller) from the entry widths and configured
cache geometry, and measures observed structure occupancy in a live
run.
"""

from repro.config import SystemConfig
from repro.system.builder import build_system

from bench_common import emit

CET_ENTRY_BITS = 34
MET_ENTRY_BITS = 48
VC_ENTRY_BITS = 32 + 16  # value + bookkeeping


def test_hardware_cost_table(benchmark):
    config = SystemConfig.protected(num_nodes=4)

    def experiment():
        system = build_system(config, workload="oltp", ops=120)
        system.run(max_cycles=5_000_000)
        return system

    system = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines_per_cache = config.l1.size_bytes // config.block_size
    cet_bytes = lines_per_cache * CET_ENTRY_BITS / 8
    met_bytes = lines_per_cache * config.num_nodes * MET_ENTRY_BITS / 8
    vc_bytes = config.dvmc.verification_cache_entries * VC_ENTRY_BITS / 8

    checker = system.dvmc.coherence_checker
    occupancies = [checker.cet_occupancy(n) for n in range(config.num_nodes)]
    vc_occ = [uo.vc_occupancy for uo in system.dvmc.uo_checkers]

    lines = [
        "Hardware cost (Section 6.3), scaled configuration",
        f"CET entry: {CET_ENTRY_BITS} bits; per-node CET: {cet_bytes:.0f} B "
        f"({lines_per_cache} lines)",
        f"MET entry: {MET_ENTRY_BITS} bits; per-controller MET (worst case): "
        f"{met_bytes:.0f} B",
        f"VC: {config.dvmc.verification_cache_entries} entries "
        f"({vc_bytes:.0f} B)",
        f"AR checker: max counters + 4 membar-bit counters + "
        f"{config.processor.lsq_size}-entry FIFO",
        f"observed peak CET occupancy: {max(occupancies)} entries",
        f"observed VC occupancy at end: {max(vc_occ)} entries",
        "",
        "Paper (full-size config): CET ~70 KB/node, MET ~102 KB/controller,",
        "VC 32-256 B; the AR checker is the smallest structure.",
    ]
    emit("hardware_cost", "\n".join(lines))
    assert max(occupancies) <= lines_per_cache
    assert max(vc_occ) <= config.dvmc.verification_cache_entries
