"""Figure 4: runtimes on the SNOOPING system, normalised to
unprotected SC — Base vs. DVMC for all four consistency models.
"""

from repro.config import ProtocolKind, SystemConfig
from repro.consistency.models import ConsistencyModel

from bench_common import emit, measure_grid, runtime_table


def _configs():
    out = {}
    for model in ConsistencyModel:
        out[f"{model.value} Base"] = SystemConfig.unprotected(
            model=model, protocol=ProtocolKind.SNOOPING
        )
        out[f"{model.value} DVMC"] = SystemConfig.protected(
            model=model, protocol=ProtocolKind.SNOOPING
        )
    return out


def test_figure4_snooping_runtimes(benchmark):
    grid = benchmark.pedantic(
        lambda: measure_grid(_configs()), rounds=1, iterations=1
    )
    columns = [
        f"{m.value} {kind}" for m in ConsistencyModel for kind in ("Base", "DVMC")
    ]
    text = runtime_table(
        "Figure 4. Runtime, snooping system (normalised to SC Base)",
        grid,
        "SC Base",
        columns,
    )
    emit("fig4_snooping", text)

    for workload, cells in grid.items():
        for model in ConsistencyModel:
            base = cells[f"{model.value} Base"].runtime_mean
            dvmc = cells[f"{model.value} DVMC"].runtime_mean
            assert dvmc / base < 3.0, (workload, model)
