"""Render a fresh-vs-committed ``BENCH_perf.json`` diff as markdown.

CI appends the output to ``$GITHUB_STEP_SUMMARY`` so every build shows
the measured perf trajectory — committed baseline, fresh candidate, and
the relative delta per numeric field — without digging into artifacts.

Usage::

    python benchmarks/bench_summary.py \
        --baseline BENCH_perf.json \
        --candidate /tmp/BENCH_perf.candidate.json
"""

from __future__ import annotations

import argparse
import json
import sys

#: Fields where bigger is better; everything else numeric is
#: lower-is-better (wall clocks, allocation counts) or neutral.
HIGHER_IS_BETTER = {
    "events_per_sec",
    "kernel_events_per_sec",
    "flat_kernel_events_per_sec",
    "legacy_kernel_events_per_sec",
    "eager_events_per_sec",
    "poll_events_per_sec",
    "poll_equivalent_events_per_sec",
    "spin_events_elided",
    "hops_events_per_sec",
    "express_equivalent_events_per_sec",
    "hop_events_elided",
    "msg_pool_reuse_pct",
    "speedup",
    "cache_hits",
}


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:,.1f}"
    if isinstance(value, int) and not isinstance(value, bool):
        return f"{value:,}"
    return str(value)


def _delta(base, cand, key: str) -> str:
    if (
        not isinstance(base, (int, float))
        or not isinstance(cand, (int, float))
        or isinstance(base, bool)
        or isinstance(cand, bool)
        or not base
    ):
        return ""
    pct = (cand / base - 1.0) * 100.0
    if abs(pct) < 0.05:
        return "±0.0%"
    arrow = ""
    if key in HIGHER_IS_BETTER:
        arrow = " ⬆" if pct > 0 else " ⬇"
    return f"{pct:+.1f}%{arrow}"


def render(baseline: dict, candidate: dict) -> str:
    lines = [
        "## bench_perf: fresh candidate vs committed baseline",
        "",
        "| field | committed | fresh | delta |",
        "|---|---:|---:|---:|",
    ]
    for key in sorted(set(baseline) | set(candidate)):
        base = baseline.get(key)
        cand = candidate.get(key)
        lines.append(
            f"| `{key}` | {_fmt(base)} | {_fmt(cand)} "
            f"| {_delta(base, cand, key)} |"
        )
    lines.append("")
    express = candidate.get("express_equivalent_events_per_sec")
    hops = candidate.get("hops_events_per_sec")
    if (
        isinstance(express, (int, float))
        and isinstance(hops, (int, float))
        and hops
    ):
        # Both rates use the hops pass's event count, so the ratio is a
        # pure wall-clock comparison of the two message planes.
        lines.append(
            f"**Express vs hop-by-hop**: {express / hops:.3f}× "
            f"({_fmt(express)} vs {_fmt(hops)} ev/s on the per-hop "
            "event basis)"
        )
        lines.append("")
    return "\n".join(lines)


def render_fuzz(report: dict) -> str:
    """Markdown section for a differential fuzz campaign stats file
    (the ``--stats-out`` JSON of ``python -m repro.cli fuzz``)."""
    summary = report.get("summary", {})
    lines = [
        "## differential fuzz: DVMC online vs offline oracle",
        "",
        "| outcome | cases |",
        "|---|---:|",
    ]
    for key in (
        "cases",
        "agree_clean",
        "agree_violation",
        "online_only",
        "missed_violation",
        "undecided",
    ):
        lines.append(f"| `{key}` | {_fmt(summary.get(key, 0))} |")
    lines.append("")
    mismatches = report.get("mismatches", [])
    new = [m for m in mismatches if not m.get("known")]
    lines.append(
        f"**Mismatches**: {len(mismatches)} total, {len(new)} new "
        f"(corpus holds {_fmt(report.get('corpus_size', 0))} known "
        f"reproducers); campaign took "
        f"{report.get('elapsed_seconds', 0)} s"
    )
    lines.append("")
    for entry in mismatches:
        tag = "known" if entry.get("known") else "**NEW**"
        lines.append(
            f"- {tag} `{entry.get('outcome')}`: "
            f"`{json.dumps(entry.get('case', {}))}`"
        )
    if mismatches:
        lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline")
    parser.add_argument("--candidate")
    parser.add_argument(
        "--fuzz",
        metavar="FILE",
        help="also (or only) render a fuzz campaign stats JSON",
    )
    args = parser.parse_args(argv)
    if bool(args.baseline) != bool(args.candidate):
        parser.error("--baseline and --candidate go together")
    if not args.baseline and not args.fuzz:
        parser.error("nothing to render: pass --baseline/--candidate and/or --fuzz")
    sections = []
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        with open(args.candidate) as fh:
            candidate = json.load(fh)
        sections.append(render(baseline, candidate))
    if args.fuzz:
        with open(args.fuzz) as fh:
            sections.append(render_fuzz(json.load(fh)))
    print("\n".join(sections))
    return 0


if __name__ == "__main__":
    sys.exit(main())
