"""Render a fresh-vs-committed ``BENCH_perf.json`` diff as markdown.

CI appends the output to ``$GITHUB_STEP_SUMMARY`` so every build shows
the measured perf trajectory — committed baseline, fresh candidate, and
the relative delta per numeric field — without digging into artifacts.

Usage::

    python benchmarks/bench_summary.py \
        --baseline BENCH_perf.json \
        --candidate /tmp/BENCH_perf.candidate.json
"""

from __future__ import annotations

import argparse
import json
import sys

#: Fields where bigger is better; everything else numeric is
#: lower-is-better (wall clocks, allocation counts) or neutral.
HIGHER_IS_BETTER = {
    "events_per_sec",
    "kernel_events_per_sec",
    "flat_kernel_events_per_sec",
    "legacy_kernel_events_per_sec",
    "eager_events_per_sec",
    "poll_events_per_sec",
    "poll_equivalent_events_per_sec",
    "spin_events_elided",
    "hops_events_per_sec",
    "express_equivalent_events_per_sec",
    "hop_events_elided",
    "msg_pool_reuse_pct",
    "speedup",
    "cache_hits",
}


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:,.1f}"
    if isinstance(value, int) and not isinstance(value, bool):
        return f"{value:,}"
    return str(value)


def _delta(base, cand, key: str) -> str:
    if (
        not isinstance(base, (int, float))
        or not isinstance(cand, (int, float))
        or isinstance(base, bool)
        or isinstance(cand, bool)
        or not base
    ):
        return ""
    pct = (cand / base - 1.0) * 100.0
    if abs(pct) < 0.05:
        return "±0.0%"
    arrow = ""
    if key in HIGHER_IS_BETTER:
        arrow = " ⬆" if pct > 0 else " ⬇"
    return f"{pct:+.1f}%{arrow}"


def render(baseline: dict, candidate: dict) -> str:
    lines = [
        "## bench_perf: fresh candidate vs committed baseline",
        "",
        "| field | committed | fresh | delta |",
        "|---|---:|---:|---:|",
    ]
    for key in sorted(set(baseline) | set(candidate)):
        base = baseline.get(key)
        cand = candidate.get(key)
        lines.append(
            f"| `{key}` | {_fmt(base)} | {_fmt(cand)} "
            f"| {_delta(base, cand, key)} |"
        )
    lines.append("")
    express = candidate.get("express_equivalent_events_per_sec")
    hops = candidate.get("hops_events_per_sec")
    if (
        isinstance(express, (int, float))
        and isinstance(hops, (int, float))
        and hops
    ):
        # Both rates use the hops pass's event count, so the ratio is a
        # pure wall-clock comparison of the two message planes.
        lines.append(
            f"**Express vs hop-by-hop**: {express / hops:.3f}× "
            f"({_fmt(express)} vs {_fmt(hops)} ev/s on the per-hop "
            "event basis)"
        )
        lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--candidate", required=True)
    args = parser.parse_args(argv)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.candidate) as fh:
        candidate = json.load(fh)
    print(render(baseline, candidate))
    return 0


if __name__ == "__main__":
    sys.exit(main())
