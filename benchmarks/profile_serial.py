"""Profile the serial benchmark pass and emit a top-N cumulative report.

Runs the same fixed workload mix as ``bench_perf.py`` under
``cProfile`` (one warm-up pass first, so import and code-object warmup
don't dominate) and writes the top functions by *cumulative* time to a
text file.  CI uploads the report as a build artifact so a perf
regression caught by ``check_perf_regression.py`` comes with the
profile that explains it.

Usage::

    PYTHONPATH=src python benchmarks/profile_serial.py --out /tmp/profile.txt
    PYTHONPATH=src python benchmarks/profile_serial.py --top 40 --ops 100
"""

from __future__ import annotations

import argparse
import cProfile
import io
import os
import pstats
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from bench_perf import workload_mix  # noqa: E402
from repro.parallel import run_points  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=60, help="ops per core")
    parser.add_argument("--seeds", type=int, default=2, help="seeds per point")
    parser.add_argument(
        "--top", type=int, default=25, help="functions in the report"
    )
    parser.add_argument(
        "--out", default="-", help="report path ('-' for stdout)"
    )
    args = parser.parse_args(argv)

    specs = workload_mix(args.ops, args.seeds)
    run_points(specs, jobs=1)  # warm-up: exclude one-time import costs

    profiler = cProfile.Profile()
    profiler.enable()
    run_points(specs, jobs=1)
    profiler.disable()

    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(args.top)
    report = (
        f"serial pass: {len(specs)} runs "
        f"(ops={args.ops}, seeds={args.seeds}), "
        f"top {args.top} by cumulative time\n\n" + buf.getvalue()
    )
    if args.out == "-":
        sys.stdout.write(report)
    else:
        with open(args.out, "w") as fh:
            fh.write(report)
        print(f"[profile written to {os.path.abspath(args.out)}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
