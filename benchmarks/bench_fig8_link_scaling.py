"""Figure 8: DVMC overhead vs. link bandwidth (1-3 GB/s), TSO, both
protocols, averaged over workloads.

Paper shape under test: no clear correlation between link bandwidth and
DVMC's performance overhead — checker traffic rides idle gaps between
bursts.
"""

from repro.config import ProtocolKind, SystemConfig
from repro.consistency.models import ConsistencyModel
from repro.system.experiments import measure

from bench_common import OPS, emit

BANDWIDTHS = (1.0, 1.5, 2.0, 2.5, 3.0)
WORKLOAD_SUBSET = ("apache", "oltp", "jbb")


def test_figure8_link_bandwidth_sweep(benchmark):
    def experiment():
        rows = {}
        for protocol in ProtocolKind:
            for gbps in BANDWIDTHS:
                base_cfg = SystemConfig.unprotected(
                    model=ConsistencyModel.TSO, protocol=protocol
                ).with_link_bandwidth(gbps)
                dvmc_cfg = SystemConfig.protected(
                    model=ConsistencyModel.TSO, protocol=protocol
                ).with_link_bandwidth(gbps)
                ratios = []
                for workload in WORKLOAD_SUBSET:
                    base = measure(base_cfg, workload, ops=OPS, seeds=1)
                    dvmc = measure(dvmc_cfg, workload, ops=OPS, seeds=1)
                    ratios.append(dvmc.runtime_mean / base.runtime_mean)
                rows[(protocol.value, gbps)] = sum(ratios) / len(ratios)
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        "Figure 8. DVMC runtime overhead vs link bandwidth "
        "(TSO, mean over workloads, normalised to unprotected)",
        f"{'protocol':<10}" + "".join(f"{g:>8.1f}" for g in BANDWIDTHS) + "  GB/s",
    ]
    for protocol in ProtocolKind:
        lines.append(
            f"{protocol.value:<10}"
            + "".join(f"{rows[(protocol.value, g)]:>8.3f}" for g in BANDWIDTHS)
        )
    emit("fig8_link_scaling", "\n".join(lines))

    # Shape: overhead does not systematically explode as bandwidth
    # shrinks within the studied range (checker traffic fits idle gaps).
    for protocol in ProtocolKind:
        values = [rows[(protocol.value, g)] for g in BANDWIDTHS]
        assert max(values) / min(values) < 1.8, (protocol, values)
