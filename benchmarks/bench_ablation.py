"""Ablations over DVMC design parameters (DESIGN.md Section 5).

Not a paper figure — these quantify the design choices the paper makes
implicitly: the Verification Cache size (backpressure when too small),
the verification width (replay throughput), and the membar-injection
interval (detection-latency/overhead trade-off).
"""

from dataclasses import replace

from repro.config import ProtocolKind, SystemConfig
from repro.consistency.models import ConsistencyModel
from repro.system.experiments import measure

from bench_common import OPS, emit


def _with_dvmc(**kwargs):
    base = SystemConfig.protected(
        model=ConsistencyModel.TSO, protocol=ProtocolKind.DIRECTORY
    )
    return base.with_dvmc(replace(base.dvmc, **kwargs))


def test_vc_size_ablation(benchmark):
    def experiment():
        rows = {}
        for entries in (2, 4, 16, 64):
            m = measure(
                _with_dvmc(verification_cache_entries=entries),
                "jbb",  # store-heavy: stresses VC backpressure
                ops=OPS,
                seeds=1,
            )
            rows[entries] = m.runtime_mean
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    lines = ["Ablation: Verification Cache size (TSO directory, jbb)"]
    for entries, cycles in rows.items():
        lines.append(f"  VC={entries:>3} entries: {cycles:>10.0f} cycles")
    emit("ablation_vc_size", "\n".join(lines))
    # A pathologically small VC must not be faster than a generous one.
    assert rows[2] >= rows[64] * 0.9


def test_verification_width_ablation(benchmark):
    def experiment():
        rows = {}
        for width in (1, 2, 4):
            m = measure(
                _with_dvmc(verification_width=width),
                "apache",
                ops=OPS,
                seeds=1,
            )
            rows[width] = m.runtime_mean
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    lines = ["Ablation: verification stage width (TSO directory, apache)"]
    for width, cycles in rows.items():
        lines.append(f"  width={width}: {cycles:>10.0f} cycles")
    emit("ablation_verify_width", "\n".join(lines))
    assert rows[1] >= rows[4] * 0.9


def test_membar_injection_interval_ablation(benchmark):
    """Paper: injections are infrequent and have negligible performance
    impact — overhead should be flat across intervals."""

    def experiment():
        rows = {}
        for interval in (1_000, 5_000, 50_000):
            m = measure(
                _with_dvmc(membar_injection_interval=interval),
                "oltp",
                ops=OPS,
                seeds=1,
            )
            rows[interval] = m.runtime_mean
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    lines = ["Ablation: membar-injection interval (TSO directory, oltp)"]
    for interval, cycles in rows.items():
        lines.append(f"  every {interval:>6} cycles: {cycles:>10.0f} cycles")
    emit("ablation_membar_interval", "\n".join(lines))
    values = list(rows.values())
    assert max(values) / min(values) < 1.3  # negligible impact
