"""Figure 5: component breakdown on the TSO directory system:
Base / SN / SN+DVCC / SN+DVUO / full DVMC (DVTSO).

Paper shapes under test:
* Uniprocessor Ordering verification dominates the overhead;
* full DVTSO is no slower than SN+DVUO (the checkers compose freely);
* SafetyNet alone and coherence verification alone are cheap.
"""

from repro.config import DVMCConfig, ProtocolKind, SafetyNetConfig, SystemConfig
from repro.consistency.models import ConsistencyModel

from bench_common import emit, measure_grid, runtime_table

_BASE = dict(model=ConsistencyModel.TSO, protocol=ProtocolKind.DIRECTORY)

CONFIGS = {
    "Base": SystemConfig.unprotected(**_BASE),
    "SN": SystemConfig(
        **_BASE, dvmc=DVMCConfig.disabled(), safetynet=SafetyNetConfig()
    ),
    "SN+DVCC": SystemConfig(**_BASE, dvmc=DVMCConfig.coherence_only()),
    "SN+DVUO": SystemConfig(**_BASE, dvmc=DVMCConfig.uniprocessor_only()),
    "DVTSO": SystemConfig.protected(**_BASE),
}


def test_figure5_component_breakdown(benchmark):
    grid = benchmark.pedantic(
        lambda: measure_grid(CONFIGS), rounds=1, iterations=1
    )
    columns = list(CONFIGS)
    text = runtime_table(
        "Figure 5. Component breakdown, TSO directory (normalised to Base)",
        grid,
        "Base",
        columns,
    )
    emit("fig5_components", text)

    # Shape: averaged over workloads, UO verification dominates and
    # the cheap components stay cheap.
    def mean_ratio(label):
        ratios = [
            cells[label].runtime_mean / cells["Base"].runtime_mean
            for cells in grid.values()
        ]
        return sum(ratios) / len(ratios)

    sn, dvcc, dvuo, full = (
        mean_ratio("SN"),
        mean_ratio("SN+DVCC"),
        mean_ratio("SN+DVUO"),
        mean_ratio("DVTSO"),
    )
    assert sn <= dvuo + 0.05, "SafetyNet alone should be cheaper than +UO"
    assert dvcc <= dvuo + 0.05, "coherence checking is off the critical path"
    assert full <= dvuo * 1.25 + 0.05, "DVTSO ~ SN+DVUO (UO dominates)"
