"""Performance benchmark: serial vs parallel wall clock and events/sec.

Runs a fixed workload mix — a 4-point (config × workload) grid with
perturbed seeds per point, the same shape as the paper-figure sweeps —
once with ``jobs=1`` and once with ``jobs=N``, checks the two metric
sets are identical (the orchestrator's ordering guarantee), and writes
a machine-readable ``BENCH_perf.json`` at the repo root so the perf
trajectory is tracked across PRs::

    {"serial_s": ..., "parallel_s": ..., "jobs": ..., "events_per_sec": ...}

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py --jobs 4
    PYTHONPATH=src python benchmarks/bench_perf.py --jobs 2 --ops 20 --seeds 1
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.config import SystemConfig  # noqa: E402
from repro.parallel import RunSpec, resolve_jobs, run_points  # noqa: E402

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_perf.json"
)


def workload_mix(ops: int, seeds: int) -> List[RunSpec]:
    """The fixed 4-point grid: {Base, DVMC} × {oltp, jbb}."""
    points = [
        (SystemConfig.unprotected(), "oltp"),
        (SystemConfig.protected(), "oltp"),
        (SystemConfig.unprotected(), "jbb"),
        (SystemConfig.protected(), "jbb"),
    ]
    return [
        RunSpec(config.with_seed(seed), workload, ops)
        for config, workload in points
        for seed in range(1, seeds + 1)
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=0, help="parallel worker count (0 = auto)"
    )
    parser.add_argument("--ops", type=int, default=60, help="ops per core")
    parser.add_argument("--seeds", type=int, default=2, help="seeds per point")
    parser.add_argument("--out", default=DEFAULT_OUT, help="JSON output path")
    args = parser.parse_args(argv)

    jobs = resolve_jobs(args.jobs)
    specs = workload_mix(args.ops, args.seeds)
    print(
        f"bench_perf: {len(specs)} runs "
        f"(4 points x {args.seeds} seeds, ops={args.ops}), jobs={jobs}"
    )

    t0 = time.perf_counter()
    serial = run_points(specs, jobs=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_points(specs, jobs=jobs)
    parallel_s = time.perf_counter() - t0

    identical = serial == parallel
    if not identical:
        for i, (a, b) in enumerate(zip(serial, parallel)):
            if a != b:
                print(f"MISMATCH at spec #{i}:\n  serial:   {a}\n  parallel: {b}")

    events = sum(m.events_processed for m in serial)
    events_per_sec = events / serial_s if serial_s else 0.0
    speedup = serial_s / parallel_s if parallel_s else 0.0

    payload = {
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "jobs": jobs,
        "events_per_sec": round(events_per_sec, 1),
        "speedup": round(speedup, 3),
        "events": events,
        "runs": len(specs),
        "ops": args.ops,
        "seeds": args.seeds,
        "identical": identical,
        "cpu_count": os.cpu_count(),
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    print(
        f"serial   {serial_s:8.2f} s   ({events_per_sec:,.0f} events/sec)\n"
        f"parallel {parallel_s:8.2f} s   (jobs={jobs}, speedup {speedup:.2f}x)\n"
        f"metrics identical: {identical}\n"
        f"[written to {os.path.abspath(args.out)}]"
    )
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())
