"""Performance benchmark: kernel, serial, parallel and cached timings.

Runs a fixed workload mix — a 4-point (config × workload) grid with
perturbed seeds per point, the same shape as the paper-figure sweeps —
through four measurement passes:

* **kernel-only**: a synthetic event storm through the calendar-queue
  ``Scheduler`` with no simulation payload, isolating raw event-kernel
  throughput (``kernel_events_per_sec``).  The same storm also runs
  through the object/tuple ``LegacyScheduler``
  (``legacy_kernel_events_per_sec``), so the flat kernel's win — and
  any regression of it — is visible in the JSON trajectory
  (``flat_kernel_events_per_sec`` is the gated alias of the flat
  number);
* **serial** (``jobs=1``): the reference pass — ``events_per_sec`` and
  the regression baseline come from here;
* **parallel** (``jobs=N``): same specs through the persistent worker
  pool; must be bit-identical to serial;
* **cached**: same specs again against a freshly primed result cache;
  every point must hit (``cache_hits == runs``) and decode
  bit-identically;
* **eager** (``REPRO_EAGER_CHECK=1``): same specs with the streaming
  verification plane disabled (per-event checker calls); must be
  bit-identical to the batch-mode serial pass.
  ``eager_events_per_sec`` quantifies the streaming plane's win (see
  EXPERIMENTS.md, "Verification overhead");
* **observed** (``REPRO_OBS=1``): same specs with the observability
  plane on; the deterministic payload must stay bit-identical
  (``identical`` covers all five passes) and the wall-clock delta is
  recorded as ``obs_overhead_pct`` (gated in
  ``check_perf_regression.py``);
* **poll** (``REPRO_POLL=1``): same specs with the wake-on-change
  kernel degraded to the classic fixed-period retry polls.  The
  architectural payload must match the wakeup-mode serial pass with
  only ``events_processed`` allowed to differ
  (``wakeup_poll_identical``); the event delta is the spin traffic the
  wakeup plane elides (``spin_events_elided``).  Because wake mode
  removes events rather than speeding them up, the gated throughput
  basis is ``poll_equivalent_events_per_sec`` — the poll pass's event
  count over the wakeup pass's wall clock, i.e. how fast the wakeup
  kernel gets through the *same simulated work* — compared against the
  poll pass's own ``poll_events_per_sec``;
* **spans** (``REPRO_OBS_SPANS=1``): same specs with the transaction
  flight recorder on in its default sampled always-on configuration
  (op stride 64, infra spans off); the deterministic payload must stay
  bit-identical (``spans_identical``) and the wall-clock delta is
  recorded as ``span_overhead_pct`` (gated at ≤3% in
  ``check_perf_regression.py``; forensic reruns use stride 1 and pay
  more, which is fine — they only happen on a violation);
* **hops** (``REPRO_HOPS=1``): same specs with the express message
  plane degraded to hop-by-hop relay events.  The architectural
  payload must match the express-mode serial pass with only
  ``events_processed`` allowed to differ (``express_hops_identical``);
  the event delta is the relay traffic the express plane elides
  (``hop_events_elided``).  As with the wakeup plane, express removes
  events rather than speeding them up, so the gated basis is
  ``express_equivalent_events_per_sec`` — the hops pass's event count
  over the express pass's wall clock — compared against the hops
  pass's own ``hops_events_per_sec``.

Timing methodology: one untimed warmup sweep runs first, then the
serial, eager and observed passes run *interleaved* — each of four
reps times one sweep of each back to back, so a slow background window
on a shared host penalises all three alike — and each pass reports its
best rep (minimum wall clock, the standard estimator under additive
background noise; the runs are deterministic so the metrics are the
same every rep).  The gated overhead percentages
(``obs_overhead_pct``, ``span_overhead_pct``) are *not* ratios of
those minima — independent minima can come from different host
windows, crediting one mode with a fast window the other never
sampled.  They are the median over reps of the paired per-rep ratio
(mode sweep over the serial sweep of the same rep), which cancels
within-rep host speed and discards between-sweep shifts; the sweep
order inside each rep is reshuffled deterministically per rep so a
host-speed oscillation with a period near the rep length cannot hand
the same phase to the same mode every rep.  The kernel storms report
the best of two.  Parallel
and cached passes stay single-shot: their numbers gate correctness
(bit-identity, cache hits), not throughput.

A ``tracemalloc`` pass over one representative run reports allocation
deltas (``alloc_blocks``/``alloc_kib``) so slot/regression wins on hot
record classes are visible in the JSON trajectory.

Everything lands in a machine-readable ``BENCH_perf.json`` at the repo
root so the perf trajectory is tracked across PRs.  The parallel
speedup claim is only made when the host actually has more than one
CPU (on a 1-core box ``speedup`` is null and ``speedup_note`` says
why).

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py
    PYTHONPATH=src python benchmarks/bench_perf.py --jobs 2 --ops 20 --seeds 1
    REPRO_JOBS=4 PYTHONPATH=src python benchmarks/bench_perf.py
"""

from __future__ import annotations

import argparse
import dataclasses
import gc
import json
import os
import random
import shutil
import sys
import tempfile
import time
import tracemalloc
from typing import List

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.common.events import LegacyScheduler, Scheduler  # noqa: E402
from repro.config import SystemConfig  # noqa: E402
from repro.interconnect import message as message_pool  # noqa: E402
from repro.parallel import (  # noqa: E402
    ResultCache,
    RunSpec,
    execute_run_spec,
    resolve_jobs,
    run_points,
)

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_perf.json"
)


def workload_mix(ops: int, seeds: int) -> List[RunSpec]:
    """The fixed 4-point grid: {Base, DVMC} × {oltp, jbb}."""
    points = [
        (SystemConfig.unprotected(), "oltp"),
        (SystemConfig.protected(), "oltp"),
        (SystemConfig.unprotected(), "jbb"),
        (SystemConfig.protected(), "jbb"),
    ]
    return [
        RunSpec(config.with_seed(seed), workload, ops)
        for config, workload in points
        for seed in range(1, seeds + 1)
    ]


def bench_kernel(events: int = 200_000, scheduler_factory=Scheduler) -> float:
    """Raw calendar-queue throughput: schedule/execute ``events`` events.

    The callback reschedules itself at small pseudo-random strides (the
    same-cycle / near-future pattern the simulator produces) plus an
    occasional far-future hop that exercises the overflow heap, so the
    number measures the kernel the simulator actually runs on.  The
    chains reschedule through :meth:`Scheduler.post` — the no-handle
    fast path every hot component uses — so the ceiling tracks the
    production scheduling path, not the handle-returning API.

    ``scheduler_factory`` lets the same storm run on either kernel:
    the flat :class:`Scheduler` (default) or the object/tuple
    :class:`LegacyScheduler` reference.
    """
    sched = scheduler_factory()
    state = {"left": events, "x": 12345}

    def tick() -> None:
        if state["left"] <= 0:
            return
        state["left"] -= 1
        x = (state["x"] * 1103515245 + 12345) & 0x7FFFFFFF
        state["x"] = x
        delay = x % 7  # mostly same-cycle / near-future
        if x % 997 == 0:
            delay = 5000  # rare overflow-heap excursion
        sched.post(delay, tick)

    for _ in range(8):  # a few concurrent event chains
        sched.post(0, tick)
    t0 = time.perf_counter()
    sched.run()
    elapsed = time.perf_counter() - t0
    return sched.events_processed / elapsed if elapsed else 0.0


def write_obs_artifacts(out_dir: str, spec: RunSpec, metrics) -> None:
    """Export one observed run's snapshot + provenance manifest."""
    from repro.obs.export import to_prometheus
    from repro.obs.manifest import run_manifest, write_manifest

    os.makedirs(out_dir, exist_ok=True)
    manifest = run_manifest(
        spec.config,
        workload=spec.workload,
        ops=spec.ops,
        seed=spec.config.seed,
    )
    write_manifest(os.path.join(out_dir, "manifest.json"), manifest)
    snapshot = metrics.obs or {}
    with open(os.path.join(out_dir, "metrics.prom"), "w") as fh:
        fh.write(to_prometheus(snapshot))
    with open(os.path.join(out_dir, "snapshot.json"), "w") as fh:
        json.dump(snapshot, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"obs artifacts written to {os.path.abspath(out_dir)}/")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel worker count (0 = auto; default: REPRO_JOBS, then auto)",
    )
    parser.add_argument("--ops", type=int, default=60, help="ops per core")
    parser.add_argument("--seeds", type=int, default=2, help="seeds per point")
    parser.add_argument("--out", default=DEFAULT_OUT, help="JSON output path")
    parser.add_argument(
        "--obs-artifacts",
        default=None,
        metavar="DIR",
        help="write the observed pass's manifest.json / metrics.prom / "
        "snapshot.json under DIR (CI uploads them as artifacts)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=4,
        help="interleaved timing reps per pass; each pass reports its "
        "best rep, so more reps tightens the minimum on noisy hosts",
    )
    args = parser.parse_args(argv)

    jobs = resolve_jobs(args.jobs, default=0)
    cpu_count = os.cpu_count() or 1
    specs = workload_mix(args.ops, args.seeds)
    print(
        f"bench_perf: {len(specs)} runs "
        f"(4 points x {args.seeds} seeds, ops={args.ops}), "
        f"jobs={jobs}, cpus={cpu_count}"
    )

    kernel_events_per_sec = max(bench_kernel() for _ in range(2))
    legacy_kernel_events_per_sec = max(
        bench_kernel(scheduler_factory=LegacyScheduler) for _ in range(2)
    )

    # One untimed warmup pass: imports, code objects, memo tables and
    # branch caches all settle before any timed pass, so the serial and
    # observed passes (whose ratio is the gated obs_overhead_pct) start
    # from the same warmed state.
    run_points(specs, jobs=1)

    def timed_sweep(env=None):
        """One timed serial sweep of ``specs`` under env overrides."""
        saved = {}
        if env:
            for key, value in env.items():
                saved[key] = os.environ.get(key)
                os.environ[key] = value
        try:
            gc.collect()
            t0 = time.perf_counter()
            metrics = run_points(specs, jobs=1)
            return metrics, time.perf_counter() - t0
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value

    # Interleaved timing: each rep runs one serial, one eager
    # (REPRO_EAGER_CHECK=1: per-event checker calls) and one observed
    # (REPRO_OBS=1: observability plane on) sweep back to back, so a
    # slow background window on a shared host penalises all three
    # alike; each pass reports its best rep (minimum wall clock).  The
    # runs are deterministic, so the metrics are the same every rep —
    # only the wall clock varies.  Per-rep times are kept so the gated
    # overhead ratios can be computed from *paired* reps (see below)
    # instead of from minima that may come from different host windows.
    # The sweep order is reshuffled every rep (deterministically, from
    # the rep index) so no mode sits at a fixed offset inside the rep:
    # a host whose speed oscillates with a period near the rep length
    # would otherwise hand the same phase of that oscillation to the
    # same mode every rep, biasing even paired ratios.
    modes = [
        ("serial", None),
        ("eager", {"REPRO_EAGER_CHECK": "1"}),
        ("obs", {"REPRO_OBS": "1"}),
        ("spans", {"REPRO_OBS_SPANS": "1"}),
        ("poll", {"REPRO_POLL": "1"}),
        ("hops", {"REPRO_HOPS": "1"}),
    ]
    results: dict = {}
    rep_times: dict = {name: [] for name, _ in modes}
    for rep in range(args.reps):
        order = list(modes)
        random.Random(rep).shuffle(order)
        for name, env in order:
            results[name], s = timed_sweep(env)
            rep_times[name].append(s)
    serial, eager, observed = results["serial"], results["eager"], results["obs"]
    spans, poll, hops = results["spans"], results["poll"], results["hops"]
    serial_reps = rep_times["serial"]
    serial_s, eager_s = min(serial_reps), min(rep_times["eager"])
    obs_s, spans_s = min(rep_times["obs"]), min(rep_times["spans"])
    poll_s, hops_s = min(rep_times["poll"]), min(rep_times["hops"])

    def overhead_pct(mode_reps: List[float]) -> float:
        """Median of per-rep overhead ratios vs the serial sweep.

        The two sweeps of rep *i* ran within the same short window, so
        their ratio cancels whatever the host was doing then; the
        median over reps discards the reps where the host shifted
        speed between the two sweeps, and the per-rep order shuffle
        keeps any periodic host-speed pattern from biasing the whole
        series one way.  A ratio of independent minima has no such
        pairing — on a noisy host the serial minimum can come from a
        lucky fast window no other mode sampled, inflating every gated
        percentage with pure scheduling luck.
        """
        ratios = sorted(
            m / s for m, s in zip(mode_reps, serial_reps) if s > 0.0
        )
        if not ratios:
            return 0.0
        mid = len(ratios) // 2
        if len(ratios) % 2:
            median = ratios[mid]
        else:
            median = (ratios[mid - 1] + ratios[mid]) / 2.0
        return (median - 1.0) * 100.0

    t0 = time.perf_counter()
    parallel = run_points(specs, jobs=jobs)
    parallel_s = time.perf_counter() - t0

    # Cached pass: prime a throwaway cache from the serial results,
    # then re-run the whole mix against it — every point must hit.
    cache_dir = tempfile.mkdtemp(prefix="bench_perf_cache_")
    try:
        cache = ResultCache(cache_dir)
        for spec, metrics in zip(specs, serial):
            cache.put(spec, metrics)
        t0 = time.perf_counter()
        cached = run_points(specs, jobs=1, cache=cache)
        cached_s = time.perf_counter() - t0
        cache_hits = cache.hits
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    # Eager must be bit-identical to batch mode (the throughput delta is
    # the streaming plane's win); observed must leave the deterministic
    # payload untouched (RunMetrics equality ignores the obs field).
    # The paired-rep delta of observed vs serial is the observability
    # plane's overhead, gated in check_perf_regression.py.
    eager_events_per_sec = (
        sum(m.events_processed for m in eager) / eager_s if eager_s else 0.0
    )
    obs_overhead_pct = overhead_pct(rep_times["obs"])

    # The flight recorder must leave the deterministic payload untouched
    # (RunMetrics equality — recorder state never reaches the counters);
    # its paired-rep delta vs serial is the always-on recorder cost at
    # the default sampling stride, gated at ≤3% in
    # check_perf_regression.py.
    spans_identical = serial == spans
    span_overhead_pct = overhead_pct(rep_times["spans"])

    identical = serial == parallel == cached == eager == observed

    # Wakeup-vs-poll identity: same machine, fewer events.  Everything
    # but the raw event count must match (events_processed is exactly
    # what the wakeup plane is allowed to shrink).
    def arch(metrics):
        return [
            dataclasses.replace(m, events_processed=0, obs=None)
            for m in metrics
        ]

    wakeup_poll_identical = arch(serial) == arch(poll)
    poll_events = sum(m.events_processed for m in poll)
    poll_events_per_sec = poll_events / poll_s if poll_s else 0.0
    poll_equivalent_events_per_sec = (
        poll_events / serial_s if serial_s else 0.0
    )

    # Express-vs-hops identity: same reservation timetable, fewer
    # events.  Same contract (and same gating shape) as wakeup/poll.
    express_hops_identical = arch(serial) == arch(hops)
    hops_events = sum(m.events_processed for m in hops)
    hops_events_per_sec = hops_events / hops_s if hops_s else 0.0
    express_equivalent_events_per_sec = (
        hops_events / serial_s if serial_s else 0.0
    )
    if not identical:
        rows = zip(serial, parallel, cached, eager, observed)
        for i, (a, b, c, e, o) in enumerate(rows):
            if not (a == b == c == e == o):
                print(
                    f"MISMATCH at spec #{i}:\n  serial:   {a}"
                    f"\n  parallel: {b}\n  cached:   {c}\n  eager:    {e}"
                    f"\n  observed: {o}"
                )

    if args.obs_artifacts:
        write_obs_artifacts(args.obs_artifacts, specs[0], observed[0])

    # Allocation pass: tracemalloc snapshot delta over one run (slots on
    # hot record classes show up here as fewer blocks per event).
    alloc_spec = specs[0]
    pool_before = message_pool.pool_stats()
    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    alloc_metrics = execute_run_spec(alloc_spec)
    peak_bytes = tracemalloc.get_traced_memory()[1]
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    diff = after.compare_to(before, "filename")
    alloc_blocks = sum(stat.count_diff for stat in diff)
    alloc_kib = sum(stat.size_diff for stat in diff) / 1024.0
    alloc_events = alloc_metrics.events_processed
    pool_after = message_pool.pool_stats()
    messages_allocated = pool_after["allocated"] - pool_before["allocated"]
    messages_reused = pool_after["reused"] - pool_before["reused"]
    pool_total = messages_allocated + messages_reused
    msg_pool_reuse_pct = (
        100.0 * messages_reused / pool_total if pool_total else 0.0
    )

    events = sum(m.events_processed for m in serial)
    events_per_sec = events / serial_s if serial_s else 0.0
    coalesced = sum(
        v
        for m in serial
        for k, v in m.counters.items()
        if k.endswith(".coalesced_deliveries")
    )
    if cpu_count > 1:
        speedup = serial_s / parallel_s if parallel_s else 0.0
        speedup_note = None
    else:
        # One CPU: the pool serialises anyway, a "speedup" would be noise.
        speedup = None
        speedup_note = "single-CPU host; parallel speedup not claimed"

    payload = {
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "cached_s": round(cached_s, 4),
        "eager_s": round(eager_s, 4),
        "obs_s": round(obs_s, 4),
        "spans_s": round(spans_s, 4),
        "poll_s": round(poll_s, 4),
        "obs_overhead_pct": round(obs_overhead_pct, 2),
        "span_overhead_pct": round(span_overhead_pct, 2),
        "spans_identical": spans_identical,
        "jobs": jobs,
        "events_per_sec": round(events_per_sec, 1),
        "kernel_events_per_sec": round(kernel_events_per_sec, 1),
        "flat_kernel_events_per_sec": round(kernel_events_per_sec, 1),
        "legacy_kernel_events_per_sec": round(
            legacy_kernel_events_per_sec, 1
        ),
        "eager_events_per_sec": round(eager_events_per_sec, 1),
        "poll_events_per_sec": round(poll_events_per_sec, 1),
        "poll_equivalent_events_per_sec": round(
            poll_equivalent_events_per_sec, 1
        ),
        "spin_events_elided": poll_events - events,
        "wakeup_poll_identical": wakeup_poll_identical,
        "hops_s": round(hops_s, 4),
        "hops_events_per_sec": round(hops_events_per_sec, 1),
        "express_equivalent_events_per_sec": round(
            express_equivalent_events_per_sec, 1
        ),
        "hop_events_elided": hops_events - events,
        "express_hops_identical": express_hops_identical,
        "messages_allocated": messages_allocated,
        "msg_pool_reuse_pct": round(msg_pool_reuse_pct, 1),
        "speedup": None if speedup is None else round(speedup, 3),
        "speedup_note": speedup_note,
        "events": events,
        "coalesced_deliveries": coalesced,
        "cache_hits": cache_hits,
        "alloc_blocks": alloc_blocks,
        "alloc_kib": round(alloc_kib, 1),
        "alloc_peak_kib": round(peak_bytes / 1024.0, 1),
        "alloc_events": alloc_events,
        "runs": len(specs),
        "ops": args.ops,
        "seeds": args.seeds,
        "identical": identical,
        "cpu_count": cpu_count,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    speed_txt = (
        f"speedup {speedup:.2f}x" if speedup is not None else speedup_note
    )
    kernel_ratio = (
        kernel_events_per_sec / legacy_kernel_events_per_sec
        if legacy_kernel_events_per_sec
        else 0.0
    )
    print(
        f"kernel   {kernel_events_per_sec:12,.0f} events/sec "
        f"(flat; legacy {legacy_kernel_events_per_sec:,.0f}, "
        f"{kernel_ratio:.2f}x)\n"
        f"serial   {serial_s:8.2f} s   ({events_per_sec:,.0f} events/sec, "
        f"{coalesced} coalesced deliveries)\n"
        f"parallel {parallel_s:8.2f} s   (jobs={jobs}, {speed_txt})\n"
        f"cached   {cached_s:8.2f} s   ({cache_hits}/{len(specs)} hits)\n"
        f"eager    {eager_s:8.2f} s   ({eager_events_per_sec:,.0f} events/sec, "
        f"checkers on the hot path)\n"
        f"observed {obs_s:8.2f} s   (REPRO_OBS=1, "
        f"{obs_overhead_pct:+.1f}% vs serial)\n"
        f"spans    {spans_s:8.2f} s   (REPRO_OBS_SPANS=1, "
        f"{span_overhead_pct:+.1f}% vs serial, "
        f"identical: {spans_identical})\n"
        f"poll     {poll_s:8.2f} s   (REPRO_POLL=1, "
        f"{poll_events:,} events, {poll_events - events:,} spin events "
        f"elided by wakeups;\n"
        f"          poll-equivalent {poll_equivalent_events_per_sec:,.0f} "
        f"events/sec vs poll {poll_events_per_sec:,.0f}, "
        f"arch-identical: {wakeup_poll_identical})\n"
        f"hops     {hops_s:8.2f} s   (REPRO_HOPS=1, "
        f"{hops_events:,} events, {hops_events - events:,} hop events "
        f"elided by express;\n"
        f"          express-equivalent {express_equivalent_events_per_sec:,.0f} "
        f"events/sec vs hops {hops_events_per_sec:,.0f}, "
        f"arch-identical: {express_hops_identical})\n"
        f"msgpool  {messages_allocated:,} records allocated, "
        f"{msg_pool_reuse_pct:.1f}% of sends reused a pooled record\n"
        f"alloc    {alloc_blocks:,} blocks retained "
        f"({alloc_kib:,.0f} KiB, peak {peak_bytes / 1024.0:,.0f} KiB) "
        f"over {alloc_events:,} events\n"
        f"metrics identical: {identical} "
        f"(serial == parallel == cached == eager == observed)\n"
        f"[written to {os.path.abspath(args.out)}]"
    )
    return (
        0
        if identical
        and spans_identical
        and wakeup_poll_identical
        and express_hops_identical
        and cache_hits == len(specs)
        else 1
    )


if __name__ == "__main__":
    sys.exit(main())
