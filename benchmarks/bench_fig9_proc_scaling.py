"""Figure 9: DVMC overhead vs. processor count (1-8 nodes), TSO, both
protocols.

Paper shape under test: no strong correlation between system size and
DVMC overhead — checker traffic is unicast and scales with overall
traffic.
"""

from repro.config import ProtocolKind, SystemConfig
from repro.consistency.models import ConsistencyModel
from repro.system.experiments import measure

from bench_common import OPS, emit

NODE_COUNTS = (1, 2, 4, 8)
WORKLOAD_SUBSET = ("apache", "oltp", "jbb")


def test_figure9_processor_count_sweep(benchmark):
    def experiment():
        rows = {}
        for protocol in ProtocolKind:
            for nodes in NODE_COUNTS:
                base_cfg = SystemConfig.unprotected(
                    model=ConsistencyModel.TSO, protocol=protocol
                ).with_nodes(nodes)
                dvmc_cfg = SystemConfig.protected(
                    model=ConsistencyModel.TSO, protocol=protocol
                ).with_nodes(nodes)
                ratios = []
                for workload in WORKLOAD_SUBSET:
                    base = measure(base_cfg, workload, ops=OPS, seeds=1)
                    dvmc = measure(dvmc_cfg, workload, ops=OPS, seeds=1)
                    ratios.append(dvmc.runtime_mean / base.runtime_mean)
                rows[(protocol.value, nodes)] = sum(ratios) / len(ratios)
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        "Figure 9. DVMC runtime overhead vs processor count "
        "(TSO, mean over workloads, normalised to unprotected)",
        f"{'protocol':<10}" + "".join(f"{n:>8}" for n in NODE_COUNTS) + "  nodes",
    ]
    for protocol in ProtocolKind:
        lines.append(
            f"{protocol.value:<10}"
            + "".join(f"{rows[(protocol.value, n)]:>8.3f}" for n in NODE_COUNTS)
        )
    emit("fig9_proc_scaling", "\n".join(lines))

    for protocol in ProtocolKind:
        values = [rows[(protocol.value, n)] for n in NODE_COUNTS]
        assert max(values) / min(values) < 2.0, (protocol, values)
