"""CI guard: fail when simulator throughput regresses vs the baseline.

Compares a freshly measured ``BENCH_perf.json`` (the *candidate*,
written by ``bench_perf.py --out ...``) against the committed baseline
at the repo root.  Fails when the candidate's serial ``events_per_sec``
or raw-kernel ``kernel_events_per_sec`` drops below ``threshold``
(default 80%) of the baseline's, when the candidate's
serial/parallel/cached/eager/observed metrics were not identical, or
when the observability plane's ``obs_overhead_pct`` — or the flight
recorder's ``span_overhead_pct`` (with ``spans_identical`` asserted) —
exceeds its ceiling (default 3% each).

The wake-on-change kernel is gated on two further conditions: the
wakeup and poll passes must be architecturally identical
(``wakeup_poll_identical``), and the wakeup kernel's
``poll_equivalent_events_per_sec`` — poll-pass event count over
wakeup-pass wall clock, the apples-to-apples basis when wake mode
*removes* events instead of speeding them up — must reach
``--wakeup-threshold`` (default 110%) of the committed baseline's
``poll_events_per_sec``.  That floor asserts the wakeup kernel
actually beats polling, not merely matches it.

The express message plane adds two more: the express and
``REPRO_HOPS=1`` passes must be architecturally identical
(``express_hops_identical``), and serial ``events_per_sec`` must hold
``--express-threshold`` (default 110%) of the *pinned* pre-express
baseline (``--pr7-baseline``, the serial throughput committed before
the express plane landed).  Unlike the rolling 80% floor this is a
ratchet: it pins the express plane's absolute win so a later change
cannot silently trade it away while still passing the loose
self-relative check.  Skipped when the candidate predates the express
fields.

The threshold is deliberately loose: CI runners vary, and the guard is
meant to catch order-of-magnitude mistakes (an accidentally quadratic
loop, a lost fast path), not wall-clock noise.

Usage::

    python benchmarks/check_perf_regression.py --candidate /tmp/perf.json
    python benchmarks/check_perf_regression.py \
        --baseline BENCH_perf.json --candidate /tmp/perf.json --threshold 0.8
"""

from __future__ import annotations

import argparse
import json
import os
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_perf.json"
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="committed BENCH_perf.json (the reference)",
    )
    parser.add_argument(
        "--candidate", required=True, help="freshly measured BENCH_perf.json"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.8,
        help="minimum candidate/baseline events_per_sec ratio",
    )
    parser.add_argument(
        "--obs-threshold",
        type=float,
        default=3.0,
        help="maximum obs_overhead_pct (REPRO_OBS=1 wall-clock cost, "
        "percent over the unobserved serial pass)",
    )
    parser.add_argument(
        "--spans-threshold",
        type=float,
        default=3.0,
        help="maximum span_overhead_pct (REPRO_OBS_SPANS=1 flight-recorder "
        "wall-clock cost at the default sampling stride, percent over "
        "the unrecorded serial pass)",
    )
    parser.add_argument(
        "--wakeup-threshold",
        type=float,
        default=1.10,
        help="minimum candidate poll_equivalent_events_per_sec over "
        "baseline poll_events_per_sec (wakeup kernel must beat polling)",
    )
    parser.add_argument(
        "--express-threshold",
        type=float,
        default=1.10,
        help="minimum candidate events_per_sec over the pinned "
        "pre-express baseline (the express plane's win is a ratchet)",
    )
    parser.add_argument(
        "--pr7-baseline",
        type=float,
        default=138_207.9,
        help="serial events_per_sec of the last committed baseline "
        "before the express message plane landed",
    )
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.candidate) as fh:
        candidate = json.load(fh)

    if not candidate.get("identical", False):
        print("FAIL: candidate metrics were not identical across passes")
        return 1
    if "wakeup_poll_identical" in candidate and not candidate[
        "wakeup_poll_identical"
    ]:
        print(
            "FAIL: wakeup and poll kernel modes disagreed on the "
            "architectural payload"
        )
        return 1
    if "express_hops_identical" in candidate and not candidate[
        "express_hops_identical"
    ]:
        print(
            "FAIL: express and REPRO_HOPS=1 message planes disagreed on "
            "the architectural payload"
        )
        return 1

    failed = False
    for key, label in (
        ("events_per_sec", "serial"),
        ("kernel_events_per_sec", "kernel"),
        ("flat_kernel_events_per_sec", "flat kernel"),
    ):
        base = baseline.get(key)
        cand = candidate.get(key)
        if base is None or cand is None:
            # Older baselines predate the kernel field; nothing to gate.
            print(f"perf check: {label} skipped ({key} missing)")
            continue
        ratio = cand / base if base else float("inf")
        print(
            f"perf check: {label} candidate {cand:,.0f} ev/s vs baseline "
            f"{base:,.0f} ev/s (ratio {ratio:.2f}, floor {args.threshold:.2f})"
        )
        if cand < base * args.threshold:
            print(
                f"FAIL: {label} throughput regressed below "
                f"{args.threshold:.0%} of the committed baseline"
            )
            failed = True

    wake_base = baseline.get("poll_events_per_sec")
    wake_cand = candidate.get("poll_equivalent_events_per_sec")
    if wake_base is None or wake_cand is None:
        # Older baselines predate the wakeup kernel; nothing to gate.
        print("perf check: wakeup-vs-poll skipped (poll fields missing)")
    else:
        ratio = wake_cand / wake_base if wake_base else float("inf")
        print(
            f"perf check: wakeup poll-equivalent {wake_cand:,.0f} ev/s vs "
            f"baseline poll {wake_base:,.0f} ev/s "
            f"(ratio {ratio:.2f}, floor {args.wakeup_threshold:.2f})"
        )
        if wake_cand < wake_base * args.wakeup_threshold:
            print(
                "FAIL: wakeup kernel does not beat the committed poll "
                f"baseline by {args.wakeup_threshold:.0%}"
            )
            failed = True

    express_cand = candidate.get("events_per_sec")
    if "hop_events_elided" not in candidate or express_cand is None:
        # Older candidates predate the express plane; nothing to ratchet.
        print("perf check: express ratchet skipped (express fields missing)")
    else:
        pinned = args.pr7_baseline
        ratio = express_cand / pinned if pinned else float("inf")
        print(
            f"perf check: express serial {express_cand:,.0f} ev/s vs pinned "
            f"pre-express baseline {pinned:,.0f} ev/s "
            f"(ratio {ratio:.2f}, floor {args.express_threshold:.2f})"
        )
        if express_cand < pinned * args.express_threshold:
            print(
                "FAIL: serial throughput fell below "
                f"{args.express_threshold:.0%} of the pinned pre-express "
                "baseline — the express plane's win has been traded away"
            )
            failed = True

    if "spans_identical" in candidate and not candidate["spans_identical"]:
        print(
            "FAIL: the flight recorder (REPRO_OBS_SPANS=1) changed the "
            "deterministic payload — recorder-on must be bit-identical"
        )
        return 1
    span_overhead = candidate.get("span_overhead_pct")
    if span_overhead is None:
        # Older candidates predate the flight recorder; nothing to gate.
        print("perf check: span overhead skipped (span_overhead_pct missing)")
    else:
        print(
            f"perf check: span overhead {span_overhead:+.1f}% "
            f"(ceiling {args.spans_threshold:.1f}%)"
        )
        if span_overhead > args.spans_threshold:
            print(
                "FAIL: REPRO_OBS_SPANS=1 wall-clock overhead exceeds "
                f"{args.spans_threshold:.1f}% of the unrecorded serial pass"
            )
            failed = True

    overhead = candidate.get("obs_overhead_pct")
    if overhead is None:
        print("perf check: obs overhead skipped (obs_overhead_pct missing)")
    else:
        print(
            f"perf check: obs overhead {overhead:+.1f}% "
            f"(ceiling {args.obs_threshold:.1f}%)"
        )
        if overhead > args.obs_threshold:
            print(
                "FAIL: REPRO_OBS=1 wall-clock overhead exceeds "
                f"{args.obs_threshold:.1f}% of the unobserved serial pass"
            )
            failed = True
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
