"""Figure 6: L1 cache misses during replay, normalised to the number of
L1 misses during regular execution (TSO, directory).

Paper shapes under test: replay misses are *rare* — the time between a
load's execution and its verification is small, so the block is almost
always still resident; the residue concentrates around lock spin loops.
RMO's VC optimisation eliminates replay cache reads entirely.
"""

from repro.config import ProtocolKind, SystemConfig
from repro.consistency.models import ConsistencyModel
from repro.system.experiments import measure

from bench_common import OPS, SEEDS, WORKLOADS, emit


def test_figure6_replay_misses(benchmark):
    def experiment():
        rows = {}
        for workload in WORKLOADS:
            m = measure(
                SystemConfig.protected(
                    model=ConsistencyModel.TSO, protocol=ProtocolKind.DIRECTORY
                ),
                workload,
                ops=OPS,
                seeds=SEEDS,
            )
            rows[workload] = m
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        "Figure 6. Replay L1 misses normalised to regular L1 misses (TSO, directory)",
        f"{'workload':<10}{'replay misses':>14}{'regular misses':>16}{'ratio':>8}",
    ]
    for workload, m in rows.items():
        lines.append(
            f"{workload:<10}{m.replay_misses:>14}{m.l1_misses:>16}"
            f"{m.replay_miss_ratio:>8.3f}"
        )
    emit("fig6_replay_misses", "\n".join(lines))

    for workload, m in rows.items():
        assert m.replay_miss_ratio < 0.5, (workload, m.replay_miss_ratio)

    # RMO: the VC optimisation removes replay cache reads entirely.
    rmo = measure(
        SystemConfig.protected(
            model=ConsistencyModel.RMO, protocol=ProtocolKind.DIRECTORY
        ),
        "oltp",
        ops=OPS,
        seeds=1,
    )
    # (VC capacity evictions can force the occasional cache read.)
    assert rmo.replay_misses <= rmo.l1_misses * 0.05 + 2
