"""Offline oracle unit tests: classic litmus outcomes per model.

Each trace is hand-built at the codec level (no simulator involved) and
checked against the expected admissibility verdict under every memory
model.  The expectations follow the SPARC v9 definitions the ordering
tables encode: SB needs Store->Load, MP needs Store->Store +
Load->Load, LB needs Load->Store, and IRIW needs store atomicity.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency.models import ConsistencyModel
from repro.oracle import check_trace
from repro.verify.trace import MODEL_CODES, Trace, TraceEvent

X, Y = 0x100, 0x140

SC = ConsistencyModel.SC
TSO = ConsistencyModel.TSO
PSO = ConsistencyModel.PSO
RMO = ConsistencyModel.RMO
ALL = (SC, TSO, PSO, RMO)


def T(core, index, kind, addr, value, old=None, mask=0):
    return TraceEvent(core, index, kind, addr, value, old_value=old, mask=mask)


def trace(*events):
    t = Trace()
    t.events.extend(events)
    return t


# (name, events, {model: admissible})
CASES = [
    (
        "sb-both-zero",
        (
            T(0, 0, "store", X, 1),
            T(0, 1, "load", Y, 0),
            T(1, 0, "store", Y, 1),
            T(1, 1, "load", X, 0),
        ),
        {SC: False, TSO: True, PSO: True, RMO: True},
    ),
    (
        "sb-full-fences",
        (
            T(0, 0, "store", X, 1),
            T(0, 1, "membar", 0, 0, mask=0xF),
            T(0, 2, "load", Y, 0),
            T(1, 0, "store", Y, 1),
            T(1, 1, "membar", 0, 0, mask=0xF),
            T(1, 2, "load", X, 0),
        ),
        {SC: False, TSO: False, PSO: False, RMO: False},
    ),
    (
        "mp-stale-data",
        (
            T(0, 0, "store", X, 1),
            T(0, 1, "store", Y, 1),
            T(1, 0, "load", Y, 1),
            T(1, 1, "load", X, 0),
        ),
        {SC: False, TSO: False, PSO: True, RMO: True},
    ),
    (
        "mp-stbar-membar",
        (
            T(0, 0, "store", X, 1),
            T(0, 1, "stbar", 0, 0, mask=0x8),
            T(0, 2, "store", Y, 1),
            T(1, 0, "load", Y, 1),
            T(1, 1, "membar", 0, 0, mask=0x1),
            T(1, 2, "load", X, 0),
        ),
        {SC: False, TSO: False, PSO: False, RMO: False},
    ),
    (
        "lb-both-one",
        (
            T(0, 0, "load", X, 1),
            T(0, 1, "store", Y, 1),
            T(1, 0, "load", Y, 1),
            T(1, 1, "store", X, 1),
        ),
        {SC: False, TSO: False, PSO: False, RMO: True},
    ),
    (
        "iriw-fenced",
        (
            T(0, 0, "store", X, 1),
            T(1, 0, "store", Y, 1),
            T(2, 0, "load", X, 1),
            T(2, 1, "membar", 0, 0, mask=0xF),
            T(2, 2, "load", Y, 0),
            T(3, 0, "load", Y, 1),
            T(3, 1, "membar", 0, 0, mask=0xF),
            T(3, 2, "load", X, 0),
        ),
        {SC: False, TSO: False, PSO: False, RMO: False},
    ),
    (
        "uniproc-stale-self",
        (
            T(0, 0, "store", X, 1),
            T(0, 1, "load", X, 0),
        ),
        {SC: False, TSO: False, PSO: False, RMO: False},
    ),
    (
        "sb-store-forwarding",
        (
            T(0, 0, "store", X, 1),
            T(0, 1, "load", X, 1),
            T(0, 2, "load", Y, 0),
            T(1, 0, "store", Y, 1),
            T(1, 1, "load", Y, 1),
            T(1, 2, "load", X, 0),
        ),
        {SC: False, TSO: True, PSO: True, RMO: True},
    ),
    (
        "corr-oscillation",
        (
            T(0, 0, "store", X, 1),
            T(1, 0, "load", X, 1),
            T(1, 1, "load", X, 0),
        ),
        {SC: False, TSO: False, PSO: False, RMO: False},
    ),
    (
        "atomic-duplicate-old",
        (
            T(0, 0, "atomic", X, 1, old=0),
            T(1, 0, "atomic", X, 2, old=0),
        ),
        {SC: False, TSO: False, PSO: False, RMO: False},
    ),
    (
        "atomic-chain",
        (
            T(0, 0, "atomic", X, 1, old=0),
            T(1, 0, "atomic", X, 2, old=1),
        ),
        {SC: True, TSO: True, PSO: True, RMO: True},
    ),
    (
        "setmodel-drains",
        (
            T(0, 0, "store", X, 1),
            T(0, 1, "setmodel", 0, MODEL_CODES["SC"]),
            T(0, 2, "store", Y, 1),
            T(1, 0, "load", Y, 1),
            T(1, 1, "membar", 0, 0, mask=0x1),
            T(1, 2, "load", X, 0),
        ),
        {RMO: False},
    ),
    (
        "sequential-clean",
        (
            T(0, 0, "store", X, 5),
            T(0, 1, "load", X, 5),
            T(1, 0, "load", X, 5),
        ),
        {SC: True, TSO: True, PSO: True, RMO: True},
    ),
]

PARAMS = [
    pytest.param(events, model, want, id=f"{name}-{model.name}")
    for name, events, expectations in CASES
    for model, want in expectations.items()
]


@pytest.mark.parametrize("events,model,want", PARAMS)
def test_litmus_verdict(events, model, want):
    verdict = check_trace(trace(*events), model)
    assert verdict.decided, "branch budget must suffice for litmus traces"
    assert verdict.admissible == want, [v.detail for v in verdict.violations]
    if not want:
        assert verdict.violations


def test_verdict_is_boolean():
    ok = check_trace(trace(T(0, 0, "store", X, 1)), TSO)
    bad = check_trace(
        trace(T(0, 0, "store", X, 1), T(0, 1, "load", X, 0)), TSO
    )
    assert bool(ok) and not bool(bad)


def test_load_with_no_matching_writer_is_inadmissible():
    verdict = check_trace(trace(T(0, 0, "load", X, 7)), SC)
    assert not verdict.admissible
    assert any(v.rule == "no-writer" for v in verdict.violations)


def test_initial_value_parameter():
    assert check_trace(trace(T(0, 0, "load", X, 7)), SC, initial=7).admissible


# -- stability under inter-thread event reordering ---------------------------
#
# The oracle consumes one global event list but must depend only on the
# per-thread subsequences (program order) plus event payloads: any
# interleaving of complete threads is the same execution.

STABILITY_CASES = [case for case in CASES if case[0] != "setmodel-drains"]


@settings(max_examples=60, deadline=None)
@given(
    data=st.data(),
    case=st.sampled_from(STABILITY_CASES),
    model=st.sampled_from(ALL),
)
def test_verdict_stable_under_interleaving(data, case, model):
    name, events, expectations = case
    if model not in expectations:
        model = next(iter(expectations))
    want = expectations[model]
    per_thread = {}
    for event in events:
        per_thread.setdefault(event.core, []).append(event)
    queues = list(per_thread.values())
    shuffled = []
    while any(queues):
        alive = [q for q in queues if q]
        pick = data.draw(st.integers(min_value=0, max_value=len(alive) - 1))
        shuffled.append(alive[pick].pop(0))
    verdict = check_trace(trace(*shuffled), model)
    assert verdict.decided
    assert verdict.admissible == want
