"""Workload generators and synchronisation primitives."""

import pytest

from repro.config import SystemConfig
from repro.consistency.models import ConsistencyModel
from repro.processor.operations import Load, Store
from repro.system.builder import build_system
from repro.workloads import (
    THIRTY_TWO_BIT_FRACTION,
    WORKLOAD_NAMES,
    lock_addr,
    make_program,
    private_addr,
    shared_addr,
)
from repro.workloads.primitives import lock_acquire, lock_release


class TestRegistry:
    def test_five_workloads(self):
        assert set(WORKLOAD_NAMES) == {"apache", "oltp", "jbb", "slash", "barnes"}

    def test_table8_fractions_present(self):
        assert set(THIRTY_TWO_BIT_FRACTION) == set(WORKLOAD_NAMES)
        assert THIRTY_TWO_BIT_FRACTION["barnes"] == 0.0

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_program("nope", 0, 4, ConsistencyModel.TSO, 1, 10)


class TestAddressLayout:
    def test_regions_disjoint(self):
        assert lock_addr(100) < shared_addr(0)
        assert shared_addr(100_000 // 4) <= private_addr(0, 0)

    def test_locks_block_separated(self):
        assert lock_addr(1) - lock_addr(0) == 64

    def test_private_regions_per_node(self):
        assert private_addr(0, 0) != private_addr(1, 0)


class TestDeterminism:
    def test_same_seed_same_op_stream(self):
        def drain(program, n=30):
            ops = []
            try:
                result = None
                while len(ops) < n:
                    op = program.send(result)
                    ops.append(repr(op))
                    result = 0  # pretend every load returns 0...
            except (StopIteration, RuntimeError):
                pass
            return ops

        a = drain(make_program("jbb", 0, 4, ConsistencyModel.TSO, 7, 100))
        b = drain(make_program("jbb", 0, 4, ConsistencyModel.TSO, 7, 100))
        assert a == b

    def test_different_seeds_differ(self):
        def first_ops(seed):
            p = make_program("oltp", 0, 4, ConsistencyModel.TSO, seed, 50)
            return [repr(p.send(None if i == 0 else 0)) for i in range(3)]

        assert first_ops(1) != first_ops(2) or first_ops(1) != first_ops(3)


class TestLockPrimitives:
    def test_mutual_exclusion_end_to_end(self):
        """N cores increment a shared counter under a lock; the final
        count must equal the total number of increments."""
        increments = 8
        lock = lock_addr(0)
        counter = shared_addr(0)

        def worker(model=ConsistencyModel.TSO):
            for _ in range(increments):
                yield from lock_acquire(lock, model)
                value = yield Load(counter)
                yield Store(counter, value + 1)
                yield from lock_release(lock, model)

        config = SystemConfig.protected(num_nodes=4)
        system = build_system(config, programs=[worker() for _ in range(4)])
        result = system.run(max_cycles=5_000_000)
        assert result.completed and not result.violations
        from tests.conftest import sync_load

        assert sync_load(system, 0, counter) == 4 * increments

    @pytest.mark.parametrize("model", list(ConsistencyModel))
    def test_mutual_exclusion_under_every_model(self, model):
        lock = lock_addr(1)
        counter = shared_addr(4)

        def worker():
            for _ in range(4):
                yield from lock_acquire(lock, model)
                value = yield Load(counter)
                yield Store(counter, value + 1)
                yield from lock_release(lock, model)

        config = SystemConfig.protected(model=model, num_nodes=3)
        system = build_system(config, programs=[worker() for _ in range(3)])
        result = system.run(max_cycles=5_000_000)
        assert result.completed and not result.violations
        from tests.conftest import sync_load

        assert sync_load(system, 0, counter) == 12


class TestWorkloadExecution:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_runs_to_completion(self, name):
        config = SystemConfig.unprotected(num_nodes=2)
        system = build_system(config, workload=name, ops=60)
        result = system.run(max_cycles=5_000_000)
        assert result.completed

    def test_ops_parameter_scales_work(self):
        config = SystemConfig.unprotected(num_nodes=2)
        small = build_system(config, workload="jbb", ops=40).run().cycles
        large = build_system(config, workload="jbb", ops=400).run().cycles
        assert large > small * 2
