"""Litmus generator tests: canonicalization, codecs, determinism."""

import pytest

from repro.workloads.litmus_gen import (
    CLASSICS,
    LitmusSpec,
    canonical_threads,
    classics,
    enumerate_specs,
    generate,
    slot_addr,
)


def test_encode_decode_round_trip():
    for spec in classics():
        again = LitmusSpec.decode(spec.encode(), name=spec.name)
        assert again.threads == spec.threads
        assert again.encode() == spec.encode()


def test_json_round_trip():
    for spec in classics():
        assert LitmusSpec.from_json(spec.to_json()).threads == spec.threads


def test_canonicalization_dedupes_symmetric_variants():
    # SB and its thread/address-permuted twin canonicalize identically.
    sb = LitmusSpec(
        "",
        (
            (("st", 0, 1), ("ld", 1)),
            (("st", 1, 1), ("ld", 0)),
        ),
    )
    twin = LitmusSpec(
        "",
        (
            (("st", 1, 1), ("ld", 0)),
            (("st", 0, 1), ("ld", 1)),
        ),
    )
    assert canonical_threads(sb.threads) == canonical_threads(twin.threads)


def test_enumeration_is_canonical_and_interesting():
    specs = enumerate_specs(threads=2, ops_per_thread=2, slots=2)
    seen = set()
    for spec in specs:
        key = canonical_threads(spec.threads)
        assert key not in seen, f"duplicate canonical spec: {spec.encode()}"
        seen.add(key)
        assert spec.is_interesting()
    # The 2x2 family contains the SB skeleton.
    sb_key = LitmusSpec(
        "",
        (
            (("st", 0, 1), ("ld", 1)),
            (("st", 1, 1), ("ld", 0)),
        ),
    ).threads
    sb_key = canonical_threads(sb_key)
    assert sb_key in seen


def test_generate_is_deterministic_and_scales_thread_count():
    a = generate(120, seed=9)
    b = generate(120, seed=9)
    assert [s.encode() for s in a] == [s.encode() for s in b]
    assert len(a) == 120
    widths = {len(s.threads) for s in a}
    assert widths >= {2, 3, 4}, "campaign must include 3- and 4-thread shapes"
    assert len(set(canonical_threads(s.threads) for s in a)) == len(a)


def test_generate_different_seeds_differ():
    a = [s.encode() for s in generate(60, seed=1)]
    b = [s.encode() for s in generate(60, seed=2)]
    assert a != b


def test_classics_cover_named_families():
    names = {spec.name for spec in classics()}
    assert {"SB", "MP", "LB", "IRIW+mb", "CoRR"} <= names
    assert len(CLASSICS) == len(names)


def test_programs_emit_warm_loads_then_ops():
    spec = classics()[0]
    out = {}
    programs = spec.programs(out=out)
    assert len(programs) == len(spec.threads)
    for program in programs:
        for _ in program:
            pass
    # Every thread observed final values for each slot it read.
    assert all(isinstance(k, tuple) and len(k) == 2 for k in out)


def test_slot_addrs_are_distinct_blocks():
    addrs = [slot_addr(i) for i in range(4)]
    assert len(set(a >> 6 for a in addrs)) == 4


@pytest.mark.parametrize("bad", ["zz0", "st0", "ld", "mbz"])
def test_decode_rejects_bad_tokens(bad):
    with pytest.raises((ValueError, IndexError)):
        LitmusSpec.decode(bad)
