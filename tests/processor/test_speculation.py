"""Load-order speculation and squash (paper Section 4.1).

SC/TSO/PSO speculatively reorder loads and track writes to
speculatively loaded addresses; a tracked write makes the replay
mismatch a *squash* (pipeline flush), not a violation.
"""


from repro.config import SystemConfig
from repro.consistency.models import ConsistencyModel
from repro.processor.operations import Compute, Load, Store
from repro.system.builder import build_system

FLAG = 0x2_0000
DATA = 0x2_0040


def test_remote_write_during_spin_is_squash_not_violation():
    """A spinning reader races a writer: invalidations land between a
    spin load's execution and its verification.  With tracking, those
    replays are squashes; the run must end violation-free."""
    def writer():
        yield Compute(200)
        yield Store(FLAG, 1)

    def spinner():
        while (yield Load(FLAG)) != 1:
            pass

    config = SystemConfig.protected(model=ConsistencyModel.TSO, num_nodes=2)
    system = build_system(config, programs=[writer(), spinner()])
    result = system.run(max_cycles=2_000_000)
    assert result.completed
    assert not result.violations


def test_squashes_are_counted():
    """Heavy ping-pong writes over a word another core keeps loading
    should produce at least some tracked squashes across seeds."""
    total_squashes = 0
    for seed in range(1, 6):
        def writer():
            for i in range(40):
                yield Store(FLAG, i)

        def reader():
            for _ in range(40):
                yield Load(FLAG)

        config = SystemConfig.protected(
            model=ConsistencyModel.TSO, num_nodes=2
        ).with_seed(seed)
        system = build_system(config, programs=[writer(), reader()])
        result = system.run(max_cycles=2_000_000)
        assert not result.violations
        total_squashes += system.stats.counter("core.1.load_squashes")
    # Squashes may legitimately be zero on some interleavings, but the
    # mechanism itself must never produce false violations (asserted
    # above); record that the counter is wired.
    assert total_squashes >= 0


def test_rmo_does_not_speculate():
    """RMO loads perform at execute: no speculation tracking, and the
    same race stays violation-free through the VC load-value path."""
    def writer():
        yield Compute(150)
        yield Store(FLAG, 1)

    def spinner():
        while (yield Load(FLAG)) != 1:
            pass

    config = SystemConfig.protected(model=ConsistencyModel.RMO, num_nodes=2)
    system = build_system(config, programs=[writer(), spinner()])
    result = system.run(max_cycles=2_000_000)
    assert result.completed
    assert not result.violations
    assert system.stats.counter("core.1.load_squashes") == 0
