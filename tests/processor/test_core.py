"""Core pipeline behaviour across consistency models."""

import pytest

from repro.common.types import MembarMask
from repro.config import SystemConfig
from repro.consistency.models import ConsistencyModel
from repro.processor.operations import (
    Atomic,
    Batch,
    Compute,
    Load,
    Membar,
    SetModel,
    Stbar,
    Store,
)
from repro.system.builder import build_system

from tests.conftest import idle_program

ADDR = 0x2_0000


def run_programs(programs, model=ConsistencyModel.TSO, dvmc=True, **kw):
    config = (
        SystemConfig.protected(model=model, **kw)
        if dvmc
        else SystemConfig.unprotected(model=model, **kw)
    )
    config = config.with_nodes(len(programs))
    system = build_system(config, programs=programs)
    result = system.run(max_cycles=2_000_000)
    return system, result


class TestSingleCoreExecution:
    @pytest.mark.parametrize("model", list(ConsistencyModel))
    def test_store_load_round_trip(self, model):
        seen = []

        def prog():
            yield Store(ADDR, 0x1234)
            value = yield Load(ADDR)
            seen.append(value)

        system, result = run_programs([prog()], model=model)
        assert result.completed
        assert seen == [0x1234]
        assert not result.violations

    @pytest.mark.parametrize("model", list(ConsistencyModel))
    def test_store_forwarding_before_drain(self, model):
        """A load right after a store must see it (LSQ/WB forwarding)."""
        seen = []

        def prog():
            for i in range(8):
                yield Store(ADDR + 4 * i, i + 1)
            for i in range(8):
                seen.append((yield Load(ADDR + 4 * i)))

        _, result = run_programs([prog()], model=model)
        assert seen == [1, 2, 3, 4, 5, 6, 7, 8]
        assert not result.violations

    def test_atomic_swap_value(self):
        seen = []

        def prog():
            yield Store(ADDR, 7)
            old = yield Atomic(ADDR, 9)
            seen.append(old)
            seen.append((yield Load(ADDR)))

        _, result = run_programs([prog()])
        assert seen == [7, 9]

    def test_compute_advances_time(self):
        def prog():
            yield Compute(500)
            yield Store(ADDR, 1)

        system, result = run_programs([prog()])
        assert result.cycles >= 500

    def test_batch_returns_all_results(self):
        seen = []

        def prog():
            yield Store(ADDR, 5)
            yield Store(ADDR + 4, 6)
            values = yield Batch([Load(ADDR), Load(ADDR + 4)])
            seen.extend(values)

        _, result = run_programs([prog()])
        assert seen == [5, 6]

    def test_membar_and_stbar_complete(self):
        def prog():
            yield Store(ADDR, 1)
            yield Membar(MembarMask.ALL)
            yield Store(ADDR + 4, 2)
            yield Stbar()
            yield Store(ADDR + 8, 3)

        _, result = run_programs([prog()], model=ConsistencyModel.PSO)
        assert result.completed and not result.violations


class TestWriteBufferPresence:
    def test_sc_has_no_write_buffer(self):
        def prog():
            yield Store(ADDR, 1)

        system, _ = run_programs([prog()], model=ConsistencyModel.SC)
        assert system.cores[0].wb is None

    @pytest.mark.parametrize(
        "model,in_order",
        [
            (ConsistencyModel.TSO, True),
            (ConsistencyModel.PSO, False),
            (ConsistencyModel.RMO, False),
        ],
    )
    def test_wb_policy_matches_model(self, model, in_order):
        def prog():
            yield Store(ADDR, 1)

        system, _ = run_programs([prog()], model=model)
        assert system.cores[0].wb is not None
        assert system.cores[0].wb.in_order == in_order


class TestModelSwitching:
    def test_switch_changes_table_and_policy(self):
        def prog():
            yield Store(ADDR, 1)
            yield SetModel(ConsistencyModel.TSO)
            yield Store(ADDR, 2)
            yield SetModel(ConsistencyModel.PSO)
            yield Store(ADDR, 3)

        system, result = run_programs([prog()], model=ConsistencyModel.PSO)
        assert result.completed and not result.violations
        assert system.stats.counter("core.0.model_switches") == 2
        assert system.cores[0].model is ConsistencyModel.PSO

    def test_switch_to_sc_drops_write_buffer(self):
        def prog():
            yield Store(ADDR, 1)
            yield SetModel(ConsistencyModel.SC)
            yield Store(ADDR, 2)

        system, result = run_programs([prog()], model=ConsistencyModel.TSO)
        assert result.completed
        assert system.cores[0].wb is None

    def test_switch_from_sc_creates_write_buffer(self):
        def prog():
            yield Store(ADDR, 1)
            yield SetModel(ConsistencyModel.RMO)
            yield Store(ADDR, 2)

        system, result = run_programs([prog()], model=ConsistencyModel.SC)
        assert result.completed
        assert system.cores[0].wb is not None and not system.cores[0].wb.in_order


class TestMultiCore:
    @pytest.mark.parametrize("model", list(ConsistencyModel))
    def test_message_passing_with_barrier(self, model):
        """Producer/consumer with a full membar: the consumer must see
        the payload once it sees the flag, under every model."""
        seen = []

        def producer():
            yield Store(ADDR, 0xDA7A)
            yield Membar(MembarMask.ALL)
            yield Store(ADDR + 64, 1)  # flag, different block

        def consumer():
            while (yield Load(ADDR + 64)) != 1:
                yield Compute(5)
            yield Membar(MembarMask.ALL)
            seen.append((yield Load(ADDR)))

        _, result = run_programs([producer(), consumer()], model=model)
        assert seen == [0xDA7A]
        assert not result.violations

    def test_quiescence_waits_for_wb_drain(self):
        def prog():
            for i in range(6):
                yield Store(ADDR + 64 * i, i)

        system, result = run_programs([prog(), idle_program()])
        assert result.completed
        assert system.cores[0].wb.empty


class TestStatsCollection:
    def test_op_counters(self):
        def prog():
            yield Store(ADDR, 1)
            yield Load(ADDR)
            yield Atomic(ADDR, 2)
            yield Membar(MembarMask.ALL)

        system, _ = run_programs([prog()])
        assert system.stats.counter("core.0.ops.store") == 1
        assert system.stats.counter("core.0.ops.load") == 1
        assert system.stats.counter("core.0.ops.atomic") == 1
        assert system.stats.counter("core.0.ops.membar") == 1
        assert system.stats.counter("core.0.retired") == 4
