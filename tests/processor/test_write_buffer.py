"""Write buffers: drain policies, fences, forwarding, fault handles."""

from repro.common.stats import StatsRegistry
from repro.processor.write_buffer import WriteBuffer


class Harness:
    """Captures issue/perform callbacks for direct WB testing."""

    def __init__(self, in_order, capacity=8, require_verified=False):
        self.issued = []
        self.performed = []
        self.completions = {}
        self.wb = WriteBuffer(
            node=0,
            capacity=capacity,
            in_order=in_order,
            stats=StatsRegistry(),
            issue=self._issue,
            on_perform=lambda e, old: self.performed.append(e.seq),
            require_verified=require_verified,
        )

    def _issue(self, entry, on_done):
        self.issued.append(entry.seq)
        self.completions[entry.seq] = on_done

    def complete(self, seq, old_value=0):
        self.completions.pop(seq)(old_value)

    def drain(self):
        self.wb.drain(lambda entry: True)


class TestInOrderPolicy:
    def test_strict_program_order(self):
        h = Harness(in_order=True)
        for seq, addr in ((1, 0x100), (2, 0x200), (3, 0x300)):
            h.wb.insert(seq, addr, seq * 10)
        h.drain()
        assert h.issued == [1]  # one outstanding at a time
        h.complete(1)
        h.drain()
        h.complete(2)
        h.drain()
        h.complete(3)
        assert h.issued == [1, 2, 3]
        assert h.performed == [1, 2, 3]

    def test_capacity(self):
        h = Harness(in_order=True, capacity=2)
        h.wb.insert(1, 0x100, 1)
        assert not h.wb.full
        h.wb.insert(2, 0x200, 2)
        assert h.wb.full

    def test_empty_tracks_outstanding(self):
        h = Harness(in_order=True)
        assert h.wb.empty
        h.wb.insert(1, 0x100, 1)
        h.drain()
        assert not h.wb.empty  # issued but not performed
        h.complete(1)
        assert h.wb.empty


class TestOutOfOrderPolicy:
    def test_multiple_outstanding(self):
        h = Harness(in_order=False)
        for seq in (1, 2, 3):
            h.wb.insert(seq, 0x100 * seq, seq)
        h.drain()
        assert len(h.issued) == 3

    def test_same_word_stays_ordered(self):
        h = Harness(in_order=False)
        h.wb.insert(1, 0x100, 10)
        h.wb.insert(2, 0x100, 20)  # same word
        h.drain()
        assert h.issued == [1]  # younger same-word store waits
        h.complete(1)
        h.drain()
        assert h.issued == [1, 2]

    def test_issue_policy_prefers_hot_block(self):
        h = Harness(in_order=False)
        h.wb.insert(1, 0x100, 1)  # lone store to block 0x100
        h.wb.insert(2, 0x200, 2)  # two stores to block 0x200
        h.wb.insert(3, 0x204, 3)
        h.wb.max_outstanding = 1
        h.drain()
        assert h.issued[0] in (2, 3)  # hot block first

    def test_fence_blocks_younger_generation(self):
        h = Harness(in_order=False)
        h.wb.insert(1, 0x100, 1)
        h.wb.fence()  # Stbar
        h.wb.insert(2, 0x200, 2)
        h.drain()
        assert h.issued == [1]
        h.complete(1)
        h.drain()
        assert h.issued == [1, 2]


class TestVerificationGate:
    def test_unverified_stores_do_not_drain(self):
        h = Harness(in_order=True, require_verified=True)
        h.wb.insert(1, 0x100, 1)
        h.drain()
        assert h.issued == []
        h.wb.mark_verified(1)
        h.drain()
        assert h.issued == [1]


class TestForwarding:
    def test_youngest_value_wins(self):
        h = Harness(in_order=True)
        h.wb.insert(1, 0x100, 10)
        h.wb.insert(2, 0x100, 20)
        assert h.wb.forward(0x100) == 20

    def test_no_match_returns_none(self):
        h = Harness(in_order=True)
        h.wb.insert(1, 0x100, 10)
        assert h.wb.forward(0x104) is None

    def test_word_granular_matching(self):
        h = Harness(in_order=True)
        h.wb.insert(1, 0x102, 5)  # unaligned address, same word as 0x100
        assert h.wb.forward(0x100) == 5


class TestMayIssueVeto:
    def test_veto_blocks_drain(self):
        h = Harness(in_order=True)
        h.wb.insert(1, 0x100, 1)
        h.wb.drain(lambda entry: False)
        assert h.issued == []


class TestFaultHandles:
    def test_corrupt_value(self):
        h = Harness(in_order=True)
        h.wb.insert(1, 0x100, 0xF0)
        assert h.wb.corrupt_entry(0, value_xor=0x0F)
        assert h.wb.entries()[0].value == 0xFF

    def test_corrupt_addr(self):
        h = Harness(in_order=True)
        h.wb.insert(1, 0x100, 0)
        h.wb.corrupt_entry(0, addr_xor=4)
        assert h.wb.entries()[0].addr == 0x104

    def test_corrupt_out_of_range(self):
        h = Harness(in_order=True)
        assert not h.wb.corrupt_entry(3)

    def test_illegal_reorder_swaps_unissued(self):
        h = Harness(in_order=True)
        h.wb.insert(1, 0x100, 1)
        h.wb.insert(2, 0x200, 2)
        assert h.wb.illegal_reorder()
        h.drain()
        assert h.issued == [2]  # younger drains first: the injected bug

    def test_illegal_reorder_needs_two_unissued(self):
        h = Harness(in_order=True)
        h.wb.insert(1, 0x100, 1)
        h.drain()  # seq 1 now issued
        h.wb.insert(2, 0x200, 2)
        assert not h.wb.illegal_reorder()

    def test_has_store_older_than(self):
        h = Harness(in_order=True)
        h.wb.insert(5, 0x100, 1)
        assert h.wb.has_store_older_than(6)
        assert not h.wb.has_store_older_than(5)
