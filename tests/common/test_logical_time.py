"""Logical time bases (paper Section 4.3, "Logical Time")."""

import pytest

from repro.common.errors import ConfigError
from repro.common.events import Scheduler
from repro.common.logical_time import (
    TIMESTAMP_BITS,
    TIMESTAMP_MASK,
    DirectoryLogicalTime,
    SnoopingLogicalTime,
    truncate,
    wraps_before,
)


class TestTruncation:
    def test_sixteen_bits(self):
        assert TIMESTAMP_BITS == 16
        assert truncate(0x1_2345) == 0x2345
        assert truncate(TIMESTAMP_MASK) == TIMESTAMP_MASK

    def test_wrap_horizon(self):
        assert wraps_before(100, 10) == 100 + (1 << 16) - 10


class TestSnoopingLogicalTime:
    def test_counts_per_node(self):
        lt = SnoopingLogicalTime(3)
        assert lt.now(0) == lt.now(1) == 0
        lt.tick(0)
        lt.tick(0)
        lt.tick(1)
        assert lt.now(0) == 2
        assert lt.now(1) == 1
        assert lt.now(2) == 0

    def test_rejects_empty_system(self):
        with pytest.raises(ConfigError):
            SnoopingLogicalTime(0)


class TestDirectoryLogicalTime:
    def test_advances_with_physical_time(self):
        sched = Scheduler()
        lt = DirectoryLogicalTime(sched, skews=[0, 3], period=10)
        assert lt.now(0) == 0
        sched.after(25, lambda: None)
        sched.run()
        assert lt.now(0) == 2  # 25 // 10
        assert lt.now(1) == 2  # (25+3) // 10

    def test_skew_shifts_reading(self):
        sched = Scheduler()
        lt = DirectoryLogicalTime(sched, skews=[0, 9], period=10)
        sched.after(5, lambda: None)
        sched.run()
        assert lt.now(0) == 0
        assert lt.now(1) == 1  # (5+9)//10

    def test_max_skew_delta(self):
        sched = Scheduler()
        lt = DirectoryLogicalTime(sched, skews=[2, 7, 4], period=10)
        assert lt.max_skew_delta == 5

    def test_causality_with_bounded_skew(self):
        """If event A at node a causes event B at node b at least
        ``min_latency`` cycles later, and skews differ by less than
        ``min_latency``, then lt(A) <= lt(B)."""
        sched = Scheduler()
        min_latency = 10
        lt = DirectoryLogicalTime(sched, skews=[0, 9], period=7)
        for t_a in range(0, 100, 13):
            t_b = t_a + min_latency
            lt_a = (t_a + 0) // 7
            lt_b = (t_b + 9) // 7
            assert lt_a <= lt_b

    def test_invalid_parameters(self):
        sched = Scheduler()
        with pytest.raises(ConfigError):
            DirectoryLogicalTime(sched, skews=[0], period=0)
        with pytest.raises(ConfigError):
            DirectoryLogicalTime(sched, skews=[-1], period=10)
