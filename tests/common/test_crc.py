"""CRC-16 hashing (paper Section 4.3, "Data Block Hashing")."""

import pytest
from hypothesis import given, strategies as st

import repro.common.crc as crc
from repro.common.crc import (
    _crc16_bytes_py,
    crc16_bytes,
    crc16_words,
    hash_block,
    pack_words,
)
from repro.common.types import WORDS_PER_BLOCK


class TestCrc16Bytes:
    def test_known_vector(self):
        # CRC-16/CCITT-FALSE of "123456789" is the classic check value.
        assert crc16_bytes(b"123456789") == 0x29B1

    def test_empty_input(self):
        assert crc16_bytes(b"") == 0xFFFF  # just the init value

    def test_sixteen_bit_range(self):
        assert 0 <= crc16_bytes(b"\x00" * 64) <= 0xFFFF

    def test_deterministic(self):
        data = bytes(range(64))
        assert crc16_bytes(data) == crc16_bytes(data)


class TestCrc16Words:
    def test_matches_byte_encoding(self):
        words = [0x01020304, 0xA0B0C0D0]
        raw = b"\x01\x02\x03\x04\xa0\xb0\xc0\xd0"
        assert crc16_words(words) == crc16_bytes(raw)

    def test_masks_overwide_words(self):
        assert crc16_words([0x1_0000_0001]) == crc16_words([1])


class TestHashBlock:
    def test_requires_full_block(self):
        with pytest.raises(ValueError):
            hash_block([0] * (WORDS_PER_BLOCK - 1))

    def test_zero_block(self):
        assert hash_block([0] * WORDS_PER_BLOCK) == crc16_words([0] * WORDS_PER_BLOCK)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=0xFFFFFFFF),
            min_size=WORDS_PER_BLOCK,
            max_size=WORDS_PER_BLOCK,
        ),
        st.integers(min_value=0, max_value=WORDS_PER_BLOCK - 1),
        st.integers(min_value=1, max_value=0xFFFF),
    )
    def test_detects_sub16bit_corruption(self, block, index, flip):
        """CRC-16 never misses corruptions of fewer than 16 bits in one
        word (the paper's false-negative analysis)."""
        corrupted = list(block)
        corrupted[index] ^= flip
        assert hash_block(block) != hash_block(corrupted)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=0xFFFFFFFF),
            min_size=WORDS_PER_BLOCK,
            max_size=WORDS_PER_BLOCK,
        )
    )
    def test_stable_and_bounded(self, block):
        value = hash_block(block)
        assert 0 <= value <= 0xFFFF
        assert value == hash_block(list(block))


class TestFastPathEquivalence:
    """The binascii/bytes-packing fast path must match the reference
    table implementation bit for bit."""

    @given(st.binary(max_size=256))
    def test_crc_hqx_matches_reference_table(self, data):
        assert crc16_bytes(data) == _crc16_bytes_py(data)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=0xFFFFFFFF),
            min_size=0,
            max_size=2 * WORDS_PER_BLOCK,
        )
    )
    def test_words_equal_packed_bytes(self, words):
        assert crc16_words(words) == crc16_bytes(pack_words(words))

    def test_pack_words_masks_and_orders(self):
        assert pack_words([0x01020304]) == b"\x01\x02\x03\x04"
        assert pack_words([0x1_0000_0001]) == b"\x00\x00\x00\x01"

    def test_hash_block_does_not_copy_lists(self, monkeypatch):
        """hash_block consumes a list in place — no intermediate
        list() copy on the hot path."""
        copies = []

        def spying_list(value):
            copies.append(value)
            return [v for v in value]

        # Shadow the builtin within the crc module's namespace.
        monkeypatch.setattr(crc, "list", spying_list, raising=False)
        block = [i & 0xFFFFFFFF for i in range(WORDS_PER_BLOCK)]
        expected = crc16_words(block)
        assert crc.hash_block(block) == expected
        assert copies == []
        # Non-list iterables still get materialised exactly once.
        assert crc.hash_block(iter(block)) == expected
        assert len(copies) == 1
