"""Statistics registry."""

from hypothesis import given, strategies as st

from repro.common.stats import Histogram, StatsRegistry, mean_stddev


class TestCounters:
    def test_incr_and_read(self):
        s = StatsRegistry()
        s.incr("a.b")
        s.incr("a.b", 4)
        assert s.counter("a.b") == 5
        assert s.counter("missing") == 0

    def test_prefix_sum(self):
        s = StatsRegistry()
        s.incr("l1.0.misses", 3)
        s.incr("l1.1.misses", 4)
        s.incr("l2.0.misses", 100)
        assert s.sum("l1.") == 7

    def test_max_over(self):
        s = StatsRegistry()
        s.incr("net.link.0-1", 10)
        s.incr("net.link.1-2", 30)
        key, value = s.max_over("net.link.")
        assert key == "net.link.1-2" and value == 30

    def test_max_over_empty(self):
        assert StatsRegistry().max_over("nothing") == ("", 0)

    def test_counters_with_prefix(self):
        s = StatsRegistry()
        s.incr("x.a")
        s.incr("y.b")
        assert list(s.counters_with_prefix("x.")) == ["x.a"]


class TestHistogram:
    def test_mean_and_bounds(self):
        h = Histogram()
        for value in (1, 2, 3):
            h.record(value)
        assert h.mean == 2
        assert h.min == 1 and h.max == 3
        assert h.count == 3

    def test_stddev_of_constant_is_zero(self):
        h = Histogram()
        for _ in range(5):
            h.record(7)
        assert h.stddev == 0

    def test_mean_clamped_into_observed_range(self):
        # 0.1 + 0.1 + 0.1 = 0.30000000000000004: without clamping the
        # mean lands a ULP above max.
        h = Histogram()
        for _ in range(3):
            h.record(0.1)
        assert h.mean == 0.1
        assert h.min <= h.mean <= h.max

    def test_registry_histograms(self):
        s = StatsRegistry()
        s.record("lat", 10)
        s.record("lat", 20)
        assert s.histogram("lat").mean == 15
        flattened = s.as_dict()
        assert flattened["lat.mean"] == 15
        assert flattened["lat.count"] == 2


class TestMeanStddev:
    def test_empty(self):
        assert mean_stddev([]) == (0.0, 0.0)

    def test_single(self):
        assert mean_stddev([5]) == (5.0, 0.0)

    def test_known_values(self):
        mean, std = mean_stddev([2, 4, 4, 4, 5, 5, 7, 9])
        assert mean == 5.0
        assert round(std, 4) == 2.1381  # sample stddev

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
    def test_stddev_nonnegative(self, values):
        mean, std = mean_stddev(values)
        assert std >= 0
        assert min(values) <= mean <= max(values)

    def test_identical_values_mean_in_range(self):
        # Regression: naive sum put the mean of identical values a few
        # ULPs outside [min, max].
        mean, std = mean_stddev([0.1, 0.1, 0.1])
        assert mean == 0.1
        assert std >= 0
