"""Randomized flat-vs-legacy kernel equivalence (hypothesis).

The flat :class:`Scheduler` (two-slot bucket records, batch advance,
inline drain cursor) must be observationally identical to
:class:`LegacyScheduler` (object/tuple records, one-cycle cursor): same
callback order, same ``now`` labels, same ``pending()`` at every event,
same ``events_processed``.  Property-based scenarios mix the whole
scheduling surface — ``at``/``after`` (cancellable handles),
``post``/``post_at`` (flat fast path), cancellation before and during
the run, and sparse far-future delays that force overflow-heap
migration and quiescent window jumps.

Mirrors the hand-rolled heap harness in ``test_events.py``
(``TestCalendarVsReferenceHeap``); here hypothesis owns scenario
generation and shrinking.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.events import DENSE_SPAN, RING_SIZE, LegacyScheduler, Scheduler

#: Delay palette: same-cycle, dense-probe range, just past DENSE_SPAN
#: (sparse ``_times``-heap records), and past the ring window (overflow
#: heap + window jumps).
DELAYS = [0, 1, 2, 3, 7, 17, DENSE_SPAN + 1, 100, RING_SIZE + 5, 2 * RING_SIZE + 13, 4096]

_action = st.one_of(
    st.tuples(st.just("after"), st.sampled_from(DELAYS), st.integers(0, 2)),
    st.tuples(st.just("at"), st.sampled_from(DELAYS), st.integers(0, 2)),
    st.tuples(st.just("post"), st.sampled_from(DELAYS)),
    st.tuples(st.just("post_at"), st.sampled_from(DELAYS)),
    st.tuples(st.just("cancel"), st.integers(0, 63)),
)

_programs = st.lists(_action, min_size=1, max_size=40)


def _drive(sched, program, untils=()):
    """Run ``program`` on ``sched``; return the full observable trace.

    Respawning callbacks pick their delays deterministically from the
    program (tag arithmetic), so both kernels see byte-for-byte the
    same scenario.
    """
    trace = []
    handles = []
    tags = iter(range(10**9))

    def fire(tag, respawn):
        trace.append((sched.now, tag, sched.pending()))
        if respawn > 0:
            delay = DELAYS[(tag * 7 + respawn) % len(DELAYS)]
            handles.append(sched.after(delay, fire, tag + 1000, respawn - 1))
        # Deterministic mid-run cancellation of an arbitrary live handle.
        if handles and tag % 3 == 0:
            handles.pop(tag % len(handles)).cancel()

    def fire_post(tag):
        trace.append((sched.now, tag, sched.pending()))

    for op in program:
        kind = op[0]
        if kind == "after":
            handles.append(sched.after(op[1], fire, next(tags), op[2]))
        elif kind == "at":
            handles.append(sched.at(sched.now + op[1], fire, next(tags), op[2]))
        elif kind == "post":
            sched.post(op[1], fire_post, (next(tags),))
        elif kind == "post_at":
            sched.post_at(sched.now + op[1], fire_post, (next(tags),))
        else:  # cancel
            if handles:
                handles.pop(op[1] % len(handles)).cancel()

    for until in untils:
        sched.run(until=until)
        trace.append(("now", sched.now, sched.pending()))
    sched.run()
    return trace, sched.now, sched.events_processed, sched.pending()


@settings(deadline=None, max_examples=60)
@given(program=_programs)
def test_flat_matches_legacy(program):
    assert _drive(Scheduler(), program) == _drive(LegacyScheduler(), program)


@settings(deadline=None, max_examples=40)
@given(
    program=_programs,
    untils=st.lists(
        st.sampled_from([10, DENSE_SPAN, RING_SIZE, 2 * RING_SIZE + 31, 5000]),
        min_size=1,
        max_size=3,
    ),
)
def test_flat_matches_legacy_with_until(program, untils):
    """Bounded runs: ``until`` cuts mid-window and mid-overflow; the
    final unbounded run drains the rest.  ``until`` values must be
    non-decreasing to be meaningful on both kernels."""
    untils = sorted(untils)
    assert _drive(Scheduler(), program, untils) == _drive(
        LegacyScheduler(), program, untils
    )


@settings(deadline=None, max_examples=30)
@given(
    delays=st.lists(
        st.sampled_from([RING_SIZE + 1, 3 * RING_SIZE, 5 * RING_SIZE + 77, 4096, 65536]),
        min_size=1,
        max_size=12,
    ),
    cancel_mask=st.integers(0, 2**12 - 1),
)
def test_sparse_window_jumps_match(delays, cancel_mask):
    """Far-future-only scenarios: every event migrates through the
    overflow heap and the drain cursor batch-advances across long
    quiescent spans; a subset is cancelled before running."""

    def drive(sched):
        trace = []
        handles = [
            sched.after(d, lambda i=i: trace.append((sched.now, i)))
            for i, d in enumerate(delays)
        ]
        for i, handle in enumerate(handles):
            if cancel_mask & (1 << i):
                handle.cancel()
        sched.run()
        return trace, sched.now, sched.events_processed, sched.pending()

    assert drive(Scheduler()) == drive(LegacyScheduler())
