"""Discrete-event scheduler."""

import pytest

from repro.common.errors import SimulationError
from repro.common.events import Scheduler


class TestScheduling:
    def test_runs_in_time_order(self):
        s = Scheduler()
        out = []
        s.after(10, out.append, "b")
        s.after(5, out.append, "a")
        s.after(20, out.append, "c")
        s.run()
        assert out == ["a", "b", "c"]
        assert s.now == 20

    def test_ties_break_by_insertion_order(self):
        s = Scheduler()
        out = []
        for tag in "abc":
            s.after(7, out.append, tag)
        s.run()
        assert out == ["a", "b", "c"]

    def test_zero_delay_runs_at_current_time(self):
        s = Scheduler()
        out = []
        s.after(0, out.append, 1)
        s.run()
        assert s.now == 0 and out == [1]

    def test_negative_delay_rejected(self):
        s = Scheduler()
        with pytest.raises(SimulationError):
            s.after(-1, lambda: None)

    def test_schedule_in_past_rejected(self):
        s = Scheduler()
        s.after(10, lambda: None)
        s.run()
        with pytest.raises(SimulationError):
            s.at(5, lambda: None)

    def test_events_scheduled_during_run(self):
        s = Scheduler()
        out = []

        def chain(n):
            out.append(n)
            if n < 3:
                s.after(1, chain, n + 1)

        s.after(0, chain, 0)
        s.run()
        assert out == [0, 1, 2, 3]
        assert s.now == 3


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        s = Scheduler()
        out = []
        event = s.after(5, out.append, "x")
        event.cancel()
        s.run()
        assert out == []

    def test_cancel_is_idempotent(self):
        s = Scheduler()
        event = s.after(5, lambda: None)
        event.cancel()
        event.cancel()
        s.run()


class TestBounds:
    def test_until_stops_before_later_events(self):
        s = Scheduler()
        out = []
        s.after(5, out.append, "a")
        s.after(50, out.append, "b")
        s.run(until=10)
        assert out == ["a"]
        assert s.now == 10
        s.run()
        assert out == ["a", "b"]

    def test_stop_when_predicate(self):
        s = Scheduler()
        out = []
        for i in range(10):
            s.after(i, out.append, i)
        s.run(stop_when=lambda: len(out) >= 3)
        assert len(out) == 3

    def test_max_events_guard(self):
        s = Scheduler()

        def forever():
            s.after(1, forever)

        s.after(0, forever)
        with pytest.raises(SimulationError):
            s.run(max_events=100)

    def test_events_processed_counter(self):
        s = Scheduler()
        for i in range(5):
            s.after(i, lambda: None)
        s.run()
        assert s.events_processed == 5
