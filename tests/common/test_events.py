"""Discrete-event scheduler."""

import heapq
import itertools
import random

import pytest

from repro.common.errors import SimulationError
from repro.common.events import RING_SIZE, Scheduler


class TestScheduling:
    def test_runs_in_time_order(self):
        s = Scheduler()
        out = []
        s.after(10, out.append, "b")
        s.after(5, out.append, "a")
        s.after(20, out.append, "c")
        s.run()
        assert out == ["a", "b", "c"]
        assert s.now == 20

    def test_ties_break_by_insertion_order(self):
        s = Scheduler()
        out = []
        for tag in "abc":
            s.after(7, out.append, tag)
        s.run()
        assert out == ["a", "b", "c"]

    def test_zero_delay_runs_at_current_time(self):
        s = Scheduler()
        out = []
        s.after(0, out.append, 1)
        s.run()
        assert s.now == 0 and out == [1]

    def test_negative_delay_rejected(self):
        s = Scheduler()
        with pytest.raises(SimulationError):
            s.after(-1, lambda: None)

    def test_schedule_in_past_rejected(self):
        s = Scheduler()
        s.after(10, lambda: None)
        s.run()
        with pytest.raises(SimulationError):
            s.at(5, lambda: None)

    def test_events_scheduled_during_run(self):
        s = Scheduler()
        out = []

        def chain(n):
            out.append(n)
            if n < 3:
                s.after(1, chain, n + 1)

        s.after(0, chain, 0)
        s.run()
        assert out == [0, 1, 2, 3]
        assert s.now == 3


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        s = Scheduler()
        out = []
        event = s.after(5, out.append, "x")
        event.cancel()
        s.run()
        assert out == []

    def test_cancel_is_idempotent(self):
        s = Scheduler()
        event = s.after(5, lambda: None)
        event.cancel()
        event.cancel()
        s.run()


class TestBounds:
    def test_until_stops_before_later_events(self):
        s = Scheduler()
        out = []
        s.after(5, out.append, "a")
        s.after(50, out.append, "b")
        s.run(until=10)
        assert out == ["a"]
        assert s.now == 10
        s.run()
        assert out == ["a", "b"]

    def test_stop_when_predicate(self):
        s = Scheduler()
        out = []
        for i in range(10):
            s.after(i, out.append, i)
        s.run(stop_when=lambda: len(out) >= 3)
        assert len(out) == 3

    def test_max_events_guard(self):
        s = Scheduler()

        def forever():
            s.after(1, forever)

        s.after(0, forever)
        with pytest.raises(SimulationError):
            s.run(max_events=100)

    def test_events_processed_counter(self):
        s = Scheduler()
        for i in range(5):
            s.after(i, lambda: None)
        s.run()
        assert s.events_processed == 5

    def test_until_inside_a_bucket(self):
        """`until` between populated cycles of the current ring window."""
        s = Scheduler()
        out = []
        for tag in "ab":
            s.after(5, out.append, tag)
        s.after(6, out.append, "c")
        s.run(until=5)
        assert out == ["a", "b"]
        assert s.now == 5
        s.run(until=5)  # idempotent: nothing left at or before 5
        assert out == ["a", "b"]
        s.run()
        assert out == ["a", "b", "c"]
        assert s.now == 6

    def test_until_before_overflow_event(self):
        """`until` must not let a window jump run far-future events."""
        s = Scheduler()
        out = []
        s.after(3 * RING_SIZE, out.append, "far")
        s.run(until=10)
        assert out == []
        assert s.now == 10
        assert s.pending() == 1
        s.run()
        assert out == ["far"]
        assert s.now == 3 * RING_SIZE

    def test_stop_when_mid_bucket_then_resume(self):
        s = Scheduler()
        out = []
        for tag in "abcd":
            s.after(5, out.append, tag)
        s.run(stop_when=lambda: len(out) >= 2)
        assert out == ["a", "b"]
        s.run()
        assert out == ["a", "b", "c", "d"]


class TestCalendarQueueEdges:
    def test_after_zero_runs_same_cycle_in_seq_order(self):
        """after(0) from inside a callback joins the *current* cycle,
        behind everything already queued for it."""
        s = Scheduler()
        out = []

        def first():
            out.append("first")
            s.after(0, out.append, "spawned")

        s.after(5, first)
        s.after(5, out.append, "second")
        s.run()
        assert out == ["first", "second", "spawned"]
        assert s.now == 5

    def test_pending_excludes_executing_event(self):
        """Inside a callback the event being executed is already popped
        (heap-kernel semantics checkers rely on for quiescence polls)."""
        s = Scheduler()
        seen = []
        s.after(4, lambda: seen.append(s.pending()))
        s.run()
        assert seen == [0]

    def test_cancel_far_future_overflow_event(self):
        s = Scheduler()
        out = []
        doomed = s.after(5 * RING_SIZE, out.append, "doomed")
        s.after(4 * RING_SIZE, out.append, "kept")
        doomed.cancel()
        s.run()
        assert out == ["kept"]
        assert s.now == 4 * RING_SIZE
        assert s.pending() == 0

    def test_cancel_overflow_event_mid_run(self):
        """Cancellation after the event migrated into the ring."""
        s = Scheduler()
        out = []
        doomed = s.after(2 * RING_SIZE + 7, out.append, "doomed")
        s.after(2 * RING_SIZE + 3, doomed.cancel)
        s.run()
        assert out == []
        assert s.pending() == 0

    def test_event_beyond_ring_window_keeps_time_label(self):
        """An event more than a ring period ahead must run at its own
        time, not an alias one period early."""
        s = Scheduler()
        seen = []
        s.after(0, lambda: None)
        s.after(RING_SIZE + 13, lambda: seen.append(s.now))
        s.run()
        assert seen == [RING_SIZE + 13]

    def test_step_drains_one_event_at_a_time(self):
        s = Scheduler()
        out = []
        s.after(2, out.append, "a")
        s.after(2, out.append, "b")
        s.after(RING_SIZE * 3, out.append, "c")
        assert s.step() and out == ["a"]
        assert s.step() and out == ["a", "b"]
        assert s.step() and out == ["a", "b", "c"]
        assert not s.step()
        assert s.pending() == 0


class _RefEvent:
    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time, seq, callback, args):
        self.time, self.seq = time, seq
        self.callback, self.args = callback, args
        self.cancelled = False

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def cancel(self):
        self.cancelled = True


class _HeapScheduler:
    """Reference kernel: the plain (time, seq) binary heap the calendar
    queue replaced.  Kept minimal — just enough surface for the
    equivalence test."""

    def __init__(self):
        self._heap = []
        self._seq = itertools.count()
        self.now = 0

    def at(self, time, callback, *args):
        event = _RefEvent(time, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def after(self, delay, callback, *args):
        return self.at(self.now + delay, callback, *args)

    def run(self, until=None):
        while self._heap:
            event = self._heap[0]
            if until is not None and event.time > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback(*event.args)
        if until is not None and until > self.now:
            self.now = until


class TestCalendarVsReferenceHeap:
    """Randomized equivalence: identical scenarios through the calendar
    queue and a reference heap must produce identical traces."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_traces_match(self, seed):
        def drive(sched):
            rng = random.Random(seed)
            trace = []
            cancellable = []

            def fire(tag, respawn):
                trace.append((sched.now, tag))
                if respawn > 0:
                    delay = rng.choice((0, 1, 2, 3, 17, RING_SIZE + 5, 4096))
                    handle = sched.after(delay, fire, f"{tag}.{respawn}",
                                         respawn - 1)
                    if rng.random() < 0.2:
                        cancellable.append(handle)
                if cancellable and rng.random() < 0.3:
                    cancellable.pop(rng.randrange(len(cancellable))).cancel()

            for i in range(25):
                sched.after(rng.randrange(0, 3 * RING_SIZE), fire, str(i),
                            rng.randrange(0, 4))
            sched.run()
            return trace, sched.now

        calendar = drive(Scheduler())
        reference = drive(_HeapScheduler())
        assert calendar == reference

    @pytest.mark.parametrize("seed", range(4))
    def test_random_traces_match_with_until(self, seed):
        def drive(sched):
            rng = random.Random(1000 + seed)
            trace = []

            def fire(tag):
                trace.append((sched.now, tag))
                if rng.random() < 0.5:
                    sched.after(rng.randrange(0, 2 * RING_SIZE), fire,
                                tag + "'")

            for i in range(20):
                sched.after(rng.randrange(0, 4 * RING_SIZE), fire, str(i))
            for until in (10, RING_SIZE, 2 * RING_SIZE + 31, None):
                sched.run(until=until)
                trace.append(("now", sched.now))
            return trace

        assert drive(Scheduler()) == drive(_HeapScheduler())
