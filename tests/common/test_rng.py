"""Deterministic split RNG."""

from repro.common.rng import SplitRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = SplitRng(42)
        b = SplitRng(42)
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)
        ]

    def test_children_are_independent_of_sibling_consumption(self):
        parent = SplitRng(7)
        child_a_1 = parent.child("a")
        first = [child_a_1.randint(0, 1000) for _ in range(5)]
        # Consuming another child's stream must not perturb "a".
        parent2 = SplitRng(7)
        child_b = parent2.child("b")
        [child_b.randint(0, 1000) for _ in range(50)]
        child_a_2 = parent2.child("a")
        assert [child_a_2.randint(0, 1000) for _ in range(5)] == first

    def test_child_derivation_is_content_hashed(self):
        """Cross-process reproducibility: no dependence on PYTHONHASHSEED."""
        assert SplitRng(1).child("x").seed == SplitRng(1).child("x").seed
        assert SplitRng(1).child("x").seed != SplitRng(1).child("y").seed
        assert SplitRng(1).child("x").seed != SplitRng(2).child("x").seed

    def test_delegated_draws(self):
        rng = SplitRng(3)
        assert 0 <= rng.random() < 1
        assert rng.randrange(10) in range(10)
        assert rng.choice([1, 2, 3]) in (1, 2, 3)
        seq = [1, 2, 3, 4]
        rng.shuffle(seq)
        assert sorted(seq) == [1, 2, 3, 4]
        assert len(rng.sample(range(10), 3)) == 3
