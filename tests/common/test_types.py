"""Address helpers, operation types, membar masks."""

from hypothesis import given, strategies as st

from repro.common.types import (
    BLOCK_SIZE,
    WORD_SIZE,
    WORDS_PER_BLOCK,
    CoherenceState,
    EpochType,
    MembarMask,
    OpType,
    block_of,
    is_word_aligned,
    word_index,
    word_of,
)


class TestAddressHelpers:
    def test_block_alignment(self):
        assert block_of(0) == 0
        assert block_of(63) == 0
        assert block_of(64) == 64
        assert block_of(0x12345) == 0x12340

    def test_word_alignment(self):
        assert word_of(7) == 4
        assert is_word_aligned(8)
        assert not is_word_aligned(9)

    def test_word_index_range(self):
        assert word_index(0) == 0
        assert word_index(BLOCK_SIZE - WORD_SIZE) == WORDS_PER_BLOCK - 1

    @given(st.integers(min_value=0, max_value=2**40))
    def test_block_of_idempotent(self, addr):
        assert block_of(block_of(addr)) == block_of(addr)
        assert block_of(addr) <= addr
        assert addr - block_of(addr) < BLOCK_SIZE

    @given(st.integers(min_value=0, max_value=2**40))
    def test_word_index_consistent(self, addr):
        assert 0 <= word_index(addr) < WORDS_PER_BLOCK
        reconstructed = block_of(addr) + word_index(addr) * WORD_SIZE
        assert reconstructed == word_of(addr)


class TestOpType:
    def test_memory_access_classification(self):
        assert OpType.LOAD.is_memory_access()
        assert OpType.STORE.is_memory_access()
        assert OpType.ATOMIC.is_memory_access()
        assert not OpType.MEMBAR.is_memory_access()
        assert not OpType.STBAR.is_memory_access()

    def test_barrier_classification(self):
        assert OpType.MEMBAR.is_barrier()
        assert OpType.STBAR.is_barrier()
        assert not OpType.LOAD.is_barrier()

    def test_atomic_expands_to_load_and_store(self):
        assert set(OpType.ATOMIC.access_types()) == {OpType.LOAD, OpType.STORE}

    def test_plain_ops_expand_to_themselves(self):
        assert OpType.LOAD.access_types() == (OpType.LOAD,)
        assert OpType.STORE.access_types() == (OpType.STORE,)


class TestMembarMask:
    def test_bit_values_match_sparc_encoding(self):
        assert MembarMask.LOADLOAD == 0x1
        assert MembarMask.LOADSTORE == 0x2
        assert MembarMask.STORELOAD == 0x4
        assert MembarMask.STORESTORE == 0x8

    def test_full_mask(self):
        assert MembarMask.full() == MembarMask.ALL == 0xF

    def test_mask_composition(self):
        combined = MembarMask.LOADLOAD | MembarMask.STORESTORE
        assert combined & MembarMask.LOADLOAD
        assert not (combined & MembarMask.STORELOAD)


class TestCoherenceState:
    def test_read_permissions(self):
        assert CoherenceState.M.can_read()
        assert CoherenceState.O.can_read()
        assert CoherenceState.S.can_read()
        assert not CoherenceState.I.can_read()

    def test_write_permissions(self):
        assert CoherenceState.M.can_write()
        for state in (CoherenceState.O, CoherenceState.S, CoherenceState.I):
            assert not state.can_write()

    def test_ownership(self):
        assert CoherenceState.M.is_owner()
        assert CoherenceState.O.is_owner()
        assert not CoherenceState.S.is_owner()
        assert not CoherenceState.I.is_owner()


class TestEpochType:
    def test_two_kinds(self):
        assert {EpochType.READ_ONLY, EpochType.READ_WRITE}
