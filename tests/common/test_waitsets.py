"""Wait/notify plane (wakeup kernel)."""

import pytest

from repro.common.events import LegacyScheduler, Scheduler
from repro.common.waitsets import WaitSet, WakeHub


@pytest.fixture(params=[Scheduler, LegacyScheduler], ids=["flat", "legacy"])
def sched(request):
    return request.param()


def make_hub(sched, poll_mode=False):
    return WakeHub(sched, poll_mode=poll_mode)


class Gate:
    """A parkable check over an explicit boolean condition."""

    def __init__(self, ws, log, name):
        self.ws = ws
        self.log = log
        self.name = name
        self.open = False

    def check(self):
        if not self.open:
            self.ws.park(self.check)
            return
        self.log.append((self.ws.hub._sched.now, self.name))


class TestWakeups:
    def test_notify_wakes_at_next_grid_point(self, sched):
        hub = make_hub(sched)
        ws = WaitSet(hub)
        log = []
        gate = Gate(ws, log, "g")
        sched.post(0, gate.check)

        def release():
            gate.open = True
            ws.notify()

        sched.post(5, release)
        sched.run()
        # Parked at 0; grid is {2, 4, 6, ...}; release at 5 wakes the
        # check at 6 — the first poll that would have seen it.
        assert log == [(6, "g")]
        assert hub.wakes == 1 and hub.parked_now == 0

    def test_no_events_between_park_and_notify(self, sched):
        hub = make_hub(sched)
        ws = WaitSet(hub)
        gate = Gate(ws, [], "g")
        sched.post(0, gate.check)
        sched.run()
        # Blocked forever with no notify: the queue drains (no polls).
        assert sched.pending() == 0
        assert hub.parked_now == 1

    def test_agenda_runs_in_global_park_order(self, sched):
        # Waiters from *different* wait sets parked in order b, a, c
        # and all notified for the same cycle must check in park order.
        hub = make_hub(sched)
        log = []
        gates = {}
        for name in "bac":
            ws = WaitSet(hub)
            gates[name] = Gate(ws, log, name)
        for name in "bac":
            sched.post(0, gates[name].check)

        def release_all():
            for g in gates.values():
                g.open = True
                g.ws.notify()

        sched.post(3, release_all)
        sched.run()
        assert [name for _t, name in log] == ["b", "a", "c"]
        assert len({t for t, _ in log}) == 1

    def test_agenda_interleaves_after_posted_events(self, sched):
        # A cycle's agenda runs in the late lane: after every normal
        # event of that cycle, including delay-0 posts made during it.
        hub = make_hub(sched)
        ws = WaitSet(hub)
        log = []
        gate = Gate(ws, log, "woke")
        sched.post(0, gate.check)

        def release():
            gate.open = True
            ws.notify()
            log.append((sched.now, "release"))
            sched.post(0, lambda: log.append((sched.now, "chained")))

        sched.post(4, release)
        sched.post(4, lambda: log.append((sched.now, "posted")))
        sched.run()
        assert log == [
            (4, "release"),
            (4, "posted"),
            (4, "chained"),
            (4, "woke"),
        ]

    def test_notify_without_waiters_is_noop(self, sched):
        hub = make_hub(sched)
        ws = WaitSet(hub)
        ws.notify()
        sched.run()
        assert hub.notifies == 1
        assert sched.pending() == 0

    def test_park_after_notify_waits_for_next_notify(self, sched):
        # A notify carries no memory: a check parked after it stays
        # parked until the *next* notify.
        hub = make_hub(sched)
        ws = WaitSet(hub)
        log = []
        gate = Gate(ws, log, "g")
        sched.post(2, ws.notify)
        sched.post(4, gate.check)

        def release():
            gate.open = True
            ws.notify()

        sched.post(9, release)
        sched.run()
        assert log == [(10, "g")]  # grid {6, 8, 10}: first point >= 9

    def test_failed_check_reparks_same_episode(self, sched):
        hub = make_hub(sched)
        ws = WaitSet(hub)
        log = []
        gate = Gate(ws, log, "g")
        sched.post(0, gate.check)
        # Two spurious notifies, then the real one.
        sched.post(3, ws.notify)
        sched.post(7, ws.notify)

        def release():
            gate.open = True
            ws.notify()

        sched.post(11, release)
        sched.run()
        assert log == [(12, "g")]
        assert hub.waits_parked == 1  # one episode, despite re-parks
        assert hub.spurious_wakeups == 2
        assert hub.wakes == 1
        snap = hub.obs_snapshot()
        assert snap["wait_cycles"] == {
            "count": 1,
            "sum": 12,
            "min": 12,
            "max": 12,
        }

    def test_at_most_one_pending_retry_per_record(self, sched):
        # Two paths kicking the same stalled check must not stack a
        # second episode (generalised ``_verify_retry_scheduled``).
        hub = make_hub(sched)
        ws = WaitSet(hub)
        log = []
        gate = Gate(ws, log, "g")
        w1 = ws.park(gate.check)
        w2 = ws.park(gate.check)
        assert w1 is w2
        assert len(ws.waiters) == 1
        assert hub.waits_parked == 1

    def test_cancel_is_idempotent_and_skips_armed_slot(self, sched):
        hub = make_hub(sched)
        ws = WaitSet(hub)
        log = []
        gate = Gate(ws, log, "g")
        w = ws.park(gate.check)
        sched.post(1, ws.notify)  # arms the cycle-2 agenda

        def drop():
            hub.cancel(w)
            hub.cancel(w)

        sched.post(1, drop)
        sched.run()
        assert log == []
        assert hub.parked_now == 0
        assert ws.waiters == []
        assert sched.pending() == 0

    def test_parked_waiters_are_not_pending_events(self, sched):
        hub = make_hub(sched)
        ws = WaitSet(hub)
        for i in range(5):
            ws.park(lambda i=i: None, (i,))
        # Five parked episodes, zero scheduler events.
        assert sched.pending() == 0
        ws.notify()
        # One shared agenda record (plus its lane sentinel), not five.
        assert sched.pending() == 2

    def test_poll_mode_rechecks_every_period_and_ignores_notify(self, sched):
        hub = make_hub(sched, poll_mode=True)
        ws = WaitSet(hub)
        checks = []

        class PollGate(Gate):
            def check(self):
                checks.append(self.ws.hub._sched.now)
                super().check()

        gate = PollGate(ws, [], "g")
        sched.post(0, gate.check)
        sched.post(3, ws.notify)  # ignored in poll mode

        def release():
            gate.open = True

        sched.post(9, release)
        sched.run()
        # Checked on every grid point until success — no early wake
        # from the notify at 3.
        assert checks == [0, 2, 4, 6, 8, 10]
        assert hub.notifies == 1 and hub.wakes == 1

    def test_wake_and_poll_check_cycles_match(self, sched):
        # The architectural core of the mode identity: the successful
        # check runs at the same cycle in both regimes.
        def run(poll_mode):
            s = sched.__class__()
            hub = make_hub(s, poll_mode=poll_mode)
            ws = WaitSet(hub)
            log = []
            gate = Gate(ws, log, "g")
            s.post(0, gate.check)

            def release():
                gate.open = True
                ws.notify()

            s.post(13, release)
            s.run()
            return log

        assert run(poll_mode=False) == run(poll_mode=True)


class TestHalt:
    def test_halt_stops_at_bucket_boundary(self, sched):
        out = []
        sched.post(1, out.append, (1,))
        sched.post(3, lambda: (out.append(3), sched.halt()))
        sched.post(3, out.append, ("same-cycle",))
        sched.post(5, out.append, (5,))
        sched.run()
        # The halting cycle finishes (same-cycle events still run);
        # later cycles do not.
        assert out == [1, 3, "same-cycle"]
        assert sched.now == 3
        sched.run()
        assert out[-1] == 5

    def test_halt_before_run_with_empty_queue_does_not_leak(self, sched):
        sched.halt()
        sched.run()  # consumes the flag even with nothing queued
        out = []
        sched.post(2, out.append, (2,))
        sched.run()
        assert out == [2]

    def test_halt_runs_late_lane_of_stop_cycle(self, sched):
        out = []

        def stopper():
            sched.post_late(0, out.append, ("late",))
            sched.halt()

        sched.post(2, stopper)
        sched.post(4, out.append, ("next",))
        sched.run()
        assert out == ["late"]
        assert sched.now == 2
