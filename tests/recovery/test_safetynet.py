"""SafetyNet checkpoint/recovery model."""

import pytest

from repro.common.errors import RecoveryError
from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.common.types import WORDS_PER_BLOCK
from repro.config import SafetyNetConfig, SystemConfig
from repro.recovery.safetynet import SafetyNet


def make_sn(interval=100, max_ckpts=4):
    sched = Scheduler()
    config = SystemConfig(
        safetynet=SafetyNetConfig(
            checkpoint_interval=interval, max_checkpoints=max_ckpts
        )
    )
    sn = SafetyNet(sched, StatsRegistry(), config)
    return sched, sn


def block(value):
    return [value] * WORDS_PER_BLOCK


class TestCheckpointLifecycle:
    def test_checkpoints_advance_on_schedule(self):
        sched, sn = make_sn(interval=100)
        assert sn.live_checkpoints == 1
        sched.after(350, lambda: None)
        sched.run(until=350)
        assert sn.live_checkpoints == 4  # t=0,100,200,300

    def test_old_checkpoints_retire(self):
        sched, sn = make_sn(interval=100, max_ckpts=3)
        sched.after(1000, lambda: None)
        sched.run(until=1000)
        assert sn.live_checkpoints == 3

    def test_recovery_window_property(self):
        config = SafetyNetConfig(checkpoint_interval=12_500, max_checkpoints=8)
        assert config.recovery_window == 100_000


class TestRecoverability:
    def test_recent_error_recoverable(self):
        sched, sn = make_sn(interval=100, max_ckpts=3)
        sched.after(250, lambda: None)
        sched.run(until=250)
        assert sn.can_recover(error_cycle=200)

    def test_ancient_error_not_recoverable(self):
        sched, sn = make_sn(interval=100, max_ckpts=3)
        sched.after(1000, lambda: None)
        sched.run(until=1000)
        # Oldest live checkpoint is ~t=800; an error at t=100 is lost.
        assert not sn.can_recover(error_cycle=100)

    def test_recovery_point_selection(self):
        sched, sn = make_sn(interval=100, max_ckpts=8)
        sched.after(450, lambda: None)
        sched.run(until=450)
        point = sn.recovery_point_for(error_cycle=230)
        assert point.start_cycle == 200


class TestUndoLogging:
    def test_first_touch_logging(self):
        sched, sn = make_sn(interval=100)
        sn._on_block_write(0, 0x1000, block(1))
        sn._on_block_write(0, 0x1000, block(2))  # second touch: not logged
        ckpt = sn._checkpoints[-1]
        assert ckpt.undo[0x1000] == block(1)

    def test_reconstruct_memory_image(self):
        """The undo chain restores the architectural value a block had
        at the recovery point."""
        sched, sn = make_sn(interval=100, max_ckpts=8)
        # Interval 0: block written, old value 10.
        sn._on_block_write(0, 0x1000, block(10))
        sched.after(150, lambda: None)
        sched.run(until=150)  # now in interval 1
        sn._on_block_write(0, 0x1000, block(20))
        sched.after(100, lambda: None)
        sched.run(until=250)  # interval 2
        sn._on_block_write(0, 0x1000, block(30))
        current = {0x1000: block(40)}
        # Roll back to an error at cycle 120 (checkpoint at 100):
        image = sn.reconstruct_memory_image(current, error_cycle=120)
        assert image[0x1000] == block(20)
        # Roll back to the very beginning:
        image = sn.reconstruct_memory_image(current, error_cycle=10)
        assert image[0x1000] == block(10)

    def test_reconstruct_beyond_window_raises(self):
        sched, sn = make_sn(interval=100, max_ckpts=2)
        sched.after(1000, lambda: None)
        sched.run(until=1000)
        with pytest.raises(RecoveryError):
            sn.reconstruct_memory_image({}, error_cycle=-50)

    def test_untouched_blocks_pass_through(self):
        sched, sn = make_sn()
        image = sn.reconstruct_memory_image({0x2000: block(5)}, error_cycle=0)
        assert image[0x2000] == block(5)
