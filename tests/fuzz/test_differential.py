"""Differential fuzz driver tests: classification, codecs, campaigns."""

import json

import pytest

from repro.fuzz import (
    FuzzCase,
    case_key,
    classify,
    plan_campaign,
    run_case,
    run_fuzz_campaign,
    shrink_case,
    write_reproducer,
)
from repro.workloads.litmus_gen import classics


def test_classify_matrix():
    assert classify(True, True, True) == "agree_clean"
    assert classify(False, False, True) == "agree_violation"
    assert classify(False, True, True) == "online_only"
    assert classify(True, False, True) == "missed_violation"
    assert classify(True, True, False) == "undecided"
    assert classify(False, False, False) == "undecided"


def test_case_json_round_trip():
    cases = [
        FuzzCase(model="TSO", seed=7),
        FuzzCase(model="SC", seed=1, litmus="st0.1,ld1;st1.9,ld0", name="SB"),
        FuzzCase(
            model="RMO",
            seed=3,
            nodes=3,
            ops=25,
            fault="wb-reorder",
            fault_cycle=5000,
        ),
    ]
    for case in cases:
        data = json.loads(json.dumps(case.to_json()))
        assert FuzzCase.from_json(data) == case


def test_fatal_outcomes():
    litmus = classics()[0].encode()
    clean = run_case(FuzzCase(model="TSO", seed=1, litmus=litmus))
    assert clean.outcome == "agree_clean" and not clean.fatal


@pytest.mark.parametrize("model", ["SC", "TSO", "PSO", "RMO"])
def test_classics_agree_on_every_model(model):
    for spec in classics()[:4]:
        case = FuzzCase(
            model=model, seed=2, litmus=spec.encode(), name=spec.name
        )
        result = run_case(case)
        assert not result.fatal, (spec.name, model, result.detail)


def test_plan_campaign_shape_and_determinism():
    a = plan_campaign(litmus_count=12, fault_runs=3, random_runs=2, seed=5)
    b = plan_campaign(litmus_count=12, fault_runs=3, random_runs=2, seed=5)
    assert a == b
    litmus = [c for c in a if c.litmus is not None]
    faults = [c for c in a if c.fault is not None]
    randoms = [c for c in a if c.litmus is None and c.fault is None]
    assert len(litmus) == 12 * 4  # every spec runs once per model
    assert len(faults) == 3
    assert len(randoms) == 2


def test_small_campaign_runs_clean(tmp_path):
    cases = plan_campaign(litmus_count=6, fault_runs=1, random_runs=1, seed=5)
    report = run_fuzz_campaign(
        cases, jobs=1, corpus_dir=str(tmp_path), reproducer_dir=str(tmp_path)
    )
    assert report.summary["cases"] == len(cases)
    assert report.summary["missed_violation"] == 0
    # online_only is legitimate for the fault-injected case (DVMC
    # detecting the landed fault); it is fatal only without a fault.
    assert not report.new_mismatches


def test_reproducer_file_name_is_stable(tmp_path):
    case = FuzzCase(model="TSO", seed=9, litmus="st0.1,ld1;st1.9,ld0")
    p1 = write_reproducer(case, "detail", str(tmp_path))
    p2 = write_reproducer(case, "detail", str(tmp_path))
    assert p1 == p2
    data = json.load(open(p1))
    assert FuzzCase.from_json(data["case"]) == case
    assert case_key(FuzzCase.from_json(data["case"])) == case_key(case)


def test_shrink_returns_original_when_no_mismatch():
    case = FuzzCase(model="TSO", seed=1, litmus=classics()[0].encode())
    shrunk, steps = shrink_case(case)
    assert shrunk == case  # nothing to shrink: the case does not mismatch
    assert steps >= 1
