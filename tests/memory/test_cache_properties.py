"""Property-based tests on cache array invariants."""

from hypothesis import given, settings, strategies as st

from repro.common.stats import StatsRegistry
from repro.common.types import WORDS_PER_BLOCK, CoherenceState, block_of
from repro.config import CacheConfig
from repro.memory.cache import CacheArray


def fresh_cache():
    return CacheArray(
        "prop", CacheConfig(size_bytes=2048, associativity=2), 64, StatsRegistry()
    )


@st.composite
def access_sequence(draw):
    """A sequence of (op, block_addr) operations over a small footprint."""
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["install", "lookup", "remove"]),
                st.integers(min_value=0, max_value=31),
            ),
            min_size=1,
            max_size=60,
        )
    )
    return [(op, index * 64) for op, index in ops]


class TestInvariants:
    @given(access_sequence())
    @settings(max_examples=100, deadline=None)
    def test_associativity_never_exceeded(self, sequence):
        """No set ever holds more valid lines than its associativity,
        provided callers evict victims before installing."""
        cache = fresh_cache()
        for op, addr in sequence:
            if op == "install":
                victim = cache.victim_for(addr)
                if victim is not None:
                    cache.remove(victim.addr)
                cache.install(addr, CoherenceState.S, [0] * WORDS_PER_BLOCK)
            elif op == "lookup":
                cache.lookup(addr)
            else:
                cache.remove(addr)
            for cache_set in cache._sets:
                if cache_set is None:  # lazily allocated: never touched
                    continue
                live = [
                    l
                    for l in cache_set.values()
                    if l.state is not CoherenceState.I
                ]
                assert len(live) <= cache.config.associativity

    @given(access_sequence())
    @settings(max_examples=60, deadline=None)
    def test_lookup_consistency(self, sequence):
        """A block is found iff it was installed and not removed since."""
        cache = fresh_cache()
        resident = set()
        for op, addr in sequence:
            if op == "install":
                victim = cache.victim_for(addr)
                if victim is not None:
                    cache.remove(victim.addr)
                    resident.discard(victim.addr)
                cache.install(addr, CoherenceState.S, [0] * WORDS_PER_BLOCK)
                resident.add(block_of(addr))
            elif op == "remove":
                cache.remove(addr)
                resident.discard(block_of(addr))
            else:
                found = cache.lookup(addr) is not None
                assert found == (block_of(addr) in resident)
        assert {l.addr for l in cache.lines()} == resident
