"""Main memory model and ECC behaviour."""

import pytest

from repro.common.errors import SimulationError
from repro.common.stats import StatsRegistry
from repro.common.types import WORDS_PER_BLOCK
from repro.memory.memory import MainMemory


def make_mem(ecc=True):
    return MainMemory(StatsRegistry(), ecc_enabled=ecc)


class TestReadsAndWrites:
    def test_uninitialised_reads_zero(self):
        mem = make_mem()
        assert mem.read_word(0x1000) == 0
        assert mem.read_block(0x1000) == [0] * WORDS_PER_BLOCK

    def test_word_round_trip(self):
        mem = make_mem()
        mem.write_word(0x1004, 0xDEAD)
        assert mem.read_word(0x1004) == 0xDEAD
        assert mem.read_word(0x1000) == 0

    def test_block_round_trip(self):
        mem = make_mem()
        data = list(range(WORDS_PER_BLOCK))
        mem.write_block(0x2000, data)
        assert mem.read_block(0x2000) == data

    def test_block_reads_are_copies(self):
        mem = make_mem()
        mem.write_block(0x2000, [7] * WORDS_PER_BLOCK)
        copy = mem.read_block(0x2000)
        copy[0] = 99
        assert mem.read_word(0x2000) == 7

    def test_values_masked_to_32_bits(self):
        mem = make_mem()
        mem.write_word(0, 0x1_2345_6789)
        assert mem.read_word(0) == 0x2345_6789

    def test_bad_block_size_rejected(self):
        mem = make_mem()
        with pytest.raises(SimulationError):
            mem.write_block(0, [0] * 3)

    def test_touched_blocks(self):
        mem = make_mem()
        mem.write_word(0x1000, 1)
        mem.write_word(0x2004, 2)
        assert set(mem.touched_blocks()) == {0x1000, 0x2000}


class TestEcc:
    def test_ecc_corrects_single_injection(self):
        stats = StatsRegistry()
        mem = MainMemory(stats, ecc_enabled=True)
        mem.write_word(0x100, 0xAB)
        landed = mem.corrupt_word(0x100, 0x1, defeat_ecc=False)
        assert not landed
        assert mem.read_word(0x100) == 0xAB
        assert stats.counter("mem.ecc_corrected") == 1

    def test_multibit_defeats_ecc(self):
        mem = make_mem()
        mem.write_word(0x100, 0xAB)
        landed = mem.corrupt_word(0x100, 0xFF00, defeat_ecc=True)
        assert landed
        assert mem.read_word(0x100) == 0xAB ^ 0xFF00

    def test_no_ecc_everything_lands(self):
        mem = make_mem(ecc=False)
        mem.write_word(0x100, 0)
        assert mem.corrupt_word(0x100, 0x1)
        assert mem.read_word(0x100) == 1
