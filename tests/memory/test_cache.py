"""Set-associative cache array: LRU, install/evict, pinning, ports."""

import pytest

from repro.common.errors import SimulationError
from repro.common.stats import StatsRegistry
from repro.common.types import WORDS_PER_BLOCK, CoherenceState
from repro.config import CacheConfig
from repro.memory.cache import CacheArray


def make_cache(size_bytes=1024, assoc=2, ports=2):
    config = CacheConfig(size_bytes=size_bytes, associativity=assoc, ports=ports)
    return CacheArray("l1.test", config, 64, StatsRegistry())


def block(value=0):
    return [value] * WORDS_PER_BLOCK


def same_set_addrs(cache, count):
    """Addresses mapping to set 0, enough to overflow it."""
    stride = cache.num_sets * 64
    return [i * stride for i in range(count)]


class TestInstallAndLookup:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.lookup(0x100) is None
        cache.install(0x100, CoherenceState.S, block(5))
        line = cache.lookup(0x104)  # same block
        assert line is not None
        assert line.read_word(0x104) == 5

    def test_invalid_lines_do_not_hit(self):
        cache = make_cache()
        line = cache.install(0x100, CoherenceState.S, block())
        line.state = CoherenceState.I
        assert cache.lookup(0x100) is None

    def test_install_rejects_bad_block(self):
        cache = make_cache()
        with pytest.raises(SimulationError):
            cache.install(0, CoherenceState.S, [0])

    def test_write_word(self):
        cache = make_cache()
        line = cache.install(0x40, CoherenceState.M, block())
        line.write_word(0x44, 0x99)
        assert line.read_word(0x44) == 0x99
        assert line.is_dirty()


class TestVictimSelection:
    def test_no_victim_when_way_free(self):
        cache = make_cache(assoc=2)
        a0, a1, _ = same_set_addrs(cache, 3)
        cache.install(a0, CoherenceState.S, block())
        assert cache.victim_for(a1) is None

    def test_lru_victim(self):
        cache = make_cache(assoc=2)
        a0, a1, a2 = same_set_addrs(cache, 3)
        cache.install(a0, CoherenceState.S, block())
        cache.install(a1, CoherenceState.S, block())
        cache.lookup(a0)  # a0 most recently used
        victim = cache.victim_for(a2)
        assert victim.addr == a1

    def test_pinned_lines_skipped(self):
        cache = make_cache(assoc=2)
        a0, a1, a2 = same_set_addrs(cache, 3)
        cache.install(a0, CoherenceState.S, block())
        cache.install(a1, CoherenceState.S, block())
        cache.lookup(a1)
        victim = cache.victim_for(a2, pinned=lambda addr: addr == a0)
        assert victim.addr == a1

    def test_all_pinned_raises(self):
        cache = make_cache(assoc=2)
        a0, a1, a2 = same_set_addrs(cache, 3)
        cache.install(a0, CoherenceState.S, block())
        cache.install(a1, CoherenceState.S, block())
        with pytest.raises(SimulationError):
            cache.victim_for(a2, pinned=lambda addr: True)

    def test_existing_block_needs_no_victim(self):
        cache = make_cache(assoc=1)
        a0, a1 = same_set_addrs(cache, 2)
        cache.install(a0, CoherenceState.S, block())
        assert cache.victim_for(a0) is None

    def test_full_set_install_raises(self):
        cache = make_cache(assoc=1)
        a0, a1 = same_set_addrs(cache, 2)
        cache.install(a0, CoherenceState.S, block())
        with pytest.raises(SimulationError):
            cache.install(a1, CoherenceState.S, block())

    def test_remove_frees_way(self):
        cache = make_cache(assoc=1)
        a0, a1 = same_set_addrs(cache, 2)
        cache.install(a0, CoherenceState.S, block())
        cache.remove(a0)
        cache.install(a1, CoherenceState.S, block())
        assert cache.lookup(a1) is not None


class TestPortModel:
    def test_ports_per_cycle(self):
        cache = make_cache(ports=2)
        assert cache.next_access_delay(100) == 0
        assert cache.next_access_delay(100) == 0
        assert cache.next_access_delay(100) == 1  # third access same cycle
        assert cache.next_access_delay(101) == 0  # new cycle resets

    def test_overflow_pushes_further(self):
        cache = make_cache(ports=1)
        assert cache.next_access_delay(5) == 0
        assert cache.next_access_delay(5) == 1
        assert cache.next_access_delay(5) == 2


class TestLines:
    def test_lines_enumerates_valid_only(self):
        cache = make_cache()
        cache.install(0x40, CoherenceState.S, block())
        line = cache.install(0x80, CoherenceState.M, block())
        dead = cache.install(0xC0, CoherenceState.S, block())
        dead.state = CoherenceState.I
        addrs = {l.addr for l in cache.lines()}
        assert addrs == {0x40, 0x80}
