"""Offline trace recording and golden-reference checking."""

from repro.config import SystemConfig
from repro.processor.operations import Atomic, Batch, Load, Store
from repro.system.builder import build_system
from repro.verify import Trace, TraceChecker, TraceEvent, record_program
from repro.workloads import lock_addr, shared_addr
from repro.workloads.primitives import lock_acquire, lock_release
from repro.consistency.models import ConsistencyModel


def run_traced(programs, **kw):
    trace = Trace()
    wrapped = [
        record_program(i, program, trace) for i, program in enumerate(programs)
    ]
    config = SystemConfig.protected(num_nodes=len(programs), **kw)
    system = build_system(config, programs=wrapped)
    result = system.run(max_cycles=5_000_000)
    assert result.completed
    return trace, result


class TestRecording:
    def test_records_ops_in_program_order(self):
        def prog():
            yield Store(0x2_0000, 1)
            value = yield Load(0x2_0000)
            yield Atomic(0x2_0000, 9)

        def idle():
            yield Load(0x2_0040)

        trace, _ = run_traced([prog(), idle()])
        core0 = trace.per_core()[0]
        assert [e.kind for e in core0] == ["store", "load", "atomic"]
        assert core0[1].value == 1  # the load saw the store
        assert core0[2].old_value == 1

    def test_batch_ops_recorded_individually(self):
        def prog():
            yield Store(0x2_0000, 3)
            yield Batch([Load(0x2_0000), Load(0x2_0004)])

        def idle():
            yield Load(0x2_0040)

        trace, _ = run_traced([prog(), idle()])
        kinds = [e.kind for e in trace.per_core()[0]]
        assert kinds == ["store", "load", "load"]


class TestRoundTripInvariants:
    """record_program -> Trace: structural invariants of the round trip."""

    def _workload_trace(self, workload="oltp", cores=2, ops=30):
        from repro.workloads import make_program

        trace = Trace()
        programs = [
            record_program(
                n,
                make_program(workload, n, cores, ConsistencyModel.TSO, 5, ops),
                trace,
            )
            for n in range(cores)
        ]
        config = SystemConfig.protected(num_nodes=cores)
        system = build_system(config, programs=programs)
        result = system.run(max_cycles=5_000_000)
        assert result.completed
        return trace

    def test_per_core_partitions_events(self):
        trace = self._workload_trace()
        streams = trace.per_core()
        # Partition: every event lands in exactly one stream, none lost.
        assert sum(len(s) for s in streams.values()) == len(trace.events)
        for core, stream in streams.items():
            assert all(e.core == core for e in stream)

    def test_per_core_indexes_are_strictly_increasing(self):
        """Program-order ranks: unique and increasing per core (gaps are
        fine — non-memory ops consume a rank without a trace event)."""
        trace = self._workload_trace()
        for stream in trace.per_core().values():
            indexes = [e.index for e in stream]
            assert all(a < b for a, b in zip(indexes, indexes[1:]))

    def test_event_kinds_and_values_well_formed(self):
        trace = self._workload_trace()
        for event in trace.events:
            assert event.kind in ("load", "store", "atomic")
            assert event.addr >= 0 and event.value is not None
            # old_value is the atomic's swapped-out value, only ever
            # set for atomics.
            if event.kind != "atomic":
                assert event.old_value is None

    def test_words_touched_matches_event_addresses(self):
        from repro.common.types import word_of

        trace = self._workload_trace()
        assert trace.words_touched() == {
            word_of(e.addr) for e in trace.events
        }
        assert trace.words_touched()  # a real workload touches memory

    def test_per_core_is_stable_across_calls(self):
        trace = self._workload_trace()
        first = {
            core: [(e.index, e.kind, e.addr, e.value) for e in stream]
            for core, stream in trace.per_core().items()
        }
        second = {
            core: [(e.index, e.kind, e.addr, e.value) for e in stream]
            for core, stream in trace.per_core().items()
        }
        assert first == second


class TestGoldenChecks:
    def test_clean_execution_passes(self):
        lock = lock_addr(0)
        counter = shared_addr(0)

        def worker():
            for _ in range(5):
                yield from lock_acquire(lock, ConsistencyModel.TSO)
                value = yield Load(counter)
                yield Store(counter, value + 1)
                yield from lock_release(lock, ConsistencyModel.TSO)

        trace, result = run_traced([worker(), worker()])
        assert not result.violations
        assert TraceChecker(trace).check() == []

    def test_out_of_thin_air_detected(self):
        trace = Trace()
        trace.events.append(TraceEvent(0, 0, "store", 0x100, 5))
        trace.events.append(TraceEvent(1, 0, "load", 0x100, 77))  # never written
        violations = TraceChecker(trace).check()
        assert any(v.rule == "out-of-thin-air" for v in violations)

    def test_uniprocessor_ordering_violation_detected(self):
        trace = Trace()
        trace.events.append(TraceEvent(0, 0, "store", 0x100, 5))
        trace.events.append(TraceEvent(0, 1, "store", 0x100, 6))
        trace.events.append(TraceEvent(0, 2, "load", 0x100, 5))  # stale!
        violations = TraceChecker(trace).check()
        assert any(v.rule == "uniprocessor-ordering" for v in violations)

    def test_shared_words_skipped_conservatively(self):
        trace = Trace()
        trace.events.append(TraceEvent(0, 0, "store", 0x100, 5))
        trace.events.append(TraceEvent(1, 0, "store", 0x100, 6))
        trace.events.append(TraceEvent(0, 1, "load", 0x100, 6))  # remote value: legal
        assert TraceChecker(trace).check() == []

    def test_initial_value_is_legal(self):
        trace = Trace()
        trace.events.append(TraceEvent(0, 0, "load", 0x100, 0))
        assert TraceChecker(trace).check() == []

    def test_workload_traces_are_clean(self):
        """Cross-validation: simulated workloads pass the offline oracle."""
        from repro.workloads import make_program

        trace = Trace()
        programs = [
            record_program(
                n,
                make_program("oltp", n, 2, ConsistencyModel.TSO, 3, 80),
                trace,
            )
            for n in range(2)
        ]
        config = SystemConfig.protected(num_nodes=2)
        system = build_system(config, programs=programs)
        result = system.run(max_cycles=5_000_000)
        assert result.completed and not result.violations
        assert TraceChecker(trace).check() == []


class TestCodecRoundTrip:
    """JSONL round-trips must preserve ordering metadata: fence kinds
    and masks, RMW old-value pairing, and model switches — the offline
    oracle's verdict depends on all of them."""

    def _fault_injected_trace(self, tmp_path):
        from repro.faults.injector import FaultInjector, FaultKind, FaultPlan
        from repro.fuzz import case_programs, FuzzCase

        trace = Trace()
        case = FuzzCase(model="RMO", seed=77, nodes=3, ops=30)
        programs = [
            record_program(i, p, trace)
            for i, p in enumerate(case_programs(case))
        ]
        config = (
            SystemConfig.protected(model=ConsistencyModel.RMO)
            .with_nodes(3)
            .with_seed(case.seed)
        )
        system = build_system(config, programs=programs)
        injector = FaultInjector(system, seed=case.seed)
        injector.arm(FaultPlan(FaultKind.WB_REORDER, 4_000))
        system.run(max_cycles=2_000_000, allow_incomplete=True)
        return trace

    def test_fault_injected_run_round_trips_exactly(self, tmp_path):
        from repro.verify.trace import dump_jsonl, load_jsonl

        trace = self._fault_injected_trace(tmp_path)
        assert trace.events, "the run must have produced events"
        path = str(tmp_path / "trace.jsonl")
        dump_jsonl(trace.events, path)
        again = load_jsonl(path)
        assert len(again.events) == len(trace.events)
        for a, b in zip(trace.events, again.events):
            assert a == b, (a, b)
        # Ordering metadata specifically survives.
        kinds = {e.kind for e in trace.events}
        masked = [e for e in again.events if e.kind in ("membar", "stbar")]
        if masked:
            originals = [
                e for e in trace.events if e.kind in ("membar", "stbar")
            ]
            assert [e.mask for e in masked] == [e.mask for e in originals]
        atomics = [e for e in again.events if e.kind == "atomic"]
        for event in atomics:
            assert event.old_value is not None, "RMW pairing lost in codec"
        assert "load" in kinds and "store" in kinds

    def test_oracle_verdict_survives_round_trip(self, tmp_path):
        from repro.oracle import check_trace
        from repro.verify.trace import dump_jsonl, load_jsonl

        trace = self._fault_injected_trace(tmp_path)
        path = str(tmp_path / "trace.jsonl")
        dump_jsonl(trace.events, path)
        again = load_jsonl(path)
        before = check_trace(trace, ConsistencyModel.RMO)
        after = check_trace(again, ConsistencyModel.RMO)
        assert before.decided == after.decided
        assert before.admissible == after.admissible
