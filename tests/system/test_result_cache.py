"""Run-level result cache: fingerprints, hits/misses, invalidation."""

import dataclasses
import os

import pytest

import repro.parallel as parallel
from repro.config import SystemConfig
from repro.parallel import (
    ResultCache,
    RunMetrics,
    RunSpec,
    execute_run_spec,
    resolve_cache,
    run_points,
    spec_fingerprint,
)


@pytest.fixture
def spec():
    return RunSpec(
        SystemConfig.protected().with_nodes(4).with_seed(3), "oltp", ops=30
    )


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"))


class TestFingerprint:
    def test_stable_for_equal_specs(self, spec):
        clone = RunSpec(
            SystemConfig.protected().with_nodes(4).with_seed(3), "oltp", ops=30
        )
        assert spec_fingerprint(spec) == spec_fingerprint(clone)

    def test_sensitive_to_config_change(self, spec):
        for changed in (
            dataclasses.replace(spec, config=spec.config.with_seed(4)),
            dataclasses.replace(spec, config=spec.config.with_nodes(8)),
            dataclasses.replace(spec, config=SystemConfig.unprotected()
                                .with_nodes(4).with_seed(3)),
            dataclasses.replace(spec, workload="jbb"),
            dataclasses.replace(spec, ops=31),
        ):
            assert spec_fingerprint(changed) != spec_fingerprint(spec)

    def test_sensitive_to_code_version(self, spec, monkeypatch):
        before = spec_fingerprint(spec)
        monkeypatch.setattr(parallel, "_code_fp", "deadbeef" * 8)
        assert spec_fingerprint(spec) != before


class TestResultCache:
    def test_miss_then_hit(self, spec, cache):
        assert cache.get(spec) is None
        metrics = execute_run_spec(spec)
        cache.put(spec, metrics)
        assert cache.get(spec) == metrics
        assert (cache.hits, cache.misses) == (1, 1)

    def test_round_trip_is_bit_identical(self, spec, cache):
        fresh = execute_run_spec(spec)
        cache.put(spec, fresh)
        cached = cache.get(spec)
        assert cached == fresh
        assert dataclasses.asdict(cached) == dataclasses.asdict(fresh)
        assert all(
            type(v) is type(fresh.counters[k])
            for k, v in cached.counters.items()
        )

    def test_config_change_is_a_miss(self, spec, cache):
        cache.put(spec, execute_run_spec(spec))
        other = dataclasses.replace(spec, config=spec.config.with_seed(9))
        assert cache.get(other) is None

    def test_code_change_invalidates(self, spec, cache, monkeypatch):
        cache.put(spec, execute_run_spec(spec))
        monkeypatch.setattr(parallel, "_code_fp", "0" * 64)
        assert cache.get(spec) is None

    def test_corrupt_entry_is_a_miss(self, spec, cache):
        cache.put(spec, execute_run_spec(spec))
        path = cache._path(spec)
        with open(path, "w") as fh:
            fh.write("{not json")
        assert cache.get(spec) is None

    def test_unregistered_result_type_not_stored(self, spec, cache):
        cache.put(spec, object())
        assert not os.path.exists(cache._path(spec))


class TestRunPointsWithCache:
    def test_second_sweep_served_from_cache(self, spec, cache):
        specs = [spec, dataclasses.replace(spec, ops=40)]
        first = run_points(specs, jobs=1, cache=cache)
        assert (cache.hits, cache.misses) == (0, 2)
        second = run_points(specs, jobs=1, cache=cache)
        assert (cache.hits, cache.misses) == (2, 2)
        assert first == second

    def test_cached_equals_uncached(self, spec, cache):
        cached = run_points([spec], jobs=1, cache=cache)
        fresh = run_points([spec], jobs=1)
        rehit = run_points([spec], jobs=1, cache=cache)
        assert cached == fresh == rehit

    def test_partial_hit_executes_only_misses(self, spec, cache):
        extra = dataclasses.replace(spec, workload="jbb")
        run_points([spec], jobs=1, cache=cache)
        calls = []

        def counting_worker(s):
            calls.append(s)
            return execute_run_spec(s)

        result = run_points(
            [spec, extra], jobs=1, worker=counting_worker, cache=cache
        )
        assert calls == [extra]
        assert result[0] == cache.get(spec)


class TestResolveCache:
    def test_defaults_off(self, monkeypatch):
        monkeypatch.delenv(parallel.CACHE_ENV, raising=False)
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None

    def test_env_enables(self, monkeypatch, tmp_path):
        monkeypatch.setenv(parallel.CACHE_ENV, "1")
        assert resolve_cache(None).root == parallel.CACHE_DIR
        monkeypatch.setenv(parallel.CACHE_ENV, str(tmp_path))
        assert resolve_cache(None).root == str(tmp_path)
        monkeypatch.setenv(parallel.CACHE_ENV, "0")
        assert resolve_cache(None) is None

    def test_explicit_forms(self, tmp_path, cache):
        assert resolve_cache(True).root == parallel.CACHE_DIR
        assert resolve_cache(str(tmp_path)).root == str(tmp_path)
        assert resolve_cache(cache) is cache

    def test_run_metrics_codec_registered(self):
        assert RunMetrics.__name__ in ResultCache._codecs
