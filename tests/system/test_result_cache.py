"""Run-level result cache: fingerprints, hits/misses, invalidation."""

import dataclasses
import os

import pytest

import repro.parallel as parallel
from repro.config import SystemConfig
from repro.parallel import (
    ResultCache,
    RunMetrics,
    RunSpec,
    execute_run_spec,
    resolve_cache,
    run_points,
    spec_fingerprint,
)


@pytest.fixture
def spec():
    return RunSpec(
        SystemConfig.protected().with_nodes(4).with_seed(3), "oltp", ops=30
    )


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"))


class TestFingerprint:
    def test_stable_for_equal_specs(self, spec):
        clone = RunSpec(
            SystemConfig.protected().with_nodes(4).with_seed(3), "oltp", ops=30
        )
        assert spec_fingerprint(spec) == spec_fingerprint(clone)

    def test_sensitive_to_config_change(self, spec):
        for changed in (
            dataclasses.replace(spec, config=spec.config.with_seed(4)),
            dataclasses.replace(spec, config=spec.config.with_nodes(8)),
            dataclasses.replace(spec, config=SystemConfig.unprotected()
                                .with_nodes(4).with_seed(3)),
            dataclasses.replace(spec, workload="jbb"),
            dataclasses.replace(spec, ops=31),
        ):
            assert spec_fingerprint(changed) != spec_fingerprint(spec)

    def test_sensitive_to_code_version(self, spec, monkeypatch):
        before = spec_fingerprint(spec)
        monkeypatch.setattr(parallel, "_code_fp", "deadbeef" * 8)
        assert spec_fingerprint(spec) != before


class TestResultCache:
    def test_miss_then_hit(self, spec, cache):
        assert cache.get(spec) is None
        metrics = execute_run_spec(spec)
        cache.put(spec, metrics)
        assert cache.get(spec) == metrics
        assert (cache.hits, cache.misses) == (1, 1)

    def test_round_trip_is_bit_identical(self, spec, cache):
        fresh = execute_run_spec(spec)
        cache.put(spec, fresh)
        cached = cache.get(spec)
        assert cached == fresh
        assert dataclasses.asdict(cached) == dataclasses.asdict(fresh)
        assert all(
            type(v) is type(fresh.counters[k])
            for k, v in cached.counters.items()
        )

    def test_config_change_is_a_miss(self, spec, cache):
        cache.put(spec, execute_run_spec(spec))
        other = dataclasses.replace(spec, config=spec.config.with_seed(9))
        assert cache.get(other) is None

    def test_code_change_invalidates(self, spec, cache, monkeypatch):
        cache.put(spec, execute_run_spec(spec))
        monkeypatch.setattr(parallel, "_code_fp", "0" * 64)
        assert cache.get(spec) is None

    def test_corrupt_entry_is_a_miss(self, spec, cache):
        cache.put(spec, execute_run_spec(spec))
        path = cache._path(spec)
        with open(path, "w") as fh:
            fh.write("{not json")
        assert cache.get(spec) is None

    def test_unregistered_result_type_not_stored(self, spec, cache):
        cache.put(spec, object())
        assert not os.path.exists(cache._path(spec))


class TestRunPointsWithCache:
    def test_second_sweep_served_from_cache(self, spec, cache):
        specs = [spec, dataclasses.replace(spec, ops=40)]
        first = run_points(specs, jobs=1, cache=cache)
        assert (cache.hits, cache.misses) == (0, 2)
        second = run_points(specs, jobs=1, cache=cache)
        assert (cache.hits, cache.misses) == (2, 2)
        assert first == second

    def test_cached_equals_uncached(self, spec, cache):
        cached = run_points([spec], jobs=1, cache=cache)
        fresh = run_points([spec], jobs=1)
        rehit = run_points([spec], jobs=1, cache=cache)
        assert cached == fresh == rehit

    def test_partial_hit_executes_only_misses(self, spec, cache):
        extra = dataclasses.replace(spec, workload="jbb")
        run_points([spec], jobs=1, cache=cache)
        calls = []

        def counting_worker(s):
            calls.append(s)
            return execute_run_spec(s)

        result = run_points(
            [spec, extra], jobs=1, worker=counting_worker, cache=cache
        )
        assert calls == [extra]
        assert result[0] == cache.get(spec)


class TestEviction:
    """LRU byte-budget eviction (REPRO_CACHE_MAX_MB)."""

    @staticmethod
    def _metrics(tag: int) -> RunMetrics:
        # Padded counters give every entry a predictable few-hundred-byte
        # footprint without running the simulator.
        return RunMetrics(
            cycles=tag,
            completed=True,
            violations=0,
            events_processed=tag,
            counters={f"pad.{i}": tag for i in range(40)},
        )

    @staticmethod
    def _specs(n):
        return [
            RunSpec(SystemConfig.protected().with_seed(s), "oltp", ops=10 + s)
            for s in range(n)
        ]

    def _age(self, cache, spec, seconds_ago):
        path = cache._path(spec)
        past = os.stat(path).st_mtime - seconds_ago
        os.utime(path, (past, past))

    def test_oldest_evicted_fresh_survive(self, tmp_path):
        specs = self._specs(4)
        cache = ResultCache(str(tmp_path / "cache"), max_bytes=10**9)
        for i, s in enumerate(specs[:3]):
            cache.put(s, self._metrics(i))
        # Age the first two entries (oldest first), then shrink the
        # budget to roughly two entries and trigger eviction.
        self._age(cache, specs[0], 300)
        self._age(cache, specs[1], 200)
        entry_size = os.path.getsize(cache._path(specs[0]))
        cache.max_bytes = entry_size * 2 + entry_size // 2
        cache.put(specs[3], self._metrics(3))
        assert cache.get(specs[0]) is None  # oldest: evicted
        assert cache.get(specs[3]) is not None  # fresh: survives
        assert cache.evictions >= 1

    def test_reads_refresh_recency(self, tmp_path):
        specs = self._specs(3)
        cache = ResultCache(str(tmp_path / "cache"), max_bytes=10**9)
        cache.put(specs[0], self._metrics(0))
        cache.put(specs[1], self._metrics(1))
        self._age(cache, specs[0], 300)
        self._age(cache, specs[1], 200)
        # A hit on the oldest entry bumps its mtime ahead of specs[1].
        assert cache.get(specs[0]) is not None
        entry_size = os.path.getsize(cache._path(specs[0]))
        cache.max_bytes = entry_size * 2 + entry_size // 2
        cache.put(specs[2], self._metrics(2))
        assert cache.get(specs[0]) is not None  # recently read: kept
        assert cache.get(specs[1]) is None  # LRU victim

    def test_just_written_entry_never_evicted(self, tmp_path):
        spec = self._specs(1)[0]
        cache = ResultCache(str(tmp_path / "cache"), max_bytes=1)
        cache.put(spec, self._metrics(0))
        assert cache.get(spec) is not None

    def test_zero_budget_means_unbounded(self, tmp_path, monkeypatch):
        monkeypatch.delenv(parallel.CACHE_MAX_MB_ENV, raising=False)
        cache = ResultCache(str(tmp_path / "cache"))
        assert cache.max_bytes == 0
        for i, s in enumerate(self._specs(3)):
            cache.put(s, self._metrics(i))
        assert cache.evictions == 0

    def test_env_budget_parsed(self, tmp_path, monkeypatch):
        monkeypatch.setenv(parallel.CACHE_MAX_MB_ENV, "2.5")
        cache = ResultCache(str(tmp_path / "cache"))
        assert cache.max_bytes == int(2.5 * 1024 * 1024)
        monkeypatch.setenv(parallel.CACHE_MAX_MB_ENV, "junk")
        assert ResultCache(str(tmp_path / "cache")).max_bytes == 0


class TestResolveCache:
    def test_defaults_off(self, monkeypatch):
        monkeypatch.delenv(parallel.CACHE_ENV, raising=False)
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None

    def test_env_enables(self, monkeypatch, tmp_path):
        monkeypatch.setenv(parallel.CACHE_ENV, "1")
        assert resolve_cache(None).root == parallel.CACHE_DIR
        monkeypatch.setenv(parallel.CACHE_ENV, str(tmp_path))
        assert resolve_cache(None).root == str(tmp_path)
        monkeypatch.setenv(parallel.CACHE_ENV, "0")
        assert resolve_cache(None) is None

    def test_explicit_forms(self, tmp_path, cache):
        assert resolve_cache(True).root == parallel.CACHE_DIR
        assert resolve_cache(str(tmp_path)).root == str(tmp_path)
        assert resolve_cache(cache) is cache

    def test_run_metrics_codec_registered(self):
        assert RunMetrics.__name__ in ResultCache._codecs
