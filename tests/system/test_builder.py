"""System construction and top-level run loop."""

import pytest

from repro.common.errors import ConfigError, DeadlockError
from repro.config import DVMCConfig, ProtocolKind, SystemConfig
from repro.consistency.models import ConsistencyModel
from repro.processor.operations import Load, Store
from repro.system.builder import build_system

from tests.conftest import bare_system, idle_program


class TestConstruction:
    def test_directory_wiring(self):
        system = bare_system(ProtocolKind.DIRECTORY, num_nodes=4)
        assert len(system.cores) == 4
        assert len(system.cache_controllers) == 4
        assert len(system.memory_controllers) == 4
        assert system.address_network is None
        assert system.data_network is not None

    def test_snooping_wiring(self):
        system = bare_system(ProtocolKind.SNOOPING, num_nodes=4)
        assert system.address_network is not None
        assert system.cache_controllers[0].logical_time is system.logical_time

    def test_checkers_follow_config(self):
        system = bare_system(dvmc=True)
        assert len(system.dvmc.uo_checkers) == 4
        assert len(system.dvmc.ar_checkers) == 4
        assert system.dvmc.coherence_checker is not None

    def test_unprotected_has_no_checkers(self):
        system = bare_system(dvmc=False)
        assert not system.dvmc.enabled

    def test_partial_checker_configs(self):
        config = SystemConfig(num_nodes=2, dvmc=DVMCConfig.coherence_only())
        system = build_system(config, programs=[idle_program(), idle_program()])
        assert system.dvmc.coherence_checker is not None
        assert not system.dvmc.uo_checkers

    def test_home_interleaving_covers_all_nodes(self):
        system = bare_system(num_nodes=4)
        homes = {system.home_of(block * 64) for block in range(16)}
        assert homes == {0, 1, 2, 3}

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_nodes=0).validate()
        with pytest.raises(ConfigError):
            SystemConfig(block_size=48).validate()


class TestRunLoop:
    def test_completes_and_reports(self):
        def prog():
            yield Store(0x2_0000, 1)

        config = SystemConfig.unprotected(num_nodes=1)
        system = build_system(config, programs=[prog()])
        result = system.run()
        assert result.completed
        assert result.cycles > 0

    def test_deadlock_raises_without_allow_incomplete(self):
        def stuck():
            while True:
                yield Load(0x2_0000) == 0xFFFF and None  # spins forever

        def spin_forever():
            while (yield Load(0x2_0000)) != 0xFFFF:
                pass

        config = SystemConfig.unprotected(num_nodes=1)
        system = build_system(config, programs=[spin_forever()])
        with pytest.raises(DeadlockError):
            system.run(max_cycles=20_000)

    def test_allow_incomplete(self):
        def spin_forever():
            while (yield Load(0x2_0000)) != 0xFFFF:
                pass

        config = SystemConfig.unprotected(num_nodes=1)
        system = build_system(config, programs=[spin_forever()])
        result = system.run(max_cycles=20_000, allow_incomplete=True)
        assert not result.completed


class TestConfigHelpers:
    def test_with_helpers_chain(self):
        config = (
            SystemConfig()
            .with_model(ConsistencyModel.RMO)
            .with_protocol(ProtocolKind.SNOOPING)
            .with_nodes(2)
            .with_seed(9)
            .with_link_bandwidth(1.0)
        )
        assert config.model is ConsistencyModel.RMO
        assert config.protocol is ProtocolKind.SNOOPING
        assert config.num_nodes == 2
        assert config.seed == 9
        assert config.network.link_bandwidth_gbps == 1.0

    def test_unprotected_preset(self):
        config = SystemConfig.unprotected()
        assert not config.dvmc.any_enabled
        assert not config.safetynet.enabled

    def test_protected_preset(self):
        config = SystemConfig.protected()
        assert config.dvmc.any_enabled
        assert config.safetynet.enabled

    def test_network_arithmetic(self):
        net = SystemConfig().network
        assert net.bytes_per_cycle == 2.5 / 2.0
        assert net.serialization_cycles(72) == round(72 / 1.25)
