"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "oltp"
        assert args.model == "TSO"
        assert args.protocol == "directory"

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fault_choices(self):
        args = build_parser().parse_args(
            ["inject", "--fault", "lsq-wrong-value", "--at", "100"]
        )
        assert args.fault == "lsq-wrong-value"
        assert args.at == 100


class TestCommands:
    def test_run_clean(self, capsys):
        rc = main(
            ["run", "--workload", "jbb", "--nodes", "2", "--ops", "50"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "violations: 0" in out

    def test_run_unprotected(self, capsys):
        rc = main(
            ["run", "--unprotected", "--workload", "jbb", "--nodes", "2", "--ops", "40"]
        )
        assert rc == 0

    def test_inject_detects(self, capsys):
        rc = main(
            [
                "inject",
                "--fault",
                "lsq-wrong-value",
                "--at",
                "2000",
                "--nodes",
                "2",
                "--ops",
                "120",
            ]
        )
        out = capsys.readouterr().out
        assert "DETECTED" in out or "not detected" in out
