"""Parallel run orchestrator: ordering, determinism, error surfacing."""

import dataclasses

import pytest

from repro.common.errors import ConfigError
from repro.config import SystemConfig
from repro.faults.campaign import run_campaign
from repro.faults.injector import FaultKind
from repro.parallel import (
    ParallelRunError,
    RunMetrics,
    RunSpec,
    execute_run_spec,
    resolve_jobs,
    run_points,
)
from repro.system.experiments import measure


def _double(spec):
    """Trivial picklable worker used by ordering/error tests."""
    return spec * 2


def _boom(spec):
    raise ValueError(f"boom on {spec}")


class TestResolveJobs:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(2) == 2

    def test_zero_means_auto(self):
        assert resolve_jobs(0) >= 1

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        with pytest.raises(ConfigError):
            resolve_jobs(None)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            resolve_jobs(-2)


class TestRunPoints:
    def test_serial_path_preserves_order(self):
        assert run_points([3, 1, 2], jobs=1, worker=_double) == [6, 2, 4]

    def test_parallel_results_keyed_by_spec(self):
        specs = list(range(7))
        assert run_points(specs, jobs=2, worker=_double) == [
            s * 2 for s in specs
        ]

    def test_worker_exception_is_structured(self):
        with pytest.raises(ParallelRunError) as excinfo:
            run_points([1, 2], jobs=2, worker=_boom)
        assert excinfo.value.index in (0, 1)
        assert "boom" in excinfo.value.reason

    def test_serial_worker_exception_is_plain(self):
        # jobs=1 is the in-process path: no pool wrapping.
        with pytest.raises(ValueError):
            run_points([1], jobs=1, worker=_boom)

    def test_run_spec_round_trip(self):
        spec = RunSpec(SystemConfig.unprotected(num_nodes=2), "jbb", 40)
        metrics = execute_run_spec(spec)
        assert isinstance(metrics, RunMetrics)
        assert metrics.completed
        assert metrics.cycles > 0
        assert metrics.events_processed > 0
        assert metrics.counter_sum("l1.") > 0


class TestMeasureDeterminism:
    def test_parallel_equals_serial(self):
        """jobs=4 and jobs=1 produce identical Measurement fields
        (guards the orchestrator's ordering guarantee)."""
        config = SystemConfig.protected(num_nodes=2)
        serial = measure(config, "jbb", ops=40, seeds=2, jobs=1)
        parallel = measure(config, "jbb", ops=40, seeds=2, jobs=4)
        assert dataclasses.asdict(serial) == dataclasses.asdict(parallel)

    def test_env_jobs_equals_serial(self, monkeypatch):
        config = SystemConfig.unprotected(num_nodes=2)
        serial = measure(config, "oltp", ops=40, seeds=2, jobs=1)
        monkeypatch.setenv("REPRO_JOBS", "2")
        parallel = measure(config, "oltp", ops=40, seeds=2)
        assert dataclasses.asdict(serial) == dataclasses.asdict(parallel)


class TestCampaignDeterminism:
    def test_parallel_campaign_equals_serial(self):
        config = SystemConfig.protected(num_nodes=2)
        kwargs = dict(
            workload="jbb",
            ops=40,
            kinds=(FaultKind.MSG_DROP, FaultKind.MEM_DATA_FLIP),
            trials_per_kind=1,
            seed=5,
        )
        serial = run_campaign(config, jobs=1, **kwargs)
        parallel = run_campaign(config, jobs=2, **kwargs)
        assert [dataclasses.asdict(r) for r in serial] == [
            dataclasses.asdict(r) for r in parallel
        ]
