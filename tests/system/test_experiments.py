"""Experiment harness: perturbation runs and metric aggregation."""

import pytest

from repro.config import SystemConfig
from repro.system.experiments import (
    Measurement,
    format_series,
    measure,
    normalized_runtimes,
    run_once,
)


class TestRunOnce:
    def test_returns_system_and_result(self):
        system, result = run_once(SystemConfig.unprotected(num_nodes=2), "jbb", 50)
        assert result.completed
        assert system.stats.counter("core.0.retired") > 0


class TestMeasure:
    def test_aggregates_across_seeds(self):
        m = measure(SystemConfig.unprotected(num_nodes=2), "jbb", ops=50, seeds=2)
        assert m.runtime_mean > 0
        assert m.runtime_std >= 0
        assert m.l1_accesses > 0
        assert m.violations == 0

    def test_replay_ratio_zero_without_dvmc(self):
        m = measure(SystemConfig.unprotected(num_nodes=2), "jbb", ops=50, seeds=1)
        assert m.replay_accesses == 0
        assert m.replay_miss_ratio == 0.0

    def test_replay_counted_with_dvmc(self):
        m = measure(SystemConfig.protected(num_nodes=2), "oltp", ops=60, seeds=1)
        # TSO replays miss the VC sometimes and read the L1.
        assert m.replay_accesses >= 0
        assert m.runtime_mean > 0

    def test_seeds_produce_variance(self):
        m = measure(SystemConfig.unprotected(num_nodes=2), "oltp", ops=60, seeds=3)
        assert m.runtime_std >= 0  # may be 0 on tiny runs, but defined


class TestNormalisation:
    def test_baseline_is_one(self):
        ms = {
            "base": Measurement(100, 5, 0, 0, 0, 0, 0, 0),
            "dvmc": Measurement(110, 5, 0, 0, 0, 0, 0, 0),
        }
        normalized = normalized_runtimes(ms, "base")
        assert normalized["base"][0] == 1.0
        assert normalized["dvmc"][0] == pytest.approx(1.1)

    def test_zero_baseline_rejected(self):
        ms = {"base": Measurement(0, 0, 0, 0, 0, 0, 0, 0)}
        with pytest.raises(ValueError):
            normalized_runtimes(ms, "base")


class TestFormatting:
    def test_series_table(self):
        rows = {"oltp": {"Base": (1.0, 0.02), "DVMC": (1.05, 0.03)}}
        text = format_series("Figure X", rows, ["Base", "DVMC"])
        assert "Figure X" in text
        assert "oltp" in text
        assert "1.050" in text
