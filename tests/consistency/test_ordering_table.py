"""OrderingTable mechanics: mask algebra, predecessors, bool grids."""

import pytest
from hypothesis import given, strategies as st

from repro.common.types import MembarMask, OpType
from repro.consistency.ordering_table import OrderingTable

L, S, MB = OpType.LOAD, OpType.STORE, OpType.MEMBAR


class TestConstruction:
    def test_bool_cells_become_masks(self):
        t = OrderingTable("t", {(L, S): True, (S, L): False})
        assert t.cell(L, S) == MembarMask.ALL
        assert t.cell(S, L) == MembarMask.NONE

    def test_missing_cells_default_unordered(self):
        t = OrderingTable("t", {})
        assert not t.ordered(L, S)

    def test_rejects_bad_cell_type(self):
        with pytest.raises(TypeError):
            OrderingTable("t", {(L, S): "yes"})


class TestMaskAlgebra:
    def test_and_rule(self):
        """The paper's AND rule: table mask & instruction mask != 0."""
        t = OrderingTable(
            "t", {(L, MB): MembarMask.LOADLOAD | MembarMask.LOADSTORE}
        )
        assert t.ordered(L, MB, second_mask=MembarMask.LOADLOAD)
        assert not t.ordered(L, MB, second_mask=MembarMask.STORESTORE)
        assert t.ordered(L, MB, second_mask=MembarMask.ALL)
        assert not t.ordered(L, MB, second_mask=MembarMask.NONE)

    @given(
        st.sampled_from(list(MembarMask)),
        st.sampled_from(list(MembarMask)),
    )
    def test_and_rule_commutes_with_masks(self, cell, instr):
        t = OrderingTable("t", {(L, MB): cell})
        assert t.ordered(L, MB, second_mask=instr) == bool(cell & instr)


class TestAtomicExpansion:
    def test_atomic_ordered_if_any_component_is(self):
        t = OrderingTable("t", {(S, S): True})  # only store-store ordered
        assert t.ordered(OpType.ATOMIC, S)  # atomic's store half
        assert t.ordered(S, OpType.ATOMIC)
        assert not t.ordered(L, OpType.ATOMIC)  # load-anything unordered

    def test_atomic_vs_atomic(self):
        t = OrderingTable("t", {(L, L): True})
        assert t.ordered(OpType.ATOMIC, OpType.ATOMIC)


class TestIntrospection:
    def test_predecessors_of(self):
        t = OrderingTable(
            "t",
            {(L, S): True, (S, S): True},
            op_types=(L, S),
        )
        assert set(t.predecessors_of(S)) == {L, S}
        assert t.predecessors_of(L) == ()

    def test_constrains_any(self):
        t = OrderingTable("t", {(L, S): True}, op_types=(L, S))
        assert t.constrains_any(L)
        assert not t.constrains_any(S)

    def test_bool_grid(self):
        t = OrderingTable("t", {(L, S): True}, op_types=(L, S))
        grid = t.as_bool_grid()
        assert grid[(L, S)] is True
        assert grid[(S, L)] is False
        assert len(grid) == 4
