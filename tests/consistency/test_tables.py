"""Ordering tables transcribe the paper's Tables 1-4 exactly."""

from repro.common.types import MembarMask, OpType
from repro.consistency import (
    PC_TABLE,
    PSO_TABLE,
    RMO_TABLE,
    SC_TABLE,
    TSO_TABLE,
    ConsistencyModel,
    format_table,
    table_for,
)

L, S, SB, MB = OpType.LOAD, OpType.STORE, OpType.STBAR, OpType.MEMBAR


class TestTable1ProcessorConsistency:
    def test_all_cells(self):
        assert PC_TABLE.ordered(L, L)
        assert PC_TABLE.ordered(L, S)
        assert not PC_TABLE.ordered(S, L)
        assert PC_TABLE.ordered(S, S)


class TestTable2TSO:
    def test_all_cells(self):
        assert TSO_TABLE.ordered(L, L)
        assert TSO_TABLE.ordered(L, S)
        assert not TSO_TABLE.ordered(S, L)  # the write-buffer relaxation
        assert TSO_TABLE.ordered(S, S)


class TestTable3PSO:
    def test_access_cells(self):
        assert PSO_TABLE.ordered(L, L)
        assert PSO_TABLE.ordered(L, S)
        assert not PSO_TABLE.ordered(S, L)
        assert not PSO_TABLE.ordered(S, S)  # PSO relaxes store-store

    def test_stbar_cells(self):
        assert PSO_TABLE.ordered(S, SB)  # stores before an Stbar...
        assert PSO_TABLE.ordered(SB, S)  # ...and the Stbar before later stores
        assert not PSO_TABLE.ordered(L, SB)
        assert not PSO_TABLE.ordered(SB, L)
        assert not PSO_TABLE.ordered(SB, SB)

    def test_stbar_equals_membar_ss(self):
        """Paper Table 3 note: Stbar == Membar #SS."""
        ss = MembarMask.STORESTORE
        assert PSO_TABLE.ordered(S, MB, second_mask=ss) == PSO_TABLE.ordered(S, SB)
        assert PSO_TABLE.ordered(MB, S, first_mask=ss) == PSO_TABLE.ordered(SB, S)


class TestTable4RMO:
    def test_access_cells_all_relaxed(self):
        for first in (L, S):
            for second in (L, S):
                assert not RMO_TABLE.ordered(first, second)

    def test_membar_mask_cells(self):
        ll, ls = MembarMask.LOADLOAD, MembarMask.LOADSTORE
        sl, ss = MembarMask.STORELOAD, MembarMask.STORESTORE
        # Load -> Membar requires an #LL or #LS bit
        assert RMO_TABLE.ordered(L, MB, second_mask=ll)
        assert RMO_TABLE.ordered(L, MB, second_mask=ls)
        assert not RMO_TABLE.ordered(L, MB, second_mask=sl)
        assert not RMO_TABLE.ordered(L, MB, second_mask=ss)
        # Store -> Membar requires #SL or #SS
        assert RMO_TABLE.ordered(S, MB, second_mask=sl)
        assert RMO_TABLE.ordered(S, MB, second_mask=ss)
        assert not RMO_TABLE.ordered(S, MB, second_mask=ll)
        # Membar -> Load requires #LL or #SL
        assert RMO_TABLE.ordered(MB, L, first_mask=ll)
        assert RMO_TABLE.ordered(MB, L, first_mask=sl)
        assert not RMO_TABLE.ordered(MB, L, first_mask=ss)
        # Membar -> Store requires #LS or #SS
        assert RMO_TABLE.ordered(MB, S, first_mask=ls)
        assert RMO_TABLE.ordered(MB, S, first_mask=ss)
        assert not RMO_TABLE.ordered(MB, S, first_mask=ll)


class TestSC:
    def test_everything_ordered(self):
        for first in (L, S):
            for second in (L, S):
                assert SC_TABLE.ordered(first, second)


class TestModelRelationships:
    def test_strictness_chain(self):
        """SC constrains at least TSO, TSO at least PSO, PSO at least RMO
        (for plain load/store cells)."""
        chain = [SC_TABLE, TSO_TABLE, PSO_TABLE, RMO_TABLE]
        for stricter, weaker in zip(chain, chain[1:]):
            for first in (L, S):
                for second in (L, S):
                    if weaker.ordered(first, second):
                        assert stricter.ordered(first, second)

    def test_table_for_covers_all_models(self):
        for model in ConsistencyModel:
            assert table_for(model) is not None

    def test_model_properties(self):
        assert not ConsistencyModel.SC.allows_store_load_reordering
        assert ConsistencyModel.TSO.allows_store_load_reordering
        assert not ConsistencyModel.TSO.allows_store_store_reordering
        assert ConsistencyModel.PSO.allows_store_store_reordering
        assert ConsistencyModel.RMO.allows_load_reordering
        assert not ConsistencyModel.PSO.allows_load_reordering
        assert ConsistencyModel.TSO.requires_load_order
        assert not ConsistencyModel.RMO.requires_load_order


class TestAtomics:
    def test_atomic_takes_both_constraint_sets(self):
        """Paper Section 4: atomics satisfy load and store orderings."""
        atomic = OpType.ATOMIC
        # Under TSO, Store->Load is relaxed but Atomic->Load is ordered
        # (the atomic's load half gives Load->Load).
        assert TSO_TABLE.ordered(atomic, L)
        assert TSO_TABLE.ordered(atomic, S)
        assert TSO_TABLE.ordered(L, atomic)
        assert TSO_TABLE.ordered(S, atomic)  # via the store half


class TestFormatting:
    def test_format_includes_all_ops(self):
        text = format_table(PSO_TABLE)
        for name in ("LOAD", "STORE", "STBAR", "MEMBAR"):
            assert name in text
        assert "true" in text and "false" in text
