"""Shared test fixtures and helpers."""


import pytest

from repro.config import DVMCConfig, ProtocolKind, SafetyNetConfig, SystemConfig
from repro.consistency.models import ConsistencyModel
from repro.system.builder import System, build_system


def idle_program():
    """A program that issues nothing (controller-level tests drive the
    memory system directly)."""
    return
    yield  # pragma: no cover - makes this a generator


def bare_system(
    protocol: ProtocolKind = ProtocolKind.DIRECTORY,
    num_nodes: int = 4,
    model: ConsistencyModel = ConsistencyModel.TSO,
    dvmc: bool = False,
    safetynet: bool = False,
    **config_kwargs,
) -> System:
    """A wired system with idle cores, for driving controllers directly."""
    config = SystemConfig(
        num_nodes=num_nodes,
        protocol=protocol,
        model=model,
        dvmc=DVMCConfig() if dvmc else DVMCConfig.disabled(),
        safetynet=SafetyNetConfig() if safetynet else SafetyNetConfig.disabled(),
        **config_kwargs,
    )
    return build_system(config, programs=[idle_program() for _ in range(num_nodes)])


def run_system(system: System, cycles: int = 50_000) -> None:
    """Advance a bare system long enough for transactions to settle."""
    system.scheduler.run(until=system.scheduler.now + cycles)


def sync_load(system: System, node: int, addr: int, cycles: int = 50_000) -> int:
    """Issue a load at ``node`` and run until it completes."""
    result = {}
    system.cache_controllers[node].load(addr, lambda v: result.update(v=v))
    system.scheduler.run(
        until=system.scheduler.now + cycles, stop_when=lambda: "v" in result
    )
    assert "v" in result, f"load of 0x{addr:x} at node {node} never completed"
    return result["v"]


def sync_store(
    system: System, node: int, addr: int, value: int, cycles: int = 50_000
) -> int:
    """Issue a store at ``node`` and run until it performs."""
    result = {}
    system.cache_controllers[node].store(
        addr, value, lambda old: result.update(old=old)
    )
    system.scheduler.run(
        until=system.scheduler.now + cycles, stop_when=lambda: "old" in result
    )
    assert "old" in result, f"store to 0x{addr:x} at node {node} never performed"
    return result["old"]


def sync_atomic(
    system: System, node: int, addr: int, value: int, cycles: int = 50_000
) -> int:
    result = {}
    system.cache_controllers[node].atomic(
        addr, value, lambda old: result.update(old=old)
    )
    system.scheduler.run(
        until=system.scheduler.now + cycles, stop_when=lambda: "old" in result
    )
    assert "old" in result
    return result["old"]


def unexpected_count(system: System) -> int:
    """Total 'unexpected message' counters (must be 0 fault-free)."""
    return sum(
        v
        for k, v in system.stats.as_dict().items()
        if "unexpected" in str(k)
    )


@pytest.fixture(params=[ProtocolKind.DIRECTORY, ProtocolKind.SNOOPING])
def protocol(request):
    """Parametrise a test over both coherence protocols."""
    return request.param
