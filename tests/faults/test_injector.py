"""Fault injector: every fault kind can land and mutate real state."""


from repro.config import SystemConfig
from repro.faults.injector import FaultInjector, FaultKind, FaultPlan
from repro.system.builder import build_system


def busy_system(**kw):
    config = SystemConfig.protected(num_nodes=4, **kw)
    return build_system(config, workload="oltp", ops=150)


def arm_and_run(kind, at_cycle=3000, max_cycles=200_000, **kw):
    system = busy_system(**kw)
    injector = FaultInjector(system, seed=13)
    injector.arm(FaultPlan(kind, at_cycle))
    system.run(max_cycles=max_cycles, allow_incomplete=True)
    return system, injector


class TestNetworkFaults:
    def test_drop_lands(self):
        system, injector = arm_and_run(FaultKind.MSG_DROP)
        assert injector.records and injector.records[0].landed
        assert system.stats.counter("net.data.faults.dropped") == 1

    def test_duplicate_lands(self):
        system, injector = arm_and_run(FaultKind.MSG_DUPLICATE)
        assert system.stats.counter("net.data.faults.duplicated") == 1

    def test_misroute_lands(self):
        system, injector = arm_and_run(FaultKind.MSG_MISROUTE)
        assert system.stats.counter("net.data.faults.misrouted") == 1

    def test_data_flip_waits_for_data_message(self):
        system, injector = arm_and_run(FaultKind.MSG_DATA_FLIP)
        assert injector.records[0].landed


class TestArrayFaults:
    def test_cache_data_flip_mutates_line(self):
        system, injector = arm_and_run(FaultKind.CACHE_DATA_FLIP)
        record = injector.records[0]
        if record.landed:  # a clean line existed at injection time
            assert "cache data flip" in record.description

    def test_mem_data_flip(self):
        system, injector = arm_and_run(FaultKind.MEM_DATA_FLIP)
        record = injector.records[0]
        if record.landed:
            assert system.stats.sum("mem.") >= 1 or "memory flip" in record.description


class TestProcessorFaults:
    def test_wb_value_flip(self):
        system, injector = arm_and_run(FaultKind.WB_VALUE_FLIP)
        assert injector.records[0].landed
        assert system.stats.sum("wb.") > 0

    def test_wb_reorder(self):
        system, injector = arm_and_run(FaultKind.WB_REORDER)
        # May legitimately fail to land if never two unissued entries.
        assert injector.records

    def test_lsq_wrong_value_always_lands(self):
        system, injector = arm_and_run(FaultKind.LSQ_WRONG_VALUE)
        assert injector.records[0].landed
        assert system.stats.sum("core.") > 0

    def test_retry_gives_up_eventually(self):
        """A fault with no possible target records landed=False."""
        config = SystemConfig.protected(num_nodes=2)

        def nothing():
            return
            yield

        system = build_system(config, programs=[nothing(), nothing()])
        injector = FaultInjector(system, seed=1)
        injector.arm(FaultPlan(FaultKind.WB_VALUE_FLIP, 10))
        system.run(max_cycles=100_000, allow_incomplete=True)
        assert injector.records and not injector.records[0].landed
