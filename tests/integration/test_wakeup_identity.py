"""Wakeup-vs-poll kernel identity: same machine, fewer events.

The wake-on-change kernel (``repro.common.waitsets``) replaces the
fixed-period retry polls of blocked operations with parked waiters and
explicit notifies.  ``REPRO_POLL=1`` restores the poll regime.  The
two modes must simulate the *identical machine*: same violations, same
final memory image, same cycle count, and the same value for every
stats counter.  Only the raw event count may differ — eliding a spin
poll removes a simulator event, never an architectural one — so the
comparison zeroes ``events_processed`` (and drops the obs snapshot)
before asserting ``RunMetrics`` equality.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import ProtocolKind, SystemConfig
from repro.consistency.models import ConsistencyModel
from repro.parallel import RunSpec, execute_run_spec
from repro.system.builder import build_system
from repro.workloads import WORKLOAD_NAMES

MODELS = [
    ConsistencyModel.SC,
    ConsistencyModel.TSO,
    ConsistencyModel.PSO,
    ConsistencyModel.RMO,
]


def stripped(metrics):
    """RunMetrics minus the fields wake mode is allowed to change."""
    return dataclasses.replace(metrics, events_processed=0, obs=None)


def run_mode(spec, monkeypatch, poll: bool):
    if poll:
        monkeypatch.setenv("REPRO_POLL", "1")
    else:
        monkeypatch.delenv("REPRO_POLL", raising=False)
    return execute_run_spec(spec)


class TestWakeupIdentity:
    @pytest.mark.parametrize("protocol", list(ProtocolKind))
    @pytest.mark.parametrize("model", MODELS)
    def test_modes_identical_across_protocol_and_model(
        self, protocol, model, monkeypatch
    ):
        spec = RunSpec(
            SystemConfig.protected(
                protocol=protocol, model=model, num_nodes=4
            ).with_seed(7),
            "oltp",
            40,
        )
        wake = run_mode(spec, monkeypatch, poll=False)
        poll = run_mode(spec, monkeypatch, poll=True)
        assert stripped(wake) == stripped(poll)
        assert wake.counters == poll.counters
        assert wake.completed and poll.completed
        # The point of the change: wake mode elides spin polls.
        assert wake.events_processed <= poll.events_processed

    @settings(
        max_examples=6,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        workload=st.sampled_from(sorted(WORKLOAD_NAMES)),
        model=st.sampled_from(MODELS),
        protocol=st.sampled_from(list(ProtocolKind)),
        seed=st.integers(min_value=0, max_value=2**16),
        ops=st.integers(min_value=10, max_value=60),
    )
    def test_randomized_workloads_identical(
        self, workload, model, protocol, seed, ops, monkeypatch
    ):
        spec = RunSpec(
            SystemConfig.protected(
                protocol=protocol, model=model, num_nodes=2
            ).with_seed(seed),
            workload,
            ops,
        )
        wake = run_mode(spec, monkeypatch, poll=False)
        poll = run_mode(spec, monkeypatch, poll=True)
        assert stripped(wake) == stripped(poll)

    def test_memory_images_identical(self, monkeypatch):
        config = SystemConfig.protected(num_nodes=4).with_seed(11)

        def image(poll):
            if poll:
                monkeypatch.setenv("REPRO_POLL", "1")
            else:
                monkeypatch.delenv("REPRO_POLL", raising=False)
            system = build_system(config, workload="barnes", ops=60)
            result = system.run()
            return result.cycles, system.memory_image()

        wake_cycles, wake_image = image(poll=False)
        poll_cycles, poll_image = image(poll=True)
        assert wake_cycles == poll_cycles
        assert wake_image == poll_image

    def test_identity_holds_on_legacy_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLAT_KERNEL", "0")
        spec = RunSpec(
            SystemConfig.protected(num_nodes=2).with_seed(3), "oltp", 40
        )
        wake = run_mode(spec, monkeypatch, poll=False)
        poll = run_mode(spec, monkeypatch, poll=True)
        assert stripped(wake) == stripped(poll)

    def test_eager_check_mode_identical(self, monkeypatch):
        # Wakeup plane composes with the per-event checking plane.
        monkeypatch.setenv("REPRO_EAGER_CHECK", "1")
        spec = RunSpec(
            SystemConfig.protected(num_nodes=2).with_seed(9), "jbb", 40
        )
        wake = run_mode(spec, monkeypatch, poll=False)
        poll = run_mode(spec, monkeypatch, poll=True)
        assert stripped(wake) == stripped(poll)
