"""Flat-vs-legacy kernel bit-identity on full-system runs.

The ``REPRO_FLAT_KERNEL=0`` escape hatch swaps the flat two-slot
calendar queue for the object/tuple :class:`LegacyScheduler`.  Both
kernels must produce byte-for-byte the same simulation: same cycle
count, same event count, same violation count, and the same value for
every stats counter — across the whole 5-workload × 2-protocol matrix.
This is the integration-level guarantee the randomized kernel
equivalence tests (``tests/common/test_events_equivalence.py``)
establish at the API level.
"""

import pytest

from repro.common.events import LegacyScheduler, Scheduler, make_scheduler
from repro.config import ProtocolKind, SystemConfig
from repro.parallel import RunSpec, execute_run_spec
from repro.workloads import WORKLOAD_NAMES


def _metrics(spec, monkeypatch, flat: bool):
    if flat:
        monkeypatch.delenv("REPRO_FLAT_KERNEL", raising=False)
    else:
        monkeypatch.setenv("REPRO_FLAT_KERNEL", "0")
    return execute_run_spec(spec)


def test_factory_honours_env(monkeypatch):
    monkeypatch.delenv("REPRO_FLAT_KERNEL", raising=False)
    assert type(make_scheduler()) is Scheduler
    monkeypatch.setenv("REPRO_FLAT_KERNEL", "1")
    assert type(make_scheduler()) is Scheduler
    monkeypatch.setenv("REPRO_FLAT_KERNEL", "0")
    assert type(make_scheduler()) is LegacyScheduler


@pytest.mark.parametrize("protocol", list(ProtocolKind))
@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_flat_and_legacy_runs_identical(protocol, workload, monkeypatch):
    spec = RunSpec(
        SystemConfig.protected(protocol=protocol, num_nodes=4).with_seed(3),
        workload,
        30,
    )
    flat = _metrics(spec, monkeypatch, flat=True)
    legacy = _metrics(spec, monkeypatch, flat=False)
    assert flat == legacy  # RunMetrics equality covers every counter
    assert flat.events_processed == legacy.events_processed
    assert flat.completed and legacy.completed
