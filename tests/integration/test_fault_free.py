"""Fault-free runs never trigger DVMC (no false positives).

This is the reproduction's central soundness property: across both
protocols, all four consistency models and all five workloads, a
protected system completes with zero violations and zero unexpected
protocol messages.
"""

import pytest

from repro.config import ProtocolKind, SystemConfig
from repro.consistency.models import ConsistencyModel
from repro.system.builder import build_system
from repro.workloads import WORKLOAD_NAMES

from tests.conftest import unexpected_count


@pytest.mark.parametrize("protocol", list(ProtocolKind))
@pytest.mark.parametrize("model", list(ConsistencyModel))
@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_no_false_positives(protocol, model, workload):
    config = SystemConfig.protected(
        model=model, protocol=protocol, num_nodes=4
    )
    system = build_system(config, workload=workload, ops=100)
    result = system.run(max_cycles=5_000_000)
    assert result.completed
    assert result.violations == [], result.violations[:3]
    assert unexpected_count(system) == 0


@pytest.mark.parametrize("protocol", list(ProtocolKind))
def test_no_false_positives_under_eviction_pressure(protocol):
    """A tiny cache forces constant evictions/writebacks; the checkers
    must still stay silent."""
    from repro.config import CacheConfig

    config = SystemConfig.protected(
        protocol=protocol,
        num_nodes=4,
        l1=CacheConfig(size_bytes=1024, associativity=2),
    )
    system = build_system(config, workload="oltp", ops=120)
    result = system.run(max_cycles=5_000_000)
    assert result.completed
    assert result.violations == [], result.violations[:3]
    assert unexpected_count(system) == 0
    assert system.stats.sum("l1.") > 0


@pytest.mark.parametrize("protocol", list(ProtocolKind))
def test_checkers_were_actually_exercised(protocol):
    """Guard against vacuous passes: replay, informs and epochs all ran."""
    config = SystemConfig.protected(protocol=protocol, num_nodes=4)
    system = build_system(config, workload="slash", ops=120)
    result = system.run(max_cycles=5_000_000)
    stats = system.stats
    assert stats.sum("uo.") > 0  # replays happened
    informs = sum(
        stats.counter(f"dvcc.{n}.informs_sent") for n in range(4)
    )
    assert informs > 0
    epochs = sum(stats.counter(f"dvcc.{n}.epochs_begun") for n in range(4))
    assert epochs > 0
    assert stats.sum("ar.") >= 0  # injected membars counted


def test_scaled_node_counts_stay_clean():
    for nodes in (1, 2, 6, 8):
        config = SystemConfig.protected(num_nodes=nodes)
        system = build_system(config, workload="jbb", ops=80)
        result = system.run(max_cycles=5_000_000)
        assert result.completed and not result.violations, nodes
