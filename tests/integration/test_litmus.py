"""Litmus tests: the implemented machine exhibits exactly the
reorderings its consistency model allows, and DVMC never flags a legal
execution.

Outcomes of racy programs are timing-dependent, so tests assert
*impossibility* (forbidden outcomes never appear across seeds) and use
delay patterns that make the interesting outcome appear reliably where
it is legal.
"""

import pytest

from repro.common.types import MembarMask
from repro.config import SystemConfig
from repro.consistency.models import ConsistencyModel
from repro.processor.operations import Compute, Load, Membar, Store
from repro.system.builder import build_system

X = 0x2_0000
Y = 0x2_0040  # different block


def run_litmus(programs, model, seed=1):
    config = SystemConfig.protected(model=model).with_nodes(len(programs)).with_seed(seed)
    system = build_system(config, programs=programs)
    result = system.run(max_cycles=2_000_000)
    assert result.completed
    assert not result.violations, result.violations[:2]
    return system


class TestStoreBuffering:
    """SB litmus: P0: X=1; r0=Y   P1: Y=1; r1=X.
    r0==r1==0 is forbidden under SC, allowed under TSO/PSO/RMO.

    Both blocks are warmed into the shared state first: the racing
    loads then hit locally while each store waits on an ownership
    upgrade, which is the window that makes (0, 0) reachable where
    legal.  (Cold caches make every load a miss that resolves after
    both home-local stores, so only (1, 1) would ever appear.)"""

    def _warm(self, first, second):
        # Each core warms its own store target (home-local, fast) first
        # so the two cores stay in lockstep and reach the race together.
        yield Load(first)
        yield Load(second)
        yield Compute(300)  # let the other core finish warming too

    def _run(self, model, seed):
        out = {}

        def p0():
            yield from self._warm(X, Y)
            yield Store(X, 1)
            out["r0"] = yield Load(Y)

        def p1():
            yield from self._warm(Y, X)
            yield Store(Y, 1)
            out["r1"] = yield Load(X)

        run_litmus([p0(), p1()], model, seed)
        return out["r0"], out["r1"]

    def test_sc_forbids_both_zero(self):
        for seed in range(1, 8):
            r0, r1 = self._run(ConsistencyModel.SC, seed)
            assert (r0, r1) != (0, 0), f"SC violated with seed {seed}"

    @pytest.mark.parametrize(
        "model", [ConsistencyModel.TSO, ConsistencyModel.PSO, ConsistencyModel.RMO]
    )
    def test_relaxed_models_allow_both_zero(self, model):
        """The write buffer makes (0, 0) the common outcome: each load
        executes while the store sits in the write buffer."""
        outcomes = {self._run(model, seed) for seed in range(1, 5)}
        assert (0, 0) in outcomes

    def test_storeload_membar_restores_sc_result(self):
        out = {}

        def p0():
            yield from self._warm(X, Y)
            yield Store(X, 1)
            yield Membar(MembarMask.STORELOAD)
            out["r0"] = yield Load(Y)

        def p1():
            yield from self._warm(Y, X)
            yield Store(Y, 1)
            yield Membar(MembarMask.STORELOAD)
            out["r1"] = yield Load(X)

        for seed in range(1, 6):
            run_litmus([p0(), p1()], ConsistencyModel.TSO, seed)
            assert (out["r0"], out["r1"]) != (0, 0)


class TestMessagePassing:
    """MP litmus: P0: X=1; Y=1   P1: r0=Y; r1=X.
    r0==1 && r1==0 forbidden under SC/TSO (store order + load order);
    allowed under PSO/RMO without barriers."""

    def _programs(self, out, spin_delay):
        def p0():
            yield Store(X, 1)  # payload
            yield Store(Y, 1)  # flag

        def p1():
            yield Compute(spin_delay)
            out["r0"] = yield Load(Y)
            out["r1"] = yield Load(X)

        return [p0(), p1()]

    @pytest.mark.parametrize("model", [ConsistencyModel.SC, ConsistencyModel.TSO])
    def test_strong_models_forbid_stale_payload(self, model):
        for seed in range(1, 8):
            for delay in (1, 40, 120, 300):
                out = {}
                run_litmus(self._programs(out, delay), model, seed)
                assert not (
                    out["r0"] == 1 and out["r1"] == 0
                ), f"{model} violated MP (seed={seed}, delay={delay})"


class TestCoherence:
    """Same-word writes are totally ordered regardless of model: once a
    reader observes the newer value, it can never observe the older one
    again (no value oscillation)."""

    @pytest.mark.parametrize("model", list(ConsistencyModel))
    def test_no_value_oscillation(self, model):
        history = []

        def writer():
            for value in range(1, 6):
                yield Store(X, value)
                yield Compute(30)

        def reader():
            for _ in range(25):
                history.append((yield Load(X)))
                yield Compute(7)

        run_litmus([writer(), reader()], model)
        assert history == sorted(history), history
