"""``repro.cli explain`` smoke test over the committed fuzz corpus.

Every reproducer under ``tests/corpus/`` must explain cleanly: the
recorded replay resolves the violating operation (named with its block
address), shows its transaction timeline, and surfaces at least one
causally-related transaction — the acceptance bar for the violation
forensics pipeline.
"""

import glob
import json
import re

import pytest

from repro import cli

CORPUS = sorted(glob.glob("tests/corpus/*.json"))


def test_corpus_is_present():
    assert len(CORPUS) >= 3


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.rsplit("/", 1)[-1])
def test_explain_names_op_block_and_related(path, capsys, monkeypatch):
    for var in (
        "REPRO_OBS_SPANS",
        "REPRO_OBS_SPANS_CAP",
        "REPRO_OBS_SPANS_SAMPLE",
        "REPRO_OBS_SPANS_OUT",
    ):
        monkeypatch.delenv(var, raising=False)
    assert cli.main(["explain", path]) == 0
    out = capsys.readouterr().out

    # The violating operation, by class and sequence number.
    op = re.search(
        r"violating op : (load|store|atomic|membar|stbar)\S* seq \d+", out
    )
    assert op is not None, out
    # Its block address, in hex.
    assert re.search(r"block\s+: 0x[0-9a-f]+", out), out
    # At least one causally-related transaction with a reason tag.
    related = re.findall(
        r"\* trace id \d+: .*\((?:same block|program-order neighbour"
        r"|window overlap|oracle edge)", out
    )
    assert related, out
    # The timeline section is present and non-empty.
    assert "transaction timeline" in out


def test_explain_writes_chrome_trace(tmp_path, capsys):
    path = CORPUS[0]
    out_file = tmp_path / "trace.json"
    assert cli.main(["explain", path, "--trace-out", str(out_file)]) == 0
    trace = json.loads(out_file.read_text())
    assert trace["traceEvents"]
