"""End-to-end error detection (paper Section 6.1).

Each fault class is injected into a running benchmark; DVMC must detect
every fault that becomes architecturally visible, with a valid recovery
point still available (detection inside the SafetyNet window).
"""

import pytest

from repro.config import ProtocolKind, SystemConfig
from repro.consistency.models import ConsistencyModel
from repro.faults import FaultKind, run_trial
from repro.faults.campaign import run_campaign, summarize


def protected(protocol=ProtocolKind.DIRECTORY, model=ConsistencyModel.TSO):
    return SystemConfig.protected(model=model, protocol=protocol, num_nodes=4)


class TestIndividualDetections:
    """Deterministic single-fault trials with known detectors."""

    def test_wb_value_flip_detected_by_uo(self):
        result = run_trial(protected(), "oltp", 150, FaultKind.WB_VALUE_FLIP, 3000, seed=5)
        assert result.detected
        assert result.detector == "UO"
        assert result.recoverable

    def test_wb_addr_flip_detected_by_uo(self):
        result = run_trial(protected(), "oltp", 150, FaultKind.WB_ADDR_FLIP, 3000, seed=5)
        assert result.detected
        assert result.detector == "UO"

    def test_wb_reorder_detected_by_ar_under_tso(self):
        result = run_trial(protected(), "oltp", 150, FaultKind.WB_REORDER, 3000, seed=5)
        assert result.detected
        assert result.detector == "AR"

    def test_lsq_wrong_value_detected_by_uo(self):
        result = run_trial(protected(), "oltp", 150, FaultKind.LSQ_WRONG_VALUE, 3000, seed=5)
        assert result.detected
        assert result.detector == "UO"

    def test_msg_data_flip_detected_by_cc(self):
        result = run_trial(protected(), "oltp", 150, FaultKind.MSG_DATA_FLIP, 3000, seed=5)
        assert result.detected
        assert result.detector == "CC"

    def test_cache_data_flip_detected_by_cc(self):
        result = run_trial(protected(), "oltp", 150, FaultKind.CACHE_DATA_FLIP, 3000, seed=5)
        assert result.detected
        assert result.detector == "CC"

    def test_mem_data_flip_detected_by_cc(self):
        result = run_trial(protected(), "oltp", 150, FaultKind.MEM_DATA_FLIP, 3000, seed=5)
        assert result.detected
        assert result.detector == "CC"

    def test_msg_drop_detected(self):
        result = run_trial(protected(), "slash", 150, FaultKind.MSG_DROP, 3000, seed=5)
        assert result.detected or result.masked

    def test_rmo_lsq_fault_detected_via_vc(self):
        """The RMO optimisation records pre-corruption values, so the
        wrong-value fault is still caught."""
        result = run_trial(
            protected(model=ConsistencyModel.RMO),
            "oltp",
            150,
            FaultKind.LSQ_WRONG_VALUE,
            3000,
            seed=5,
        )
        assert result.detected or result.masked


class TestCampaignProperties:
    @pytest.mark.slow
    def test_no_undetected_hangs(self):
        """Any fault that hangs the machine must be detected (the paper's
        lost-operation guarantee)."""
        results = run_campaign(
            protected(), workload="slash", ops=120, trials_per_kind=2, seed=7
        )
        for r in results:
            if r.landed and not r.completed:
                assert r.detected, f"undetected hang: {r.kind} {r.description}"

    @pytest.mark.slow
    def test_detections_are_recoverable(self):
        """Errors activated during the run are detected inside the
        recovery window (post-run scrub detections may legally exceed
        it; they exist only because our runs are short)."""
        window = protected().safetynet.recovery_window
        results = run_campaign(
            protected(), workload="oltp", ops=150, trials_per_kind=2, seed=7
        )
        detected = [r for r in results if r.detected]
        assert detected
        for r in detected:
            if r.latency is not None and r.latency <= window:
                assert r.recoverable, (r.kind, r.latency)

    @pytest.mark.slow
    def test_majority_of_landed_faults_detected(self):
        results = run_campaign(
            protected(), workload="slash", ops=150, trials_per_kind=2, seed=9
        )
        landed = [r for r in results if r.landed]
        detected = [r for r in landed if r.detected]
        assert len(detected) >= len(landed) * 0.6

    def test_summary_table_shape(self):
        results = run_campaign(
            protected(),
            workload="oltp",
            ops=120,
            kinds=[FaultKind.WB_VALUE_FLIP, FaultKind.LSQ_WRONG_VALUE],
            trials_per_kind=1,
            seed=3,
        )
        summary = summarize(results)
        assert set(summary) <= set(FaultKind)
        for row in summary.values():
            assert row["detected"] <= row["landed"] <= row["trials"]
