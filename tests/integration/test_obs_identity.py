"""Observability must never change results: obs on == obs off, bit for bit.

The acceptance property of the observability plane (and the reason the
benchmark's ``identical`` flag folds in an observed pass): enabling
``REPRO_OBS`` / ``REPRO_OBS_TRACE`` yields the same violations, the
same stats counters, and the same cycle count as an unobserved run.
"""

from repro.config import SystemConfig
from repro.parallel import RunSpec, execute_run_spec, last_run_obs, run_points
from repro.system.builder import build_system
from repro.verify.trace import load_jsonl

SPEC = RunSpec(SystemConfig.protected().with_seed(3), "oltp", 80)


def run_reports(config, workload="oltp", ops=80):
    system = build_system(config, workload=workload, ops=ops)
    result = system.run()
    reports = [
        (r.checker, r.cycle, r.node, r.kind, r.detail)
        for r in result.violations
    ]
    return system, result, reports


class TestObsIdentity:
    def test_metrics_bit_identical_with_obs_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        base = execute_run_spec(SPEC)
        monkeypatch.setenv("REPRO_OBS", "1")
        observed = execute_run_spec(SPEC)
        # Full deterministic payload: cycles, completion, violations,
        # events and every stats counter (RunMetrics equality covers
        # all of them; the obs field is excluded by design).
        assert base == observed
        assert base.counters == observed.counters
        assert base.obs is None
        assert observed.obs is not None

    def test_violation_reports_identical(self, monkeypatch):
        config = SystemConfig.protected().with_seed(5)
        monkeypatch.delenv("REPRO_OBS", raising=False)
        _, plain_result, plain_reports = run_reports(config)
        monkeypatch.setenv("REPRO_OBS", "1")
        system, obs_result, obs_reports = run_reports(config)
        assert plain_reports == obs_reports
        assert plain_result.cycles == obs_result.cycles
        assert system.obs.enabled

    def test_trace_recording_is_transparent(self, monkeypatch, tmp_path):
        trace_file = tmp_path / "tail.jsonl"
        monkeypatch.delenv("REPRO_OBS", raising=False)
        base = execute_run_spec(SPEC)
        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_OBS_TRACE", str(trace_file))
        monkeypatch.setenv("REPRO_OBS_TRACE_CAP", "100000")
        traced = execute_run_spec(SPEC)
        assert base == traced
        assert traced.obs["layers"]["trace"]["seen"] > 0
        recorded = load_jsonl(str(trace_file))
        assert len(recorded.events) == traced.obs["layers"]["trace"]["kept"]

    def test_snapshot_layers_cover_every_subsystem(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        observed = execute_run_spec(SPEC)
        layers = observed.obs["layers"]
        assert layers["scheduler"]["events_processed"] > 0
        assert layers["scheduler"]["buckets_drained"] > 0
        assert layers["networks"]["data"]["messages_sent"] > 0
        assert layers["caches"]["l1.0"]["accesses"] > 0
        assert layers["dvmc"]["violations"] == observed.violations
        assert layers["dvmc"]["cc"]["met_probes"] >= 0
        phases = observed.obs["phases"]["exclusive"]
        assert set(phases) == {"simulate", "verify", "drain", "serialize"}

    def test_pool_obs_reports_batch_metrics(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        run_points([SPEC, SPEC], jobs=1)
        batch = last_run_obs()
        assert batch["jobs"] == 1
        assert batch["specs"] == 2
        assert batch["task_s_total"] > 0
