"""Flight-recorder identity: recorder on == recorder off, bit for bit.

The acceptance property of the transaction flight recorder (and the
reason the benchmark's ``spans_identical`` flag exists): enabling
``REPRO_OBS_SPANS`` — at any sampling stride — yields the same cycle
count, the same violations, and the same value for every stats counter
as a plain run.  The recorder observes hand-offs; it never sits on
them.
"""

import pytest

from repro.config import ProtocolKind, SystemConfig
from repro.consistency.models import ConsistencyModel
from repro.parallel import RunSpec, execute_run_spec

MODELS = [ConsistencyModel.SC, ConsistencyModel.TSO, ConsistencyModel.RMO]

SPAN_ENV_VARS = (
    "REPRO_OBS_SPANS",
    "REPRO_OBS_SPANS_CAP",
    "REPRO_OBS_SPANS_SAMPLE",
    "REPRO_OBS_SPANS_OUT",
)


def run_mode(spec, monkeypatch, spans: bool, sample: str = "1"):
    for var in SPAN_ENV_VARS:
        monkeypatch.delenv(var, raising=False)
    if spans:
        monkeypatch.setenv("REPRO_OBS_SPANS", "1")
        monkeypatch.setenv("REPRO_OBS_SPANS_SAMPLE", sample)
    return execute_run_spec(spec)


class TestSpansIdentity:
    @pytest.mark.parametrize("protocol", list(ProtocolKind))
    @pytest.mark.parametrize("model", MODELS)
    def test_recorder_identical_across_protocol_and_model(
        self, protocol, model, monkeypatch
    ):
        spec = RunSpec(
            SystemConfig.protected(
                protocol=protocol, model=model, num_nodes=4
            ).with_seed(7),
            "oltp",
            40,
        )
        base = run_mode(spec, monkeypatch, spans=False)
        recorded = run_mode(spec, monkeypatch, spans=True)
        # Full deterministic payload: cycles, completion, violations,
        # events and every stats counter (RunMetrics equality; the obs
        # field is excluded by design).
        assert base == recorded
        assert base.counters == recorded.counters

    @pytest.mark.parametrize("sample", ["1", "16", "1000000"])
    def test_recorder_identical_at_any_stride(self, sample, monkeypatch):
        spec = RunSpec(SystemConfig.protected().with_seed(3), "oltp", 80)
        base = run_mode(spec, monkeypatch, spans=False)
        recorded = run_mode(spec, monkeypatch, spans=True, sample=sample)
        assert base == recorded

    def test_chrome_export_is_transparent(self, monkeypatch, tmp_path):
        spec = RunSpec(SystemConfig.protected().with_seed(3), "oltp", 80)
        base = run_mode(spec, monkeypatch, spans=False)
        out = tmp_path / "trace.json"
        monkeypatch.setenv("REPRO_OBS_SPANS", "1")
        monkeypatch.setenv("REPRO_OBS_SPANS_OUT", str(out))
        recorded = execute_run_spec(spec)
        assert base == recorded
        assert out.exists()
