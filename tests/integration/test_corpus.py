"""Regression corpus replay (tier-1).

Every file in ``tests/corpus/`` is a shrunk reproducer of a
differential mismatch the fuzz rig once found — each one a real bug
that was fixed.  Replaying them through the full system against the
offline oracle guarantees none of those bugs comes back; the CI fuzz
lane additionally fails if a fresh campaign shrinks a new mismatch to
a spec that is not in this corpus.
"""

import os

import pytest

from repro.fuzz import corpus_files, replay_corpus

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "..", "corpus")


def test_corpus_is_seeded():
    assert len(corpus_files(CORPUS_DIR)) >= 3


def test_corpus_replays_clean():
    results = replay_corpus(CORPUS_DIR)
    assert results, "corpus must not be empty"
    regressions = [
        (os.path.basename(path), result.outcome, result.detail)
        for path, result in results
        if result.fatal
    ]
    assert not regressions, regressions


@pytest.mark.parametrize(
    "path", corpus_files(CORPUS_DIR), ids=lambda p: os.path.basename(p)
)
def test_corpus_entry_is_well_formed(path):
    import json

    from repro.fuzz import FuzzCase

    with open(path) as fh:
        data = json.load(fh)
    case = FuzzCase.from_json(data["case"])
    assert case.model in ("SC", "TSO", "PSO", "RMO")
    assert data.get("detail"), "reproducer must record the mismatch detail"
