"""Detection-plus-recovery: the end-to-end story of DVMC + SafetyNet."""

from repro.config import SystemConfig
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.system.builder import build_system


def test_memory_image_reconstruction_after_detection():
    """Run, snapshot the architectural image mid-flight, keep running,
    then roll back with SafetyNet: the reconstructed image matches the
    snapshot for every block that existed at snapshot time."""
    config = SystemConfig.protected(num_nodes=4)
    system = build_system(config, workload="jbb", ops=200)
    for core in system.cores:
        core.start()
    system.scheduler.run(until=4_000)
    snapshot_cycle = system.scheduler.now
    snapshot = system.memory_image()
    result = system.run(max_cycles=5_000_000)
    assert result.completed
    current = system.memory_image()
    rolled_back = system.safetynet.reconstruct_memory_image(
        current, error_cycle=snapshot_cycle
    )
    # The recovery point is the checkpoint covering snapshot_cycle, so
    # blocks written between that checkpoint and the snapshot may
    # legally differ; blocks untouched in that window must match.
    point = system.safetynet.recovery_point_for(snapshot_cycle)
    dirty_since_point = set()
    for ckpt in system.safetynet._checkpoints:
        if ckpt.index >= point.index:
            dirty_since_point |= set(ckpt.undo)
    mismatches = [
        hex(block)
        for block, data in snapshot.items()
        if block not in dirty_since_point and rolled_back.get(block) != data
    ]
    assert not mismatches, mismatches


def test_detection_before_checkpoint_expiry():
    """The paper's validity criterion: when DVMC flags an injected
    error, the checkpoint preceding the injection must still be live."""
    config = SystemConfig.protected(num_nodes=4)
    system = build_system(config, workload="oltp", ops=200)
    injector = FaultInjector(system, seed=21)
    inject_cycle = 5_000
    injector.arm(FaultPlan(FaultKind.WB_VALUE_FLIP, inject_cycle))

    outcome = {}

    def on_violation(report):
        if "cycle" not in outcome:
            outcome["cycle"] = report.cycle
            outcome["recoverable"] = system.safetynet.can_recover(inject_cycle)

    system.dvmc.violations._callback = on_violation
    system.run(max_cycles=2_000_000, allow_incomplete=True)
    assert "cycle" in outcome, "fault was never detected"
    assert outcome["recoverable"]
    latency = outcome["cycle"] - inject_cycle
    assert latency < config.safetynet.recovery_window


def test_unprotected_system_misses_the_error():
    """Ablation: the same fault on an unprotected system is silent —
    demonstrating that DVMC is what provides detection."""
    config = SystemConfig.unprotected(num_nodes=4)
    system = build_system(config, workload="oltp", ops=150)
    injector = FaultInjector(system, seed=21)
    injector.arm(FaultPlan(FaultKind.LSQ_WRONG_VALUE, 3_000))
    result = system.run(max_cycles=2_000_000, allow_incomplete=True)
    assert injector.records[0].landed
    assert result.violations == []  # nothing watches; the error is silent
