"""Snooping-protocol corner cases: total order, obligations, killed fills."""

from repro.config import ProtocolKind

from tests.conftest import (
    bare_system,
    run_system,
    sync_load,
    sync_store,
    unexpected_count,
)

ADDR = 0x2_0000


def snooping_system(**kw):
    return bare_system(ProtocolKind.SNOOPING, **kw)


class TestMemoryOwnerTracking:
    def test_memory_supplies_when_unowned(self):
        system = snooping_system()
        assert sync_load(system, 0, ADDR) == 0
        home = system.memory_controllers[system.home_of(ADDR)]
        assert home._owner.get(ADDR) is None

    def test_getm_transfers_tracked_ownership(self):
        system = snooping_system()
        sync_store(system, 2, ADDR, 1)
        home = system.memory_controllers[system.home_of(ADDR)]
        assert home._owner.get(ADDR) == 2

    def test_putm_returns_ownership_and_data(self):
        system = snooping_system()
        sync_store(system, 0, ADDR, 0x55)
        line = system.cache_controllers[0].peek_line(ADDR)
        system.cache_controllers[0]._evict(line)
        run_system(system, 20_000)
        home = system.memory_controllers[system.home_of(ADDR)]
        assert home._owner.get(ADDR) is None
        assert system.memories[system.home_of(ADDR)].read_word(ADDR) == 0x55


class TestObligations:
    def test_back_to_back_writers_chain_data(self):
        """Writer B's GetM serialises while writer A's data is still in
        flight: A must hand the block to B after its own fill."""
        system = snooping_system()
        done = []
        system.cache_controllers[0].store(ADDR, 10, lambda old: done.append(("a", old)))
        system.cache_controllers[1].store(ADDR, 20, lambda old: done.append(("b", old)))
        run_system(system, 50_000)
        assert len(done) == 2
        final = sync_load(system, 2, ADDR)
        assert final in (10, 20)
        assert unexpected_count(system) == 0

    def test_reader_behind_pending_writer(self):
        """A GetS serialised after a pending GetM gets the writer's data."""
        system = snooping_system()
        got = {}
        system.cache_controllers[0].store(ADDR, 77, lambda old: None)
        system.cache_controllers[1].load(ADDR, lambda v: got.update(v=v))
        run_system(system, 50_000)
        assert got.get("v") == 77  # load serialised after the store

    def test_three_way_ownership_chain(self):
        system = snooping_system()
        done = []
        for n, value in ((0, 1), (1, 2), (2, 3)):
            system.cache_controllers[n].store(ADDR, value, lambda old, n=n: done.append(n))
        run_system(system, 100_000)
        assert sorted(done) == [0, 1, 2]
        assert sync_load(system, 3, ADDR) == 3
        assert unexpected_count(system) == 0


class TestKilledFills:
    def test_reader_killed_by_later_writer_still_gets_value(self):
        """A GetS whose data arrives after a later GetM serialises: the
        arriving block serves the waiting load once, pre-writer data."""
        system = snooping_system()
        got = {}
        done = []
        system.cache_controllers[0].load(ADDR, lambda v: got.update(v=v))
        system.cache_controllers[1].store(ADDR, 99, lambda old: done.append(1))
        run_system(system, 50_000)
        assert "v" in got
        assert got["v"] in (0, 99)  # depends on serialisation order
        assert done == [1]
        assert unexpected_count(system) == 0


class TestWritebackRaces:
    def test_getm_beats_putm(self):
        """A GetM serialised before the evictor's PutM takes the data;
        the PutM becomes stale and memory ignores it."""
        system = snooping_system()
        sync_store(system, 0, ADDR, 0x66)
        line = system.cache_controllers[0].peek_line(ADDR)
        # Evict and immediately race a remote store.
        system.cache_controllers[0]._evict(line)
        got = sync_store(system, 1, ADDR, 0x67)
        run_system(system, 20_000)
        assert got == 0x66
        assert sync_load(system, 2, ADDR) == 0x67
        assert unexpected_count(system) == 0

    def test_gets_served_from_wb_pending_line(self):
        system = snooping_system()
        sync_store(system, 0, ADDR, 0x88)
        line = system.cache_controllers[0].peek_line(ADDR)
        system.cache_controllers[0]._evict(line)
        assert sync_load(system, 3, ADDR) == 0x88
        run_system(system, 20_000)
        assert unexpected_count(system) == 0


class TestLogicalTime:
    def test_snoop_counts_advance_in_lockstep(self):
        system = snooping_system()
        sync_store(system, 0, ADDR, 1)
        sync_load(system, 1, ADDR)
        lt = system.logical_time
        counts = [lt.now(n) for n in range(4)]
        assert len(set(counts)) == 1
        assert counts[0] >= 2  # at least the two requests
