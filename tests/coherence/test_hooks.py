"""SystemHooks multicast dispatch."""

from repro.coherence.hooks import SystemHooks
from repro.common.types import EpochType


class TestDispatch:
    def test_epoch_events_fan_out(self):
        hooks = SystemHooks()
        got = []
        hooks.on_epoch_begin(lambda *a: got.append(("begin", a)))
        hooks.on_epoch_data(lambda *a: got.append(("data", a)))
        hooks.on_epoch_end(lambda *a: got.append(("end", a)))
        hooks.epoch_begin(1, 0x40, EpochType.READ_ONLY, None, 7)
        hooks.epoch_data(1, 0x40, [0] * 16)
        hooks.epoch_end(1, 0x40, [0] * 16, 9)
        assert [tag for tag, _ in got] == ["begin", "data", "end"]
        assert got[0][1] == (1, 0x40, EpochType.READ_ONLY, None, 7)
        assert got[2][1][3] == 9

    def test_default_lt_is_none(self):
        hooks = SystemHooks()
        got = []
        hooks.on_epoch_begin(lambda n, a, t, d, lt: got.append(lt))
        hooks.epoch_begin(0, 0, EpochType.READ_WRITE, None)
        assert got == [None]

    def test_multiple_subscribers(self):
        hooks = SystemHooks()
        calls = []
        hooks.on_access(lambda n, a, s: calls.append(1))
        hooks.on_access(lambda n, a, s: calls.append(2))
        hooks.access(0, 0x100, True)
        assert calls == [1, 2]

    def test_unsubscribed_events_are_noops(self):
        hooks = SystemHooks()
        hooks.block_write(0, 0, [0])
        hooks.memory_write(0, 0, [0], [1])
        hooks.snoop_tick(0)
        hooks.invalidation(0, 0)
        hooks.home_request(0, 0)

    def test_all_hook_kinds(self):
        hooks = SystemHooks()
        seen = set()
        hooks.on_block_write(lambda *a: seen.add("bw"))
        hooks.on_memory_write(lambda *a: seen.add("mw"))
        hooks.on_snoop_tick(lambda *a: seen.add("st"))
        hooks.on_invalidation(lambda *a: seen.add("inv"))
        hooks.on_home_request(lambda *a: seen.add("hr"))
        hooks.block_write(0, 0, [])
        hooks.memory_write(0, 0, [], [])
        hooks.snoop_tick(0)
        hooks.invalidation(0, 0)
        hooks.home_request(0, 0)
        assert seen == {"bw", "mw", "st", "inv", "hr"}
