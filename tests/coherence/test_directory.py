"""Directory-protocol corner cases: races the blocking home resolves."""

from repro.config import ProtocolKind

from tests.conftest import (
    bare_system,
    run_system,
    sync_load,
    sync_store,
    unexpected_count,
)

ADDR = 0x2_0000


def directory_system(**kw):
    return bare_system(ProtocolKind.DIRECTORY, **kw)


class TestDirectoryState:
    def test_home_tracks_owner(self):
        system = directory_system()
        sync_store(system, 1, ADDR, 5)
        home = system.memory_controllers[system.home_of(ADDR)]
        assert home.entry(ADDR).owner == 1

    def test_home_tracks_sharers(self):
        system = directory_system()
        sync_load(system, 0, ADDR)
        sync_load(system, 2, ADDR)
        home = system.memory_controllers[system.home_of(ADDR)]
        assert home.entry(ADDR).sharers >= {0, 2}

    def test_writeback_returns_ownership_to_memory(self):
        system = directory_system()
        sync_store(system, 0, ADDR, 9)
        line = system.cache_controllers[0].peek_line(ADDR)
        system.cache_controllers[0]._evict(line)
        run_system(system, 10_000)
        home = system.memory_controllers[system.home_of(ADDR)]
        assert home.entry(ADDR).owner is None
        assert system.memories[system.home_of(ADDR)].read_word(ADDR) == 9


class TestStaleSharerRaces:
    def test_silently_evicted_sharer_still_acks_inv(self):
        """Home's sharer list can be stale after silent S evictions; the
        INV'd node must ack anyway or the writer hangs."""
        system = directory_system()
        sync_load(system, 1, ADDR)
        # Node 1 silently drops its S copy.
        system.cache_controllers[1].l1.remove(ADDR)
        # Node 2's GetM must still complete (stale INV gets acked).
        sync_store(system, 2, ADDR, 4)
        assert sync_load(system, 3, ADDR) == 4

    def test_stale_sharer_regetm_receives_data(self):
        """The bug behind 'GetM finished without data': a sharer that
        silently evicted must be sent data on its next GetM."""
        system = directory_system()
        sync_load(system, 1, ADDR)
        system.cache_controllers[1].l1.remove(ADDR)
        sync_store(system, 1, ADDR, 0x42)  # upgrade-without-line
        assert sync_load(system, 0, ADDR) == 0x42
        assert unexpected_count(system) == 0


class TestForwarding:
    def test_fwd_gets_served_from_writeback_buffer(self):
        """An owner whose PutM is in flight serves forwards from the
        writeback buffer."""
        system = directory_system()
        sync_store(system, 0, ADDR, 0x11)
        line = system.cache_controllers[0].peek_line(ADDR)
        # Evict (PutM in flight)...
        system.cache_controllers[0]._evict(line)
        # ...and race a remote load before running the writeback down.
        value = sync_load(system, 1, ADDR)
        assert value == 0x11
        run_system(system, 10_000)
        assert unexpected_count(system) == 0

    def test_owner_supplies_data_on_remote_getm(self):
        system = directory_system()
        sync_store(system, 0, ADDR, 0x22)
        assert sync_store(system, 1, ADDR, 0x23) == 0x22
        assert system.cache_controllers[0].peek_line(ADDR) is None


class TestBlockingHome:
    def test_concurrent_getm_serialise(self):
        """Two simultaneous writers: home serialises; both complete and
        the final value is one of theirs."""
        system = directory_system()
        done = []
        system.cache_controllers[0].store(ADDR, 100, lambda old: done.append(0))
        system.cache_controllers[1].store(ADDR, 200, lambda old: done.append(1))
        run_system(system, 50_000)
        assert sorted(done) == [0, 1]
        final = sync_load(system, 2, ADDR)
        assert final in (100, 200)
        assert unexpected_count(system) == 0

    def test_many_concurrent_readers(self):
        system = directory_system()
        sync_store(system, 0, ADDR, 0x33)
        got = []
        for n in range(1, 4):
            system.cache_controllers[n].load(ADDR, lambda v, n=n: got.append((n, v)))
        run_system(system, 50_000)
        assert sorted(v for _, v in got) == [0x33] * 3
