"""MOSI protocol behaviour, exercised identically on both protocols.

The ``protocol`` fixture parametrises every test over the directory and
snooping implementations; protocol-specific corner cases live in
test_directory.py / test_snooping.py.
"""

from repro.common.types import CoherenceState

from tests.conftest import (
    bare_system,
    run_system,
    sync_atomic,
    sync_load,
    sync_store,
    unexpected_count,
)

ADDR = 0x2_0000


class TestBasicAccess:
    def test_cold_load_returns_zero(self, protocol):
        system = bare_system(protocol)
        assert sync_load(system, 0, ADDR) == 0
        assert unexpected_count(system) == 0

    def test_load_after_store_same_node(self, protocol):
        system = bare_system(protocol)
        sync_store(system, 0, ADDR, 0xCAFE)
        assert sync_load(system, 0, ADDR) == 0xCAFE

    def test_store_returns_old_value(self, protocol):
        system = bare_system(protocol)
        sync_store(system, 0, ADDR, 1)
        assert sync_store(system, 0, ADDR, 2) == 1

    def test_atomic_swap(self, protocol):
        system = bare_system(protocol)
        sync_store(system, 0, ADDR, 5)
        old = sync_atomic(system, 1, ADDR, 9)
        assert old == 5
        assert sync_load(system, 2, ADDR) == 9


class TestStateTransitions:
    def test_load_installs_shared(self, protocol):
        system = bare_system(protocol)
        sync_load(system, 0, ADDR)
        line = system.cache_controllers[0].peek_line(ADDR)
        assert line.state is CoherenceState.S

    def test_store_installs_modified(self, protocol):
        system = bare_system(protocol)
        sync_store(system, 0, ADDR, 1)
        line = system.cache_controllers[0].peek_line(ADDR)
        assert line.state is CoherenceState.M

    def test_remote_read_downgrades_owner_to_o(self, protocol):
        system = bare_system(protocol)
        sync_store(system, 0, ADDR, 7)
        assert sync_load(system, 1, ADDR) == 7
        owner = system.cache_controllers[0].peek_line(ADDR)
        reader = system.cache_controllers[1].peek_line(ADDR)
        assert owner.state is CoherenceState.O
        assert reader.state is CoherenceState.S

    def test_remote_write_invalidates_everyone(self, protocol):
        system = bare_system(protocol)
        sync_store(system, 0, ADDR, 1)
        sync_load(system, 1, ADDR)
        sync_load(system, 2, ADDR)
        sync_store(system, 3, ADDR, 2)
        run_system(system, 5_000)
        for n in (0, 1, 2):
            assert system.cache_controllers[n].peek_line(ADDR) is None
        assert system.cache_controllers[3].peek_line(ADDR).state is CoherenceState.M

    def test_upgrade_s_to_m(self, protocol):
        system = bare_system(protocol)
        sync_store(system, 1, ADDR, 3)  # someone else owns it first
        sync_load(system, 0, ADDR)
        assert system.cache_controllers[0].peek_line(ADDR).state is CoherenceState.S
        sync_store(system, 0, ADDR, 4)
        assert system.cache_controllers[0].peek_line(ADDR).state is CoherenceState.M
        assert sync_load(system, 2, ADDR) == 4


class TestDataPropagation:
    def test_values_travel_with_ownership(self, protocol):
        system = bare_system(protocol)
        value = 0
        for round_idx in range(6):
            node = round_idx % 4
            assert sync_load(system, node, ADDR) == value
            value = round_idx + 100
            sync_store(system, node, ADDR, value)
        assert sync_load(system, 3, ADDR) == value
        assert unexpected_count(system) == 0

    def test_word_granularity_within_block(self, protocol):
        system = bare_system(protocol)
        sync_store(system, 0, ADDR, 1)
        sync_store(system, 1, ADDR + 4, 2)
        sync_store(system, 2, ADDR + 8, 3)
        assert sync_load(system, 3, ADDR) == 1
        assert sync_load(system, 3, ADDR + 4) == 2
        assert sync_load(system, 3, ADDR + 8) == 3

    def test_interleaved_homes(self, protocol):
        """Blocks with different home nodes behave independently."""
        system = bare_system(protocol)
        addrs = [ADDR + i * 64 for i in range(8)]
        for i, addr in enumerate(addrs):
            sync_store(system, i % 4, addr, i + 1)
        for i, addr in enumerate(addrs):
            assert sync_load(system, (i + 1) % 4, addr) == i + 1


class TestEviction:
    def test_dirty_eviction_writes_back(self, protocol):
        """Fill a set past associativity; the dirty victim's data must
        survive via writeback and be readable afterwards."""
        system = bare_system(protocol)
        cache = system.cache_controllers[0].l1
        stride = cache.num_sets * 64
        addrs = [ADDR + i * stride for i in range(cache.config.associativity + 2)]
        for i, addr in enumerate(addrs):
            sync_store(system, 0, addr, i + 10)
        run_system(system, 10_000)
        for i, addr in enumerate(addrs):
            assert sync_load(system, 1, addr) == i + 10
        assert system.stats.counter("l1.0.evictions") >= 2
        assert unexpected_count(system) == 0

    def test_clean_eviction_is_silent_but_correct(self, protocol):
        system = bare_system(protocol)
        cache = system.cache_controllers[0].l1
        stride = cache.num_sets * 64
        sync_store(system, 1, ADDR, 0xBEEF)  # node 1 owns the data
        addrs = [ADDR + i * stride for i in range(cache.config.associativity + 1)]
        for addr in addrs:
            sync_load(system, 0, addr)
        # ADDR may have been evicted from node 0; re-reading still works.
        assert sync_load(system, 0, ADDR) == 0xBEEF


class TestMemoryImage:
    def test_image_reflects_owner_copies(self, protocol):
        system = bare_system(protocol)
        sync_store(system, 0, ADDR, 0x77)
        image = system.memory_image()
        from repro.common.types import block_of, word_index

        assert image[block_of(ADDR)][word_index(ADDR)] == 0x77
