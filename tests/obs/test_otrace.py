"""TraceRing sampling/eviction and the JSONL codec round trip."""

from repro.obs.otrace import TraceRing
from repro.verify.trace import (
    Trace,
    TraceEvent,
    dump_jsonl,
    event_from_dict,
    event_to_dict,
    load_jsonl,
)


def make_events(n, core=0):
    return [TraceEvent(core, i, "store", 4 * i, i) for i in range(n)]


class TestTraceRing:
    def test_keeps_the_tail(self):
        ring = TraceRing(capacity=4)
        for ev in make_events(10):
            ring.events.append(ev)
        assert len(ring) == 4
        assert [e.index for e in ring.tail()] == [6, 7, 8, 9]
        stats = ring.stats()
        assert stats["seen"] == 10
        assert stats["kept"] == 4
        assert stats["dropped"] == 6

    def test_sampling_keeps_one_in_n(self):
        ring = TraceRing(capacity=100, sample=3)
        for ev in make_events(9):
            ring.events.append(ev)
        assert ring.stats()["seen"] == 9
        assert [e.index for e in ring.tail()] == [2, 5, 8]

    def test_from_env_reads_cap_and_sample(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_TRACE_CAP", "16")
        monkeypatch.setenv("REPRO_OBS_TRACE_SAMPLE", "4")
        ring = TraceRing.from_env()
        assert ring.capacity == 16
        assert ring.sample == 4

    def test_to_trace_is_offline_checkable(self):
        ring = TraceRing(capacity=8)
        for ev in make_events(3):
            ring.events.append(ev)
        trace = ring.to_trace()
        assert isinstance(trace, Trace)
        assert trace.events == make_events(3)


class TestJsonlCodec:
    def test_event_dict_round_trip(self):
        ev = TraceEvent(2, 5, "atomic", 0x40, 7, old_value=3)
        assert event_from_dict(event_to_dict(ev)) == ev

    def test_file_round_trip_is_exact(self, tmp_path):
        events = [
            TraceEvent(0, 0, "load", 0x10, 1),
            TraceEvent(1, 0, "store", 0x14, 2),
            TraceEvent(0, 1, "atomic", 0x10, 3, old_value=1),
        ]
        path = tmp_path / "trace.jsonl"
        assert dump_jsonl(events, str(path)) == 3
        assert load_jsonl(str(path)).events == events

    def test_ring_write_jsonl_round_trips(self, tmp_path):
        ring = TraceRing(capacity=4)
        for ev in make_events(6):
            ring.events.append(ev)
        path = tmp_path / "deep" / "tail.jsonl"
        assert ring.write_jsonl(str(path)) == 4
        assert load_jsonl(str(path)).events == ring.tail()
