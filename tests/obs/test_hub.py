"""MetricsHub instruments: semantics, snapshots, disabled-mode no-ops."""

from repro.obs.hub import (
    NULL_HUB,
    NULL_INSTRUMENT,
    MetricsHub,
    NullHub,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        hub = MetricsHub()
        c = hub.counter("events")
        assert c.value == 0
        c.add()
        c.add(41)
        assert c.value == 42

    def test_get_or_create_returns_same_instrument(self):
        hub = MetricsHub()
        assert hub.counter("x") is hub.counter("x")

    def test_distinct_names_are_distinct(self):
        hub = MetricsHub()
        hub.counter("a").add(1)
        assert hub.counter("b").value == 0


class TestGauge:
    def test_last_write_wins(self):
        hub = MetricsHub()
        g = hub.gauge("occupancy")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_streaming_moments(self):
        hub = MetricsHub()
        h = hub.histogram("latency")
        for v in (2.0, 8.0, 5.0):
            h.record(v)
        assert h.count == 3
        assert h.total == 15.0
        assert h.min == 2.0
        assert h.max == 8.0
        assert h.mean == 5.0

    def test_empty_histogram_dict_is_finite(self):
        h = MetricsHub().histogram("empty")
        assert h.as_dict() == {
            "count": 0,
            "sum": 0.0,
            "min": 0.0,
            "max": 0.0,
            "mean": 0.0,
        }


class TestSnapshot:
    def test_snapshot_is_plain_sorted_data(self):
        hub = MetricsHub()
        hub.counter("b").add(2)
        hub.counter("a").add(1)
        hub.gauge("g").set(7)
        hub.histogram("h").record(1.0)
        snap = hub.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["counters"] == {"a": 1, "b": 2}
        assert snap["gauges"] == {"g": 7}
        assert snap["histograms"]["h"]["count"] == 1

    def test_snapshot_does_not_alias_registry(self):
        hub = MetricsHub()
        hub.counter("a").add(1)
        snap = hub.snapshot()
        hub.counter("a").add(1)
        assert snap["counters"]["a"] == 1


class TestNullHub:
    def test_disabled_flag(self):
        assert NULL_HUB.enabled is False
        assert MetricsHub().enabled is True

    def test_every_instrument_is_the_shared_noop(self):
        hub = NullHub()
        assert hub.counter("a") is hub.counter("b")
        assert hub.counter("a") is NULL_INSTRUMENT
        assert hub.gauge("g") is NULL_INSTRUMENT
        assert hub.histogram("h") is NULL_INSTRUMENT

    def test_updates_are_noops(self):
        NULL_INSTRUMENT.add(10)
        NULL_INSTRUMENT.set(3.0)
        NULL_INSTRUMENT.record(1.0)
        assert NULL_INSTRUMENT.value == 0
        assert NULL_INSTRUMENT.count == 0

    def test_snapshot_is_empty(self):
        assert NULL_HUB.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
