"""Flight-recorder well-formedness: spans close, nest, and export.

Two layers of properties:

* **Mechanics** (hypothesis-driven): random open/close/instant/span
  scripts against a bare :class:`SpanRecorder` — every opened span is
  closed or force-closed, ring accounting balances, sampling admits
  exactly every Nth op, and the Chrome export round-trips through
  ``json``.
* **Whole-system** (parametrized over protocol x model x wake/poll x
  express/hops): a recorded run leaves no dangling spans, every child
  span nests inside its transaction's root interval, trace ids are
  unique, and the exported trace is valid Chrome ``trace_event`` JSON.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import ProtocolKind, SystemConfig
from repro.consistency.models import ConsistencyModel
from repro.obs.chrome_trace import to_chrome_trace, write_chrome_trace
from repro.obs.spans import K_MSHR, K_OP, K_WB, SpanRecorder
from repro.system.builder import build_system

SPAN_ENV_VARS = (
    "REPRO_OBS_SPANS",
    "REPRO_OBS_SPANS_CAP",
    "REPRO_OBS_SPANS_SAMPLE",
    "REPRO_OBS_SPANS_OUT",
)


# ---------------------------------------------------------------------------
# Mechanics (hypothesis)
# ---------------------------------------------------------------------------

#: One recorder action: (op_code, small_int payload).  Codes: 0 = new_op,
#: 1 = open, 2 = close oldest open, 3 = instant, 4 = span, 5 = clock skip.
_ACTIONS = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 7)), max_size=120
)


@given(
    actions=_ACTIONS,
    capacity=st.integers(16, 48),
    sample=st.integers(1, 4),
)
@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
def test_recorder_script_invariants(actions, capacity, sample):
    rec = SpanRecorder(capacity=capacity, sample=sample)
    now = 0
    horizon = 0
    open_tokens = []
    emitted = 0
    sampled_tids = []
    for code, arg in actions:
        if code == 0:
            tid = rec.new_op(0, arg % 4, 0, 0x100 + arg, len(sampled_tids), now)
            if tid:
                sampled_tids.append(tid)
        elif code == 1:
            open_tokens.append(rec.open(0, arg % 4, K_MSHR, now, 0x100 + arg))
        elif code == 2 and open_tokens:
            rec.close(open_tokens.pop(0), now)
            emitted += 1
        elif code == 3:
            rec.instant(0, arg % 4, K_WB, now, 0x100 + arg)
            emitted += 1
        elif code == 4:
            # Express-plane style: the end time is known at emission
            # and may lie in the simulated future.
            rec.span(0, arg % 4, K_WB, now, now + arg)
            horizon = max(horizon, now + arg)
            emitted += 1
        else:
            now += arg
    horizon = max(horizon, now)

    assert rec.open_count() == len(open_tokens)
    rec.finalize(horizon)
    # Every opened span was closed -- by its site or by finalize.
    assert rec.open_count() == 0
    emitted += len(open_tokens)
    stats = rec.stats()
    assert stats["force_closed"] == len(open_tokens)
    assert stats["spans_kept"] == min(emitted, capacity)
    assert stats["dropped_spans"] == emitted - stats["spans_kept"]
    events = rec.events()
    assert len(events) == stats["spans_kept"]
    for _tid, track, _kind, t0, t1, _a, _b, _c in events:
        assert 0 <= t0 <= t1 <= horizon
        assert 0 <= track < 4

    # Trace ids are unique and consecutive from 1.
    assert sampled_tids == sorted(set(sampled_tids))
    assert sampled_tids == list(range(1, len(sampled_tids) + 1))

    # Chrome export round-trips through json with one entry per record
    # plus two metadata events per track.
    trace = json.loads(json.dumps(to_chrome_trace(rec)))
    assert len(trace["traceEvents"]) == len(rec.records()) + 2 * len(
        rec.track_names()
    )
    for ev in trace["traceEvents"]:
        assert ev["ph"] in ("M", "X", "i")
        if ev["ph"] == "X":
            assert ev["dur"] > 0


@given(stride=st.integers(1, 8), ops=st.integers(0, 64))
@settings(max_examples=40)
def test_sampling_admits_every_nth_op(stride, ops):
    rec = SpanRecorder(capacity=4096, sample=stride)
    tids = [rec.new_op(0, 0, 0, 0x40 * i, i, i) for i in range(ops)]
    sampled = [t for t in tids if t]
    # Ops 0, stride, 2*stride, ... are the sampled ones.
    assert sampled == [tids[i] for i in range(0, ops, stride)]
    assert rec.stats()["seen_ops"] == ops
    # tid_for answers exactly for sampled (node, seq) pairs.
    for seq, tid in enumerate(tids):
        assert rec.tid_for(0, seq) == tid
    # Infra spans are recorded only at full sampling.
    assert rec.trace_infra == (stride == 1)


def test_ring_grows_lazily_and_wraps():
    rec = SpanRecorder(capacity=1024)
    assert rec._size == 0  # nothing allocated until first emission
    for i in range(1500):
        rec.instant(0, 0, K_WB, i)
    assert rec._size == rec.capacity
    stats = rec.stats()
    assert stats["spans_kept"] == 1024
    assert stats["dropped_spans"] == 476
    events = rec.events()
    # Oldest-first after wrapping: the survivors are the last 1024.
    assert [e[3] for e in events] == list(range(476, 1500))


# ---------------------------------------------------------------------------
# Whole-system well-formedness
# ---------------------------------------------------------------------------

MODELS = [ConsistencyModel.SC, ConsistencyModel.TSO, ConsistencyModel.RMO]

REGIMES = [
    ("wake-express", {}),
    ("poll", {"REPRO_POLL": "1"}),
    ("hops", {"REPRO_HOPS": "1"}),
]


def recorded_run(monkeypatch, protocol, model, extra_env=None):
    for var in SPAN_ENV_VARS + ("REPRO_POLL", "REPRO_HOPS"):
        monkeypatch.delenv(var, raising=False)
    monkeypatch.setenv("REPRO_OBS_SPANS", "1")
    monkeypatch.setenv("REPRO_OBS_SPANS_SAMPLE", "1")
    for key, value in (extra_env or {}).items():
        monkeypatch.setenv(key, value)
    config = SystemConfig.protected(
        protocol=protocol, model=model, num_nodes=4
    ).with_seed(11)
    system = build_system(config, workload="oltp", ops=30)
    system.run()
    return system.spans


def assert_wellformed(rec):
    assert rec is not None and rec.finalized
    # Every opened span closed (finalize force-closes stragglers).
    assert rec.open_count() == 0
    roots = rec.op_spans()
    # Unique, consecutive trace ids.
    assert sorted(roots) == list(range(1, len(roots) + 1))
    assert rec.stats()["spans_kept"] > 0
    for tid, track, _kind, t0, t1, _a, _b, _c in rec.events():
        # A span starts during the run; express-plane flights may end
        # at a precomputed delivery time just past the final event.
        assert 0 <= t0 <= t1
        assert t0 <= rec.end_time
        assert 0 <= track < len(rec.track_names())
        if tid:
            # Child spans nest inside their transaction's root span.
            _rt, r0, r1, _cls, _addr, _seq, _node = roots[tid]
            assert r0 <= t0 and t1 <= r1


class TestSystemSpanWellformedness:
    @pytest.mark.parametrize("protocol", list(ProtocolKind))
    @pytest.mark.parametrize("model", MODELS)
    def test_protocol_model_grid(self, monkeypatch, protocol, model):
        assert_wellformed(recorded_run(monkeypatch, protocol, model))

    @pytest.mark.parametrize("name,env", REGIMES)
    def test_execution_regimes(self, monkeypatch, name, env):
        rec = recorded_run(
            monkeypatch,
            ProtocolKind.DIRECTORY,
            ConsistencyModel.TSO,
            extra_env=env,
        )
        assert_wellformed(rec)

    def test_chrome_export_round_trips(self, monkeypatch, tmp_path):
        rec = recorded_run(
            monkeypatch, ProtocolKind.DIRECTORY, ConsistencyModel.TSO
        )
        out = tmp_path / "trace.json"
        written = write_chrome_trace(str(out), rec)
        trace = json.loads(out.read_text())
        assert written == len(trace["traceEvents"]) > 0
        tracks = rec.track_names()
        names = {
            ev["args"]["name"]
            for ev in trace["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        assert names == set(tracks)
        for ev in trace["traceEvents"]:
            if ev["ph"] != "M":
                assert 0 <= ev["tid"] < len(tracks)
                assert ev["ts"] >= 0
        # One root span per sampled transaction rides along.
        ops = [
            ev
            for ev in trace["traceEvents"]
            if ev["ph"] != "M" and ev["args"]["kind"] == "op"
        ]
        assert len(ops) == len(rec.op_spans())

    def test_sampled_run_stays_wellformed(self, monkeypatch):
        for var in SPAN_ENV_VARS:
            monkeypatch.delenv(var, raising=False)
        monkeypatch.setenv("REPRO_OBS_SPANS", "1")
        monkeypatch.setenv("REPRO_OBS_SPANS_SAMPLE", "16")
        config = SystemConfig.protected(num_nodes=4).with_seed(11)
        system = build_system(config, workload="oltp", ops=30)
        system.run()
        rec = system.spans
        assert rec is not None and not rec.trace_infra
        assert_wellformed(rec)
        # Sampling admits roughly every 16th op.
        stats = rec.stats()
        assert 0 < stats["traced_ops"] <= stats["seen_ops"] // 16 + 1
