"""Violation forensics: anchor parsing, causal slices, post-mortems.

The forensics walker never touches a live system — everything it needs
is in the flight recorder.  These tests drive it two ways: against a
hand-built recorder whose causal structure is known exactly, and
against a real recorded replay of a committed fuzz reproducer.
"""

import json

import pytest

from repro.fuzz import FuzzCase, run_case_recorded
from repro.obs.forensics import (
    causal_slice,
    parse_detail,
    post_mortem,
    resolve_anchor,
)
from repro.obs.spans import K_MSHR, K_OWNER, SpanRecorder

ONLINE_DETAIL = (
    "online: [cycle 411] UO violation at node 2: "
    "load-replay-mismatch (load 0x20000: executed 0x9, replayed 0xe)"
)
ORACLE_DETAIL = (
    "oracle: [cycle 500] CC violation at node 1: "
    "edge T1#3:store@0x4040 -> T0#2:load@0x4040 breaks coherence order"
)


class TestParseDetail:
    def test_online_format(self):
        anchor = parse_detail(ONLINE_DETAIL)
        assert anchor is not None
        assert anchor.checker == "UO"
        assert anchor.cycle == 411
        assert anchor.node == 2
        assert anchor.addr == 0x20000
        assert anchor.op_class == 0  # load

    def test_oracle_edge_format(self):
        anchor = parse_detail(ORACLE_DETAIL)
        assert anchor is not None
        assert anchor.checker == "CC"
        assert anchor.cycle == 500
        # The anchor is the first edge endpoint ...
        assert anchor.node == 1
        assert anchor.addr == 0x4040
        assert anchor.op_class == 1  # store
        # ... and the rest become resolution hints.
        assert (0, 2, "load", 0x4040) in anchor.hints

    def test_garbage_rejected(self):
        assert parse_detail("") is None
        assert parse_detail("no violation here") is None


def seeded_recorder():
    """A recorder with two transactions touching the same block."""
    rec = SpanRecorder(capacity=256, sample=1)
    core0 = rec.track("core.0")
    core1 = rec.track("core.1")
    cache = rec.track("cache.0")
    tid_a = rec.new_op(core0, 0, 1, 0x4000, 5, 100)  # store on node 0
    tid_b = rec.new_op(core1, 1, 0, 0x4000, 9, 120)  # load on node 1
    token = rec.open(tid_a, cache, K_MSHR, 110, 0x4000)
    rec.close(token, 150)
    rec.instant(tid_b, cache, K_OWNER, 160, 0x4000, 2, 0)
    rec.violation("UO", 0, 170, addr=0x4000, seq=5, detail="test")
    rec.finalize(200)
    return rec, tid_a, tid_b


class TestResolveAndSlice:
    def test_recorded_violation_wins(self):
        rec, tid_a, _ = seeded_recorder()
        anchor = resolve_anchor(rec, detail="")
        assert anchor is not None
        assert anchor.source == "recorder"
        assert anchor.tid == tid_a
        assert anchor.addr == 0x4000

    def test_slice_finds_remote_same_block_transaction(self):
        rec, tid_a, tid_b = seeded_recorder()
        anchor = resolve_anchor(rec)
        sliced = causal_slice(rec, anchor, window=1000, block_size=64)
        assert sliced.anchor.tid == tid_a
        assert tid_b in sliced.related
        # The anchor's own records are on its timeline, not "related".
        assert tid_a not in sliced.related

    def test_post_mortem_names_the_essentials(self):
        rec, _, _ = seeded_recorder()
        report = post_mortem(rec)
        assert "UO" in report
        assert "0x4000" in report
        assert "seq 5" in report
        assert "causally-related transactions" in report

    def test_post_mortem_without_violation(self):
        rec = SpanRecorder(capacity=64)
        rec.finalize(10)
        report = post_mortem(rec)
        assert "no violation" in report.lower()


class TestRecordedReplay:
    @pytest.fixture(scope="class")
    def corpus_replay(self):
        with open("tests/corpus/repro-tso-831801-f90fb907.json") as fh:
            data = json.load(fh)
        case = FuzzCase.from_json(data["case"])
        result, recorder = run_case_recorded(case)
        return data, result, recorder

    def test_replay_records_full_fidelity(self, corpus_replay):
        _, _, recorder = corpus_replay
        assert recorder is not None
        assert recorder.sample == 1 and recorder.trace_infra
        assert recorder.stats()["spans_kept"] > 0

    def test_post_mortem_anchors_on_violating_load(self, corpus_replay):
        data, result, recorder = corpus_replay
        report = post_mortem(
            recorder, detail=result.detail or data["detail"]
        )
        assert "violating op : load@0x20000" in report
        assert "transaction timeline" in report
        assert "causally-related transactions" in report
