"""Manifest determinism and config hashing."""

import json

from repro.config import SystemConfig
from repro.obs.manifest import (
    SCHEMA_VERSION,
    config_hash,
    run_manifest,
    write_manifest,
)


class TestConfigHash:
    def test_stable_for_equal_configs(self):
        a = SystemConfig.protected()
        b = SystemConfig.protected()
        assert config_hash(a) == config_hash(b)

    def test_sensitive_to_config_changes(self):
        base = SystemConfig.protected()
        assert config_hash(base) != config_hash(base.with_seed(99))
        assert config_hash(base) != config_hash(base.with_nodes(4))


class TestRunManifest:
    def test_deterministic_for_same_run(self):
        config = SystemConfig.protected().with_seed(7)
        a = run_manifest(config, workload="oltp", ops=100)
        b = run_manifest(config, workload="oltp", ops=100)
        assert a == b

    def test_seed_defaults_from_config(self):
        config = SystemConfig.protected().with_seed(7)
        manifest = run_manifest(config, workload="oltp", ops=100)
        assert manifest["seed"] == 7
        assert manifest["schema"] == SCHEMA_VERSION

    def test_extra_entries_are_kept_verbatim(self):
        manifest = run_manifest(extra={"pass": "bench", "jobs": 2})
        assert manifest["extra"] == {"pass": "bench", "jobs": 2}

    def test_json_safe(self):
        manifest = run_manifest(SystemConfig.protected(), workload="jbb")
        round_tripped = json.loads(json.dumps(manifest, sort_keys=True))
        assert round_tripped == manifest


class TestWriteManifest:
    def test_written_file_round_trips(self, tmp_path):
        path = tmp_path / "artifacts" / "manifest.json"
        manifest = run_manifest(SystemConfig.protected(), workload="oltp")
        write_manifest(str(path), manifest)
        assert json.loads(path.read_text()) == manifest

    def test_two_writes_are_byte_identical(self, tmp_path):
        config = SystemConfig.protected()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_manifest(str(a), run_manifest(config, workload="oltp", ops=50))
        write_manifest(str(b), run_manifest(config, workload="oltp", ops=50))
        assert a.read_bytes() == b.read_bytes()
