"""Exporters: Prometheus text rendering and the phase table."""

from repro.obs.export import (
    format_phase_table,
    sanitize_metric_name,
    to_prometheus,
    write_prometheus,
)


def sample_snapshot():
    return {
        "counters": {"run.events": 100},
        "gauges": {"run.cycles": 15000},
        "histograms": {"pool.task_s": {"count": 2, "sum": 3.0}},
        "phases": {
            "exclusive": {"simulate": 0.75, "verify": 0.25},
            "inclusive": {"simulate": 0.75, "verify": 0.25},
        },
        "layers": {
            "scheduler": {"pending": 3, "note": "strings are skipped"},
            "caches": {"l1.0": {"hit_rate": 0.5}},
        },
    }


class TestSanitize:
    def test_dotted_names_become_legal(self):
        assert sanitize_metric_name("run.events") == "run_events"
        assert sanitize_metric_name("l1.0/hits") == "l1_0_hits"

    def test_leading_digit_is_prefixed(self):
        assert sanitize_metric_name("0bad")[0].isdigit() is False


class TestToPrometheus:
    def test_counters_become_total_series(self):
        text = to_prometheus(sample_snapshot())
        assert "# TYPE repro_run_events_total counter" in text
        assert "repro_run_events_total 100" in text

    def test_numeric_leaves_become_gauges(self):
        text = to_prometheus(sample_snapshot())
        assert "repro_gauges_run_cycles 15000" in text
        assert "repro_phases_exclusive_simulate 0.75" in text
        assert "repro_layers_caches_l1_0_hit_rate 0.5" in text

    def test_strings_are_not_exported(self):
        assert "strings are skipped" not in to_prometheus(sample_snapshot())

    def test_every_line_is_exposition_format(self):
        for line in to_prometheus(sample_snapshot()).strip().splitlines():
            assert line.startswith("# TYPE ") or len(line.split(" ")) == 2

    def test_write_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "nested" / "metrics.prom"
        write_prometheus(str(path), sample_snapshot())
        assert "repro_run_events_total 100" in path.read_text()


class TestPhaseTable:
    def test_lists_phases_by_share(self):
        table = format_phase_table(sample_snapshot())
        lines = table.splitlines()
        assert "simulate" in lines[1]
        assert "75.0%" in lines[1]
        assert "verify" in lines[2]
        assert lines[-1].startswith("total")

    def test_empty_snapshot_degrades_gracefully(self):
        assert "no phase data" in format_phase_table({})
