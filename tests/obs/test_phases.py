"""PhaseTimer attribution under a fake clock, including nesting."""

from repro.obs.phases import NULL_TIMER, PhaseTimer


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestPhaseTimer:
    def test_single_phase(self):
        clock = FakeClock()
        timer = PhaseTimer(clock=clock)
        with timer.phase("simulate"):
            clock.advance(5.0)
        assert timer.exclusive == {"simulate": 5.0}
        assert timer.inclusive == {"simulate": 5.0}
        assert timer.total() == 5.0

    def test_nested_phase_subtracts_child_time(self):
        clock = FakeClock()
        timer = PhaseTimer(clock=clock)
        with timer.phase("outer"):
            clock.advance(1.0)
            with timer.phase("inner"):
                clock.advance(2.0)
            clock.advance(3.0)
        assert timer.inclusive == {"outer": 6.0, "inner": 2.0}
        assert timer.exclusive == {"outer": 4.0, "inner": 2.0}
        # Exclusive times partition the instrumented wall time.
        assert timer.total() == 6.0

    def test_repeated_phases_accumulate(self):
        clock = FakeClock()
        timer = PhaseTimer(clock=clock)
        for dt in (1.0, 2.0):
            with timer.phase("simulate"):
                clock.advance(dt)
        assert timer.exclusive == {"simulate": 3.0}

    def test_exception_still_attributes_time(self):
        clock = FakeClock()
        timer = PhaseTimer(clock=clock)
        try:
            with timer.phase("simulate"):
                clock.advance(2.0)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert timer.exclusive == {"simulate": 2.0}
        # The stack unwound: a new phase nests at top level again.
        with timer.phase("verify"):
            clock.advance(1.0)
        assert timer.exclusive["verify"] == 1.0

    def test_snapshot_sorted_plain_data(self):
        clock = FakeClock()
        timer = PhaseTimer(clock=clock)
        with timer.phase("b"):
            clock.advance(1.0)
        with timer.phase("a"):
            clock.advance(1.0)
        snap = timer.snapshot()
        assert list(snap["exclusive"]) == ["a", "b"]
        assert snap == {
            "exclusive": {"a": 1.0, "b": 1.0},
            "inclusive": {"a": 1.0, "b": 1.0},
        }


class TestNullTimer:
    def test_shared_reentrant_context(self):
        ctx = NULL_TIMER.phase("anything")
        assert ctx is NULL_TIMER.phase("other")
        with ctx:
            with ctx:
                pass
        assert NULL_TIMER.total() == 0.0
        assert NULL_TIMER.snapshot() == {"exclusive": {}, "inclusive": {}}
