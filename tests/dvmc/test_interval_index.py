"""IntervalIndex: equivalence with the brute-force overlap scan.

The MET's rule-2 check used to scan a block's epoch history linearly;
the interval index answers the same overlap query with a bisect.  These
properties pin the equivalence on randomised epoch sets — including
out-of-order stragglers and the bounded-index (``drop_oldest``)
degradation, which must only ever get *more* conservative.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dvmc.interval_index import IntervalIndex


def brute_force_max_overlap(intervals, begin, end):
    """Largest end among intervals overlapping [begin, end), else None."""
    best = None
    for b, e in intervals:
        if b < end and e > begin:  # half-open overlap
            if best is None or e > best:
                best = e
    return best


def brute_force_max_end(intervals):
    return max((e for _b, e in intervals), default=None)


# Epochs as (begin, duration) pairs keep end >= begin by construction.
epoch_sets = st.lists(
    st.tuples(st.integers(0, 500), st.integers(0, 60)),
    min_size=0,
    max_size=60,
)


class TestEquivalence:
    @given(epoch_sets, st.integers(0, 550), st.integers(1, 80))
    @settings(max_examples=200, deadline=None)
    def test_matches_brute_force_on_sorted_streams(
        self, pairs, q_begin, q_len
    ):
        """Begin-sorted insertion (the MET's common case)."""
        intervals = sorted((b, b + d) for b, d in pairs)
        index = IntervalIndex()
        for b, e in intervals:
            index.add(b, e)
        q_end = q_begin + q_len
        assert index.max_overlap_end(q_begin, q_end) == brute_force_max_overlap(
            intervals, q_begin, q_end
        )
        assert index.max_end() == brute_force_max_end(intervals)

    @given(epoch_sets, st.integers(0, 550), st.integers(1, 80), st.integers())
    @settings(max_examples=200, deadline=None)
    def test_matches_brute_force_with_stragglers(
        self, pairs, q_begin, q_len, seed
    ):
        """Arbitrary insertion order (force-drained out-of-order informs)."""
        intervals = [(b, b + d) for b, d in pairs]
        random.Random(seed).shuffle(intervals)
        index = IntervalIndex()
        for b, e in intervals:
            index.add(b, e)
        q_end = q_begin + q_len
        assert index.max_overlap_end(q_begin, q_end) == brute_force_max_overlap(
            intervals, q_begin, q_end
        )
        assert index.max_end() == brute_force_max_end(intervals)
        # Begin-sorted (ties keep arbitrary end order — the prefix max
        # makes end order among equal begins irrelevant) and lossless.
        stored = index.intervals()
        assert [b for b, _ in stored] == sorted(b for b, _ in intervals)
        assert sorted(stored) == sorted(intervals)

    @given(epoch_sets, st.integers(1, 10))
    @settings(max_examples=100, deadline=None)
    def test_drop_oldest_is_conservative(self, pairs, keep):
        """Folding history into a scalar floor never weakens the check:
        every overlap the pruned index misses is covered by the floor."""
        intervals = sorted((b, b + d) for b, d in pairs)
        index = IntervalIndex()
        for b, e in intervals:
            index.add(b, e)
        folded = index.drop_oldest(keep)
        if len(intervals) <= keep:
            assert folded is None
            return
        dropped = intervals[: len(intervals) - keep]
        kept = intervals[len(intervals) - keep:]
        assert folded == brute_force_max_end(dropped)
        assert index.intervals() == kept
        # The checker folds ``folded`` into its scalar floor, which
        # enters every subsequent limit unconditionally.  So for any
        # query, max(floor, pruned answer) must dominate the full
        # index's answer: pruning can only get more conservative.
        for q_begin, q_end in [(0, 1), (100, 140), (250, 260), (0, 10**6)]:
            full = brute_force_max_overlap(intervals, q_begin, q_end)
            if full is not None:
                pruned = index.max_overlap_end(q_begin, q_end)
                assert max(folded, pruned or 0) >= full


class TestEdgeCases:
    def test_empty_index(self):
        index = IntervalIndex()
        assert index.max_overlap_end(0, 100) is None
        assert index.max_end() is None
        assert index.drop_oldest(4) is None

    def test_touching_intervals_do_not_overlap(self):
        index = IntervalIndex()
        index.add(10, 20)
        assert index.max_overlap_end(20, 30) is None  # half-open: no conflict
        assert index.max_overlap_end(19, 30) == 20

    def test_degenerate_interval_query(self):
        """A zero-length epoch queried as a point [b, b+1) conflicts with
        an epoch spanning it — matching the old scalar watermark."""
        index = IntervalIndex()
        index.add(5, 9)
        assert index.max_overlap_end(5, 6) == 9
        assert index.max_overlap_end(9, 10) is None

    def test_sorted_fast_path_equals_straggler_path(self):
        sorted_index = IntervalIndex()
        straggler_index = IntervalIndex()
        intervals = [(1, 4), (3, 3), (5, 12), (7, 8), (9, 20)]
        for b, e in intervals:
            sorted_index.add(b, e)
        for b, e in [intervals[i] for i in (2, 0, 4, 1, 3)]:
            straggler_index.add(b, e)
        assert sorted_index.intervals() == straggler_index.intervals()
        for q in range(0, 25):
            assert sorted_index.max_overlap_end(q, q + 3) == (
                straggler_index.max_overlap_end(q, q + 3)
            )
